"""Write-combining buffers.

Paper Section VI:

    "Our approach makes intensive use of the write combining capability to
    generate maximum sized HyperTransport packets which reduce the command
    overhead.  Therefore, multiple 64 bit store instructions are collected
    in the write combining buffer and sent out as a single packet. ...
    The Opteron provides eight write combining buffers."

This unit tracks up to eight open 64-byte buffers with byte-valid masks.
A buffer drains (producing posted-write operations toward the SRQ) when

* it becomes completely valid (the fast path: a full cache line of stores),
* an ``sfence`` or explicit flush drains everything (strictly-ordered
  send mode),
* a ninth line is touched and the least-recently-allocated buffer is
  evicted (the weakly-ordered overflow path: "the write combining buffers
  are flushed automatically in the case of a buffer overflow").

Partially-valid buffers flush as one posted write per contiguous
dword-aligned valid run, mirroring how the hardware emits sized dword
writes with masks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from ..util.units import CACHELINE

__all__ = ["WriteCombiner", "FlushOp"]


@dataclass(frozen=True)
class FlushOp:
    """One posted write produced by draining (part of) a WC buffer.

    ``mask`` (0/1 per byte) is set when the drained run is ragged at a
    dword boundary -- the hardware then emits an HT sized-*byte* write so
    that no stale buffer bytes clobber remote memory.

    ``data`` may be a read-only :class:`memoryview` span into the storing
    core's source buffer: the streaming fast path (aligned full-line store
    to a closed line) forwards the caller's span untouched, which is what
    makes the bulk data plane one-copy.  Ops drained out of a *buffer* are
    always ``bytes`` copies -- the backing bytearray is reused by later
    stores, so a span into it would alias live mutable state.
    """

    addr: int
    data: bytes
    mask: "bytes | None" = None

    def __post_init__(self) -> None:
        if self.addr % 4 or len(self.data) % 4:
            raise ValueError("WC flush must be dword aligned/granular")
        if self.mask is not None and len(self.mask) != len(self.data):
            raise ValueError("mask/data length mismatch")


_ALL_VALID = b"\x01" * CACHELINE


class _Buffer:
    __slots__ = ("line_addr", "data", "valid")

    def __init__(self, line_addr: int):
        self.line_addr = line_addr
        self.data = bytearray(CACHELINE)
        self.valid = bytearray(CACHELINE)  # 0/1 per byte

    @property
    def full(self) -> bool:
        return self.valid == _ALL_VALID

    def fill(self, offset: int, data: bytes) -> None:
        n = len(data)
        self.data[offset : offset + n] = data
        self.valid[offset : offset + n] = _ALL_VALID[:n]

    def drain_ops(self) -> List[FlushOp]:
        """Contiguous valid runs; ragged dword edges become byte-masked
        writes so only actually-stored bytes reach the fabric."""
        if self.valid == _ALL_VALID:
            # Fast path: the dominant full-line drain is a single op.
            return [FlushOp(self.line_addr, bytes(self.data))]
        ops: List[FlushOp] = []
        i = 0
        while i < CACHELINE:
            if not self.valid[i]:
                i += 1
                continue
            j = i
            while j < CACHELINE and self.valid[j]:
                j += 1
            lo = (i // 4) * 4
            hi = ((j + 3) // 4) * 4
            data = bytes(self.data[lo:hi])
            if lo == i and hi == j:
                ops.append(FlushOp(self.line_addr + lo, data))
            else:
                mask_bytes = bytes(self.valid[lo:hi])
                ops.append(FlushOp(self.line_addr + lo, data, mask_bytes))
            i = j
        return ops


class WriteCombiner:
    """One core's set of write-combining buffers."""

    def __init__(self, num_buffers: int = 8):
        if num_buffers <= 0:
            raise ValueError("need at least one WC buffer")
        self.num_buffers = num_buffers
        self._buffers: "OrderedDict[int, _Buffer]" = OrderedDict()
        self.fills = 0
        self.full_flushes = 0
        self.partial_flushes = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._buffers)

    def store_line_stream(self, line: int) -> bool:
        """Claim the streaming fast path for an aligned full-line store.

        True when ``line`` is closed and a buffer slot is free: the
        allocate-fill-drain collapse of :meth:`_store_line` applies, the
        fill/flush accounting is recorded here, and the *caller* forwards
        the payload span as one posted write -- no ``FlushOp`` (a frozen
        dataclass, measurably expensive per line at bulk-transfer rates)
        is materialized.  False means the caller must take :meth:`store`.
        """
        if line not in self._buffers and len(self._buffers) < self.num_buffers:
            self.fills += 1
            self.full_flushes += 1
            return True
        return False

    def store(self, addr: int, data: bytes) -> List[FlushOp]:
        """Absorb a store; returns any flush operations it caused.

        Stores may span line boundaries; each affected line is combined
        independently, as on hardware.
        """
        if not data:
            raise ValueError("empty store")
        ops: List[FlushOp] = []
        pos = 0
        while pos < len(data):
            a = addr + pos
            line = a & ~(CACHELINE - 1)
            offset = a - line
            n = min(CACHELINE - offset, len(data) - pos)
            ops.extend(self._store_line(line, offset, data[pos : pos + n]))
            pos += n
        return ops

    def _store_line(self, line: int, offset: int, data: bytes) -> List[FlushOp]:
        buf = self._buffers.get(line)
        if (buf is None and offset == 0 and len(data) == CACHELINE
                and len(self._buffers) < self.num_buffers):
            # Aligned full-line store to a closed line with a buffer free:
            # allocate-fill-drain collapses to a single posted write with
            # no buffer state ever materialized (the streaming hot path).
            # ``data`` is forwarded as-is -- a memoryview span stays a
            # span, so the payload is not copied here (see FlushOp).
            self.fills += 1
            self.full_flushes += 1
            return [FlushOp(line, data)]
        ops: List[FlushOp] = []
        if buf is None:
            if len(self._buffers) >= self.num_buffers:
                # Overflow: evict the oldest open buffer.
                _, old = self._buffers.popitem(last=False)
                self.evictions += 1
                if old.full:
                    self.full_flushes += 1
                else:
                    self.partial_flushes += 1
                ops.extend(old.drain_ops())
            buf = _Buffer(line)
            self._buffers[line] = buf
        buf.fill(offset, data)
        self.fills += 1
        if buf.full:
            del self._buffers[line]
            self.full_flushes += 1
            ops.extend(buf.drain_ops())
        return ops

    def flush(self) -> List[FlushOp]:
        """Drain every open buffer (sfence / ordering point)."""
        ops: List[FlushOp] = []
        for _, buf in self._buffers.items():
            if buf.full:
                self.full_flushes += 1
            else:
                self.partial_flushes += 1
            ops.extend(buf.drain_ops())
        self._buffers.clear()
        return ops

    def discard(self) -> int:
        """Drop every open buffer *without* emitting flush ops (hard
        crash: combining buffers are core-private SRAM, and their
        contents never reached the fabric).  Returns the number of
        buffered-but-never-posted bytes lost."""
        lost = sum(sum(buf.valid) for buf in self._buffers.values())
        self._buffers.clear()
        return lost

    @property
    def open_lines(self) -> Tuple[int, ...]:
        return tuple(self._buffers.keys())
