"""Shared helpers for the benchmark suite: result persistence."""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str, point: str | None = None) -> None:
    """Persist a reproduced table/figure to benchmarks/results/ and echo
    it (visible with pytest -s; always available in the file).

    Atomic (tmp file + rename): concurrent sweep workers can never leave
    a torn file, and the last completed write wins whole, not mixed.
    ``point`` namespaces per-point outputs (``<name>.<point>.txt``) so
    parallel points of one benchmark do not race on a single filename.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = f"{name}.{point}" if point else name
    path = RESULTS_DIR / f"{stem}.txt"
    tmp = RESULTS_DIR / f".{stem}.{os.getpid()}.tmp"
    tmp.write_text(text + "\n")
    os.replace(tmp, path)
    print(f"\n{text}\n[saved to {path}]")
