"""Cache-coherence substrate: MESI, probe cost models, shared memory."""

from .mesi import (
    Action,
    ProtocolError,
    State,
    Transition,
    check_line_invariant,
    local_read,
    local_write,
    probe_invalidate,
    probe_shared,
    read_fill_state,
)
from .system import CoherenceStats, CoherentNode, CoherentSystem

__all__ = [
    "State",
    "Action",
    "Transition",
    "ProtocolError",
    "local_read",
    "local_write",
    "probe_shared",
    "probe_invalidate",
    "read_fill_state",
    "check_line_invariant",
    "CoherentSystem",
    "CoherentNode",
    "CoherenceStats",
]
