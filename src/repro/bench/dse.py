"""Design-space exploration harness over the boot-image snapshot layer.

A DSE run evaluates a declarative grid of hardware configurations --
link width, per-lane rate, write-combining buffer count, message-ring
depth, topology -- and reports the Pareto front over the three axes the
paper trades against each other: bulk bandwidth, small-message latency,
and recovery stall under a link flap.

Every grid point is a distinct boot signature, booted **once** (in the
parent process) and snapshotted into a :class:`BootImage`; each point's
two-to-three system instantiations (clean bandwidth+latency run, and the
paired fault run) then *restore* the image instead of re-simulating the
boot protocol.  Under the process pool the images are shipped to the
workers through the pool initializer, so no worker ever cold-boots --
asserted via the :func:`~repro.obs.metrics.boot_image_counters` deltas
each point carries back.

The recovery-stall metric is a paired measurement: the faulted run
restores the *same* image as the clean run, so both start bit-identical
and the difference of their transfer times is exactly the stall the
LINK_FLAP added (down time + retrain + pipeline refill).

Shape checks (Figure 6/7-style goldens): along the link-width axis with
all other axes fixed, bandwidth must be monotone non-decreasing and
latency monotone non-increasing (wider links serialize strictly faster);
violations fail the run.
"""

from __future__ import annotations

import argparse
import json
import re
from dataclasses import asdict, dataclass, field
from itertools import product
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.parallel import PointPayload, SweepPoint, run_sweep
from ..util.calibration import DEFAULT_TIMING
from ..util.units import KiB
from .microbench import _RawWindow

__all__ = [
    "DseConfig",
    "DsePoint",
    "DseReport",
    "dse_point",
    "run_dse",
    "pareto_front",
    "shape_violations",
    "SMOKE_CONFIG",
    "main",
]

#: Link widths HT silicon supports (paper Section III).
LEGAL_WIDTHS = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class DseConfig:
    """A declarative sweep grid (cartesian product of the axes)."""

    topologies: Tuple[str, ...] = ("proto2",)
    link_width_bits: Tuple[int, ...] = (8, 16, 32)
    link_gbit_per_lane: Tuple[float, ...] = (1.6,)
    wc_buffers: Tuple[int, ...] = (8,)
    ring_bytes: Tuple[int, ...] = (4 * KiB,)
    #: Bulk-store transfer size for the bandwidth/recovery runs.
    bw_size: int = 256 * KiB
    #: Ping-pong payload and iteration count for the latency run.
    lat_size: int = 64
    lat_iters: int = 20
    #: Paired LINK_FLAP run (set False to skip the third instantiation).
    measure_recovery: bool = True
    flap_at_ns: float = 4_000.0
    flap_duration_ns: float = 3_000.0

    def specs(self) -> List[Tuple[str, int, float, int, int]]:
        for w in self.link_width_bits:
            if w not in LEGAL_WIDTHS:
                raise ValueError(f"link width {w} not in {LEGAL_WIDTHS}")
        return list(product(self.topologies, self.link_width_bits,
                            self.link_gbit_per_lane, self.wc_buffers,
                            self.ring_bytes))


#: The CI smoke grid: two axes, four points, one tiny topology.
SMOKE_CONFIG = DseConfig(
    topologies=("proto2",),
    link_width_bits=(8, 16),
    ring_bytes=(4 * KiB, 8 * KiB),
    bw_size=64 * KiB,
    lat_iters=5,
)


@dataclass
class DsePoint:
    """One evaluated configuration (picklable sweep payload)."""

    topology: str
    link_width_bits: int
    link_gbit_per_lane: float
    wc_buffers: int
    ring_bytes: int
    bandwidth_mbps: float      # bulk weak-ordered store stream
    latency_ns: float          # msglib half round trip
    recovery_stall_ns: float   # faulted minus clean transfer time
    restores: int              # image restores this point performed
    builds: int                # cold boots this point performed (0 = reuse)


def _topology_of(name: str):
    """Resolve a topology axis value to ``(topology, nodes_per_supernode)``.

    ``proto2`` is the two-board prototype signature; otherwise the name
    is a factory call like ``mesh2d(4,4)`` / ``torus3d(2,2,2)`` /
    ``chain(4)``.
    """
    from ..topology import chain, mesh2d, torus2d, torus3d

    if name == "proto2":
        return chain(2, node=1, left_port=2, right_port=2), 2
    m = re.fullmatch(r"(chain|mesh2d|torus2d|torus3d)\(([\d,\s]+)\)", name)
    if not m:
        raise ValueError(f"unknown topology spec {name!r}")
    factory = {"chain": chain, "mesh2d": mesh2d,
               "torus2d": torus2d, "torus3d": torus3d}[m.group(1)]
    args = tuple(int(x) for x in m.group(2).split(","))
    return factory(*args), 1


def _endpoint_ranks(cl) -> Tuple[int, int]:
    """The measurement pair: supernode 0 to the last supernode."""
    return cl.rank_of(0), cl.rank_of(cl.topology.num_supernodes - 1)


def _bulk_stream_ns(cl, size: int, flap_at_ns: Optional[float] = None,
                    flap_duration_ns: float = 0.0) -> float:
    """Stream ``size`` bytes between the endpoint ranks; returns the
    transfer time (optionally with a LINK_FLAP armed mid-transfer)."""
    sim = cl.sim
    a, b = _endpoint_ranks(cl)
    win = _RawWindow(cl, a, b)
    data = bytes(range(256)) * (size // 256)

    def xfer():
        yield from win.proc.store(win.tx_base, data)
        yield from win.proc.core.sfence()

    if flap_at_ns is not None:
        from ..faults import FaultInjector, FaultKind, FaultPlan

        plan = FaultPlan().add(flap_at_ns, FaultKind.LINK_FLAP, 0,
                               duration_ns=flap_duration_ns)
        FaultInjector(cl, plan).arm()
    t0 = sim.now
    done = sim.process(xfer())
    sim.run_until_event(done)
    sim.run()
    # Delivery oracle: the flap must stall, never drop, posted writes.
    off = win.tx_base - cl.ranks[b].base
    got = cl.ranks[b].chip.memctrl.memory.read(off, size)
    if got != data:
        raise AssertionError("DSE bulk stream corrupted")
    return sim.now - t0


def _msglib_latency_ns(cl, size: int, iters: int) -> float:
    """Message-library ping-pong half round trip (exercises the ring)."""
    sim = cl.sim
    a, b = _endpoint_ranks(cl)
    ea = cl.library(a).connect(b)
    eb = cl.library(b).connect(a)
    out: Dict[str, float] = {}

    def echo():
        for _ in range(iters):
            msg = yield from eb.recv()
            yield from eb.send(msg)

    def ping():
        payload = bytes(size)
        t0 = sim.now
        for _ in range(iters):
            yield from ea.send(payload)
            yield from ea.recv()
        out["elapsed"] = sim.now - t0

    sim.process(echo(), name="dse-echo")
    done = sim.process(ping(), name="dse-ping")
    sim.run_until_event(done)
    sim.run()
    return out["elapsed"] / (2 * iters)


def dse_point(topology: str, width: int, gbit: float, wc: int, ring: int,
              bw_size: int = 256 * KiB, lat_size: int = 64,
              lat_iters: int = 20, measure_recovery: bool = True,
              flap_at_ns: float = 4_000.0,
              flap_duration_ns: float = 3_000.0) -> PointPayload:
    """Evaluate one grid point: restore the signature's boot image
    (never cold-boot when the cache is seeded), run the clean
    bandwidth+latency pair, then the paired fault run."""
    from ..cluster.snapshot import image_for, restore_image
    from ..msglib import MsgConfig
    from ..obs.metrics import boot_image_counters

    ctr = boot_image_counters()
    b0, r0 = ctr.built, ctr.restored
    topo, nps = _topology_of(topology)
    timing = DEFAULT_TIMING.scaled(link_width_bits=width,
                                   link_gbit_per_lane=gbit,
                                   wc_buffers=wc)
    image = image_for(topo, nodes_per_supernode=nps, timing=timing,
                      msg_cfg=MsgConfig(ring_bytes=ring))

    clean = restore_image(image)
    bw_ns = _bulk_stream_ns(clean, bw_size)
    lat_ns = _msglib_latency_ns(clean, lat_size, lat_iters)

    stall = 0.0
    if measure_recovery:
        faulted = restore_image(image)
        faulted_ns = _bulk_stream_ns(faulted, bw_size,
                                     flap_at_ns=flap_at_ns,
                                     flap_duration_ns=flap_duration_ns)
        stall = max(0.0, faulted_ns - bw_ns)

    point = DsePoint(
        topology, width, gbit, wc, ring,
        round(bw_size / (bw_ns / 1e9) / 1e6, 1),
        round(lat_ns, 2), round(stall, 1),
        ctr.restored - r0, ctr.built - b0,
    )
    return PointPayload(point, {"boot_image.built": ctr.built - b0,
                                "boot_image.restored": ctr.restored - r0})


# ---------------------------------------------------------------------------
# Pareto front + golden shape checks
# ---------------------------------------------------------------------------

def _dominates(p: DsePoint, q: DsePoint) -> bool:
    """p dominates q: no worse on every objective, better on one."""
    ge = (p.bandwidth_mbps >= q.bandwidth_mbps
          and p.latency_ns <= q.latency_ns
          and p.recovery_stall_ns <= q.recovery_stall_ns)
    gt = (p.bandwidth_mbps > q.bandwidth_mbps
          or p.latency_ns < q.latency_ns
          or p.recovery_stall_ns < q.recovery_stall_ns)
    return ge and gt


def pareto_front(points: Sequence[DsePoint]) -> List[DsePoint]:
    """Non-dominated set over (max bandwidth, min latency, min stall)."""
    return [p for p in points
            if not any(_dominates(q, p) for q in points if q is not p)]


def shape_violations(points: Sequence[DsePoint],
                     tolerance: float = 0.01) -> List[str]:
    """Figure 6/7-style golden shape checks along the link-width axis.

    Groups points by every other axis and walks widths in order:
    bandwidth must not drop and latency must not rise by more than
    ``tolerance`` (relative) from one width to the next.
    """
    groups: Dict[Tuple, List[DsePoint]] = {}
    for p in points:
        groups.setdefault(
            (p.topology, p.link_gbit_per_lane, p.wc_buffers, p.ring_bytes),
            []).append(p)
    bad: List[str] = []
    for key, grp in groups.items():
        grp = sorted(grp, key=lambda p: p.link_width_bits)
        for prev, cur in zip(grp, grp[1:]):
            if cur.bandwidth_mbps < prev.bandwidth_mbps * (1 - tolerance):
                bad.append(
                    f"{key}: bandwidth fell {prev.bandwidth_mbps} -> "
                    f"{cur.bandwidth_mbps} MB/s going "
                    f"{prev.link_width_bits} -> {cur.link_width_bits} bits")
            if cur.latency_ns > prev.latency_ns * (1 + tolerance):
                bad.append(
                    f"{key}: latency rose {prev.latency_ns} -> "
                    f"{cur.latency_ns} ns going "
                    f"{prev.link_width_bits} -> {cur.link_width_bits} bits")
    return bad


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------

@dataclass
class DseReport:
    """Everything one DSE run produced."""

    points: List[DsePoint] = field(default_factory=list)
    pareto: List[DsePoint] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    #: Distinct boot signatures the grid spanned (== images built).
    signatures: int = 0
    #: Summed per-point boot-image counter deltas; ``built == 0`` proves
    #: every point restored a shared image instead of cold-booting.
    image_metrics: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "points": [asdict(p) for p in self.points],
            "pareto": [asdict(p) for p in self.pareto],
            "violations": list(self.violations),
            "signatures": self.signatures,
            "image_metrics": dict(self.image_metrics),
        }


def run_dse(config: DseConfig = DseConfig(),
            jobs: Optional[Any] = None,
            timeout: Optional[float] = None) -> DseReport:
    """Run the grid via :mod:`repro.sim.parallel` with shared boot images.

    All distinct signatures are booted and snapshotted in the parent
    first (one cold boot each); the images ride to the workers via the
    pool initializer and every point evaluation only restores.
    """
    from ..cluster.snapshot import image_for
    from ..msglib import MsgConfig
    from .sweep_points import _seed_images

    specs = config.specs()
    images = {}
    for topo_name, w, g, wc, ring in specs:
        topo, nps = _topology_of(topo_name)
        timing = DEFAULT_TIMING.scaled(link_width_bits=w,
                                       link_gbit_per_lane=g, wc_buffers=wc)
        img = image_for(topo, nodes_per_supernode=nps, timing=timing,
                        msg_cfg=MsgConfig(ring_bytes=ring))
        images[img.signature] = img

    kwargs = {"bw_size": config.bw_size, "lat_size": config.lat_size,
              "lat_iters": config.lat_iters,
              "measure_recovery": config.measure_recovery,
              "flap_at_ns": config.flap_at_ns,
              "flap_duration_ns": config.flap_duration_ns}
    order = [f"dse:{t}:w{w}:g{g}:wc{wc}:r{ring}"
             for t, w, g, wc, ring in specs]
    points = [SweepPoint(key=key, fn=dse_point, args=spec, kwargs=kwargs)
              for key, spec in zip(order, specs)]
    # Widest links stream fastest but flap recovery dominates; schedule
    # big topologies first so they do not straggle.
    points.sort(key=lambda p: _topology_of(p.args[0])[0].num_supernodes,
                reverse=True)
    report = run_sweep(points, jobs=jobs, timeout=timeout,
                       worker_state=list(images.values()),
                       worker_init=_seed_images)
    by_key = {r.key: r.unwrap() for r in report.results}
    out = [by_key[k] for k in order]
    built = sum(p.builds for p in out)
    restored = sum(p.restores for p in out)
    return DseReport(
        points=out,
        pareto=pareto_front(out),
        violations=shape_violations(out),
        signatures=len(images),
        image_metrics={"built": built, "restored": restored},
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="TCCluster design-space exploration")
    parser.add_argument("--jobs", default=None,
                        help="worker processes (default: TCC_PARALLEL)")
    parser.add_argument("--out", default=None,
                        help="write the full report as JSON to this path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny 2-axis grid + image-reuse assertion "
                             "(the CI configuration)")
    parser.add_argument("--widths", default=None,
                        help="comma-separated link widths (e.g. 8,16,32)")
    parser.add_argument("--topology", action="append", default=None,
                        help="topology spec (repeatable); e.g. proto2, "
                             "torus3d(2,2,2)")
    args = parser.parse_args(argv)

    config = SMOKE_CONFIG if args.smoke else DseConfig()
    overrides = {}
    if args.widths:
        overrides["link_width_bits"] = tuple(
            int(w) for w in args.widths.split(","))
    if args.topology:
        overrides["topologies"] = tuple(args.topology)
    if overrides:
        from dataclasses import replace

        config = replace(config, **overrides)

    report = run_dse(config, jobs=args.jobs)
    for p in report.points:
        print(f"  {p.topology:>14s} w={p.link_width_bits:<2d} "
              f"ring={p.ring_bytes:<6d} bw={p.bandwidth_mbps:>8.1f} MB/s "
              f"lat={p.latency_ns:>8.2f} ns stall={p.recovery_stall_ns:>8.1f} ns")
    print(f"pareto front: {len(report.pareto)}/{len(report.points)} points")
    print(f"boot images: {report.signatures} built once, "
          f"{report.image_metrics['restored']} restores, "
          f"{report.image_metrics['built']} cold boots inside points")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    if report.violations:
        for v in report.violations:
            print(f"SHAPE VIOLATION: {v}")
        return 1
    if args.smoke:
        if report.image_metrics["built"] != 0:
            print("SMOKE FAILURE: a point cold-booted instead of "
                  "restoring the shared image")
            return 1
        if report.image_metrics["restored"] < len(report.points):
            print("SMOKE FAILURE: fewer restores than points")
            return 1
        print("smoke OK: every point restored a shared boot image")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
