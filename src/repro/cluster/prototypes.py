"""The paper's two proof-of-concept configurations (Section V).

* :func:`build_single_board_prototype` -- "The first consists of a single
  Tyan S2912E mainboard ... we configured one of the HT links between the
  processors as a TCCluster link and the other as a regular coherent HT
  link.  The coherent link allowed us to access the Node1 from BIOS
  firmware ... and to check whether our approach actually works and
  whether we can successfully transfer data over the TCCluster link."

  Address-map construction for the loopback: node0 maps an *alias window*
  [512M, 768M) as MMIO out of its TCC port; node1 maps the same window as
  part of its local DRAM (a second 256 MiB behind its real slice).  A
  store from node0 into the alias thus loops over the TCC link and lands
  in node1's memory, where node1's cores (or the coherent fabric) can
  verify it.

* The second prototype (two boards + HTX cable) is
  :meth:`repro.core.TCClusterSystem.two_board_prototype`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..firmware import Board, BoardLayout, BoardPlan, TCClusterFirmware
from ..opteron import OpteronChip, wire_link
from ..sim import Barrier, Simulator
from ..topology.address_assignment import DramDirective, MmioDirective, NodeMapPlan
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import MiB

__all__ = ["SingleBoardPrototype", "build_single_board_prototype",
           "TYAN_S2912E_DUAL"]

M256 = 256 * MiB

#: The Tyan board with *both* inter-socket links wired: port 3 stays
#: coherent, port 2 becomes the TCC loopback.
TYAN_S2912E_DUAL = BoardLayout(
    num_chips=2,
    coherent_edges=((0, 3, 1, 3), (0, 2, 1, 2)),
    sb_attach=(0, 1),
)


@dataclass
class SingleBoardPrototype:
    """The booted single-board configuration."""

    sim: Simulator
    board: Board
    firmware: TCClusterFirmware
    #: the TCC loopback window as node0 sees it (MMIO alias)
    alias_base: int
    alias_limit: int
    #: same cells as node1 sees them (its local DRAM)
    ready: bool = False

    @property
    def node0(self) -> OpteronChip:
        return self.board.chips[0]

    @property
    def node1(self) -> OpteronChip:
        return self.board.chips[1]

    @property
    def tcc_link(self):
        return self.board.chips[0].ports[2].link

    @property
    def coherent_link(self):
        return self.board.chips[0].ports[3].link

    def boot(self) -> "SingleBoardPrototype":
        if self.ready:
            return self
        proc = self.sim.process(self.firmware.boot())
        self.sim.run_until_event(proc)
        self.ready = True
        return self


def build_single_board_prototype(
    sim: Optional[Simulator] = None,
    timing: TimingModel = DEFAULT_TIMING,
) -> SingleBoardPrototype:
    """Construct (unbooted) the paper's first prototype.

    Global map: node0 DRAM [0, 256M); node1 DRAM [256M, 768M) backed by
    512 MiB of physical memory; node0 additionally maps [512M, 768M) as
    the TCC alias window exiting port 2.
    """
    sim = sim or Simulator()
    board = Board(sim, "tyan", layout=TYAN_S2912E_DUAL, memory_bytes=M256,
                  timing=timing)
    # Node1 carries the extra 256 MiB the alias window lands in.
    board.chips[1].memory.size = 2 * M256  # grown before any allocation
    alias_base, alias_limit = 2 * M256, 3 * M256

    node0_plan = NodeMapPlan(
        supernode=0, node=0,
        dram=[DramDirective(0, M256, 0), DramDirective(M256, 2 * M256, 1)],
        mmio=[MmioDirective(alias_base, alias_limit, exit_node=0, exit_port=2)],
    )
    node1_plan = NodeMapPlan(
        supernode=0, node=1,
        dram=[DramDirective(0, M256, 0), DramDirective(M256, 3 * M256, 1)],
        mmio=[],
    )
    plan = BoardPlan(
        rank=0,
        node_plans=[node0_plan, node1_plan],
        # Both ends of the loopback link live on this board.
        tcc_ports=[(0, 2), (1, 2)],
        link_width=timing.link_width_bits,
        gbit_per_lane=timing.link_gbit_per_lane,
    )
    rail = Barrier(sim, parties=1, name="sb-rail")
    fw = TCClusterFirmware(board, plan, rail)
    return SingleBoardPrototype(sim, board, fw, alias_base, alias_limit)
