"""Shared helpers for the benchmark suite: result persistence."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a reproduced table/figure to benchmarks/results/ and echo
    it (visible with pytest -s; always available in the file)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
