"""F-future -- link-speed scaling + calibration-knob sensitivity.

The paper's outlook: removing the cable's 1.6 Gbit/s/lane signal-
integrity limit ("Future implementations ... will support higher
frequencies and increased performance") should scale sustained bandwidth
with the link rate and shave serialization off the latency.

The posted-buffer sweep validates DESIGN.md's declared calibration knob:
the Figure 6 peak *position* tracks the buffering, while the peak height
(WC issue rate) and the sustained tail (wire limit) stay put.
"""

import pytest

from _common import write_result
from repro.bench import (
    run_link_speed_sweep,
    run_posted_buffer_sweep,
    table,
)
from repro.util.units import fmt_bytes


@pytest.fixture(scope="module")
def speed_points():
    return run_link_speed_sweep()


@pytest.fixture(scope="module")
def buffer_points():
    return run_posted_buffer_sweep(buffer_packets=(512, 2048, 4096))


def test_link_speed_scaling(benchmark, speed_points):
    points = speed_points
    assert [p.gbit_per_lane for p in points] == [1.6, 3.6, 5.2]
    # Sustained bandwidth improves once the cable limit is gone, then
    # saturates: with 64-byte posted writes, the northbridge command rate
    # (~20 ns/packet, i.e. ~3.2 GB/s) becomes the bottleneck -- consistent
    # with measured HTX write bandwidth on real Opterons.
    assert points[1].sustained_mbps > 1.1 * points[0].sustained_mbps
    assert points[2].sustained_mbps == pytest.approx(
        points[1].sustained_mbps, rel=0.02
    ), "beyond ~3.6G the wire is no longer the limit"
    # Latency improves by the shrunk serialization share only; the
    # memory/polling path floors it.
    assert points[2].latency_ns < points[0].latency_ns - 20
    assert points[2].latency_ns > points[0].latency_ns / 3.25
    # 64 B message rate is issue-limited, not wire-limited: barely moves.
    assert points[2].small_mbps == pytest.approx(points[0].small_mbps, rel=0.15)

    rows = [(p.label, p.gbit_per_lane, round(p.sustained_mbps),
             round(p.small_mbps), round(p.latency_ns, 1)) for p in points]
    txt = table(
        ["configuration", "Gbit/s/lane", "sustained MB/s", "64B MB/s",
         "64B HRT ns"],
        rows, title="Future link speeds (paper Section VI outlook)")
    txt += ("\nnote: past ~3.6 Gbit/s/lane the northbridge command rate "
            "(~20 ns per 64 B posted write) caps sustained bandwidth.")
    write_result("futures_link_speed", txt)

    def kernel():
        return run_link_speed_sweep(rates=(("HT800", 1.6),))

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].gbit_per_lane == 1.6


def test_posted_buffer_knob(benchmark, buffer_points):
    points = buffer_points
    # Peak position tracks the buffer capacity...
    positions = [p.peak_at_bytes for p in points]
    assert positions == sorted(positions)
    assert positions[0] < positions[-1]
    # ...peak height is the WC issue rate regardless...
    for p in points:
        assert p.peak_mbps == pytest.approx(5333, rel=0.05)
    # ...and the sustained tail is wire-limited regardless.
    for p in points:
        assert p.sustained_mbps == pytest.approx(points[0].sustained_mbps,
                                                 rel=0.12)

    rows = [(p.buffer_packets, fmt_bytes(p.buffer_bytes),
             fmt_bytes(p.peak_at_bytes), round(p.peak_mbps),
             round(p.sustained_mbps)) for p in points]
    txt = table(
        ["buffer pkts", "buffer", "peak at", "peak MB/s", "sustained MB/s"],
        rows, title="Posted-buffer calibration-knob sensitivity")
    write_result("futures_buffer_knob", txt)

    def kernel():
        return run_posted_buffer_sweep(buffer_packets=(512,))

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].buffer_packets == 512
