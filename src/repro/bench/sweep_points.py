"""Module-level, picklable sweep-point functions for the parallel runner.

Each function here builds a **fresh** deterministic system, runs exactly
one evaluation point, and returns a picklable dataclass -- the unit of
work :mod:`repro.sim.parallel` fans out across worker processes.  The
serial sweep drivers in :mod:`repro.bench.microbench` et al. stay the
reference implementations; the ``*_parallel`` wrappers below produce the
same points in the same order, just computed out-of-process.

Every point is independent by construction (no shared virtual clock, no
shared system), which is what makes the fan-out safe: a fresh
two-board prototype booted from cold reaches the same drained quiescent
state the serial sweep restores between points, so per-point virtual
times are identical either way (asserted by
``tests/test_parallel_sweep.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..sim.parallel import PointPayload, SweepPoint, run_sweep
from ..util.units import CACHELINE, KiB
from .coherence_bench import CoherenceScalePoint, run_coherence_scaling
from .microbench import (
    BandwidthPoint,
    HopPoint,
    _RawWindow,
    _echo,
    _pingpong,
    make_prototype,
    prototype_image,
    run_bandwidth_sweep,
)

__all__ = [
    "fig6_point",
    "multihop_point",
    "coherence_point",
    "torus_point",
    "TorusPoint",
    "collective_point",
    "nic_collective_point",
    "CollectivePoint",
    "recovery_point",
    "run_bandwidth_sweep_parallel",
    "run_multihop_parallel",
    "run_coherence_scaling_parallel",
    "run_torus_sweep_parallel",
    "run_collectives_sweep_parallel",
    "run_recovery_sweep_parallel",
]

#: Socket bindings per extra-hop count, as in ``run_multihop``.
_HOP_BINDINGS: Tuple[Tuple[int, int], ...] = ((1, 1), (0, 1), (0, 0))


def _maybe_metrics(sim, with_metrics: bool):
    if not with_metrics:
        return None
    from ..obs.metrics import enable_metrics

    return enable_metrics(sim)


def _seed_images(images) -> None:
    """Worker initializer: install parent-built boot images in the
    worker-local cache so same-signature points restore instead of
    cold-booting (see :func:`repro.cluster.snapshot.seed_image_cache`)."""
    from ..cluster.snapshot import seed_image_cache

    seed_image_cache(images)


def fig6_point(size: int, mode: str, with_metrics: bool = False,
               use_image: bool = False) -> Any:
    """One Figure 6 bandwidth point on a fresh booted prototype.

    With ``use_image=True`` the prototype is restored from the cached
    boot image for its signature (bit-exact vs a cold boot) instead of
    re-simulating the boot protocol.
    """
    sys_ = make_prototype(image=prototype_image() if use_image else None)
    reg = _maybe_metrics(sys_.sim, with_metrics)
    pts = run_bandwidth_sweep(sizes=(size,), modes=(mode,), system=sys_)
    point = pts[0]
    if reg is not None:
        return PointPayload(point, reg.snapshot(sys_.sim.now))
    return point


def multihop_point(extra_hops: int, iters: int = 40, size: int = 64,
                   with_metrics: bool = False,
                   use_image: bool = False) -> Any:
    """One multi-hop latency point (fresh prototype, numactl binding)."""
    chip_a, chip_b = _HOP_BINDINGS[extra_hops]
    sys_ = make_prototype(image=prototype_image() if use_image else None)
    reg = _maybe_metrics(sys_.sim, with_metrics)
    cluster = sys_.cluster
    a = cluster.rank_of(0, chip_a)
    b = cluster.rank_of(1, chip_b)
    win_a = _RawWindow(cluster, a, b)
    win_b = _RawWindow(cluster, b, a)
    out: Dict = {}
    cluster.sim.process(_echo(win_b, size, iters))
    done = cluster.sim.process(_pingpong(win_a, win_b, size, iters, out))
    cluster.sim.run_until_event(done)
    point = HopPoint(extra_hops, out["elapsed"] / (2 * iters))
    if reg is not None:
        return PointPayload(point, reg.snapshot(sys_.sim.now))
    return point


def coherence_point(protocol: str, nodes: int, ops_per_node: int = 60,
                    **kwargs) -> CoherenceScalePoint:
    """One coherence-scaling point (its own Simulator per call)."""
    return run_coherence_scaling(
        node_counts=(nodes,), protocols=(protocol,),
        ops_per_node=ops_per_node, **kwargs,
    )[0]


# ---------------------------------------------------------------------------
# Torus-scale points (64..512 supernodes on the folded interval maps)
# ---------------------------------------------------------------------------

@dataclass
class TorusPoint:
    """One torus-scale evaluation point (picklable sweep payload)."""

    shape: Tuple[int, int, int]
    workload: str          # "corner" | "halo" | "chaos"
    size: int              # bytes per transfer
    pairs: int             # concurrent transfers
    mbps: float            # aggregate goodput over the transfer window
    boot_ns: float         # virtual time spent booting
    transfer_ns: float     # virtual time of the transfer window
    events: int            # calendar entries executed by the transfer


def torus_point(shape: Tuple[int, int, int], size: int = 256 * KiB,
                workload: str = "corner",
                use_image: bool = False) -> TorusPoint:
    """One fig6-style bulk transfer on a fresh booted 3D-torus cluster.

    * ``corner`` -- a single stream between antipodal corners (worst-case
      hop count through the folded interval maps);
    * ``halo``   -- every supernode streams to its +x neighbour at once
      (each x-link carries exactly one transfer: the scale-out pattern);
    * ``chaos``  -- the halo workload with one link killed mid-transfer,
      exercising route-around at scale; delivery is still verified.
    """
    from ..core.api import TCClusterSystem
    from ..topology import torus3d

    if use_image:
        from ..cluster.snapshot import image_for

        sys_ = TCClusterSystem.from_image(image_for(torus3d(*shape)))
    else:
        sys_ = TCClusterSystem(torus3d(*shape))
        sys_.boot()
    cl = sys_.cluster
    sim = sys_.sim
    boot_ns = sim.now
    topo = cl.topology
    n = topo.num_supernodes
    if workload == "corner":
        pairs = [(cl.rank_of(0), cl.rank_of(n - 1))]
    elif workload in ("halo", "chaos"):
        pairs = []
        for s in range(n):
            c = list(topo.coords_of(s))
            c[0] = (c[0] + 1) % shape[0]
            pairs.append((cl.rank_of(s), cl.rank_of(topo.supernode_at(tuple(c)))))
    else:
        raise ValueError(f"unknown torus workload {workload!r}")
    wins = [_RawWindow(cl, a, b) for a, b in pairs]
    data = bytes(range(256)) * (size // 256)

    def xfer(win):
        yield from win.proc.store(win.tx_base, data)
        yield from win.proc.core.sfence()

    if workload == "chaos":
        from ..faults import FaultInjector, FaultKind, FaultPlan

        plan = FaultPlan().add(10_000.0, FaultKind.LINK_KILL, 0)
        FaultInjector(cl, plan).arm()
    e0 = sim.event_count
    t0 = sim.now
    procs = [sim.process(xfer(w)) for w in wins]
    sim.run_until_event(sim.all_of(procs))
    sim.run()
    elapsed = sim.now - t0
    # Delivery check: every destination window holds the streamed bytes
    # (also the chaos oracle -- route-around must not eat posted writes).
    for (a, b), win in zip(pairs, wins):
        off = win.tx_base - cl.ranks[b].base
        got = cl.ranks[b].chip.memctrl.memory.read(off, size)
        if got != data:
            raise AssertionError(f"torus transfer rank {a}->{b} corrupted")
    total = size * len(pairs)
    return TorusPoint(tuple(shape), workload, size, len(pairs),
                      round(total / (elapsed / 1e9) / 1e6, 1),
                      round(boot_ns, 1), round(elapsed, 1),
                      sim.event_count - e0)


# ---------------------------------------------------------------------------
# Collective-algorithm points (torus-embedded MPI vs the NIC baselines)
# ---------------------------------------------------------------------------

@dataclass
class CollectivePoint:
    """One collective-operation evaluation point (picklable payload)."""

    op: str                # "allreduce" | "bcast" | "alltoall"
    algorithm: str         # forced algorithm (see middleware.collectives)
    fabric: str            # "torus2d(8,8)" | baseline name ("ConnectX IB")
    nranks: int
    size: int              # payload bytes per rank (alltoall: per block)
    elapsed_ns: float      # virtual time of the collective
    mbps: float            # size / elapsed -- the effective per-rank rate
    events: int            # calendar entries executed by the collective
    slot_windows: int      # flow-fidelity spans engaged (0 = per-packet)
    slot_slots: int        # ring slots carried by those spans
    ring_single_hop: bool  # embedding proof: every ring hop crosses <=1 link


def _collective_drivers(op: str, comms, size: int):
    """Per-rank generator drivers plus a correctness check.

    Inputs are deterministic per rank; the check asserts the simulated
    result against the NumPy oracle (``allclose`` -- tree and ring
    combine in different float orders) and, for allreduce, bitwise
    equality *across* ranks (every rank must hold the same bytes).
    """
    import numpy as np

    n = len(comms)
    results: Dict[int, Any] = {}
    if op == "allreduce":
        nel = max(1, size // 8)
        inputs = [np.arange(nel, dtype=np.float64) * 0.5 + r
                  for r in range(n)]

        def driver(c, algorithm):
            results[c.rank] = yield from c.allreduce(
                inputs[c.rank], op="sum", algorithm=algorithm)

        def check():
            oracle = np.sum(inputs, axis=0)
            assert np.allclose(results[0], oracle)
            ref = results[0].tobytes()
            assert all(results[r].tobytes() == ref for r in range(n))
    elif op == "bcast":
        payload = bytes(range(256)) * (max(size, 256) // 256)
        payload = payload[:size]

        def driver(c, algorithm):
            data = payload if c.rank == 0 else None
            results[c.rank] = yield from c.bcast(data, root=0,
                                                 algorithm=algorithm)

        def check():
            assert all(results[r] == payload for r in range(n))
    elif op == "alltoall":

        def block(src, dst):
            seed = (src * 31 + dst * 7) & 0xFF
            pattern = bytes((seed + i) & 0xFF for i in range(256))
            return (pattern * (size // 256 + 1))[:size]

        def driver(c, algorithm):
            blocks = [block(c.rank, d) for d in range(n)]
            results[c.rank] = yield from c.alltoall(blocks,
                                                    algorithm=algorithm)

        def check():
            for dst in range(n):
                for src in range(n):
                    assert results[dst][src] == block(src, dst)
    else:
        raise ValueError(f"unknown collective op {op!r}")
    return driver, check


def _drive_collective(sim, comms, op: str, algorithm: str, size: int):
    """Run one collective across all ranks; returns (elapsed, events)."""
    driver, check = _collective_drivers(op, comms, size)
    t0 = sim.now
    e0 = sim.event_count
    procs = [sim.process(driver(c, algorithm),
                         name=f"{op}[{c.rank}]") for c in comms]
    sim.run_until_event(sim.all_of(procs))
    sim.run()
    check()
    return sim.now - t0, sim.event_count - e0


def _collective_cfg(size: int):
    """The message-library config a collective point of ``size`` runs
    with (shared by the point function and the parallel image builder,
    so their boot signatures agree)."""
    from ..msglib import MsgConfig

    return MsgConfig(ring_bytes=64 * KiB, eager_max=24576,
                     fb_interval_slots=128,
                     heap_bytes=max(512 * KiB, 2 * size))


def collective_point(op: str, algorithm: str, size: int,
                     shape: Tuple[int, int] = (8, 8),
                     flow_fidelity: bool = True,
                     use_image: bool = False) -> CollectivePoint:
    """One forced-algorithm collective on a fresh booted 2D-torus cluster.

    ``shape=(8, 8)`` is the 64-rank acceptance configuration: one rank
    per supernode, ring collectives embedded on the Hamiltonian
    supernode ring (single-hop by construction on even grids).  The
    message-library window is widened so bandwidth-bound chunks stay on
    the eager ring path, where the flow-fidelity layer coalesces them
    into slot spans (reported via ``slot_windows``/``slot_slots``).
    """
    from ..core.api import TCClusterSystem
    from ..middleware import Communicator
    from ..obs.metrics import flow_counters
    from ..topology import torus2d

    cfg = _collective_cfg(size)
    if use_image:
        from ..cluster.snapshot import image_for

        sys_ = TCClusterSystem.from_image(
            image_for(torus2d(*shape), msg_cfg=cfg))
    else:
        sys_ = TCClusterSystem(torus2d(*shape), msg_cfg=cfg)
        sys_.boot()
    sim = sys_.sim
    sim.features.flow_fidelity = flow_fidelity
    cl = sys_.cluster
    comms = [Communicator.for_cluster(cl, r) for r in range(cl.nranks)]
    elapsed, events = _drive_collective(sim, comms, op, algorithm, size)
    fl = flow_counters(sim)
    return CollectivePoint(
        op, algorithm, f"torus2d({shape[0]},{shape[1]})", cl.nranks, size,
        round(elapsed, 2), round(size / (elapsed / 1e9) / 1e6, 1),
        events, fl.slot_windows, fl.slot_slots,
        comms[0].ring_single_hop)


def nic_collective_point(op: str, algorithm: str, size: int,
                         nranks: int = 64,
                         baseline: str = "connectx") -> CollectivePoint:
    """The same forced-algorithm collective over a NIC full-mesh fabric
    (idealized non-blocking switch -- contention-free, which only favours
    the baseline; see :mod:`repro.baselines.fabric`)."""
    from ..baselines import CONNECTX_IB, TEN_GBE, NicFabric
    from ..middleware import Communicator
    from ..sim import Simulator

    params = {"connectx": CONNECTX_IB, "10gbe": TEN_GBE}[baseline]
    sim = Simulator()
    fabric = NicFabric(sim, nranks, params)
    comms = [Communicator(fabric.comm_provider(r)) for r in range(nranks)]
    elapsed, events = _drive_collective(sim, comms, op, algorithm, size)
    return CollectivePoint(
        op, algorithm, params.name, nranks, size,
        round(elapsed, 2), round(size / (elapsed / 1e9) / 1e6, 1),
        events, 0, 0, False)


# ---------------------------------------------------------------------------
# Parallel sweep wrappers (serial-order outputs, size-descending schedule)
# ---------------------------------------------------------------------------

def _run_points(points: List[SweepPoint], order: List[str],
                jobs: Optional[Any], timeout: Optional[float],
                images: Optional[List[Any]] = None) -> Dict[str, Any]:
    worker_state = images if images else None
    worker_init = _seed_images if images else None
    report = run_sweep(points, jobs=jobs, timeout=timeout,
                       worker_state=worker_state, worker_init=worker_init)
    by_key = {r.key: r.unwrap() for r in report.results}
    return {k: by_key[k] for k in order}


def run_bandwidth_sweep_parallel(
    sizes: Sequence[int],
    modes: Sequence[str] = ("weak", "strict"),
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    with_metrics: bool = False,
    use_image: bool = False,
) -> List[BandwidthPoint]:
    """Figure 6 sweep, one fresh system per point, pool fan-out.

    Output order matches ``run_bandwidth_sweep`` (mode-major); the
    *schedule* submits the largest transfers first so the long points do
    not straggle at the tail of the pool.  With ``use_image=True`` the
    prototype is booted **once** in the parent, snapshotted, and every
    point restores the image (shipped to workers via the pool
    initializer) instead of re-simulating the boot protocol.
    """
    for s in sizes:
        if s % CACHELINE:
            raise ValueError(f"size {s} not line aligned")
    order = [f"fig6:{mode}:{size}" for mode in modes for size in sizes]
    points = [
        SweepPoint(
            key=f"fig6:{mode}:{size}",
            fn=fig6_point,
            args=(size, mode),
            kwargs={"with_metrics": with_metrics, "use_image": use_image},
        )
        for mode in modes
        for size in sizes
    ]
    points.sort(key=lambda p: p.args[0], reverse=True)
    images = [prototype_image()] if use_image else None
    by_key = _run_points(points, order, jobs, timeout, images=images)
    return [by_key[k] for k in order]


def run_multihop_parallel(
    iters: int = 40,
    size: int = 64,
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    use_image: bool = False,
) -> List[HopPoint]:
    """Multi-hop sweep (0/1/2 extra hops), pool fan-out."""
    order = [f"hops:{extra}" for extra in range(len(_HOP_BINDINGS))]
    points = [
        SweepPoint(key=f"hops:{extra}", fn=multihop_point,
                   args=(extra,),
                   kwargs={"iters": iters, "size": size,
                           "use_image": use_image})
        for extra in range(len(_HOP_BINDINGS))
    ]
    images = [prototype_image()] if use_image else None
    by_key = _run_points(points, order, jobs, timeout, images=images)
    return [by_key[k] for k in order]


def run_torus_sweep_parallel(
    shapes: Sequence[Tuple[int, int, int]] = ((4, 4, 4),),
    workloads: Sequence[str] = ("corner", "halo"),
    size: int = 256 * KiB,
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    use_image: bool = False,
) -> List[TorusPoint]:
    """Torus-scale sweep (64..512 supernodes), pool fan-out.

    Each point boots its own cluster from cold, so points are
    independent and the process pool fans them out safely; the largest
    shapes are scheduled first so they do not straggle at the tail.
    With ``use_image=True`` each distinct shape is booted once in the
    parent and every point restores the matching snapshot.
    """
    order = [f"torus:{x}x{y}x{z}:{w}" for (x, y, z) in shapes
             for w in workloads]
    points = [
        SweepPoint(key=f"torus:{x}x{y}x{z}:{w}", fn=torus_point,
                   args=((x, y, z),),
                   kwargs={"size": size, "workload": w,
                           "use_image": use_image})
        for (x, y, z) in shapes
        for w in workloads
    ]
    points.sort(key=lambda p: p.args[0][0] * p.args[0][1] * p.args[0][2],
                reverse=True)
    images = None
    if use_image:
        from ..cluster.snapshot import image_for
        from ..topology import torus3d

        images = [image_for(torus3d(*shape)) for shape in shapes]
    by_key = _run_points(points, order, jobs, timeout, images=images)
    return [by_key[k] for k in order]


def run_collectives_sweep_parallel(
    specs: Sequence[Tuple[str, str, int]],
    shape: Tuple[int, int] = (8, 8),
    flow_fidelity: bool = True,
    baselines: Sequence[str] = (),
    nic_nranks: int = 64,
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    use_image: bool = False,
) -> List[CollectivePoint]:
    """Collective sweep, one fresh cluster per point, pool fan-out.

    ``specs`` is a list of ``(op, algorithm, size)`` triples run on the
    torus cluster; each entry of ``baselines`` ("connectx" / "10gbe")
    additionally runs every spec over that NIC fabric.  Output order:
    all torus points in spec order, then each baseline's points.
    With ``use_image=True`` the torus cluster is booted once per
    distinct message-library config (sizes above 256 KiB widen the
    heap, changing the boot signature) and restored per point.
    """
    order = [f"coll:{op}:{algo}:{size}" for op, algo, size in specs]
    points = [
        SweepPoint(
            key=f"coll:{op}:{algo}:{size}",
            fn=collective_point,
            args=(op, algo, size),
            kwargs={"shape": tuple(shape), "flow_fidelity": flow_fidelity,
                    "use_image": use_image},
        )
        for op, algo, size in specs
    ]
    for b in baselines:
        order.extend(f"coll:{b}:{op}:{algo}:{size}"
                     for op, algo, size in specs)
        points.extend(
            SweepPoint(
                key=f"coll:{b}:{op}:{algo}:{size}",
                fn=nic_collective_point,
                args=(op, algo, size),
                kwargs={"nranks": nic_nranks, "baseline": b},
            )
            for op, algo, size in specs
        )
    points.sort(key=lambda p: p.args[2], reverse=True)
    images = None
    if use_image:
        from ..cluster.snapshot import image_for
        from ..topology import torus2d

        seen = {}
        for _op, _algo, sz in specs:
            cfg = _collective_cfg(sz)
            seen.setdefault(cfg, torus2d(*shape))
        images = [image_for(topo, msg_cfg=cfg)
                  for cfg, topo in seen.items()]
    by_key = _run_points(points, order, jobs, timeout, images=images)
    return [by_key[k] for k in order]


def recovery_point(**kwargs):
    """One end-to-end recovery scenario (fresh booted cluster per call;
    see :func:`repro.bench.recovery.run_recovery_scenario`)."""
    from .recovery import run_recovery_scenario

    return run_recovery_scenario(**kwargs)


def run_recovery_sweep_parallel(
    specs: Sequence[Tuple[str, dict]],
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
) -> List[Any]:
    """Recovery-figure sweep, one fresh cluster per point, pool fan-out.

    ``specs`` is ``[(key, scenario_kwargs), ...]`` (see
    ``repro.bench.recovery.RECOVERY_FIGURE_SPECS``); output order matches
    the spec order.  The longest outages (biggest ``duration_ns``) are
    scheduled first so they do not straggle at the tail of the pool.
    """
    order = [key for key, _ in specs]
    points = [
        SweepPoint(key=key, fn=recovery_point, args=(), kwargs=dict(kw))
        for key, kw in specs
    ]
    points.sort(key=lambda p: p.kwargs.get("duration_ns", 0.0),
                reverse=True)
    by_key = _run_points(points, order, jobs, timeout)
    return [by_key[k] for k in order]


def run_coherence_scaling_parallel(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    protocols: Sequence[str] = ("broadcast", "directory"),
    ops_per_node: int = 60,
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    timing=None,
    **kwargs,
) -> List[CoherenceScalePoint]:
    """Coherence scaling sweep, pool fan-out, serial output order.

    Only the DES-simulated protocols fan out; the analytical TCCluster
    equivalents are appended locally, exactly as the serial sweep does.
    """
    from ..util.calibration import DEFAULT_TIMING
    from .coherence_bench import tcc_op_latency_ns

    t = timing or DEFAULT_TIMING
    if timing is not None:
        kwargs["timing"] = timing
    order = [f"coh:{p}:{n}" for p in protocols for n in node_counts]
    points = [
        SweepPoint(
            key=f"coh:{protocol}:{n}",
            fn=coherence_point,
            args=(protocol, n),
            kwargs={"ops_per_node": ops_per_node, **kwargs},
        )
        for protocol in protocols
        for n in node_counts
    ]
    # Biggest node counts dominate runtime; schedule them first.
    points.sort(key=lambda p: p.args[1], reverse=True)
    by_key = _run_points(points, order, jobs, timeout)
    out = [by_key[k] for k in order]
    for n in node_counts:
        lat = tcc_op_latency_ns(n, t)
        out.append(
            CoherenceScalePoint(n, "tccluster", n * ops_per_node, lat, 0.0,
                                lat * ops_per_node)
        )
    return out
