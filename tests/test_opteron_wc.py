"""Tests for write-combining buffers, including the exactly-once property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opteron.wc import FlushOp, WriteCombiner
from repro.util.units import CACHELINE


def test_full_line_flushes_as_single_op():
    wc = WriteCombiner()
    ops = []
    for i in range(8):
        ops.extend(wc.store(0x1000 + 8 * i, bytes([i]) * 8))
    assert len(ops) == 1
    assert ops[0].addr == 0x1000
    assert len(ops[0].data) == CACHELINE
    assert ops[0].data == b"".join(bytes([i]) * 8 for i in range(8))
    assert wc.full_flushes == 1
    assert len(wc) == 0


def test_single_64b_store_flushes_immediately():
    wc = WriteCombiner()
    ops = wc.store(0x2000, b"\x5A" * 64)
    assert len(ops) == 1 and ops[0].data == b"\x5A" * 64


def test_partial_line_stays_open():
    wc = WriteCombiner()
    ops = wc.store(0x1000, b"\x01" * 8)
    assert ops == []
    assert len(wc) == 1
    assert wc.open_lines == (0x1000,)


def test_flush_drains_partial_as_dword_runs():
    wc = WriteCombiner()
    wc.store(0x1000, b"\x01" * 8)      # bytes 0..8
    wc.store(0x1020, b"\x02" * 4)      # bytes 32..36
    ops = wc.flush()
    assert [op.addr for op in ops] == [0x1000, 0x1020]
    assert [len(op.data) for op in ops] == [8, 4]
    assert len(wc) == 0


def test_ninth_line_evicts_oldest():
    wc = WriteCombiner(num_buffers=8)
    for i in range(8):
        wc.store(0x1000 + i * 64, b"\xAA" * 8)
    ops = wc.store(0x1000 + 8 * 64, b"\xBB" * 8)
    # Oldest buffer (line 0x1000) drained.
    assert len(ops) == 1
    assert ops[0].addr == 0x1000
    assert wc.evictions == 1
    assert 0x1000 not in wc.open_lines
    assert 0x1000 + 8 * 64 in wc.open_lines


def test_store_spanning_lines_splits():
    wc = WriteCombiner()
    ops = wc.store(0x1000 + 32, b"\xCC" * 64)  # covers half of two lines
    assert ops == []
    assert set(wc.open_lines) == {0x1000, 0x1040}


def test_cross_line_full_fill():
    wc = WriteCombiner()
    wc.store(0x1000, b"\x11" * 32)
    ops = wc.store(0x1020, b"\x22" * 32)  # completes line 0x1000
    assert len(ops) == 1
    assert ops[0].addr == 0x1000
    assert ops[0].data == b"\x11" * 32 + b"\x22" * 32


def test_flushop_validates_alignment():
    with pytest.raises(ValueError):
        FlushOp(0x1001, b"\x00" * 4)
    with pytest.raises(ValueError):
        FlushOp(0x1000, b"\x00" * 3)


def test_empty_store_rejected():
    wc = WriteCombiner()
    with pytest.raises(ValueError):
        wc.store(0x1000, b"")


@given(
    stores=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),   # 8-byte slot index
            st.binary(min_size=8, max_size=8),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=100)
def test_exactly_once_delivery_property(stores):
    """Every byte stored comes out in flush ops exactly once (last write
    wins per address), and nothing else comes out."""
    wc = WriteCombiner()
    ref = {}
    ops = []
    for slot, data in stores:
        addr = 0x10000 + slot * 8
        ops.extend(wc.store(addr, data))
        for i, b in enumerate(data):
            ref[addr + i] = b
    ops.extend(wc.flush())
    out = {}
    for op in ops:
        for i, b in enumerate(op.data):
            a = op.addr + i
            # dword-snapped padding may carry zeros for never-written bytes
            if a in ref or b != 0:
                out[a] = b
    for a, b in ref.items():
        assert out.get(a) == b, f"byte at {a:#x} lost or corrupted"
    # No spurious non-zero bytes outside what was stored.
    for a, b in out.items():
        if a not in ref:
            assert b == 0


@given(
    n_lines=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=50)
def test_fifo_eviction_order_property(n_lines, seed):
    """Buffers evict in allocation order (the weak-ordering guarantee the
    ring protocol relies on when lines are written sequentially)."""
    wc = WriteCombiner(num_buffers=8)
    drained = []
    for i in range(n_lines):
        ops = wc.store(0x1000 + i * 64, b"\x01" * 8)  # partial lines only
        drained.extend(op.addr for op in ops)
    drained.extend(op.addr & ~63 for op in wc.flush())
    # Dedupe consecutive ops of the same line.
    lines = []
    for a in drained:
        if not lines or lines[-1] != a:
            lines.append(a)
    assert lines == sorted(lines)
