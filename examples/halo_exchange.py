#!/usr/bin/env python3
"""2D Jacobi heat diffusion with halo exchange on a TCCluster blade mesh.

The workload the paper's introduction motivates: a classic HPC stencil
kernel, decomposed over a 2x2 mesh of single-processor blades (Section
IV.F's backplane vision), communicating boundary rows/columns through the
mini-MPI layer each iteration and checking convergence with an allreduce.

The same code pattern would run over Infiniband; here every halo byte is
a CPU store into a neighbour's ring buffer.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro import TCClusterSystem
from repro.middleware import Communicator
from repro.util.units import fmt_time_ns

MESH = 2              # 2x2 blades
LOCAL = 32            # local grid (without halo) per blade
ITERS = 10


def neighbor(rank: int, drow: int, dcol: int) -> int:
    r, c = divmod(rank, MESH)
    rr, cc = r + drow, c + dcol
    if 0 <= rr < MESH and 0 <= cc < MESH:
        return rr * MESH + cc
    return -1


def worker(comm: Communicator, results: dict):
    """One blade's domain: halo exchange + Jacobi sweep + residual."""
    rank = comm.rank
    grid = np.zeros((LOCAL + 2, LOCAL + 2))
    # Heat source on the global top edge.
    if rank < MESH:
        grid[0, :] = 100.0

    up, down = neighbor(rank, -1, 0), neighbor(rank, 1, 0)
    left, right = neighbor(rank, 0, -1), neighbor(rank, 0, 1)

    for it in range(ITERS):
        # Exchange halos (send then recv; TCC sends complete locally).
        for peer, sl, tag in (
            (up, grid[1, 1:-1], 1),
            (down, grid[-2, 1:-1], 2),
            (left, grid[1:-1, 1], 3),
            (right, grid[1:-1, -2], 4),
        ):
            if peer >= 0:
                yield from comm.send(np.ascontiguousarray(sl).tobytes(),
                                     dest=peer, tag=tag)
        for peer, assign, tag in (
            (up, ("row", 0), 2),
            (down, ("row", LOCAL + 1), 1),
            (left, ("col", 0), 4),
            (right, ("col", LOCAL + 1), 3),
        ):
            if peer >= 0:
                raw = yield from comm.recv(source=peer, tag=tag)
                vec = np.frombuffer(raw)
                kind, idx = assign
                if kind == "row":
                    grid[idx, 1:-1] = vec
                else:
                    grid[1:-1, idx] = vec

        new = grid.copy()
        new[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1]
            + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        if rank < MESH:
            new[0, :] = 100.0
        residual = np.array([np.abs(new - grid).max()])
        grid = new
        global_res = yield from comm.allreduce(residual, op="max")
        if rank == 0:
            results.setdefault("residuals", []).append(float(global_res[0]))

    results[rank] = grid


def main() -> None:
    from repro.topology import mesh2d

    print(f"Booting a {MESH}x{MESH} blade mesh...")
    system = TCClusterSystem(mesh2d(MESH, MESH)).boot()
    comms = [Communicator(system.cluster.library(r))
             for r in range(system.nranks)]
    results: dict = {}
    start = system.sim.now
    procs = [system.process(worker, c, results) for c in comms]
    system.run_until(system.sim.all_of(procs))
    elapsed = system.sim.now - start

    print(f"  {ITERS} Jacobi iterations over {system.nranks} blades in "
          f"{fmt_time_ns(elapsed)} (virtual)")
    print("  residual history:",
          " ".join(f"{r:.2f}" for r in results["residuals"]))
    top_mean = results[0][1, 1:-1].mean()
    bottom_mean = results[MESH * (MESH - 1)][-2, 1:-1].mean()
    print(f"  top-blade interior row mean {top_mean:.2f} "
          f"(heated) vs bottom {bottom_mean:.2f}")
    assert top_mean > bottom_mean, "heat should flow downward"
    for link in system.cluster.tcc_links:
        st_a, st_b = link.stats("A"), link.stats("B")
        print(f"  {link.name}: {st_a.packets + st_b.packets} packets")


if __name__ == "__main__":
    main()
