"""Unit tests for the observability layer: registry, histogram, golden
comparison, JSONL export, report rendering, and the disabled-cost
contract."""

import io
import json

import pytest

from repro.core import TCClusterSystem
from repro.obs import (
    GoldenMismatch,
    JsonlExporter,
    LogHistogram,
    MetricsRegistry,
    compare_to_golden,
    enable_metrics,
    flatten,
    format_report,
    metrics_for,
    read_jsonl,
    save_golden,
)
from repro.sim import Simulator, Tracer


# ---------------------------------------------------------------------------
# LogHistogram
# ---------------------------------------------------------------------------

def test_histogram_bucketing_and_bounds():
    h = LogHistogram()
    for v in (0.5, 1, 2, 3, 100, 1000):
        h.add(v)
    assert h.count == 6
    assert h.min == 0.5 and h.max == 1000
    assert h.bucket_of(0.5) == 0
    assert h.bucket_of(1) == 0
    assert h.bucket_of(2) == 1
    assert h.bucket_of(1023) == 9
    assert h.bucket_of(1024) == 10


def test_histogram_percentiles_monotone_and_clamped():
    h = LogHistogram()
    for v in range(1, 101):
        h.add(float(v))
    p50, p90, p99 = h.percentile(50), h.percentile(90), h.percentile(99)
    assert p50 <= p90 <= p99 <= h.max
    assert h.min <= p50
    # Log-bucket interpolation: p50 of uniform 1..100 lands near 50.
    assert 30 <= p50 <= 80


def test_histogram_single_sample_percentile_is_that_sample():
    h = LogHistogram()
    h.add(227.0)
    assert h.percentile(50) == 227.0
    assert h.percentile(99) == 227.0


def test_histogram_merge_matches_combined():
    a, b, c = LogHistogram(), LogHistogram(), LogHistogram()
    for v in (1, 5, 9):
        a.add(v)
        c.add(v)
    for v in (100, 900):
        b.add(v)
        c.add(v)
    a.merge(b)
    assert a.count == c.count
    assert a.to_dict() == c.to_dict()


def test_empty_histogram_dict():
    assert LogHistogram().to_dict() == {"count": 0}


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------

def test_registry_disabled_records_nothing():
    r = MetricsRegistry()
    r.inc("a")
    r.observe("h", 5.0)
    r.set_gauge("g", 1.0)
    r.track("acc", 1.0, 3.0)
    r.note_send(0, 1, 10.0)
    snap = r.snapshot(100.0)
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert r.pop_send(0, 1) is None


def test_registry_enabled_roundtrip_and_diff():
    r = MetricsRegistry()
    r.enabled = True
    r.inc("pkts", 3)
    before = r.snapshot(10.0)
    r.inc("pkts", 2)
    r.inc("new", 1)
    after = r.snapshot(20.0)
    d = MetricsRegistry.diff(before, after)
    assert d["counters"] == {"pkts": 2, "new": 1}
    assert d["time_ns"] == 10.0


def test_registry_latency_pairing_is_fifo():
    r = MetricsRegistry()
    r.enabled = True
    r.note_send(0, 1, 10.0)
    r.note_send(0, 1, 20.0)
    assert r.inflight(0, 1) == 2
    assert r.pop_send(0, 1) == 10.0
    assert r.pop_send(0, 1) == 20.0
    assert r.pop_send(0, 1) is None


def test_metrics_for_is_per_simulator_and_lazy():
    s1, s2 = Simulator(), Simulator()
    r1 = metrics_for(s1)
    assert metrics_for(s1) is r1
    assert metrics_for(s2) is not r1
    assert not r1.enabled
    assert enable_metrics(s1) is r1
    assert r1.enabled


def test_track_records_time_weighted_average_and_max():
    r = MetricsRegistry()
    r.enabled = True
    r.track("occ", 0.0, 0)
    r.track("occ", 10.0, 4)
    r.track("occ", 30.0, 1)
    snap = r.snapshot(40.0)
    # 0 for 10ns, 4 for 20ns, 1 for 10ns over 40ns => 2.25 average.
    assert snap["accumulators"]["occ"]["avg"] == pytest.approx(2.25)
    assert snap["gauge_max"]["occ"] == 4


# ---------------------------------------------------------------------------
# Golden comparison
# ---------------------------------------------------------------------------

def test_flatten_numeric_leaves_only():
    tree = {"a": {"b": 1, "c": 2.5, "s": "text"}, "d": True, "e": {"f": {}}}
    assert flatten(tree) == {"a.b": 1, "a.c": 2.5, "d": 1}


def test_golden_compare_tolerances(tmp_path):
    path = str(tmp_path / "g.json")
    save_golden(path, {"x": {"exact": 100, "loose": 100.0}},
                tolerances={"default_rel": 0.05,
                            "keys": {"x.exact": {"rel": 0.0}}})
    from repro.obs.golden import assert_matches_golden

    # Within: loose moves 4%, exact untouched.
    assert_matches_golden({"x": {"exact": 100, "loose": 104.0}}, path)
    # Violation: exact moves by one.
    with pytest.raises(GoldenMismatch) as exc:
        assert_matches_golden({"x": {"exact": 101, "loose": 100.0}}, path)
    assert any("x.exact" in v for v in exc.value.violations)


def test_golden_prefix_tolerance_and_abs(tmp_path):
    path = str(tmp_path / "g.json")
    save_golden(path, {"stalls": {"a": 3, "b": 0}},
                tolerances={"default_rel": 0.0,
                            "keys": {"stalls.*": {"abs": 2}}})
    golden = json.load(open(path))
    assert compare_to_golden({"stalls": {"a": 5, "b": 2}}, golden) == []
    bad = compare_to_golden({"stalls": {"a": 6, "b": 0}}, golden)
    assert len(bad) == 1 and "stalls.a" in bad[0]


def test_golden_schema_mismatch_detected():
    assert compare_to_golden({}, {"_schema": "other"}) != []


# ---------------------------------------------------------------------------
# JSONL export
# ---------------------------------------------------------------------------

def test_jsonl_export_roundtrip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer()
    tracer.emit(1.0, "link", "tx", ("A", "POSTED", 0x1000))
    tracer.emit(2.0, "link", "rx", b"\x01\x02")
    with JsonlExporter(path, scenario="unit") as ex:
        ex.tracer(tracer)
        ex.metrics({"time_ns": 2.0, "counters": {"pkts": 2}})
    recs = read_jsonl(path)
    assert recs[0]["kind"] == "meta"
    assert recs[0]["scenario"] == "unit"
    assert recs[1] == {"kind": "trace", "t": 1.0, "component": "link",
                       "event": "tx", "info": ["A", "POSTED", 0x1000]}
    assert recs[2]["info"] == "0102"
    assert recs[3]["kind"] == "metrics"
    assert recs[3]["snapshot"]["counters"]["pkts"] == 2


def test_jsonl_export_to_file_object():
    buf = io.StringIO()
    ex = JsonlExporter(buf, scenario="buffered")
    ex.metrics({"time_ns": 0.0})
    ex.close()
    lines = [json.loads(l) for l in buf.getvalue().splitlines()]
    assert len(lines) == 2 and lines[1]["kind"] == "metrics"


# ---------------------------------------------------------------------------
# System.metrics() + report (acceptance: 2-node run exposes link
# utilization, endpoint counts, latency histogram)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def measured_system():
    sys_ = TCClusterSystem.two_board_prototype()
    sys_.enable_metrics()
    sys_.boot()
    cl = sys_.cluster
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    tx, rx = sys_.connect(a, b)

    def sender():
        for i in range(8):
            yield from tx.send(bytes([i + 1]) * 200)
        yield from tx.flush()

    def receiver():
        for _ in range(8):
            yield from rx.recv()

    sys_.process(sender)
    done = sys_.process(receiver)
    sys_.run_until(done)
    sys_.run()
    return sys_, a, b


def test_system_metrics_exposes_required_views(measured_system):
    sys_, a, b = measured_system
    m = sys_.metrics()
    tcc = m["links"][m["tcc_links"][0]]
    assert tcc["A"]["packets"] > 0
    assert 0 < tcc["A"]["utilization"] < 1
    ep = m["endpoints"][f"r{a}->r{b}"]
    assert ep["msgs_sent"] == 8
    assert ep["bytes_sent"] == 1600
    assert m["endpoints"][f"r{b}->r{a}"]["msgs_received"] == 8
    lat = m["message_latency_ns"]
    assert lat["count"] == 8
    assert 0 < lat["p50"] <= lat["p99"] <= lat["max"]
    # WC instrumentation saw the transmit path's full-line drains.
    assert any(w["fills"] > 0 for w in m["write_combining"].values())


def test_metrics_report_renders_text_and_json(measured_system):
    sys_, a, b = measured_system
    txt = sys_.metrics_report()
    assert "links" in txt and "endpoints" in txt
    assert f"r{a}->r{b}" in txt
    assert "message latency ns" in txt
    parsed = json.loads(sys_.metrics_report(fmt="json"))
    assert parsed["endpoints"][f"r{a}->r{b}"]["msgs_sent"] == 8
    with pytest.raises(ValueError):
        format_report({}, fmt="yaml")


def test_disabled_metrics_still_provides_link_and_endpoint_counters():
    """Without enable_metrics() the cheap counters still aggregate; only
    registry-backed series (latency histogram) stay empty."""
    sys_ = TCClusterSystem.two_board_prototype().boot()
    cl = sys_.cluster
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    tx, rx = sys_.connect(a, b)

    def sender():
        yield from tx.send(b"hello")
        yield from tx.flush()

    def receiver():
        yield from rx.recv()

    sys_.process(sender)
    done = sys_.process(receiver)
    sys_.run_until(done)
    m = sys_.metrics()
    assert m["endpoints"][f"r{a}->r{b}"]["msgs_sent"] == 1
    assert m["links"][m["tcc_links"][0]]["A"]["packets"] > 0
    assert m["message_latency_ns"] == {"count": 0}
    assert m["registry"]["counters"] == {}
