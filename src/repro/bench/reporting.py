"""Plain-text reporting: aligned tables and ASCII series for the figures.

The harness prints the same rows/series the paper reports; EXPERIMENTS.md
records paper-vs-measured for each.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["table", "series_plot", "header"]


def header(title: str) -> str:
    bar = "=" * len(title)
    return f"{bar}\n{title}\n{bar}"


def table(columns: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned text table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(c) for c in columns]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3f}"
    return str(v)


def series_plot(xs: Sequence, ys: Sequence[float], width: int = 56,
                label: str = "", log_x: bool = True) -> str:
    """A crude ASCII rendition of one figure series (bar per point)."""
    if not ys:
        return "(empty series)"
    peak = max(ys)
    lines = [label] if label else []
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * y / peak))) if peak > 0 else ""
        lines.append(f"{str(x):>8} | {bar} {y:,.0f}")
    return "\n".join(lines)
