"""Global address-space construction under interval-routing constraints.

Paper Section IV.D:

    "One can see that the address map ... shows a contiguous global address
    space ... A contiguous address space is necessary as the northbridge
    implements interval routing mechanism which can only map single
    contiguous address intervals to each outgoing HyperTransport link.
    Memory holes within a node specific address space are, therefore,
    impossible."

Given a :class:`~repro.topology.graph.ClusterTopology` and per-node DRAM
sizes, this module

1. assigns every supernode a contiguous slice of the global physical
   address space (in supernode index order),
2. computes, for every node, the DRAM directives (its own and its
   coherent peers' ranges) and the MMIO directives (remote slices grouped
   by exit link, merged into contiguous intervals),
3. **validates** the interval-routing constraints: intervals per link must
   be contiguous merges, the per-node entry count must fit the eight
   base/limit register pairs, and each node's map must tile the global
   space without holes.

Routing is dimension-ordered (Y first, then X) on meshes -- with row-major
supernode numbering this yields at most one interval per mesh port, which
is why the paper's n x n arrangement works -- and BFS shortest-path on
general graphs (which may fragment intervals; the validator then counts
whether the map still fits the registers).

The 48-bit physical address space caps the cluster ("the combined global
address space in TCCluster is currently limited to 256 Terabyte").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..opteron.registers import GRANULARITY, NUM_MAP_ENTRIES
from .graph import ClusterTopology, Endpoint, TccEdge, TopologyError

__all__ = [
    "NodeSpec",
    "SupernodeSpec",
    "DramDirective",
    "MmioDirective",
    "NodeMapPlan",
    "GlobalAddressMap",
    "AddressAssignmentError",
    "assign_addresses",
    "uniform_cluster",
]

PHYS_LIMIT = 1 << 48  # 256 TB


class AddressAssignmentError(ValueError):
    """The requested cluster cannot be expressed with interval routing."""


@dataclass(frozen=True)
class NodeSpec:
    """One processor within a supernode."""

    dram_bytes: int

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0 or self.dram_bytes % GRANULARITY:
            raise AddressAssignmentError(
                f"node DRAM size {self.dram_bytes:#x} must be a positive "
                f"multiple of {GRANULARITY:#x}"
            )


@dataclass(frozen=True)
class SupernodeSpec:
    """A board: 1..8 coherent processors."""

    nodes: Tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.nodes) <= 8:
            raise AddressAssignmentError(
                "a supernode holds 1..8 processors (coherent fabric limit)"
            )

    @property
    def total_bytes(self) -> int:
        return sum(n.dram_bytes for n in self.nodes)


@dataclass(frozen=True)
class DramDirective:
    """Program one DRAM base/limit pair: [base, limit) homed at dst_node."""

    base: int
    limit: int
    dst_node: int


@dataclass(frozen=True)
class MmioDirective:
    """Program one MMIO pair: [base, limit) exits the supernode through
    ``exit_port`` on ``exit_node``."""

    base: int
    limit: int
    exit_node: int
    exit_port: int


@dataclass
class NodeMapPlan:
    """Everything firmware must program into one node's F1 registers."""

    supernode: int
    node: int
    dram: List[DramDirective] = field(default_factory=list)
    mmio: List[MmioDirective] = field(default_factory=list)

    def local_dram_base(self) -> int:
        for d in self.dram:
            if d.dst_node == self.node:
                return d.base
        raise AddressAssignmentError("node has no local DRAM directive")


@dataclass
class GlobalAddressMap:
    """The cluster-wide outcome of address assignment."""

    topology: ClusterTopology
    specs: Tuple[SupernodeSpec, ...]
    base: int
    supernode_ranges: List[Tuple[int, int]]
    plans: Dict[Tuple[int, int], NodeMapPlan]

    @property
    def limit(self) -> int:
        return self.supernode_ranges[-1][1] if self.supernode_ranges else self.base

    def plan_for(self, supernode: int, node: int) -> NodeMapPlan:
        return self.plans[(supernode, node)]

    def supernode_of_addr(self, addr: int) -> int:
        for i, (b, l) in enumerate(self.supernode_ranges):
            if b <= addr < l:
                return i
        raise AddressAssignmentError(f"address {addr:#x} outside the global space")

    def node_range(self, supernode: int, node: int) -> Tuple[int, int]:
        """The global [base, limit) of one node's DRAM."""
        base, _ = self.supernode_ranges[supernode]
        for i, n in enumerate(self.specs[supernode].nodes):
            if i == node:
                return base, base + n.dram_bytes
            base += n.dram_bytes
        raise KeyError(f"no node {node} in supernode {supernode}")


def _mesh_exit(topology: ClusterTopology, src: int, dst: int) -> TccEdge:
    """Dimension-ordered (Y then X) next hop on a 2D mesh."""
    rows, cols = topology.shape  # type: ignore[misc]
    r, c = divmod(src, cols)
    rd, cd = divmod(dst, cols)
    if rd != r:
        step = (r + 1, c) if rd > r else (r - 1, c)
    else:
        step = (r, c + 1) if cd > c else (r, c - 1)
    nxt = step[0] * cols + step[1]
    for n, e in topology.neighbors(src):
        if n == nxt:
            return e
    raise TopologyError(f"mesh edge {src}->{nxt} missing")


def _next_hop_table(topology: ClusterTopology, src: int) -> Dict[int, TccEdge]:
    if topology.kind in ("mesh2d",) and topology.shape and len(topology.shape) == 2:
        return {
            dst: _mesh_exit(topology, src, dst)
            for dst in range(topology.num_supernodes)
            if dst != src
        }
    return topology.shortest_next_hops(src)


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce adjacent/overlapping [base, limit) intervals."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for b, l in ranges[1:]:
        pb, pl = out[-1]
        if b <= pl:
            out[-1] = (pb, max(pl, l))
        else:
            out.append((b, l))
    return out


def assign_addresses(
    topology: ClusterTopology,
    specs: Sequence[SupernodeSpec],
    base: int = 0,
) -> GlobalAddressMap:
    """Compute the global map and every node's register programme."""
    if len(specs) != topology.num_supernodes:
        raise AddressAssignmentError(
            f"{len(specs)} supernode specs for {topology.num_supernodes} vertices"
        )
    if not topology.is_connected():
        raise AddressAssignmentError("topology is not connected")
    if base % GRANULARITY:
        raise AddressAssignmentError(f"base {base:#x} not 16 MiB aligned")

    # 1. contiguous supernode slices in index order
    ranges: List[Tuple[int, int]] = []
    cursor = base
    for spec in specs:
        ranges.append((cursor, cursor + spec.total_bytes))
        cursor += spec.total_bytes
    if cursor > PHYS_LIMIT:
        raise AddressAssignmentError(
            f"global space {cursor:#x} exceeds the 48-bit physical limit "
            "(paper: 256 TB with current processors)"
        )
    global_base, global_limit = base, cursor

    plans: Dict[Tuple[int, int], NodeMapPlan] = {}
    for s, spec in enumerate(specs):
        sn_base, sn_limit = ranges[s]
        # DRAM directives are identical for all nodes of the supernode.
        dram: List[DramDirective] = []
        nb = sn_base
        for node_idx, node in enumerate(spec.nodes):
            dram.append(DramDirective(nb, nb + node.dram_bytes, node_idx))
            nb += node.dram_bytes

        # Remote slices grouped by exit endpoint.
        hops = _next_hop_table(topology, s)
        by_exit: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for dst in range(topology.num_supernodes):
            if dst == s:
                continue
            edge = hops.get(dst)
            if edge is None:
                raise AddressAssignmentError(f"no route {s}->{dst}")
            ep = edge.end_at(s)
            by_exit.setdefault((ep.node, ep.port), []).append(ranges[dst])

        mmio: List[MmioDirective] = []
        for (exit_node, exit_port), rs in sorted(by_exit.items()):
            for b, l in _merge_ranges(rs):
                mmio.append(MmioDirective(b, l, exit_node, exit_port))

        for node_idx in range(len(spec.nodes)):
            plan = NodeMapPlan(s, node_idx, dram=list(dram), mmio=list(mmio))
            _validate_plan(plan, spec, global_base, global_limit)
            plans[(s, node_idx)] = plan

    return GlobalAddressMap(topology, tuple(specs), base, ranges, plans)


def _validate_plan(plan: NodeMapPlan, spec: SupernodeSpec,
                   global_base: int, global_limit: int) -> None:
    """Interval-routing feasibility for one node's registers."""
    if len(plan.dram) > NUM_MAP_ENTRIES:
        raise AddressAssignmentError(
            f"supernode {plan.supernode}: {len(plan.dram)} DRAM ranges exceed "
            f"the {NUM_MAP_ENTRIES} base/limit pairs"
        )
    if len(plan.mmio) > NUM_MAP_ENTRIES:
        raise AddressAssignmentError(
            f"supernode {plan.supernode} node {plan.node}: {len(plan.mmio)} "
            f"MMIO intervals exceed the {NUM_MAP_ENTRIES} base/limit pairs "
            "(interval routing cannot express this topology/numbering)"
        )
    # Hole-free tiling of the global space (paper Fig. 3).
    ivals = [(d.base, d.limit) for d in plan.dram] + [
        (m.base, m.limit) for m in plan.mmio
    ]
    ivals.sort()
    cursor = global_base
    for b, l in ivals:
        if b != cursor:
            raise AddressAssignmentError(
                f"supernode {plan.supernode} node {plan.node}: address map "
                f"has a hole/overlap at {cursor:#x} (next interval {b:#x})"
            )
        cursor = l
    if cursor != global_limit:
        raise AddressAssignmentError(
            f"supernode {plan.supernode} node {plan.node}: map ends at "
            f"{cursor:#x}, global space ends at {global_limit:#x}"
        )


def uniform_cluster(
    topology: ClusterTopology,
    dram_bytes: int,
    nodes_per_supernode: int = 1,
) -> GlobalAddressMap:
    """Convenience: identical supernodes everywhere."""
    spec = SupernodeSpec(tuple(NodeSpec(dram_bytes) for _ in range(nodes_per_supernode)))
    return assign_addresses(topology, [spec] * topology.num_supernodes)
