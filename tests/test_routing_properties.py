"""Property-based routing invariants for the folded interval scheme.

Hand-written goldens cannot cover 512-node route tables, so the torus
tentpole is gated by seeded random probes checked against four oracles:

* **termination** -- every (source, destination-address) walk over the
  planned register contents reaches *some* DRAM directive within the
  topology's hop diameter (no loops, no unmapped holes);
* **owner delivery** -- the walk arrives at the supernode that owns the
  address in the global map;
* **folded == naive** -- the exit the folded MMIO intervals pick for an
  address equals the exit of the naive per-destination next-hop table
  (``ClusterTopology.shortest_next_hops``), i.e. folding loses nothing;
* **route-around** -- after k seeded link deaths the rewritten intervals
  still satisfy termination + owner delivery for every reachable pair,
  and unreachable pairs are *unmapped* (the sync-flood condition), never
  misdelivered.

The fast subset runs in tier-1; the 50-seed sweep rides the ``slow``
marker (CI's routing-properties nightly step).
"""

import random

import pytest

from repro.opteron.registers import NUM_MMIO_ENTRIES
from repro.topology import (
    chain,
    exit_intervals,
    folded_mmio_bound,
    mesh2d,
    ring,
    torus2d,
    torus3d,
    uniform_cluster,
)
from repro.util.units import MiB

M = 16 * MiB  # minimal slab granularity keeps the address arithmetic cheap

# (id, factory, nodes_per_supernode)
FAST_TOPOS = [
    ("chain4", lambda: chain(4), 1),
    ("ring5", lambda: ring(5), 1),
    ("mesh3x3", lambda: mesh2d(3, 3), 1),
    ("mesh2x5", lambda: mesh2d(2, 5), 1),
    ("torus2x2", lambda: torus2d(2, 2), 1),
    ("torus4x4", lambda: torus2d(4, 4), 1),
    ("torus2x2x2", lambda: torus3d(2, 2, 2), 2),
    ("torus3x3x3", lambda: torus3d(3, 3, 3), 2),
]
SLOW_EXTRA = [
    ("chain9", lambda: chain(9), 1),
    ("ring8", lambda: ring(8), 1),
    ("mesh6x6", lambda: mesh2d(6, 6), 1),
    ("torus4x5", lambda: torus2d(4, 5), 1),
    ("torus4x4x4", lambda: torus3d(4, 4, 4), 2),
    ("torus8x8x8", lambda: torus3d(8, 8, 8), 2),
]
ALL_TOPOS = FAST_TOPOS + SLOW_EXTRA


def _params(topos):
    return [pytest.param(factory, nps, id=name) for name, factory, nps in topos]


# ---------------------------------------------------------------------------
# Plan walkers (pure checks over register contents, no DES)
# ---------------------------------------------------------------------------

def _edge_index(topo):
    """(supernode, node, port) -> edge, for following MMIO exits."""
    idx = {}
    for e in topo.edges:
        for ep in (e.a, e.b):
            idx[(ep.supernode, ep.node, ep.port)] = e
    return idx


def walk_plan(amap, src, addr, max_hops):
    """Follow the boot-time plans; returns (arrival_supernode, hops)."""
    idx = _edge_index(amap.topology)
    s, node, hops = src, 0, 0
    while True:
        plan = amap.plan_for(s, node)
        if any(d.base <= addr < d.limit for d in plan.dram):
            return s, hops
        exit_ = next((m for m in plan.mmio if m.base <= addr < m.limit), None)
        assert exit_ is not None, (
            f"address {addr:#x} unmapped at supernode {s} node {node}"
        )
        edge = idx.get((s, exit_.exit_node, exit_.exit_port))
        assert edge is not None, "MMIO directive points at a missing link"
        other = edge.other(s)
        s, node = other.supernode, other.node
        hops += 1
        assert hops <= max_hops, f"routing loop: {hops} hops to {addr:#x}"


def walk_fault_maps(topo, ranges, maps, src, addr, max_hops):
    """Follow per-supernode post-fault exit intervals; returns the
    arrival supernode, or None if the walk hits an unmapped window."""
    idx = _edge_index(topo)
    s, hops = src, 0
    while True:
        if ranges[s][0] <= addr < ranges[s][1]:
            return s
        exit_ = None
        for (node, port), runs in maps[s].items():
            if any(b <= addr < l for b, l in runs):
                exit_ = (node, port)
                break
        if exit_ is None:
            return None
        edge = idx.get((s, exit_[0], exit_[1]))
        assert edge is not None
        s = edge.other(s).supernode
        hops += 1
        assert hops <= max_hops, "routing loop in post-fault walk"


def _probes(rng, amap, n):
    """Seeded (src, addr) probe pairs spread over the global space."""
    topo = amap.topology
    out = []
    for _ in range(n):
        src = rng.randrange(topo.num_supernodes)
        dst = rng.randrange(topo.num_supernodes)
        base, limit = amap.supernode_ranges[dst]
        addr = rng.randrange(base, limit) & ~0x3F
        out.append((src, dst, addr))
    return out


def check_invariants(topo, nps, seed, n_probes=60):
    """Termination + owner delivery + folded==naive for one seed."""
    rng = random.Random(seed)
    amap = uniform_cluster(topo, M, nodes_per_supernode=nps)
    diam = topo.diameter()
    for src, dst, addr in _probes(rng, amap, n_probes):
        arrived, hops = walk_plan(amap, src, addr, max_hops=diam)
        assert arrived == dst, f"{addr:#x} delivered to {arrived}, owner {dst}"
        if src == dst:
            assert hops == 0
        else:
            assert hops == topo.hop_distance(src, dst)
            # folded MMIO lookup == naive per-destination table
            naive = topo.shortest_next_hops(src)[dst].end_at(src)
            plan = amap.plan_for(src, 0)
            m = next(m for m in plan.mmio if m.base <= addr < m.limit)
            assert (m.exit_node, m.exit_port) == (naive.node, naive.port)


def check_route_around(topo, nps, seed, kills, n_probes=40, require_fit=False):
    """Seeded link deaths: reachable pairs still deliver, unreachable
    pairs are unmapped at the point the walk strands.

    The abstract post-fault map is always delivery-correct; whether it
    *fits* the 16-entry register file is a separate question.  At large
    scale BFS detours can fragment the intervals past the register file,
    which is exactly when ``RouteManager._reprogram`` raises RouteError
    instead of programming a wrong map -- so fit is only asserted where
    the caller knows the scale guarantees it (``require_fit``)."""
    rng = random.Random(seed)
    amap = uniform_cluster(topo, M, nodes_per_supernode=nps)
    ranges = amap.supernode_ranges
    dead = rng.sample(topo.edges, min(kills, len(topo.edges)))
    maps = {s: exit_intervals(topo, ranges, s, exclude=dead)
            for s in range(topo.num_supernodes)}
    if require_fit:
        for runs_by_exit in maps.values():
            n_runs = sum(len(r) for r in runs_by_exit.values())
            assert n_runs <= NUM_MMIO_ENTRIES
    bound = topo.num_supernodes + topo.diameter()
    for src, dst, addr in _probes(rng, amap, n_probes):
        reachable = dst == src or dst in topo.shortest_next_hops(
            src, exclude=dead)
        arrived = walk_fault_maps(topo, ranges, maps, src, addr, bound)
        if reachable:
            assert arrived == dst, (
                f"post-fault {addr:#x}: delivered to {arrived}, owner {dst}"
            )
        else:
            assert arrived is None, (
                f"unreachable {src}->{dst} misdelivered to {arrived}"
            )


# ---------------------------------------------------------------------------
# Fast subset (tier-1, every push)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("factory,nps", _params(FAST_TOPOS))
@pytest.mark.parametrize("seed", [0, 1])
def test_routing_invariants(factory, nps, seed):
    check_invariants(factory(), nps, seed)


@pytest.mark.parametrize("factory,nps", _params(FAST_TOPOS))
def test_route_around_seeded_kills(factory, nps):
    topo = factory()
    for seed, kills in ((3, 1), (4, 2)):
        check_route_around(topo, nps, seed, kills, require_fit=True)


@pytest.mark.parametrize("factory,nps", _params(ALL_TOPOS[:-1]))
def test_folded_register_pressure(factory, nps):
    """Acceptance: per-supernode MMIO pair count <= O(degree + log N),
    and fits the 16-entry register file -- torus3d(4,4,4) included."""
    topo = factory()
    amap = uniform_cluster(topo, M, nodes_per_supernode=nps)
    for s in range(topo.num_supernodes):
        count = len(amap.plan_for(s, 0).mmio)
        assert count <= folded_mmio_bound(topo, s)
        assert count <= NUM_MMIO_ENTRIES


def _worst_postfault_runs(topo, amap, edges):
    ranges = amap.supernode_ranges
    worst = 0
    for e in edges:
        for s in range(topo.num_supernodes):
            runs = sum(len(r) for r in
                       exit_intervals(topo, ranges, s, exclude=[e]).values())
            worst = max(worst, runs)
    return worst


def test_single_kill_fits_registers_at_64_nodes_sampled():
    """Post-fault register pressure at the acceptance scale: a single
    link death must leave every supernode's rewritten map within the
    16-entry file (fixed-order detour folding; measured worst case 14).
    Fast subset samples one edge per dimension plus a seeded dozen; the
    slow sweep covers every edge."""
    topo = torus3d(4, 4, 4)
    amap = uniform_cluster(topo, M, nodes_per_supernode=2)
    rng = random.Random(7)
    sample = [topo.edges[0], topo.edges[1], topo.edges[2]]
    sample += rng.sample(topo.edges, 12)
    assert _worst_postfault_runs(topo, amap, sample) <= NUM_MMIO_ENTRIES


@pytest.mark.slow
def test_single_kill_fits_registers_at_64_nodes_exhaustive():
    topo = torus3d(4, 4, 4)
    amap = uniform_cluster(topo, M, nodes_per_supernode=2)
    assert _worst_postfault_runs(topo, amap, topo.edges) <= NUM_MMIO_ENTRIES


def test_folded_bound_is_sublinear():
    """The point of the folding: register pressure stays put while the
    cluster grows by 64x."""
    small = torus3d(2, 2, 2)
    big = torus3d(8, 8, 8)
    amap = uniform_cluster(big, M, nodes_per_supernode=2)
    worst = max(len(amap.plan_for(s, 0).mmio)
                for s in range(big.num_supernodes))
    assert worst <= folded_mmio_bound(big, 0)
    assert worst <= 9, "3 runs per dimension is the analytic worst case"
    assert big.num_supernodes == 64 * small.num_supernodes


def test_next_hop_paths_shared_by_assignment_and_graph():
    """Satellite pin: the assignment's exits and the graph's next-hop
    table must come from the same computation for every topology kind
    (the old `_mesh_exit` duplicate diverged once `exclude=` existed)."""
    for name, factory, nps in FAST_TOPOS:
        topo = factory()
        amap = uniform_cluster(topo, M, nodes_per_supernode=nps)
        ranges = amap.supernode_ranges
        for src in range(topo.num_supernodes):
            hops = topo.shortest_next_hops(src)
            plan = amap.plan_for(src, 0)
            for dst in range(topo.num_supernodes):
                if dst == src:
                    continue
                ep = hops[dst].end_at(src)
                for addr in (ranges[dst][0], ranges[dst][1] - 64):
                    m = next(m for m in plan.mmio
                             if m.base <= addr < m.limit)
                    assert (m.exit_node, m.exit_port) == (ep.node, ep.port), (
                        f"{name}: {src}->{dst} folded exit diverges"
                    )


# ---------------------------------------------------------------------------
# 50-seed sweep (slow marker; CI routing-properties nightly)
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("seed", range(50))
def test_routing_properties_sweep(seed):
    """The acceptance sweep: every seed exercises one topology from the
    full pool (up to torus3d(8,8,8)) with fresh probes, plus a k-kill
    route-around round on the same topology."""
    name, factory, nps = ALL_TOPOS[seed % len(ALL_TOPOS)]
    topo = factory()
    check_invariants(topo, nps, seed, n_probes=80)
    check_route_around(topo, nps, seed + 1000, kills=1 + seed % 3)
