"""Bit-field helpers for register and packet encoding.

The HT packet encoder and the BKDG-style register files both manipulate
fields inside fixed-width words; these helpers centralize the masking
arithmetic and validate widths so encode/decode bugs surface as exceptions
rather than silent corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

__all__ = ["get_bits", "set_bits", "mask", "BitField", "FieldSpec"]


def mask(width: int) -> int:
    """An all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def get_bits(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits starting at bit ``lo``."""
    if lo < 0 or width <= 0:
        raise ValueError(f"invalid field lo={lo} width={width}")
    return (value >> lo) & mask(width)


def set_bits(value: int, lo: int, width: int, field: int) -> int:
    """Return ``value`` with the field ``[lo, lo+width)`` replaced."""
    if field < 0 or field > mask(width):
        raise ValueError(
            f"field value {field:#x} does not fit in {width} bits"
        )
    m = mask(width) << lo
    return (value & ~m) | ((field & mask(width)) << lo)


@dataclass(frozen=True)
class FieldSpec:
    """Position of a named field inside a word."""

    lo: int
    width: int

    @property
    def hi(self) -> int:
        return self.lo + self.width - 1


class BitField:
    """A word with named fields, e.g. an HT command dword or a config reg.

    >>> bf = BitField(32, {"cmd": FieldSpec(0, 6), "unitid": FieldSpec(8, 5)})
    >>> bf["cmd"] = 0x2D
    >>> bf["cmd"]
    45
    """

    def __init__(self, width: int, fields: Dict[str, FieldSpec], value: int = 0):
        self.width = width
        self.fields = dict(fields)
        for name, spec in self.fields.items():
            if spec.lo + spec.width > width:
                raise ValueError(
                    f"field {name!r} [{spec.lo}+{spec.width}] exceeds word width {width}"
                )
        self._check_overlap()
        if value < 0 or value > mask(width):
            raise ValueError(f"initial value {value:#x} exceeds {width} bits")
        self.value = value

    def _check_overlap(self) -> None:
        used = 0
        for name, spec in self.fields.items():
            m = mask(spec.width) << spec.lo
            if used & m:
                raise ValueError(f"field {name!r} overlaps another field")
            used |= m

    def __getitem__(self, name: str) -> int:
        spec = self.fields[name]
        return get_bits(self.value, spec.lo, spec.width)

    def __setitem__(self, name: str, field_value: int) -> None:
        spec = self.fields[name]
        self.value = set_bits(self.value, spec.lo, spec.width, field_value)

    def items(self) -> Iterator[Tuple[str, int]]:
        for name in self.fields:
            yield name, self[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = " ".join(f"{k}={v:#x}" for k, v in self.items())
        return f"<BitField {inner}>"
