"""Coherent fabric enumeration: the BSP's depth-first node discovery.

Paper Section IV.E:

    "Before the BSP is able to configure the routing tables in the
    processors it has to determine the topology of the system. ... the
    processor performs a depth-first search for all APs.  After system
    reset each NodeID register in each AP is initially set to seven.  If
    the NodeID register is still seven, the BSP knows that it hasn't
    visited that specific node yet, so it assigns a new NodeID to the AP
    and configures its routing table entries accordingly."

and the TCCluster modification (Section V, 'Coherent Enumeration'):

    "At this point the TCCluster links are still configured as coherent
    which would cause the regular firmware to perform a search for all
    coherent links thereby building the system topology.  The modified
    TCCluster firmware avoids this by ignoring such links and only
    performs coherent link enumeration for the nodes within a Supernode."

``skip_ports`` carries that modification.  Running with an empty skip set
on a multi-board system reproduces the stock-firmware hazard: the DFS
escapes the board and claims foreign processors (tested in
``tests/test_firmware.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..ht.link import LinkSide
from ..opteron import OpteronChip
from ..opteron.registers import RESET_NODEID, RoutingTableAccessor

__all__ = ["EnumerationResult", "coherent_enumeration", "EnumerationError"]


class EnumerationError(RuntimeError):
    """Fabric discovery failed (too many nodes, inconsistent state...)."""


@dataclass
class EnumerationResult:
    """Discovered coherent fabric rooted at the BSP."""

    #: nodeid -> chip, in assignment order (BSP is nodes[0]).
    nodes: List[OpteronChip] = field(default_factory=list)
    #: spanning-tree edges: (parent_nodeid, child_nodeid, parent_port, child_port)
    tree_edges: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: chips claimed that do not belong to the BSP's board (stock-firmware
    #: hazard when TCC links are not skipped).
    foreign_nodes: List[OpteronChip] = field(default_factory=list)

    def nodeid_of(self, chip: OpteronChip) -> int:
        for i, c in enumerate(self.nodes):
            if c is chip:
                return i
        raise KeyError(f"{chip.name} was not enumerated")


def _coherent_neighbors(chip: OpteronChip, skip: Set[Tuple[int, int]],
                        board_chips: Optional[Set[int]]):
    """Yield (port, peer_chip, peer_port) over active coherent links."""
    for port, binding in sorted(chip.ports.items()):
        if (id(chip), port) in skip:
            continue
        link = binding.link
        if link.state != "active" or link.link_type != "coherent":
            continue
        attached = getattr(link, "attached", None)
        if not attached:
            continue
        peer = attached[LinkSide.other(binding.side)]
        if not isinstance(peer, OpteronChip):
            continue
        peer_port = None
        for pp, pb in peer.ports.items():
            if pb.link is link:
                peer_port = pp
                break
        yield port, peer, peer_port


def coherent_enumeration(
    ctx,
    bsp: OpteronChip,
    skip_ports: Optional[Set[Tuple[OpteronChip, int]]] = None,
    board_chips: Optional[List[OpteronChip]] = None,
):
    """Generator: run the DFS and program NodeIDs + routing tables.

    ``ctx`` is the :class:`~repro.firmware.boot.FirmwareContext` charging
    execution time per configuration access.  ``skip_ports`` is the set of
    (chip, port) pairs designated as TCCluster links.  Returns an
    :class:`EnumerationResult` (via generator return value).
    """
    skip = {(id(c), p) for (c, p) in (skip_ports or set())}
    own = {id(c) for c in board_chips} if board_chips is not None else None

    result = EnumerationResult()
    yield from ctx.step(4)  # BSP self-configuration preamble
    bsp.node_id_reg().nodeid = 0
    result.nodes.append(bsp)

    stack: List[OpteronChip] = [bsp]
    seen: Dict[int, int] = {id(bsp): 0}
    while stack:
        chip = stack.pop()
        for port, peer, peer_port in _coherent_neighbors(chip, skip, own):
            if id(peer) in seen:
                continue
            yield from ctx.step(2)  # probe config cycle over the link
            if peer.node_id_reg().nodeid != RESET_NODEID:
                # Already claimed -- by us through another path, or by a
                # *different* BSP racing us across a not-skipped TCC link.
                continue
            new_id = len(result.nodes)
            if new_id >= 8:
                raise EnumerationError(
                    "more than 8 coherent nodes discovered -- the DFS "
                    "escaped the supernode (TCC links not skipped?)"
                )
            yield from ctx.step(3)  # assign NodeID + base routing
            peer.node_id_reg().nodeid = new_id
            seen[id(peer)] = new_id
            result.nodes.append(peer)
            parent_id = seen[id(chip)]
            result.tree_edges.append((parent_id, new_id, port, peer_port))
            if own is not None and id(peer) not in own:
                result.foreign_nodes.append(peer)
            stack.append(peer)

    # Program routing tables along the spanning tree: for every (src, dst)
    # pair the next-hop port, for every node the broadcast fan-out.
    adj: Dict[int, List[Tuple[int, int, int]]] = {
        i: [] for i in range(len(result.nodes))
    }
    for (a, b, pa, pb) in result.tree_edges:
        adj[a].append((b, pa, pb))
        adj[b].append((a, pb, pa))

    def next_hop(src: int, dst: int) -> int:
        """Port at src on the tree path toward dst (BFS on the tree)."""
        from collections import deque

        q = deque([(src, None)])
        first: Dict[int, int] = {}
        visited = {src}
        while q:
            n, first_port = q.popleft()
            for (m, pn, _pm) in adj[n]:
                if m in visited:
                    continue
                visited.add(m)
                fp = first_port if first_port is not None else pn
                if m == dst:
                    return fp
                q.append((m, fp))
        raise EnumerationError(f"no tree path {src}->{dst}")

    n = len(result.nodes)
    for src_id, chip in enumerate(result.nodes):
        for dst_id in range(n):
            acc = RoutingTableAccessor(chip.regs, dst_id)
            if dst_id == src_id:
                mask_value = RoutingTableAccessor.to_self()
            else:
                mask_value = RoutingTableAccessor.to_link(next_hop(src_id, dst_id))
            acc.request = mask_value
            acc.response = mask_value
            yield from ctx.step(1)
        # Broadcast: deliver locally + fan out along tree-adjacent links.
        bc = RoutingTableAccessor.to_self()
        for (_m, pn, _pm) in adj[src_id]:
            bc |= RoutingTableAccessor.to_link(pn)
        RoutingTableAccessor(chip.regs, src_id).broadcast = bc
        chip.node_id_reg().nodecnt = n - 1
        yield from ctx.step(1)

    return result
