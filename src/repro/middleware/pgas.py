"""PGAS runtime (GASNet-flavored) over remote stores.

Paper Section IV.A: "TCCluster is compatible with PGAS implementations
like UPC over GASNet.  Whereas the data transfer (relaxed consistency
operations) is straightforward, global synchronization messages
implemented through remote stores are used to enforce strict sequential
consistency."

Semantics under the writes-only constraint:

* **put** is a native one-sided remote store into the symmetric segment
  (relaxed; :meth:`GasRuntime.fence` = sfence orders it),
* **get** cannot be a load (no reads across TCC links!), so it is an
  *active message*: a GET request travels through the message library and
  the target's dispatcher answers with the payload -- exactly how GASNet
  cores implement get on put-only transports,
* **barrier** rides the same dispatcher (dissemination pattern).

Every rank runs one :meth:`GasRuntime.serve` dispatcher process; user
code uses the generator API from its own processes.
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..msglib import MessageLibrary
from ..sim import Resource
from ..util.units import MiB

__all__ = ["GasRuntime", "GasError"]

_MSG_GET = 1
_MSG_GET_REPLY = 2
_MSG_BARRIER = 3
_MSG_NOTIFY = 4
_MSG_FADD = 5
_MSG_FADD_REPLY = 6

_HDR = struct.Struct("<BxxxI")        # type, request id
_GET = struct.Struct("<QI")            # offset, length
_BAR = struct.Struct("<II")            # generation, round
_FADD = struct.Struct("<Qq")           # offset, signed delta

#: Symmetric segment: identical offset inside every rank's local DRAM,
#: far above the message-library regions.
DEFAULT_GAS_OFFSET = 64 * MiB
DEFAULT_GAS_BYTES = 16 * MiB


class GasError(RuntimeError):
    pass


class GasRuntime:
    """One rank's PGAS context: symmetric segment + AM dispatcher."""

    def __init__(self, lib: MessageLibrary,
                 gas_offset: int = DEFAULT_GAS_OFFSET,
                 gas_bytes: int = DEFAULT_GAS_BYTES):
        self.lib = lib
        self.proc = lib.proc
        self.sim = lib.sim
        self.rank = lib.rank
        self.size = lib.nranks
        self.gas_offset = gas_offset
        self.gas_bytes = gas_bytes
        my_base = lib.rank_base(self.rank)
        self.local_seg = my_base + gas_offset
        # Export + map the local segment (UC: remote puts must be seen).
        lib.driver.restrict_export(self.local_seg, self.local_seg + gas_bytes)
        lib.driver.mmap_local_export(self.proc.pagetable, self.local_seg,
                                     gas_bytes, tag="gas-segment")
        self._remote_mapped: set = set()
        self._req_ids = itertools.count(1)
        self._pending_gets: Dict[int, object] = {}      # req id -> Event
        self._barrier_tokens: Dict[Tuple[int, int, int], object] = {}
        self._notifies: Deque[Tuple[int, bytes]] = deque()
        self._notify_waiters: Deque[object] = deque()
        self._serving = False
        self._stop = False
        self.barrier_generation = 0
        #: serializes atomic read-modify-write cycles on the local segment
        #: between the dispatcher and this rank's own fadd calls.
        self._amo_lock = Resource(self.sim, 1, name=f"gas-amo-r{self.rank}")

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def seg_addr(self, rank: int, offset: int) -> int:
        if not 0 <= offset < self.gas_bytes:
            raise GasError(f"offset {offset:#x} outside the {self.gas_bytes}-byte segment")
        return self.lib.rank_base(rank) + self.gas_offset + offset

    def _ensure_remote_mapping(self, rank: int) -> None:
        if rank in self._remote_mapped or rank == self.rank:
            return
        self.lib.driver.mmap_remote(
            self.proc.pagetable, self.seg_addr(rank, 0), self.gas_bytes,
            tag=f"gas-seg->{rank}",
        )
        self._remote_mapped.add(rank)

    # ------------------------------------------------------------------
    # Data movement
    # ------------------------------------------------------------------
    def put(self, rank: int, offset: int, data: bytes):
        """One-sided relaxed put (native remote store)."""
        if rank == self.rank:
            yield from self.proc.store(self.seg_addr(rank, offset), data)
            return
        self._ensure_remote_mapping(rank)
        yield from self.proc.store(self.seg_addr(rank, offset), data)

    def put_notify(self, rank: int, offset: int, data: bytes):
        """Put + completion notification at the target (one-sided
        rendezvous in the paper's words)."""
        yield from self.put(rank, offset, data)
        yield from self.fence()  # payload strictly before the notify
        msg = _HDR.pack(_MSG_NOTIFY, 0) + _GET.pack(offset, len(data))
        ep = self.lib.connect(rank)
        yield from ep.send(msg)
        yield from ep.flush()

    def fence(self):
        """Order all prior puts (sfence)."""
        yield from self.proc.sfence()

    def local_read(self, offset: int, n: int):
        data = yield from self.proc.load(self.seg_addr(self.rank, offset), n)
        return data

    def get(self, rank: int, offset: int, n: int):
        """Active-message get: request/reply through the dispatcher."""
        if rank == self.rank:
            data = yield from self.local_read(offset, n)
            return data
        if not self._serving:
            raise GasError("get() needs the dispatcher: call start() first")
        req_id = next(self._req_ids)
        ev = self.sim.event(name=f"gas-get-{req_id}")
        self._pending_gets[req_id] = ev
        ep = self.lib.connect(rank)
        yield from ep.send(_HDR.pack(_MSG_GET, req_id) + _GET.pack(offset, n))
        yield from ep.flush()
        data = yield ev
        return data

    def fadd(self, rank: int, offset: int, delta: int):
        """Atomic fetch-and-add on a u64 counter in ``rank``'s segment;
        returns the *previous* value.

        Atomicity holds because exactly one dispatcher process owns each
        rank's segment, so read-modify-write cycles never interleave --
        the standard AM-based AMO construction on put-only fabrics.
        """
        if rank == self.rank:
            old = yield from self._local_fadd(offset, delta)
            return old
        if not self._serving:
            raise GasError("fadd() needs the dispatcher: call start() first")
        req_id = next(self._req_ids)
        ev = self.sim.event(name=f"gas-fadd-{req_id}")
        self._pending_gets[req_id] = ev
        ep = self.lib.connect(rank)
        yield from ep.send(_HDR.pack(_MSG_FADD, req_id)
                           + _FADD.pack(offset, delta))
        yield from ep.flush()
        raw = yield ev
        (old,) = struct.unpack("<Q", raw)
        return old

    def _local_fadd(self, offset: int, delta: int):
        """The owner-side read-modify-write, serialized by the AMO lock."""
        yield self._amo_lock.acquire()
        try:
            raw = yield from self.local_read(offset, 8)
            (old,) = struct.unpack("<Q", raw)
            new = (old + delta) & 0xFFFF_FFFF_FFFF_FFFF
            yield from self.put(self.rank, offset, struct.pack("<Q", new))
        finally:
            self._amo_lock.release()
        return old

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def barrier(self):
        """Dissemination barrier through the dispatcher."""
        self.barrier_generation += 1
        gen = self.barrier_generation
        n, me = self.size, self.rank
        if n == 1:
            return gen
        dist = 1
        rnd = 0
        while dist < n:
            out_peer = (me + dist) % n
            in_peer = (me - dist) % n
            ep = self.lib.connect(out_peer)
            yield from ep.send(_HDR.pack(_MSG_BARRIER, 0) + _BAR.pack(gen, rnd))
            yield from ep.flush()
            yield from self._await_barrier_token(in_peer, gen, rnd)
            dist <<= 1
            rnd += 1
        return gen

    def _await_barrier_token(self, peer: int, gen: int, rnd: int):
        key = (peer, gen, rnd)
        tok = self._barrier_tokens.pop(key, None)
        if tok is not None:
            return
        ev = self.sim.event(name=f"gas-bar-{key}")
        self._barrier_tokens[key] = ev
        yield ev

    def wait_notify(self):
        """Wait for the next put_notify aimed at this rank; returns
        (offset, length)."""
        if self._notifies:
            return self._notifies.popleft()
        ev = self.sim.event(name="gas-notify")
        self._notify_waiters.append(ev)
        item = yield ev
        return item

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the active-message dispatcher process."""
        if self._serving:
            return
        self._serving = True
        for r in range(self.size):
            if r != self.rank:
                self.lib.connect(r)
        self.sim.process(self._serve(), name=f"gas-serve-r{self.rank}")

    def stop(self) -> None:
        self._stop = True

    def _serve(self):
        t = self.proc.core.chip.timing
        while not self._stop:
            progressed = False
            for ep in self.lib.endpoints():
                msg = yield from ep.try_recv()
                if msg is None:
                    continue
                progressed = True
                yield from self._dispatch(ep.peer, msg)
            if not progressed:
                yield self.sim.timeout(4 * t.poll_iteration_ns)

    def _dispatch(self, src: int, msg: bytes):
        mtype, req_id = _HDR.unpack_from(msg, 0)
        body = msg[_HDR.size:]
        if mtype == _MSG_GET:
            offset, n = _GET.unpack_from(body, 0)
            data = yield from self.local_read(offset, n)
            ep = self.lib.connect(src)
            yield from ep.send(_HDR.pack(_MSG_GET_REPLY, req_id) + data)
            yield from ep.flush()
        elif mtype == _MSG_GET_REPLY:
            ev = self._pending_gets.pop(req_id, None)
            if ev is None:
                raise GasError(f"reply for unknown get {req_id}")
            ev.succeed(body)
        elif mtype == _MSG_BARRIER:
            gen, rnd = _BAR.unpack_from(body, 0)
            key = (src, gen, rnd)
            waiter = self._barrier_tokens.pop(key, None)
            if waiter is not None:
                waiter.succeed()
            else:
                self._barrier_tokens[key] = True  # arrived early
        elif mtype == _MSG_FADD:
            offset, delta = _FADD.unpack_from(body, 0)
            old = yield from self._local_fadd(offset, delta)
            ep = self.lib.connect(src)
            yield from ep.send(_HDR.pack(_MSG_FADD_REPLY, req_id)
                               + struct.pack("<Q", old))
            yield from ep.flush()
        elif mtype == _MSG_FADD_REPLY:
            ev = self._pending_gets.pop(req_id, None)
            if ev is None:
                raise GasError(f"reply for unknown fadd {req_id}")
            ev.succeed(body[:8])
        elif mtype == _MSG_NOTIFY:
            offset, n = _GET.unpack_from(body, 0)
            if self._notify_waiters:
                self._notify_waiters.popleft().succeed((offset, n))
            else:
                self._notifies.append((offset, n))
        else:
            raise GasError(f"unknown GAS message type {mtype}")
