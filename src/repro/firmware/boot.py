"""The TCCluster boot sequence -- the paper's Section V, step by step.

:class:`TCClusterFirmware` drives one board (supernode) through the
modified-coreboot sequence:

  Cold Reset -> Coherent Enumeration -> Force Non-Coherent -> Warm Reset
  -> Northbridge Init -> CPU MSR Init -> Memory Init -> EXIT CAR
  -> Non-Coherent Enumeration -> Post Initialization -> (Load OS)

Steps are stage-checked: invoking them out of order raises
:class:`FirmwareError`, and the sequence *verifies* its own effects (e.g.
after the warm reset every designated TCC link must actually be
non-coherent) so that omitting a step fails like it would on hardware.

Execution cost: until EXIT CAR the firmware runs in cache-as-RAM mode and
every step is charged ROM-fetch time ("the performance is limited by the
read bandwidth of the ROM"); afterwards steps run at DRAM speed.

Cross-board synchronization: the paper's prototype short-circuits reset
lines ("power them up simultaneously").  We model that rail as a
:class:`repro.sim.Barrier` shared by all boards: cold and warm resets are
issued only when every firmware instance has arrived, keeping link
training within the skew window regardless of per-board plan differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..opteron import MemoryType, OpteronChip
from ..opteron.mtrr import MTRRError
from ..opteron.registers import NUM_MAP_ENTRIES, NUM_MMIO_ENTRIES
from ..sim import AllOf, Barrier, Simulator
from ..topology.address_assignment import NodeMapPlan, _merge_ranges
from .board import Board
from .enumeration import EnumerationResult, coherent_enumeration
from .southbridge import Southbridge

__all__ = [
    "FirmwareError",
    "FirmwareContext",
    "BoardPlan",
    "BootReport",
    "TCClusterFirmware",
    "mtrr_cover",
]

#: Firmware "instructions" per step unit fetched from ROM in CAR mode.
CAR_STEP_BYTES = 64
RAM_STEP_NS = 2.0
#: On-board coherent links run HT3 speed after link optimization
#: (16 lanes x 2.6 Gbit/s = 5.2 bytes/ns).
INTERNAL_CHT_GBIT = 2.6


class FirmwareError(RuntimeError):
    """Boot sequence violation or failed verification."""


class FirmwareContext:
    """Execution-cost model: CAR (ROM-bound) vs RAM mode."""

    def __init__(self, sim: Simulator, southbridge: Optional[Southbridge]):
        self.sim = sim
        self.southbridge = southbridge
        self.mode = "car"
        self.steps_executed = 0

    def step(self, n: int = 1):
        """Charge ``n`` firmware step units (generator to yield from)."""
        self.steps_executed += n
        if self.mode == "car" and self.southbridge is not None:
            cost = n * self.southbridge.rom_read_ns(CAR_STEP_BYTES)
        else:
            cost = n * RAM_STEP_NS
        yield self.sim.timeout(cost)

    def exit_car(self) -> None:
        self.mode = "ram"


@dataclass
class BoardPlan:
    """What one board's firmware needs to know: its rank in the topology
    ("each BSP needs a topology description and its rank within that
    topology"), the per-node register programme, and the designated TCC
    ports with their target link rate."""

    rank: int
    node_plans: List[NodeMapPlan]
    #: (chip_index, port) pairs that are TCCluster links.
    tcc_ports: List[Tuple[int, int]] = field(default_factory=list)
    link_width: int = 16
    gbit_per_lane: float = 1.6
    #: where to shadow the firmware image after EXIT CAR (offset into the
    #: BSP's local DRAM).
    rom_shadow_offset: int = 0x10000


@dataclass
class BootReport:
    """Everything the OS loader learns from firmware."""

    board: Board
    enumeration: EnumerationResult
    stage_times: Dict[str, float] = field(default_factory=dict)
    nc_devices: List[object] = field(default_factory=list)
    tcc_links_verified: int = 0
    rom_shadow_addr: Optional[int] = None


def mtrr_cover(base: int, limit: int) -> List[Tuple[int, int]]:
    """Greedy decomposition of [base, limit) into MTRR-legal (base, size)
    power-of-two, size-aligned chunks."""
    if base < 0 or limit <= base:
        raise ValueError(f"bad range [{base:#x}, {limit:#x})")
    out: List[Tuple[int, int]] = []
    cur = base
    while cur < limit:
        max_fit = limit - cur
        size = 1 << (max_fit.bit_length() - 1)  # largest pow2 <= max_fit
        if cur:
            size = min(size, cur & -cur)  # must stay size-aligned
        out.append((cur, size))
        cur += size
    return out


_STAGES = [
    "cold_reset",
    "coherent_enumeration",
    "force_noncoherent",
    "warm_reset",
    "northbridge_init",
    "cpu_msr_init",
    "memory_init",
    "exit_car",
    "noncoherent_enumeration",
    "post_init",
]


class TCClusterFirmware:
    """One board's modified-coreboot instance."""

    def __init__(self, board: Board, plan: BoardPlan, reset_rail: Barrier):
        self.board = board
        self.plan = plan
        self.reset_rail = reset_rail
        self.sim = board.sim
        self.ctx = FirmwareContext(self.sim, board.southbridge)
        self.report = BootReport(board, EnumerationResult())
        self._stage = 0
        if len(plan.node_plans) != len(board.chips):
            raise FirmwareError(
                f"{board.name}: plan has {len(plan.node_plans)} node plans "
                f"for {len(board.chips)} chips"
            )
        for (ci, port) in plan.tcc_ports:
            if ci >= len(board.chips):
                raise FirmwareError(f"TCC port on missing chip {ci}")

    # -- stage bookkeeping ---------------------------------------------------
    def _enter(self, stage: str) -> None:
        expected = _STAGES[self._stage]
        if stage != expected:
            raise FirmwareError(
                f"{self.board.name}: boot step {stage!r} out of order "
                f"(expected {expected!r})"
            )
        self._stage += 1

    def _mark(self, stage: str) -> None:
        self.report.stage_times[stage] = self.sim.now

    def _tcc_bindings(self):
        for (ci, port) in self.plan.tcc_ports:
            chip = self.board.chips[ci]
            binding = chip.ports.get(port)
            if binding is None:
                raise FirmwareError(
                    f"{chip.name}: designated TCC port {port} has no link"
                )
            yield chip, binding

    # -- the boot sequence ------------------------------------------------------
    def boot(self):
        """Run the full sequence; returns the :class:`BootReport`."""
        yield from self.cold_reset()
        yield from self.do_coherent_enumeration()
        yield from self.force_noncoherent()
        yield from self.warm_reset()
        yield from self.northbridge_init()
        yield from self.cpu_msr_init()
        yield from self.memory_init()
        yield from self.do_exit_car()
        yield from self.noncoherent_enumeration()
        yield from self.post_init()
        return self.report

    def cold_reset(self):
        self._enter("cold_reset")
        self.board.start()
        yield self.reset_rail.arrive()  # synchronized power-up
        events = self.board.assert_cold_reset()
        if events:
            yield AllOf(self.sim, events)
        yield from self.ctx.step(8)  # low-level init / fetch reset vector
        self._mark("cold_reset")

    def do_coherent_enumeration(self):
        self._enter("coherent_enumeration")
        skip = {(self.board.chips[ci], port) for (ci, port) in self.plan.tcc_ports}
        result = yield from coherent_enumeration(
            self.ctx, self.board.bsp, skip_ports=skip,
            board_chips=self.board.chips,
        )
        if len(result.nodes) != len(self.board.chips):
            raise FirmwareError(
                f"{self.board.name}: enumerated {len(result.nodes)} nodes, "
                f"expected {len(self.board.chips)} -- coherent fabric broken?"
            )
        self.report.enumeration = result
        self._mark("coherent_enumeration")
        return result

    def force_noncoherent(self):
        """Write the debug register on our side of every TCC link and
        program link rates ("the link speed is increased"): TCC links to
        the plan rate, internal coherent links to full HT3 speed."""
        self._enter("force_noncoherent")
        tcc = {(ci, p) for (ci, p) in self.plan.tcc_ports}
        for chip, binding in self._tcc_bindings():
            ctl = chip.link_control(binding.port)
            ctl.force_noncoherent = True
            ctl.tcc_designated = True
            freq = chip.link_freq(binding.port)
            freq.width_bits = self.plan.link_width
            freq.gbit_per_lane = self.plan.gbit_per_lane
            yield from self.ctx.step(3)
        for ci, chip in enumerate(self.board.chips):
            for port, binding in chip.ports.items():
                if (ci, port) in tcc:
                    continue
                if binding.link.link_type != "coherent":
                    continue  # leave the southbridge link at its pace
                freq = chip.link_freq(port)
                freq.width_bits = 16
                freq.gbit_per_lane = INTERNAL_CHT_GBIT
                yield from self.ctx.step(1)
        self._mark("force_noncoherent")

    def warm_reset(self):
        self._enter("warm_reset")
        yield self.reset_rail.arrive()  # synchronized warm reset rail
        events = self.board.assert_warm_reset()
        if events:
            yield AllOf(self.sim, events)
        yield from self.ctx.step(4)
        # Verification: every designated TCC link must now be non-coherent,
        # every internal link must still be coherent.
        for chip, binding in self._tcc_bindings():
            if binding.link.link_type != "noncoherent":
                raise FirmwareError(
                    f"{chip.name} port {binding.port}: TCC link trained "
                    f"{binding.link.link_type!r} after warm reset -- was the "
                    "force-non-coherent debug register written?"
                )
            self.report.tcc_links_verified += 1
        tcc_ids = {(id(c), p) for (c, p) in
                   ((self.board.chips[ci], port) for (ci, port) in self.plan.tcc_ports)}
        for chip in self.board.chips:
            for port, binding in chip.ports.items():
                peer = getattr(binding.link, "attached", {}).get(
                    "B" if binding.side == "A" else "A"
                )
                if (id(chip), port) in tcc_ids:
                    continue
                if isinstance(peer, OpteronChip) and peer in self.board.chips:
                    if binding.link.link_type != "coherent":
                        raise FirmwareError(
                            f"{chip.name} port {port}: intra-board link lost "
                            "coherence at warm reset"
                        )
        self._mark("warm_reset")

    # -- fault recovery (outside the staged cold-boot sequence) --------------
    def warm_rejoin(self, chip_index: int):
        """Bring a crashed chip's links back through the warm-reset path.

        Used by :meth:`repro.cluster.system.TCCluster.rejoin_node`: the
        chip's registers survived (warm reset preserves state), so we
        re-apply each port's registered link persona and co-assert a
        warm retrain -- the same handshake the synchronized reset rail
        performed at boot, but scoped to one chip and *not* part of the
        ``_STAGES`` sequence (no ``_enter``).  Permanently dead TCC
        links are skipped; they stay routed-around.
        """
        chip = self.board.chips[chip_index]
        # Crash-consistency: write-combining buffers are not preserved
        # across a reset, so any residue is dropped before the links come
        # back -- pre-crash bytes leaking through a warm rejoin is
        # exactly the hole the lost-state model closes.  Normally a no-op
        # because ``crash_node`` already discarded the chip's volatile
        # state when the node went down.
        for core in chip.cores:
            core.wc.discard()
        events = []
        for binding in chip.ports.values():
            link = binding.link
            if getattr(link, "dead", False):
                continue
            ctl = chip.link_control(binding.port)
            freq = chip.link_freq(binding.port)
            fsm = binding.fsm
            fsm.set_force_noncoherent(binding.side, ctl.force_noncoherent)
            if freq.width_bits:
                fsm.program_rate(binding.side, freq.width_bits,
                                 freq.gbit_per_lane)
            # retrain() co-asserts both sides (short-circuited reset
            # lines), so the remote peer needs no firmware action.
            ev = fsm.retrain("warm")
            ev.add_callback(chip._make_status_updater(binding))
            events.append(ev)
        if events:
            yield AllOf(self.sim, events)
        yield from self.ctx.step(4)

    # -- boot-image snapshot support (repro.cluster.snapshot) -------------
    def capture_state(self) -> dict:
        """Snapshot this firmware's completed-boot state as plain data.

        Capture requires the full ``_STAGES`` sequence to have run; the
        enumeration result is stored as board-chip *indices* so a fresh
        board's chips can be substituted on restore."""
        if self.ctx.mode != "ram" or self._stage != len(_STAGES):
            raise FirmwareError(
                f"{self.board.name}: cannot capture before boot completes")
        enum = self.report.enumeration
        if enum.foreign_nodes:
            raise FirmwareError(
                f"{self.board.name}: enumeration claimed foreign nodes")
        chip_index = {id(c): i for i, c in enumerate(self.board.chips)}
        sb = self.board.southbridge
        return {
            "steps_executed": self.ctx.steps_executed,
            "stage_times": dict(self.report.stage_times),
            "tcc_links_verified": self.report.tcc_links_verified,
            "rom_shadow_addr": self.report.rom_shadow_addr,
            "has_nc_sb": any(dev is sb for dev in self.report.nc_devices),
            "enum_nodes": tuple(chip_index[id(c)] for c in enum.nodes),
            "enum_edges": tuple(enum.tree_edges),
            "sb_rx_packets": sb.rx_packets if sb is not None else None,
        }

    def restore_state(self, cap: dict) -> None:
        """Adopt a captured completed-boot state (image restore).

        Marks the whole stage sequence done (``boot()`` would raise if
        called afterwards, exactly like re-booting a live board), exits
        CAR mode, and rebuilds the report/enumeration against this
        board's chips.  The chip registers themselves are restored
        separately; :meth:`warm_rejoin` works unchanged afterwards."""
        board = self.board
        self.ctx.exit_car()
        self.ctx.steps_executed = cap["steps_executed"]
        self._stage = len(_STAGES)
        rep = self.report
        rep.stage_times = dict(cap["stage_times"])
        rep.tcc_links_verified = cap["tcc_links_verified"]
        rep.rom_shadow_addr = cap["rom_shadow_addr"]
        rep.nc_devices = [board.southbridge] if cap["has_nc_sb"] else []
        enum = rep.enumeration
        enum.nodes = [board.chips[i] for i in cap["enum_nodes"]]
        enum.tree_edges = list(cap["enum_edges"])
        if cap["sb_rx_packets"] is not None:
            board.southbridge.rx_packets = cap["sb_rx_packets"]

    def northbridge_init(self):
        """Program DRAM/MMIO base-limit pairs per the address plan."""
        self._enter("northbridge_init")
        enum = self.report.enumeration
        for ci, chip in enumerate(self.board.chips):
            plan = self.plan.node_plans[ci]
            for i in range(NUM_MAP_ENTRIES):
                chip.dram_pair(i).disable()
            for i in range(NUM_MMIO_ENTRIES):
                chip.mmio_pair(i).disable()
            for i, d in enumerate(plan.dram):
                dst = enum.nodeid_of(self.board.chips[d.dst_node])
                chip.dram_pair(i).program(d.base, d.limit, dst_node=dst)
                yield from self.ctx.step(1)
            for i, m in enumerate(plan.mmio):
                dst = enum.nodeid_of(self.board.chips[m.exit_node])
                chip.mmio_pair(i).program(
                    m.base, m.limit, dst_node=dst, dst_link=m.exit_port
                )
                yield from self.ctx.step(1)
            chip.nb.validate()
        self._mark("northbridge_init")

    def cpu_msr_init(self):
        """MTRRs: map the TCC MMIO windows for combining transmit.

        The WC map only needs the *union* of the node's MMIO windows:
        the global space is contiguous and the local supernode slab is
        contiguous, so that union is at most two runs no matter how many
        folded exit windows the interval routing fragments into.
        """
        self._enter("cpu_msr_init")
        for ci, chip in enumerate(self.board.chips):
            plan = self.plan.node_plans[ci]
            chip.mtrr.clear()
            runs = _merge_ranges([(m.base, m.limit) for m in plan.mmio])
            blocks = [blk for b, l in runs for blk in mtrr_cover(b, l)]
            if len(blocks) + 4 > chip.mtrr.num_variable:
                # Fam 10h ships eight variable MTRRs; a torus-scale run
                # decomposes into more power-of-two blocks than that.
                # The custom kernel the paper mandates (Section VI) maps
                # these windows write-combining through the PAT instead,
                # which has no range-count limit -- modeled as lifted
                # headroom (+4 spare for the kernel's own UC windows).
                chip.mtrr.num_variable = len(blocks) + 4
            for base, size in blocks:
                try:
                    chip.mtrr.add(base, size, MemoryType.WC)
                except MTRRError as exc:
                    raise FirmwareError(
                        f"{chip.name}: TCC window [{base:#x},"
                        f"{base + size:#x}) does not fit the MTRRs: {exc}"
                    ) from exc
            for _ in runs:
                yield from self.ctx.step(1)
        self._mark("cpu_msr_init")

    def memory_init(self):
        self._enter("memory_init")
        for chip in self.board.chips:
            chip.dram_config().program(chip.memory.size)
            yield from self.ctx.step(6)  # DRAM training is slow
        self._mark("memory_init")

    def do_exit_car(self):
        """Shadow the ROM into the BSP's DRAM and switch execution there."""
        self._enter("exit_car")
        bsp = self.board.bsp
        sb = self.board.southbridge
        image = sb.rom if sb is not None else b"\x00" * 4096
        if sb is not None:
            # Fetch the image over the ROM interface one last time.
            yield self.sim.timeout(sb.rom_read_ns(len(image)))
        yield bsp.memctrl.write(self.plan.rom_shadow_offset, image)
        self.report.rom_shadow_addr = (
            self.plan.node_plans[0].local_dram_base() + self.plan.rom_shadow_offset
        )
        self.ctx.exit_car()
        yield from self.ctx.step(4)
        self._mark("exit_car")

    def noncoherent_enumeration(self):
        """Enumerate I/O devices on non-coherent links -- but *not* on the
        TCC links ("This needs to be disabled for each TCCluster link")."""
        self._enter("noncoherent_enumeration")
        tcc = {(id(self.board.chips[ci]), p) for (ci, p) in self.plan.tcc_ports}
        for chip in self.board.chips:
            for port, binding in sorted(chip.ports.items()):
                link = binding.link
                if link.state != "active" or link.link_type != "noncoherent":
                    continue
                if (id(chip), port) in tcc:
                    chip.nb.counters.inc("nc_enum_skipped_tcc")
                    continue
                peer = getattr(link, "attached", {}).get(
                    "B" if binding.side == "A" else "A"
                )
                if isinstance(peer, Southbridge):
                    self.report.nc_devices.append(peer)
                yield from self.ctx.step(2)
        self._mark("noncoherent_enumeration")

    def post_init(self):
        self._enter("post_init")
        yield from self.ctx.step(8)
        self._mark("post_init")
        return self.report
