"""Tests for the NIC baseline models: calibration to the paper's quotes."""

import pytest

from repro.baselines import CONNECTX_IB, GIGE, TEN_GBE, NicLink
from repro.bench import run_nic_des_bandwidth, run_nic_des_latency
from repro.sim import Simulator
from repro.util.calibration import DEFAULT_IB


def test_analytic_ib_model_hits_paper_points():
    """Paper Section VI quotes for ConnectX: 200 / 1500 / 2500 MB/s at
    64 B / 1 KB / 1 MB, and ~1.4 us latency."""
    assert DEFAULT_IB.bandwidth_mbps(64) == pytest.approx(200, rel=0.02)
    assert DEFAULT_IB.bandwidth_mbps(1024) == pytest.approx(1500, rel=0.06)
    assert DEFAULT_IB.bandwidth_mbps(1 << 20) == pytest.approx(2500, rel=0.04)
    assert DEFAULT_IB.latency_ns(64) == pytest.approx(1400, rel=0.03)


def test_des_matches_analytic_model():
    """The event-driven NIC and the closed-form model must agree."""
    for size in (64, 1024, 65536):
        des = run_nic_des_bandwidth(CONNECTX_IB, size, messages=12)
        analytic = DEFAULT_IB.bandwidth_mbps(size)
        assert des == pytest.approx(analytic, rel=0.15)
    assert run_nic_des_latency(CONNECTX_IB, 64) == pytest.approx(
        DEFAULT_IB.latency_ns(64), rel=0.05
    )


def test_delivery_preserves_data_and_order():
    sim = Simulator()
    link = NicLink(sim, CONNECTX_IB)
    tx, rx = link.endpoint(0), link.endpoint(1)
    msgs = [bytes([i]) * (100 + i) for i in range(10)]
    got = []

    def sender():
        for m in msgs:
            yield from tx.send(m)

    def receiver():
        for _ in msgs:
            got.append((yield from rx.recv()))

    sim.process(sender())
    done = sim.process(receiver())
    sim.run_until_event(done)
    assert got == msgs


def test_bidirectional_nic():
    sim = Simulator()
    link = NicLink(sim, CONNECTX_IB)
    a, b = link.endpoint(0), link.endpoint(1)
    out = {}

    def side_a():
        yield from a.send(b"ping")
        out["a"] = yield from a.recv()

    def side_b():
        msg = yield from b.recv()
        yield from b.send(b"pong:" + msg)

    sim.process(side_b())
    done = sim.process(side_a())
    sim.run_until_event(done)
    assert out["a"] == b"pong:ping"


def test_empty_message_rejected():
    sim = Simulator()
    link = NicLink(sim, CONNECTX_IB)
    with pytest.raises(ValueError):
        next(link.endpoint(0).send(b""))


def test_ethernet_much_slower_than_ib():
    assert TEN_GBE.per_message_overhead_ns > CONNECTX_IB.per_message_overhead_ns
    assert GIGE.base_latency_ns > TEN_GBE.base_latency_ns
    lat_ib = run_nic_des_latency(CONNECTX_IB, 64, iters=5)
    lat_10g = run_nic_des_latency(TEN_GBE, 64, iters=5)
    assert lat_10g > 5 * lat_ib


def test_pipeline_fixed_latency_nonnegative():
    for p in (CONNECTX_IB, TEN_GBE, GIGE):
        assert p.pipeline_fixed_ns >= 0
