"""Minimal OS layer: page tables, the tccluster driver, process binding."""

from .driver import DriverError, TccDriver
from .linux import Kernel, KernelError, KernelPanic, UserProcess
from .pagetable import PAGE_SIZE, Mapping, PageFault, PageTable

__all__ = [
    "Kernel",
    "KernelError",
    "KernelPanic",
    "UserProcess",
    "TccDriver",
    "DriverError",
    "PageTable",
    "Mapping",
    "PageFault",
    "PAGE_SIZE",
]
