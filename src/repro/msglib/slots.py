"""Ring-slot wire format.

One slot is one cache line and therefore one HT posted write, which makes
it *atomic* at the receiver: when the sequence number is visible, the
whole slot is.  Multi-slot messages rely on per-VC in-order delivery: the
receiver syncs on the last slot's sequence number and may then bulk-read
the span.

Layout (little endian):

    u32 seq      -- global slot counter of this flow, starting at 1
    u32 len      -- total message bytes (first slot), remaining bytes
                    (continuation slots), or RENDEZVOUS_MARKER
    56 B payload
"""

from __future__ import annotations

import struct
from typing import Tuple

from .config import RENDEZVOUS_MARKER, SLOT_BYTES, SLOT_HEADER, SLOT_PAYLOAD

__all__ = [
    "pack_slot",
    "unpack_header",
    "unpack_payload",
    "pack_rendezvous_control",
    "unpack_rendezvous_control",
    "pack_feedback",
    "unpack_feedback",
    "slots_needed",
    "RENDEZVOUS_MARKER",
]

_HDR = struct.Struct("<II")
_RDZV = struct.Struct("<QQQ")   # heap offset, payload len, heap end cursor
_FB = struct.Struct("<QQ")      # slots consumed, heap bytes consumed


def slots_needed(msg_len: int) -> int:
    """Ring slots an eager message of ``msg_len`` bytes occupies."""
    if msg_len <= 0:
        raise ValueError("empty message")
    return (msg_len + SLOT_PAYLOAD - 1) // SLOT_PAYLOAD


def pack_slot(seq: int, length: int, payload: bytes) -> bytes:
    """Build the 64-byte slot image (payload zero-padded)."""
    if seq <= 0 or seq >= 1 << 32:
        raise ValueError(f"slot seq {seq} out of u32 range (must be nonzero)")
    if len(payload) > SLOT_PAYLOAD:
        raise ValueError(f"payload {len(payload)} exceeds {SLOT_PAYLOAD}")
    return _HDR.pack(seq, length) + payload.ljust(SLOT_PAYLOAD, b"\x00")


def unpack_header(raw: bytes) -> Tuple[int, int]:
    """(seq, len) from the first 8 bytes of a slot."""
    return _HDR.unpack_from(raw, 0)


def unpack_payload(raw: bytes, nbytes: int) -> bytes:
    if nbytes > SLOT_PAYLOAD:
        raise ValueError("slot payload overrun")
    return raw[SLOT_HEADER : SLOT_HEADER + nbytes]


def pack_rendezvous_control(seq: int, heap_offset: int, length: int,
                            heap_end: int) -> bytes:
    """A control slot announcing a large payload parked in the heap."""
    body = _RDZV.pack(heap_offset, length, heap_end)
    return _HDR.pack(seq, RENDEZVOUS_MARKER) + body.ljust(SLOT_PAYLOAD, b"\x00")


def unpack_rendezvous_control(raw: bytes) -> Tuple[int, int, int]:
    """(heap_offset, length, heap_end) from a control slot."""
    return _RDZV.unpack_from(raw, SLOT_HEADER)


def pack_feedback(slots_consumed: int, heap_consumed: int) -> bytes:
    """The 64-byte acknowledgement line a receiver writes back."""
    return _FB.pack(slots_consumed, heap_consumed).ljust(SLOT_BYTES, b"\x00")


def unpack_feedback(raw: bytes) -> Tuple[int, int]:
    return _FB.unpack_from(raw, 0)
