"""The HyperTransport link model: serialization, virtual channels, credits.

A :class:`Link` connects two endpoints (side ``A`` and side ``B``).  Each
direction has its own wires and consists of

* one transmit queue per virtual channel (posted / non-posted / response),
* a credit pool per VC granted by the receiver (HT coupled flow control),
* a physical serializer shared by the three VCs (FCFS arbitration),
* optional bit-error injection with HT3-style per-packet retry.

Delivery ordering is in-order **within** a VC; packets in different VCs
are pumped independently and may pass each other at the serializer --
exactly the property the message library relies on (paper Section IV.A:
"The HyperTransport fabric guarantees in-order delivery for packets
within a single virtual channel").

Timing: a packet occupies the serializer for ``wire_bytes / link_rate``
where the rate follows the currently trained width and frequency, then
experiences the propagation delay of the cable/trace before appearing in
the receiver's buffer.  Consuming a packet at the receiver returns its
flow-control credit to the transmitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import CreditPool, Event, Resource, Simulator, Store, Tracer, NULL_TRACER
from ..util.calibration import TimingModel, DEFAULT_TIMING
from .packet import Packet, VirtualChannel

__all__ = ["Link", "LinkSide", "LinkState", "LinkDownError", "LinkStats"]


class LinkDownError(RuntimeError):
    """Attempt to use a link that is not in the ACTIVE state."""


class LinkState:
    DOWN = "down"
    INIT = "init"
    ACTIVE = "active"


class LinkSide:
    A = "A"
    B = "B"

    @staticmethod
    def other(side: str) -> str:
        if side == LinkSide.A:
            return LinkSide.B
        if side == LinkSide.B:
            return LinkSide.A
        raise ValueError(f"unknown link side {side!r}")


@dataclass
class LinkStats:
    packets: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    #: Extra wire bytes burnt by HT3 retransmissions (kept separate so
    #: goodput and busy-time accounting stay consistent under BER).
    retry_wire_bytes: int = 0
    retries: int = 0
    drops: int = 0
    busy_ns: float = 0.0
    #: Time packets sat at the head of a TX queue waiting for a
    #: flow-control credit (receiver back-pressure).
    credit_stall_ns: float = 0.0

    def utilization(self, elapsed_ns: float) -> float:
        return self.busy_ns / elapsed_ns if elapsed_ns > 0 else 0.0

    def as_dict(self, elapsed_ns: float) -> Dict[str, float]:
        return {
            "packets": self.packets,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "retry_wire_bytes": self.retry_wire_bytes,
            "retries": self.retries,
            "drops": self.drops,
            "busy_ns": self.busy_ns,
            "credit_stall_ns": self.credit_stall_ns,
            "utilization": self.utilization(elapsed_ns),
        }


class _Direction:
    """One direction of the link (packets flowing tx_side -> rx_side)."""

    def __init__(self, link: "Link", tx_side: str):
        self.link = link
        self.tx_side = tx_side
        self.rx_side = LinkSide.other(tx_side)
        sim = link.sim
        self.txq: Dict[VirtualChannel, Store] = {
            vc: Store(
                sim,
                capacity=link.tx_queue_depth,
                name=f"{link.name}.{tx_side}.tx.{vc.name}",
            )
            for vc in VirtualChannel
        }
        self.credits: Dict[VirtualChannel, CreditPool] = {
            vc: CreditPool(
                sim,
                link.credits_per_vc,
                name=f"{link.name}.{tx_side}.cred.{vc.name}",
            )
            for vc in VirtualChannel
        }
        #: Arrival stream at the receiver; capacity is enforced by credits.
        self.rx: Store = Store(sim, capacity=None, name=f"{link.name}.{self.rx_side}.rx")
        self.phy = Resource(sim, 1, name=f"{link.name}.{tx_side}.phy")
        self.stats = LinkStats()
        for vc in VirtualChannel:
            sim.process(self._pump(vc), name=f"{link.name}.{tx_side}.pump.{vc.name}")

    def _pump(self, vc: VirtualChannel):
        link = self.link
        sim = link.sim
        txq = self.txq[vc]
        credits = self.credits[vc]
        while True:
            pkt = yield txq.get()
            wait_start = sim.now
            yield credits.take()
            if sim.now > wait_start:
                self.stats.credit_stall_ns += sim.now - wait_start
            yield self.phy.acquire()
            try:
                if link.state != LinkState.ACTIVE:
                    raise LinkDownError(
                        f"link {link.name} went {link.state} while transmitting"
                    )
                ser = link.serialization_ns(pkt)
                attempts = 1
                while link.ber > 0 and link._rng.random() < link.ber:
                    # HT3 retry: CRC failure detected, NAK + retransmission
                    # costs another serialization window plus turnaround.
                    yield sim.timeout(ser + link.retry_turnaround_ns)
                    self.stats.retries += 1
                    self.stats.busy_ns += ser + link.retry_turnaround_ns
                    self.stats.retry_wire_bytes += pkt.wire_bytes(
                        link.timing.ht_crc_bytes
                    )
                    attempts += 1
                    if attempts > link.max_retries:
                        self.stats.drops += 1
                        raise LinkDownError(
                            f"link {link.name}: packet dropped after "
                            f"{link.max_retries} retries"
                        )
                yield sim.timeout(ser)
                self.stats.busy_ns += ser
            finally:
                self.phy.release()
            self.stats.packets += 1
            self.stats.payload_bytes += len(pkt.data)
            self.stats.wire_bytes += pkt.wire_bytes(link.timing.ht_crc_bytes)
            link.tracer.emit(sim.now, link.name, "tx", (self.tx_side, vc.name, pkt.addr))
            sim.schedule(link.propagation_ns, self._deliver, pkt, vc)

    def _deliver(self, pkt: Packet, vc: VirtualChannel) -> None:
        self.rx.try_put(pkt)
        self.link.tracer.emit(
            self.link.sim.now, self.link.name, "rx", (self.rx_side, vc.name, pkt.addr)
        )


class Link:
    """A bidirectional HT link between two devices."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "link",
        timing: TimingModel = DEFAULT_TIMING,
        width_bits: Optional[int] = None,
        gbit_per_lane: Optional[float] = None,
        propagation_ns: Optional[float] = None,
        credits_per_vc: Optional[int] = None,
        tx_queue_depth: int = 4,
        ber: float = 0.0,
        seed: int = 0x7CC,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.name = name
        self.timing = timing
        self.width_bits = width_bits if width_bits is not None else timing.link_width_bits
        self.gbit_per_lane = (
            gbit_per_lane if gbit_per_lane is not None else timing.link_gbit_per_lane
        )
        self.propagation_ns = (
            propagation_ns if propagation_ns is not None else timing.link_propagation_ns
        )
        self.credits_per_vc = (
            credits_per_vc if credits_per_vc is not None else timing.link_credits_per_vc
        )
        self.tx_queue_depth = tx_queue_depth
        self.ber = ber
        self.max_retries = 16
        self.retry_turnaround_ns = 40.0
        self._rng = random.Random(seed)
        self.tracer = tracer
        self.state = LinkState.DOWN
        #: None until trained; then "coherent" or "noncoherent".
        self.link_type: Optional[str] = None
        self._dirs: Dict[str, _Direction] = {
            side: _Direction(self, side) for side in (LinkSide.A, LinkSide.B)
        }

    # -- rate -----------------------------------------------------------------
    @property
    def bytes_per_ns(self) -> float:
        """Current unidirectional link rate (bytes/ns)."""
        return self.width_bits * self.gbit_per_lane / 8.0

    def serialization_ns(self, pkt: Packet) -> float:
        return pkt.wire_bytes(self.timing.ht_crc_bytes) / self.bytes_per_ns

    # -- data path --------------------------------------------------------------
    def send(self, side: str, pkt: Packet) -> Event:
        """Enqueue ``pkt`` for transmission from ``side``.

        Returns the event that fires when the packet is accepted into the
        per-VC transmit queue (the back-pressure point for the SRQ).
        """
        if self.state != LinkState.ACTIVE:
            raise LinkDownError(f"link {self.name} is {self.state}")
        return self._dirs[side].txq[pkt.vc].put(pkt)

    def try_send(self, side: str, pkt: Packet) -> bool:
        if self.state != LinkState.ACTIVE:
            raise LinkDownError(f"link {self.name} is {self.state}")
        return self._dirs[side].txq[pkt.vc].try_put(pkt)

    def receive(self, side: str) -> Event:
        """Event yielding the next :class:`Packet` arriving at ``side``.

        Consuming the packet returns its flow-control credit.
        """
        d = self._dirs[LinkSide.other(side)]  # direction whose rx is `side`
        ev = d.rx.get()

        def _return_credit(done_ev: Event, d=d) -> None:
            d.credits[done_ev.value.vc].give()

        ev.add_callback(_return_credit)
        return ev

    def try_receive(self, side: str):
        """Non-blocking receive; returns ``(ok, packet)``."""
        d = self._dirs[LinkSide.other(side)]
        ok, pkt = d.rx.try_get()
        if ok:
            d.credits[pkt.vc].give()
        return ok, pkt

    def pending_rx(self, side: str) -> int:
        return len(self._dirs[LinkSide.other(side)].rx)

    def stats(self, side: str) -> LinkStats:
        """Transmit statistics for the direction sending *from* ``side``."""
        return self._dirs[side].stats

    def metrics(self, now: Optional[float] = None) -> Dict[str, Dict[str, float]]:
        """Per-direction counters + utilization, keyed by TX side.

        ``now`` defaults to the simulator clock; utilization is busy time
        over the full elapsed simulation time (links exist from t=0)."""
        elapsed = self.sim.now if now is None else now
        out: Dict[str, Dict[str, float]] = {}
        for side, d in self._dirs.items():
            m = d.stats.as_dict(elapsed)
            m["rx_pending"] = len(d.rx)
            out[side] = m
        return out

    # -- lifecycle ----------------------------------------------------------------
    def activate(self, link_type: str) -> None:
        """Bring the link up (called by the init FSM after training)."""
        if link_type not in ("coherent", "noncoherent"):
            raise ValueError(f"bad link type {link_type!r}")
        self.state = LinkState.ACTIVE
        self.link_type = link_type

    def bring_down(self) -> None:
        self.state = LinkState.DOWN
        self.link_type = None

    def set_rate(self, width_bits: int, gbit_per_lane: float) -> None:
        """Apply trained width/frequency (takes effect immediately)."""
        if width_bits not in (2, 4, 8, 16, 32):
            raise ValueError(f"illegal link width {width_bits}")
        if gbit_per_lane <= 0:
            raise ValueError(f"illegal lane rate {gbit_per_lane}")
        self.width_bits = width_bits
        self.gbit_per_lane = gbit_per_lane

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.name} {self.state} type={self.link_type} "
            f"{self.width_bits}b@{self.gbit_per_lane}G>"
        )
