#!/usr/bin/env python3
"""Size-adaptive allreduce on a 4x4 torus: watch the selector switch.

Demonstrates the collective-algorithms layer (DESIGN.md section 13):

1. boot a 16-blade torus2d(4,4) TCCluster,
2. show the Hamiltonian rank embedding (every ring transfer is one
   fabric hop on a grid topology),
3. print the derived binomial->ring crossover from the calibrated
   alpha/beta model,
4. sweep message sizes through the *adaptive* allreduce and report
   which algorithm the selector picked (via repro.obs collective
   counters),
5. force each algorithm at one bulk size and compare virtual-time
   costs: the ring's 2m(n-1)/n bytes vs binomial's log2(n) full-size
   hops.

Run:  python examples/allreduce_scaling.py
"""

import numpy as np

from repro import TCClusterSystem
from repro.middleware import Communicator
from repro.middleware.collectives import (
    allreduce_crossover_bytes,
    ring_hop_profile,
)
from repro.obs.metrics import collective_counters
from repro.topology import torus2d
from repro.util.units import KiB, fmt_time_ns

ROWS = COLS = 4


def run_allreduce(system, comms, nbytes, algorithm=None):
    """One allreduce across all ranks; returns (virtual ns, result[0])."""
    nel = max(1, nbytes // 8)

    def worker(c):
        local = np.arange(nel, dtype=np.float64) + c.rank
        return (yield from c.allreduce(local, op="sum",
                                       algorithm=algorithm))

    start = system.sim.now
    procs = [system.process(worker, c) for c in comms]
    system.run_until(system.sim.all_of(procs))
    results = [p.value for p in procs]
    expected = sum(range(len(comms)))  # element 0: sum of ranks
    assert all(r[0] == expected for r in results)
    assert all(r.tobytes() == results[0].tobytes() for r in results)
    return system.sim.now - start, results[0][0]


def main() -> None:
    topo = torus2d(ROWS, COLS)
    system = TCClusterSystem(topo).boot()
    n = system.nranks
    print(f"Booted torus2d({ROWS},{COLS}): {n} ranks, "
          f"{len(topo.edges)} TCC links")

    comms = [Communicator.for_cluster(system.cluster, r) for r in range(n)]

    # -- the topology-aware embedding --------------------------------------
    c0 = comms[0]
    hops = ring_hop_profile(topo, c0.ring_order, c0._rank_supernodes)
    print(f"Hamiltonian ring embedding: order {c0.ring_order}")
    print(f"  single-hop: {c0.ring_single_hop} "
          f"(max hops per ring step: {max(hops)})")

    # -- the derived crossover ---------------------------------------------
    cross = allreduce_crossover_bytes(n)
    print(f"Derived binomial->ring crossover at {n} ranks: {cross} bytes")

    # -- adaptive sweep: what does the selector pick? ----------------------
    print(f"\n{'size':>8}  {'algorithm':<12} {'virtual time':>14}")
    counters = collective_counters(system.sim)
    for nbytes in (256, 1 * KiB, 4 * KiB, 16 * KiB, 64 * KiB):
        before = dict(counters.algorithms)
        elapsed, _ = run_allreduce(system, comms, nbytes)
        picked = [k for k, v in counters.algorithms.items()
                  if v != before.get(k, 0)]
        algo = picked[0].split(".", 1)[1] if picked else "?"
        print(f"{nbytes:>8}  {algo:<12} {fmt_time_ns(elapsed):>14}")

    # -- forced comparison at one bulk size --------------------------------
    bulk = 64 * KiB
    print(f"\nForced algorithms at {bulk // KiB} KiB:")
    times = {}
    for algo in ("binomial", "ring", "rabenseifner"):
        times[algo], _ = run_allreduce(system, comms, bulk, algorithm=algo)
        print(f"  {algo:<12} {fmt_time_ns(times[algo]):>14}")
    print(f"  ring speedup over binomial: "
          f"{times['binomial'] / times['ring']:.2f}x")


if __name__ == "__main__":
    main()
