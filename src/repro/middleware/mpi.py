"""A small MPI-flavored layer on top of the message library.

Paper Section IV.A: "To support a Message Passing Interface (MPI)
protocol like MVAPICH an underlying application programming interface
(API) is required that enables sending and receiving of messages" and
Section VII: "The next step in our work will be to port a middleware
software layer like MPI or GASNet on top of our simple message library."

This is that port, mpi4py-flavored: point-to-point with tag matching and
an unexpected-message queue, plus the standard collectives (binomial
broadcast and reduce, dissemination barrier, ring allgather, gather /
scatter).  All methods are generators driven inside simulation processes;
payloads are ``bytes`` (NumPy arrays go through ``tobytes``/frombuffer
for the reduction collectives).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..msglib import MessageLibrary
from ..sim import Resource

__all__ = ["Communicator", "Request", "ANY_TAG", "MpiError", "REDUCE_OPS"]

ANY_TAG = -1

_ENV = struct.Struct("<iI")  # tag, payload length

#: CPU cost of one MPI call above the transport (argument checking,
#: envelope packing, matching) -- MVAPICH-era software path lengths.
SOFTWARE_OVERHEAD_NS = 25.0


class MpiError(RuntimeError):
    pass


REDUCE_OPS: Dict[str, Callable] = {
    "sum": np.add,
    "max": np.maximum,
    "min": np.minimum,
    "prod": np.multiply,
}


class Request:
    """Handle for a nonblocking operation (mpi4py's Request, in spirit)."""

    def __init__(self, process):
        self._process = process

    def test(self) -> bool:
        """True once the operation completed."""
        return self._process.triggered

    def wait(self):
        """Generator: block until completion; returns the result (the
        received payload for irecv, None for isend)."""
        value = yield self._process
        return value


class Communicator:
    """MPI_COMM_WORLD over TCCluster endpoints."""

    def __init__(self, lib: MessageLibrary):
        self.lib = lib
        self.sim = lib.sim
        self.rank = lib.rank
        self.size = lib.nranks
        #: per-source unexpected queue: (tag, payload)
        self._unexpected: Dict[int, Deque[Tuple[int, bytes]]] = {}
        # Endpoints are single-producer/single-consumer; nonblocking ops
        # serialize per peer behind these locks.
        self._tx_locks: Dict[int, Resource] = {}
        self._rx_locks: Dict[int, Resource] = {}

    def _lock(self, table: Dict[int, Resource], peer: int) -> Resource:
        lock = table.get(peer)
        if lock is None:
            lock = table[peer] = Resource(self.sim, 1)
        return lock

    # ------------------------------------------------------------------
    # Point to point
    # ------------------------------------------------------------------
    def send(self, data: bytes, dest: int, tag: int = 0):
        """Blocking-ish send (returns when the stores retired + flushed)."""
        if dest == self.rank:
            raise MpiError("self-send is not supported")
        if tag < 0:
            raise MpiError(f"invalid tag {tag}")
        yield self.sim.timeout(SOFTWARE_OVERHEAD_NS)
        lock = self._lock(self._tx_locks, dest)
        yield lock.acquire()
        try:
            ep = self.lib.connect(dest)
            yield from ep.send(_ENV.pack(tag, len(data)) + bytes(data))
            yield from ep.flush()
        finally:
            lock.release()

    def recv(self, source: int, tag: int = ANY_TAG):
        """Receive from ``source`` matching ``tag`` (queues mismatches)."""
        if source == self.rank:
            raise MpiError("self-receive is not supported")
        yield self.sim.timeout(SOFTWARE_OVERHEAD_NS)
        lock = self._lock(self._rx_locks, source)
        yield lock.acquire()
        try:
            q = self._unexpected.setdefault(source, deque())
            for i, (got_tag, payload) in enumerate(q):
                if tag in (ANY_TAG, got_tag):
                    del q[i]
                    return payload
            ep = self.lib.connect(source)
            while True:
                raw = yield from ep.recv()
                got_tag, length = _ENV.unpack_from(raw, 0)
                payload = raw[_ENV.size : _ENV.size + length]
                if tag in (ANY_TAG, got_tag):
                    return payload
                q.append((got_tag, payload))
        finally:
            lock.release()

    # -- nonblocking ---------------------------------------------------------
    def isend(self, data: bytes, dest: int, tag: int = 0) -> Request:
        """Start a send; returns a :class:`Request` to wait on."""
        return Request(self.sim.process(self.send(data, dest, tag),
                                        name=f"isend->{dest}"))

    def irecv(self, source: int, tag: int = ANY_TAG) -> Request:
        """Start a receive; ``wait()`` yields the payload.  Concurrent
        receives from the same source serialize in issue order."""
        return Request(self.sim.process(self.recv(source, tag),
                                        name=f"irecv<-{source}"))

    def sendrecv(self, data: bytes, peer: int, tag: int = 0):
        """Exchange with ``peer`` (deadlock-free: send first is safe since
        sends complete locally on a TCCluster)."""
        yield from self.send(data, peer, tag)
        reply = yield from self.recv(peer, tag)
        return reply

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self):
        """Dissemination barrier (log2 n rounds of token messages)."""
        n, me = self.size, self.rank
        if n == 1:
            return
        dist = 1
        rnd = 0
        while dist < n:
            yield from self.send(struct.pack("<i", rnd), (me + dist) % n,
                                 tag=_BARRIER_TAG + rnd)
            yield from self.recv((me - dist) % n, tag=_BARRIER_TAG + rnd)
            dist <<= 1
            rnd += 1

    def bcast(self, data: Optional[bytes], root: int = 0):
        """Binomial-tree broadcast (MPICH algorithm); returns the data on
        every rank."""
        n, me = self.size, self.rank
        if n == 1:
            return data
        rel = (me - root) % n
        mask = 1
        while mask < n:
            if rel & mask:
                src = (me - mask) % n
                data = yield from self.recv(src, tag=_BCAST_TAG)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if rel + mask < n:
                dst = (me + mask) % n
                yield from self.send(data, dst, tag=_BCAST_TAG)
            mask >>= 1
        return data

    def gather(self, data: bytes, root: int = 0):
        """Gather equal-size blocks at ``root``; returns list there."""
        if self.rank == root:
            parts: List[Optional[bytes]] = [None] * self.size
            parts[self.rank] = bytes(data)
            for src in range(self.size):
                if src == root:
                    continue
                parts[src] = yield from self.recv(src, tag=_GATHER_TAG)
            return parts
        yield from self.send(data, root, tag=_GATHER_TAG)
        return None

    def scatter(self, parts: Optional[Sequence[bytes]], root: int = 0):
        if self.rank == root:
            if parts is None or len(parts) != self.size:
                raise MpiError("root must supply one block per rank")
            for dst in range(self.size):
                if dst == root:
                    continue
                yield from self.send(parts[dst], dst, tag=_SCATTER_TAG)
            return bytes(parts[root])
        data = yield from self.recv(root, tag=_SCATTER_TAG)
        return data

    def allgather(self, data: bytes):
        """Ring allgather; returns the list of every rank's block."""
        n, me = self.size, self.rank
        blocks: List[Optional[bytes]] = [None] * n
        blocks[me] = bytes(data)
        right = (me + 1) % n
        left = (me - 1) % n
        current = bytes(data)
        for step in range(n - 1):
            yield from self.send(current, right, tag=_ALLGATHER_TAG + step)
            current = yield from self.recv(left, tag=_ALLGATHER_TAG + step)
            blocks[(me - step - 1) % n] = current
        return blocks

    def alltoall(self, blocks: Sequence[bytes]):
        """Personalized all-to-all: ``blocks[d]`` goes to rank d; returns
        the list of blocks received (index = source rank).  Linear
        pairwise exchange -- optimal on a fabric where sends complete
        locally."""
        n, me = self.size, self.rank
        if len(blocks) != n:
            raise MpiError("alltoall needs one block per rank")
        out: List[Optional[bytes]] = [None] * n
        out[me] = bytes(blocks[me])
        for step in range(1, n):
            dst = (me + step) % n
            src = (me - step) % n
            yield from self.send(blocks[dst], dst, tag=_ALLTOALL_TAG + step)
            out[src] = yield from self.recv(src, tag=_ALLTOALL_TAG + step)
        return out

    def reduce(self, array: np.ndarray, op: str = "sum", root: int = 0):
        """Binomial-tree reduction of a NumPy array; result at root."""
        fn = REDUCE_OPS.get(op)
        if fn is None:
            raise MpiError(f"unknown reduce op {op!r}")
        n = self.size
        rel = (self.rank - root) % n
        acc = np.array(array, copy=True)
        mask = 1
        while mask < n:
            if rel & mask:
                dst = (self.rank - mask) % n
                yield from self.send(acc.tobytes(), dst, tag=_REDUCE_TAG)
                return None
            src_rel = rel | mask
            if src_rel < n:
                src = (src_rel + root) % n
                raw = yield from self.recv(src, tag=_REDUCE_TAG)
                other = np.frombuffer(raw, dtype=acc.dtype).reshape(acc.shape)
                acc = fn(acc, other)
            mask <<= 1
        return acc

    def allreduce(self, array: np.ndarray, op: str = "sum"):
        """Reduce to rank 0, then broadcast."""
        acc = yield from self.reduce(array, op=op, root=0)
        raw = acc.tobytes() if self.rank == 0 else None
        raw = yield from self.bcast(raw, root=0)
        result = np.frombuffer(raw, dtype=array.dtype).reshape(np.shape(array))
        return result.copy()


_BARRIER_TAG = 1 << 20
_BCAST_TAG = 1 << 21
_GATHER_TAG = 1 << 22
_SCATTER_TAG = 1 << 23
_ALLGATHER_TAG = 1 << 24
_REDUCE_TAG = 1 << 25
_ALLTOALL_TAG = 1 << 26
