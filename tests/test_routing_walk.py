"""Global interval-routing correctness: walk every packet path.

For every (source node, destination address) pair in a topology, walk the
hop sequence the address maps imply: at each node the address either
falls in a DRAM directive (arrival) or an MMIO directive (exit through a
specific port to a specific neighbour).  The walk must terminate at the
*owning* supernode within the topology's diameter, for every source --
the property paper Section IV.C/D's design depends on.

This is a pure check over the planned register contents (no DES), so it
covers far more pairs than end-to-end message tests can.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    TccEdge,
    chain,
    mesh2d,
    ring,
    uniform_cluster,
)
from repro.util.units import MiB

M = 16 * MiB  # minimal granularity keeps walks cheap


def walk(amap, src_supernode: int, addr: int, max_hops: int = 64):
    """Follow the address maps; returns (arrival_supernode, hops)."""
    topo = amap.topology
    s = src_supernode
    node = 0
    hops = 0
    while True:
        plan = amap.plan_for(s, node)
        for d in plan.dram:
            if d.base <= addr < d.limit:
                return s, hops
        exit_ = None
        for m in plan.mmio:
            if m.base <= addr < m.limit:
                exit_ = m
                break
        assert exit_ is not None, (
            f"address {addr:#x} unmapped at supernode {s} node {node}"
        )
        # Find the edge leaving (s, exit_node, exit_port).
        edge = None
        for e in topo.edges:
            for ep in (e.a, e.b):
                if (ep.supernode, ep.node, ep.port) == (
                    s, exit_.exit_node, exit_.exit_port
                ):
                    edge = e
                    break
            if edge:
                break
        assert edge is not None, "MMIO directive points at a missing link"
        other = edge.other(s)
        s, node = other.supernode, other.node
        hops += 1
        assert hops <= max_hops, "routing loop detected"


@pytest.mark.parametrize("topo_factory", [
    lambda: chain(5),
    lambda: ring(5),
    lambda: ring(8),
    lambda: mesh2d(3, 3),
    lambda: mesh2d(4, 4),
    lambda: mesh2d(2, 5),
])
def test_every_pair_routes_to_owner(topo_factory):
    topo = topo_factory()
    amap = uniform_cluster(topo, M)
    n = topo.num_supernodes
    for src in range(n):
        for dst in range(n):
            base, limit = amap.supernode_ranges[dst]
            for probe in (base, base + (limit - base) // 2, limit - 64):
                arrived, hops = walk(amap, src, probe)
                assert arrived == dst
                if src == dst:
                    assert hops == 0
                else:
                    assert hops == topo.hop_distance(src, dst) or hops >= 1


def test_mesh_walk_hops_match_dimension_order():
    """On the mesh, YX dimension-ordered routing gives exactly
    |dr| + |dc| hops for every pair."""
    topo = mesh2d(4, 4)
    amap = uniform_cluster(topo, M)
    for src in range(16):
        for dst in range(16):
            r0, c0 = divmod(src, 4)
            r1, c1 = divmod(dst, 4)
            base, _ = amap.supernode_ranges[dst]
            _, hops = walk(amap, src, base)
            assert hops == abs(r0 - r1) + abs(c0 - c1)


@given(rows=st.integers(2, 5), cols=st.integers(2, 5),
       src=st.integers(0, 24), probe_frac=st.floats(0, 0.999))
@settings(max_examples=60, deadline=None)
def test_random_probe_addresses_route_home(rows, cols, src, probe_frac):
    topo = mesh2d(rows, cols)
    n = rows * cols
    src %= n
    amap = uniform_cluster(topo, M)
    addr = int(probe_frac * amap.limit) & ~0x3F
    owner = amap.supernode_of_addr(addr)
    arrived, hops = walk(amap, src, addr)
    assert arrived == owner
    assert hops <= rows + cols
