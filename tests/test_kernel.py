"""Tests for the OS layer: page tables, driver policy, numactl binding."""

import pytest

from repro.core import TCClusterSystem
from repro.kernel import DriverError, PageFault, PageTable
from repro.opteron import MemoryType
from repro.util.units import MiB


@pytest.fixture(scope="module")
def booted():
    return TCClusterSystem.two_board_prototype().boot()


# ---------------------------------------------------------------------------
# Page table
# ---------------------------------------------------------------------------

def test_pagetable_map_lookup():
    pt = PageTable()
    m = pt.map(0x10000, 0x2000, MemoryType.WC, readable=False)
    assert pt.lookup(0x10000) is m
    assert pt.lookup(0x11FFF) is m
    with pytest.raises(PageFault):
        pt.lookup(0x12000)


def test_pagetable_alignment_enforced():
    pt = PageTable()
    with pytest.raises(PageFault):
        pt.map(0x10001, 0x1000, MemoryType.UC)
    with pytest.raises(PageFault):
        pt.map(0x10000, 0x800, MemoryType.UC)


def test_pagetable_double_map_rejected():
    pt = PageTable()
    pt.map(0x10000, 0x1000, MemoryType.UC)
    with pytest.raises(PageFault, match="already mapped"):
        pt.map(0x10000, 0x1000, MemoryType.WC)


def test_pagetable_unmap():
    pt = PageTable()
    m = pt.map(0x10000, 0x1000, MemoryType.UC)
    pt.unmap(m)
    with pytest.raises(PageFault):
        pt.lookup(0x10000)
    pt.map(0x10000, 0x1000, MemoryType.WB)  # reusable


def test_pagetable_write_only_semantics():
    """TCCluster remote windows: store ok, load faults."""
    pt = PageTable()
    pt.map(0x10000, 0x1000, MemoryType.WC, readable=False, writable=True)
    pt.check_store(0x10080, 64)
    with pytest.raises(PageFault, match="write-only"):
        pt.check_load(0x10080, 8)


def test_pagetable_access_spanning_mappings_faults():
    pt = PageTable()
    pt.map(0x10000, 0x1000, MemoryType.UC)
    with pytest.raises(PageFault):
        pt.lookup(0x10FF8, 16)  # crosses into unmapped space


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def test_driver_remote_window_is_write_only_wc(booted):
    cl = booted.cluster
    proc = cl.spawn_process(0, name="t")
    drv = cl.kernels[0].driver_for(0)
    peer_base = cl.ranks[2].base
    m = drv.mmap_remote(proc.pagetable, peer_base, 1 * MiB)
    assert m.mtype is MemoryType.WC
    assert m.writable and not m.readable


def test_driver_rejects_remote_map_of_local_range(booted):
    cl = booted.cluster
    proc = cl.spawn_process(0, name="t2")
    drv = cl.kernels[0].driver_for(0)
    with pytest.raises(DriverError, match="local"):
        drv.mmap_remote(proc.pagetable, cl.ranks[0].base, 1 * MiB)


def test_driver_rejects_out_of_space_window(booted):
    cl = booted.cluster
    proc = cl.spawn_process(0, name="t3")
    drv = cl.kernels[0].driver_for(0)
    with pytest.raises(DriverError, match="global"):
        drv.mmap_remote(proc.pagetable, cl.amap.limit, 1 * MiB)


def test_driver_local_export_is_uc_and_mtrr_programmed(booted):
    cl = booted.cluster
    info = cl.ranks[0]
    proc = cl.spawn_process(0, name="t4")
    drv = cl.kernels[0].driver_for(0)
    base = info.base + 128 * MiB
    m = drv.mmap_local_export(proc.pagetable, base, 64 * 1024)
    assert m.mtype is MemoryType.UC
    assert info.chip.mtrr.type_for(base) is MemoryType.UC


def test_driver_export_policy(booted):
    """Section IV.D: the driver restricts which local ranges remote nodes
    may be given."""
    cl = booted.cluster
    info = cl.ranks[1]
    proc = cl.spawn_process(1, name="t5")
    drv = cl.kernels[info.supernode].driver_for(info.chip_index)
    drv.restrict_export(info.base + 16 * MiB, info.base + 32 * MiB)
    # inside the window: fine
    drv.mmap_local_export(proc.pagetable, info.base + 16 * MiB, 4096)
    # outside: denied
    with pytest.raises(DriverError, match="denied"):
        drv.mmap_local_export(proc.pagetable, info.base + 64 * MiB, 4096)


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------

def test_custom_kernel_disables_smc(booted):
    for kernel in booted.cluster.kernels:
        assert kernel.smc_safe()
        assert kernel.mode == "64-bit long"
        assert kernel.booted


def test_stock_kernel_would_leak_smc():
    """A stock kernel leaves SMC broadcast generation on -- the unsafe
    configuration the custom kernel exists to prevent."""
    from repro.kernel import Kernel

    sys_ = TCClusterSystem.two_board_prototype()
    cl = sys_.cluster
    # Boot firmware normally, then install a *stock* kernel on board 0.
    fw_procs = [cl.sim.process(fw.boot()) for fw in cl.firmwares]
    cl.sim.run_until_event(cl.sim.all_of(fw_procs))
    stock = Kernel(cl.boards[0], fw_procs[0].value, custom=False)
    kp = cl.sim.process(stock.boot(cl.amap.base, cl.amap.limit, {}))
    cl.sim.run_until_event(kp)
    assert not stock.smc_safe()
    assert cl.boards[0].chips[0].send_interrupt(0x20, smc=True)


def test_numactl_binding(booted):
    cl = booted.cluster
    proc = cl.spawn_process(cl.rank_of(0, 1), name="bind-test")
    assert proc.socket == 1
    proc.bind_to(0)
    assert proc.socket == 0
    assert proc.core is cl.boards[0].chips[0].cores[0]


def test_spawn_before_boot_rejected():
    from repro.kernel import Kernel, KernelError
    from repro.firmware import Board, TYAN_S2912E
    from repro.firmware.boot import BootReport
    from repro.firmware.enumeration import EnumerationResult
    from repro.sim import Simulator

    sim = Simulator()
    board = Board(sim, "b", layout=TYAN_S2912E, memory_bytes=256 * MiB)
    k = Kernel(board, BootReport(board, EnumerationResult()))
    with pytest.raises(KernelError):
        k.spawn("p")
