"""Cluster topology graphs: supernodes and the TCC links between them.

Paper Section IV.E/F: supernodes (boards of 1-8 coherent processors) are
interconnected by non-coherent TCCluster links through a backplane.  Each
Opteron has four HT links; after coherent fabric and southbridge usage, a
small number of ports per supernode remain for TCC links, so practical
topologies are low-degree: chains, rings, 2D meshes/tori.

A :class:`ClusterTopology` is a labeled graph: vertices are supernode
indices, edges carry which (node-within-supernode, port) each end uses.

Grid topologies (``mesh2d``/``torus2d``/``torus3d``) additionally carry
their dimension structure (``dims``/``wrap``), which enables
**dimension-ordered shortest next-hop computation**: route the most
significant dimension to completion first, then the next, and so on.
With row-major supernode numbering this is what keeps interval routing
feasible at scale -- every routing direction's destination set is a
union of at most a couple of contiguous address runs (the "folded
ranges" of :mod:`repro.topology.address_assignment`), independent of the
cluster size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Endpoint",
    "TccEdge",
    "ClusterTopology",
    "chain",
    "ring",
    "mesh2d",
    "torus2d",
    "torus3d",
    "fully_connected",
    "TopologyError",
]


class TopologyError(ValueError):
    """Ill-formed topology (port reuse, disconnected graph...)."""


@dataclass(frozen=True)
class Endpoint:
    """One end of a TCC link: which supernode, node within it, and port."""

    supernode: int
    node: int
    port: int


@dataclass(frozen=True)
class TccEdge:
    a: Endpoint
    b: Endpoint

    def other(self, supernode: int) -> Endpoint:
        if self.a.supernode == supernode:
            return self.b
        if self.b.supernode == supernode:
            return self.a
        raise KeyError(f"edge does not touch supernode {supernode}")

    def end_at(self, supernode: int) -> Endpoint:
        if self.a.supernode == supernode:
            return self.a
        if self.b.supernode == supernode:
            return self.b
        raise KeyError(f"edge does not touch supernode {supernode}")


class ClusterTopology:
    """Supernode graph with per-edge port assignments."""

    def __init__(self, num_supernodes: int, edges: Iterable[TccEdge],
                 kind: str = "custom", shape: Optional[Tuple[int, ...]] = None,
                 wrap: Optional[Tuple[bool, ...]] = None):
        if num_supernodes <= 0:
            raise TopologyError("need at least one supernode")
        self.num_supernodes = num_supernodes
        self.edges: List[TccEdge] = list(edges)
        self.kind = kind
        self.shape = shape
        #: Per-dimension wraparound flags; non-None marks a *grid* topology
        #: (row-major numbering over ``shape``) eligible for
        #: dimension-ordered routing.
        self.wrap = wrap
        self._adjacency: Dict[int, List[TccEdge]] = {
            i: [] for i in range(num_supernodes)
        }
        used_ports: set = set()
        for e in self.edges:
            for ep in (e.a, e.b):
                if not 0 <= ep.supernode < num_supernodes:
                    raise TopologyError(f"endpoint {ep} references unknown supernode")
                key = (ep.supernode, ep.node, ep.port)
                if key in used_ports:
                    raise TopologyError(
                        f"port reused: supernode {ep.supernode} node {ep.node} "
                        f"port {ep.port}"
                    )
                used_ports.add(key)
            if e.a.supernode == e.b.supernode:
                raise TopologyError("self-loop TCC link")
            self._adjacency[e.a.supernode].append(e)
            self._adjacency[e.b.supernode].append(e)
        #: (supernode, dim, sign) -> exit edge, built for grid topologies.
        self._dim_edges: Dict[Tuple[int, int, int], TccEdge] = {}
        if wrap is not None:
            if shape is None or len(shape) != len(wrap):
                raise TopologyError("wrap flags require a matching shape")
            self._index_grid_edges()

    @property
    def is_grid(self) -> bool:
        return self.wrap is not None

    # ------------------------------------------------------------------
    # Grid coordinate helpers (row-major numbering over ``shape``)
    # ------------------------------------------------------------------
    def coords_of(self, supernode: int) -> Tuple[int, ...]:
        if self.shape is None:
            raise TopologyError(f"{self.kind} topology has no grid shape")
        out = []
        for size in reversed(self.shape):
            out.append(supernode % size)
            supernode //= size
        return tuple(reversed(out))

    def supernode_at(self, coords: Sequence[int]) -> int:
        if self.shape is None:
            raise TopologyError(f"{self.kind} topology has no grid shape")
        s = 0
        for c, size in zip(coords, self.shape):
            s = s * size + (c % size)
        return s

    def _index_grid_edges(self) -> None:
        """Classify every edge as (dim, sign) from its coordinate delta.

        A size-2 dimension has a single physical link serving both
        directions (the wrap edge would be a parallel link), so both
        signs map to it.
        """
        assert self.shape is not None and self.wrap is not None
        for e in self.edges:
            ca = self.coords_of(e.a.supernode)
            cb = self.coords_of(e.b.supernode)
            deltas = [(d, cb[d] - ca[d]) for d in range(len(ca))
                      if cb[d] != ca[d]]
            if len(deltas) != 1:
                raise TopologyError(
                    f"grid edge {e.a.supernode}->{e.b.supernode} spans "
                    f"{len(deltas)} dimensions"
                )
            dim, delta = deltas[0]
            size = self.shape[dim]
            two_ring = self.wrap[dim] and size == 2
            if abs(delta) == 1 and not two_ring:
                sign_a = 1 if delta > 0 else -1
            elif self.wrap[dim] and abs(delta) == size - 1:
                # Wrap edge (or the single edge of a size-2 ring): from
                # the high end, the positive direction leads to 0.
                sign_a = 1 if delta < 0 else -1
            else:
                raise TopologyError(
                    f"edge {e.a.supernode}->{e.b.supernode} is not a grid "
                    f"neighbour step in dimension {dim}"
                )
            if two_ring:
                for sign in (-1, 1):
                    self._dim_edges[(e.a.supernode, dim, sign)] = e
                    self._dim_edges[(e.b.supernode, dim, sign)] = e
            else:
                self._dim_edges[(e.a.supernode, dim, sign_a)] = e
                self._dim_edges[(e.b.supernode, dim, -sign_a)] = e

    def _dim_step(self, src_c: int, dst_c: int, dim: int) -> int:
        """Direction (+1/-1) dimension-ordered routing takes in ``dim``.

        Shortest modular distance on wrapped dimensions, ties broken
        toward +; plain sign of the delta on mesh dimensions.
        """
        assert self.shape is not None and self.wrap is not None
        size = self.shape[dim]
        if not self.wrap[dim]:
            return 1 if dst_c > src_c else -1
        fwd = (dst_c - src_c) % size
        bwd = (src_c - dst_c) % size
        return 1 if fwd <= bwd else -1

    def dimension_next_hop(self, src: int, dst: int) -> TccEdge:
        """First edge of the dimension-ordered shortest path src -> dst.

        Dimensions are corrected most-significant first, which with
        row-major numbering keeps each exit direction's destination set
        contiguous (the folded-interval property)."""
        if not self.is_grid:
            raise TopologyError(f"{self.kind} topology is not a grid")
        sc = self.coords_of(src)
        dc = self.coords_of(dst)
        for dim in range(len(sc)):
            if sc[dim] != dc[dim]:
                sign = self._dim_step(sc[dim], dc[dim], dim)
                edge = self._dim_edges.get((src, dim, sign))
                if edge is None:
                    raise TopologyError(
                        f"no grid edge at supernode {src} dim {dim} "
                        f"sign {sign:+d}"
                    )
                return edge
        raise TopologyError(f"dimension_next_hop({src}, {dst}): src == dst")

    def diameter(self) -> int:
        """Hop diameter; analytic for grids, BFS eccentricity otherwise."""
        if self.is_grid:
            assert self.shape is not None and self.wrap is not None
            return sum(size // 2 if w else size - 1
                       for size, w in zip(self.shape, self.wrap))
        worst = 0
        for src in range(self.num_supernodes):
            dist = self._bfs_distances(src)
            if len(dist) != self.num_supernodes:
                raise TopologyError("diameter of a disconnected topology")
            worst = max(worst, max(dist.values()))
        return worst

    def _bfs_distances(self, src: int,
                       dead_ids: frozenset = frozenset()) -> Dict[int, int]:
        from collections import deque

        dist = {src: 0}
        q = deque([src])
        while q:
            s = q.popleft()
            for n, e in self.neighbors(s):
                if dead_ids and id(e) in dead_ids:
                    continue
                if n not in dist:
                    dist[n] = dist[s] + 1
                    q.append(n)
        return dist

    def neighbors(self, supernode: int) -> List[Tuple[int, TccEdge]]:
        return [(e.other(supernode).supernode, e) for e in self._adjacency[supernode]]

    def degree(self, supernode: int) -> int:
        return len(self._adjacency[supernode])

    def is_connected(self) -> bool:
        if self.num_supernodes == 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            s = stack.pop()
            for n, _ in self.neighbors(s):
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        return len(seen) == self.num_supernodes

    def _dim_walk_edges(self, src: int, dst: int) -> List[TccEdge]:
        """Every edge of the dimension-ordered walk src -> dst, in order."""
        edges = []
        cur = src
        while cur != dst:
            e = self.dimension_next_hop(cur, dst)
            edges.append(e)
            cur = e.other(cur).supernode
        return edges

    def shortest_next_hops(self, src: int,
                           exclude: Iterable[TccEdge] = ()) -> Dict[int, TccEdge]:
        """For every destination, the first edge on a shortest path.

        Grid topologies use dimension-ordered routing (which is what the
        folded MMIO interval scheme encodes); everything else falls back
        to plain BFS.  ``exclude`` removes edges from consideration (dead
        TCC links during fault recovery); destinations only reachable
        through them are simply absent from the result.

        Post-fault grid routing mixes the two: a destination keeps its
        dimension-ordered exit iff the *entire* dim-ordered walk to it
        avoids the dead edges, else it takes a shortest-path exit in the
        surviving graph, chosen with dimension-ordered *preference* (the
        first preferred direction that still lies on a shortest path).
        The preference matters for register pressure, not correctness:
        detoured destinations that share a region pick the same exit, so
        their address ranges stay folded instead of fragmenting across
        the register file.  The mix is loop-free: "dim-walk is clean" is
        suffix-closed (the walk from the next hop is a suffix of this
        one, since the hop choice depends only on (current, dst)), so
        once a packet enters dim-ordered mode it stays there and
        terminates; while in detour mode each hop strictly shrinks the
        surviving-graph distance.
        """
        if not self.is_grid:
            return self._bfs_next_hops(src, exclude)
        dead = frozenset(map(id, exclude))
        if not dead:
            return {dst: self.dimension_next_hop(src, dst)
                    for dst in range(self.num_supernodes) if dst != src}
        first_edge: Dict[int, TccEdge] = {}
        dirty: List[int] = []
        for dst in range(self.num_supernodes):
            if dst == src:
                continue
            walk = self._dim_walk_edges(src, dst)
            if not any(id(e) in dead for e in walk):
                first_edge[dst] = walk[0]
            else:
                dirty.append(dst)
        if dirty:
            dist_src = self._bfs_distances(src, dead_ids=dead)
            # (dim, sign) -> alive edge at src, plus each neighbour's
            # distance field in the surviving graph (degree-many BFS runs).
            dir_edge = {(dim, sign): e
                        for (s, dim, sign), e in self._dim_edges.items()
                        if s == src and id(e) not in dead}
            nbr_dist = {}
            for e in dir_edge.values():
                n = e.other(src).supernode
                if n not in nbr_dist:
                    nbr_dist[n] = self._bfs_distances(n, dead_ids=dead)
            # A FIXED direction order (not "toward dst") keeps the exit
            # choice uniform across the detoured region: neighbouring
            # destinations pick the same DAG edge wherever one serves
            # them all, so their address ranges merge into few runs.
            directions = sorted(dir_edge, key=lambda k: (k[0], -k[1]))
            for dst in dirty:
                d = dist_src.get(dst)
                if d is None:
                    continue  # unreachable: absent from the table
                chosen = None
                for key in directions:
                    e = dir_edge[key]
                    n = e.other(src).supernode
                    if nbr_dist[n].get(dst) == d - 1:
                        chosen = e
                        break
                if chosen is not None:  # always, for builder-made grids
                    first_edge[dst] = chosen
        return first_edge

    def _bfs_next_hops(self, src: int,
                       exclude: Iterable[TccEdge] = ()) -> Dict[int, TccEdge]:
        from collections import deque

        dead = set(map(id, exclude))
        first_edge: Dict[int, TccEdge] = {}
        dist = {src: 0}
        q = deque([src])
        while q:
            s = q.popleft()
            for n, e in self.neighbors(s):
                if id(e) in dead:
                    continue
                if n not in dist:
                    dist[n] = dist[s] + 1
                    first_edge[n] = first_edge.get(s, e) if s != src else e
                    q.append(n)
        return first_edge

    def hop_distance(self, src: int, dst: int,
                     exclude: Iterable[TccEdge] = ()) -> int:
        from collections import deque

        if src == dst:
            return 0
        dead = set(map(id, exclude))
        dist = {src: 0}
        q = deque([src])
        while q:
            s = q.popleft()
            for n, e in self.neighbors(s):
                if id(e) in dead:
                    continue
                if n not in dist:
                    dist[n] = dist[s] + 1
                    if n == dst:
                        return dist[n]
                    q.append(n)
        raise TopologyError(f"no path from {src} to {dst}")

    # ------------------------------------------------------------------
    # Hamiltonian ring embedding (ring-collective neighbor order)
    # ------------------------------------------------------------------
    def hamiltonian_supernode_ring(self) -> List[int]:
        """Supernode order for neighbor-embedded ring collectives.

        Returns a permutation of all supernodes, starting at supernode 0,
        in which consecutive entries are grid neighbors wherever the shape
        permits:

        * a grid with at least one even dimension yields a true
          Hamiltonian *cycle* via the reserved-line construction (the even
          dimension becomes the outer axis; its line through the origin is
          reserved as the return path while a boustrophedon snake covers
          the rest), so every hop -- including the closing one -- is a
          single mesh edge, with no reliance on wraparound links;
        * an all-odd grid has no Hamiltonian cycle on a mesh (bipartite
          parity), so it degrades to the serpentine Hamiltonian *path*:
          every interior hop is a single edge, only the closing hop is
          multi-hop;
        * non-grid topologies return identity order.
        """
        if not self.is_grid or self.shape is None:
            return list(range(self.num_supernodes))
        shape = tuple(self.shape)
        even_dim = next((d for d, size in enumerate(shape) if size % 2 == 0),
                        None)
        if even_dim is None:
            return [self.supernode_at(c) for c in _snake_coords(shape)]
        rest_shape = shape[:even_dim] + shape[even_dim + 1:]
        rest = _snake_coords(rest_shape)
        height = shape[even_dim]

        def at(row: int, rest_coords: Tuple[int, ...]) -> int:
            coords = (rest_coords[:even_dim] + (row,)
                      + rest_coords[even_dim:])
            return self.supernode_at(coords)

        if len(rest) == 1:
            # Degenerate snake (all other dims are size 1): plain line.
            return [at(row, rest[0]) for row in range(height)]
        ring: List[int] = [at(0, rest[0])]
        # Boustrophedon over rows, covering the non-reserved columns; the
        # even height means the last row ends back beside the reserved
        # column, and the return path down that column closes the cycle.
        for row in range(height):
            cols = rest[1:] if row % 2 == 0 else list(reversed(rest[1:]))
            ring.extend(at(row, c) for c in cols)
        ring.extend(at(row, rest[0]) for row in range(height - 1, 0, -1))
        return ring


def _snake_coords(shape: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    """Boustrophedon coordinate enumeration over a grid ``shape``.

    Consecutive coordinates differ by one step in exactly one dimension
    (a Hamiltonian path of the grid graph, no wraparound edges used).
    """
    if not shape:
        return [()]
    head, rest = shape[0], shape[1:]
    sub = _snake_coords(rest)
    out: List[Tuple[int, ...]] = []
    for i in range(head):
        block = sub if i % 2 == 0 else list(reversed(sub))
        out.extend((i,) + c for c in block)
    return out


# ---------------------------------------------------------------------------
# Builders.  Ports: we reserve port 0 of node 0 for the southbridge and use
# the caller-provided port plan otherwise; default plans put TCC links on
# the last node's free ports, matching the prototype (HTX on node 1).
# ---------------------------------------------------------------------------

def _edge(sa: int, na: int, pa: int, sb: int, nb: int, pb: int) -> TccEdge:
    return TccEdge(Endpoint(sa, na, pa), Endpoint(sb, nb, pb))


def chain(n: int, node: int = 0, left_port: int = 1, right_port: int = 2) -> ClusterTopology:
    """A 1-D chain of supernodes (the 2-board prototype is chain(2))."""
    edges = [
        _edge(i, node, right_port, i + 1, node, left_port) for i in range(n - 1)
    ]
    return ClusterTopology(n, edges, kind="chain", shape=(n,), wrap=(False,))


def ring(n: int, node: int = 0, left_port: int = 1, right_port: int = 2) -> ClusterTopology:
    if n < 3:
        raise TopologyError("a ring needs at least 3 supernodes")
    edges = [
        _edge(i, node, right_port, (i + 1) % n, node, left_port) for i in range(n)
    ]
    return ClusterTopology(n, edges, kind="ring", shape=(n,), wrap=(True,))


def mesh2d(rows: int, cols: int, node: int = 0,
           ports: Sequence[int] = (0, 1, 2, 3)) -> ClusterTopology:
    """rows x cols mesh; ports (west, east, north, south).

    The paper's physical-implementation section argues an n x n mesh with
    blades arranged n horizontal x n vertical minimizes trace length.
    """
    if rows <= 0 or cols <= 0:
        raise TopologyError("mesh dimensions must be positive")
    pw, pe, pn, ps = ports

    def sid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(_edge(sid(r, c), node, pe, sid(r, c + 1), node, pw))
            if r + 1 < rows:
                edges.append(_edge(sid(r, c), node, ps, sid(r + 1, c), node, pn))
    return ClusterTopology(rows * cols, edges, kind="mesh2d",
                           shape=(rows, cols), wrap=(False, False))


def torus2d(rows: int, cols: int, node: int = 0,
            ports: Sequence[int] = (0, 1, 2, 3)) -> ClusterTopology:
    if rows < 2 or cols < 2:
        raise TopologyError("a 2D torus needs at least 2x2 supernodes")
    pw, pe, pn, ps = ports

    def sid(r: int, c: int) -> int:
        return r * cols + c

    # A size-2 ring dimension has a single physical link per pair (the
    # wrap edge would be a parallel link), hence the ``or size > 2``.
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols or cols > 2:
                edges.append(_edge(sid(r, c), node, pe,
                                   sid(r, (c + 1) % cols), node, pw))
            if r + 1 < rows or rows > 2:
                edges.append(_edge(sid(r, c), node, ps,
                                   sid((r + 1) % rows, c), node, pn))
    return ClusterTopology(rows * cols, edges, kind="torus2d",
                           shape=(rows, cols), wrap=(True, True))


def torus3d(x: int, y: int, z: int) -> ClusterTopology:
    """x * y * z 3D torus (APEnet+-style direct network).

    Six TCC ports are needed per supernode, more than one Opteron's four
    HT links, so the port plan spans a 2-chip board: the x links live on
    node 0 ports 0/1, the y links on node 1 ports 0/1, and the z links
    split across chips (z- on node 0 port 2, z+ on node 1 port 2),
    leaving port 3 of both chips for the coherent board interconnect.
    Boards are headless (no southbridge port remains).
    """
    if min(x, y, z) < 2:
        raise TopologyError("a 3D torus needs at least 2 supernodes per axis")
    shape = (x, y, z)
    # Per dimension: ((node, port) of the minus-side end,
    #                 (node, port) of the plus-side end).
    plan = (((0, 0), (0, 1)), ((1, 0), (1, 1)), ((0, 2), (1, 2)))

    def sid(ix: int, iy: int, iz: int) -> int:
        return (ix * y + iy) * z + iz

    edges = []
    for ix in range(x):
        for iy in range(y):
            for iz in range(z):
                coords = (ix, iy, iz)
                s = sid(ix, iy, iz)
                for dim, size in enumerate(shape):
                    c = coords[dim]
                    if c + 1 < size or size > 2:
                        nc = list(coords)
                        nc[dim] = (c + 1) % size
                        t = sid(*nc)
                        (mn, mp), (pn, pp) = plan[dim]
                        edges.append(_edge(s, pn, pp, t, mn, mp))
    return ClusterTopology(x * y * z, edges, kind="torus3d", shape=shape,
                           wrap=(True, True, True))


def fully_connected(n: int, node: int = 0) -> ClusterTopology:
    """All-to-all; limited by the four HT ports per node, so n <= 5 with a
    single-node supernode (ports 0..3)."""
    if n > 5:
        raise TopologyError(
            "fully connected topology exceeds the 4 HT ports per node"
        )
    edges = []
    port_next = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            pi, pj = port_next[i], port_next[j]
            port_next[i] += 1
            port_next[j] += 1
            edges.append(_edge(i, node, pi, j, node, pj))
    return ClusterTopology(n, edges, kind="full", shape=(n,))
