"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` (legacy editable install) on offline
machines where PEP 517 editable builds would require bdist_wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
