"""Discrete-event simulation engine underpinning the TCCluster models."""

from .engine import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Interrupt,
    Process,
    SimFeatures,
    SimulationError,
    Simulator,
    Timeout,
)
from .parallel import (
    PointResult,
    SweepError,
    SweepPoint,
    SweepReport,
    merge_snapshots,
    resolve_jobs,
    run_sweep,
)
from .queues import Barrier, CreditPool, Doorbell, Gate, Resource, Store
from .trace import (
    NULL_TRACER,
    Counter,
    IntervalAccumulator,
    OnlineStats,
    Tracer,
    TraceRecord,
)

__all__ = [
    "Simulator",
    "SimFeatures",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "DeadlockError",
    "Store",
    "Resource",
    "Barrier",
    "CreditPool",
    "Doorbell",
    "Gate",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
    "Counter",
    "OnlineStats",
    "IntervalAccumulator",
    "SweepPoint",
    "PointResult",
    "SweepReport",
    "SweepError",
    "run_sweep",
    "resolve_jobs",
    "merge_snapshots",
]
