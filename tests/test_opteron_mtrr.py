"""Tests for MTRRs and memory-type resolution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opteron.mtrr import MTRR, MTRRError, MTRRSet, MemoryType


def test_default_type_applies_without_ranges():
    m = MTRRSet(default=MemoryType.WB)
    assert m.type_for(0x1234) is MemoryType.WB


def test_range_overrides_default():
    m = MTRRSet()
    m.add(0x1000_0000, 0x1000_0000, MemoryType.WC)
    assert m.type_for(0x1800_0000) is MemoryType.WC
    assert m.type_for(0x2000_0000) is MemoryType.WB  # one past the limit
    assert m.type_for(0x0FFF_FFFF) is MemoryType.WB


def test_size_must_be_power_of_two():
    with pytest.raises(MTRRError):
        MTRR(0, 0x3000, MemoryType.UC)


def test_base_must_be_size_aligned():
    with pytest.raises(MTRRError):
        MTRR(0x1000, 0x2000, MemoryType.UC)


def test_overlap_precedence_uc_wins():
    """x86 rule: UC beats WC beats WB when ranges overlap."""
    m = MTRRSet()
    m.add(0x0, 1 << 28, MemoryType.WC)
    m.add(0x0, 1 << 24, MemoryType.UC)
    assert m.type_for(0x100) is MemoryType.UC
    assert m.type_for(1 << 25) is MemoryType.WC


def test_range_type_mixed_takes_most_restrictive():
    m = MTRRSet()
    m.add(0x0, 1 << 24, MemoryType.UC)
    # An access straddling the UC/WB boundary is effectively UC.
    assert m.type_for_range((1 << 24) - 8, 16) is MemoryType.UC
    assert m.type_for_range(1 << 24, 16) is MemoryType.WB


def test_only_eight_variable_mtrrs():
    m = MTRRSet()
    for i in range(8):
        m.add(i << 30, 1 << 30, MemoryType.UC)
    with pytest.raises(MTRRError):
        m.add(8 << 30, 1 << 30, MemoryType.UC)


def test_clear_releases_registers():
    m = MTRRSet()
    m.add(0, 1 << 24, MemoryType.UC)
    m.clear()
    assert m.type_for(0) is MemoryType.WB
    assert len(m.ranges) == 0


def test_cacheability_flags():
    assert MemoryType.WB.cacheable
    assert not MemoryType.UC.cacheable
    assert not MemoryType.WC.cacheable
    assert MemoryType.WC.combines_writes
    assert not MemoryType.UC.combines_writes


@given(
    exp=st.integers(min_value=12, max_value=32),
    base_mult=st.integers(min_value=0, max_value=15),
    probe=st.integers(min_value=0, max_value=(1 << 37) - 1),
)
@settings(max_examples=200)
def test_covers_matches_interval_arithmetic(exp, base_mult, probe):
    size = 1 << exp
    base = base_mult * size
    r = MTRR(base, size, MemoryType.WC)
    assert r.covers(probe) == (base <= probe < base + size)
