"""Response-matching table (SrcTag allocation).

Paper Section IV.A:

    "Each read request creates an entry in the response matching table
    located in the northbridge and receives a tag.  A matching response
    will carry the same tag and can be thereby routed without having to
    carry an address.  The number of these tags is, however, limited and
    they are always mapped to a specific NodeID.  This fact makes it
    impossible for our approach to route responses which means that the
    software can only communicate via writes and may not use read
    accesses."

This module models exactly that: a 32-entry table whose entries are bound
to the *NodeID* the request was routed to.  The northbridge consults it
before emitting any non-posted request; requests whose target resolves
over a TCCluster link cannot obtain a routable tag and raise
:class:`UnroutableResponseError` -- the writes-only property of the paper
is thereby enforced mechanically rather than by convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["ResponseMatchingTable", "TagExhaustedError", "UnroutableResponseError"]

#: 5-bit SrcTag space per unit.
NUM_TAGS = 32


class TagExhaustedError(RuntimeError):
    """All 32 SrcTags are outstanding; the requester must stall."""


class UnroutableResponseError(RuntimeError):
    """A non-posted request would need a response routed across a
    TCCluster link, which the tag/NodeID binding cannot express."""


@dataclass
class _Entry:
    dest_nodeid: int
    context: Any


class ResponseMatchingTable:
    """Tracks outstanding non-posted requests by SrcTag."""

    def __init__(self) -> None:
        self._entries: Dict[int, _Entry] = {}
        self._free = list(range(NUM_TAGS - 1, -1, -1))  # allocate 0 first
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def available(self) -> int:
        return len(self._free)

    def allocate(self, dest_nodeid: int, context: Any = None) -> int:
        """Reserve a tag for a request routed to ``dest_nodeid``.

        ``dest_nodeid`` must be a concrete NodeID inside the local coherent
        fabric; the caller (northbridge) is responsible for refusing to
        allocate for TCC-link targets (see
        :meth:`repro.opteron.northbridge.Northbridge.issue_request`).
        """
        if dest_nodeid is None or dest_nodeid < 0:
            raise UnroutableResponseError(
                "non-posted request targets a destination with no routable "
                "NodeID (TCCluster links carry posted writes only)"
            )
        if not self._free:
            raise TagExhaustedError("all 32 SrcTags outstanding")
        tag = self._free.pop()
        self._entries[tag] = _Entry(dest_nodeid, context)
        self.high_water = max(self.high_water, len(self._entries))
        return tag

    def match(self, tag: int) -> Any:
        """Consume the entry for an arriving response; returns its context."""
        entry = self._entries.pop(tag, None)
        if entry is None:
            raise KeyError(f"response with unknown SrcTag {tag}")
        self._free.append(tag)
        return entry.context

    def peek_dest(self, tag: int) -> Optional[int]:
        entry = self._entries.get(tag)
        return entry.dest_nodeid if entry else None

    def outstanding_to(self, nodeid: int) -> int:
        return sum(1 for e in self._entries.values() if e.dest_nodeid == nodeid)
