"""A board (*Supernode*): 1..8 Opterons, internal coherent links, one
southbridge on the boot-strap processor.

Paper Section IV.E: "A Supernode consists of four or eight processors
which are interconnected through coherent HyperTransport links and form a
shared memory system ... Each Supernode contains a southbridge connected
to the BSP which configures the other application processors."

The prototype board (Tyan S2912E, Section V) is the two-chip instance:
node0 -- node1 coherent link, southbridge on node0, HTX (the TCC port) on
node1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ht.link import Link
from ..opteron import OpteronChip, wire_link
from ..sim import Event, Simulator
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import MiB
from .southbridge import Southbridge

__all__ = ["Board", "BoardError", "TYAN_S2912E"]


class BoardError(RuntimeError):
    """Board construction / reset sequencing error."""


@dataclass(frozen=True)
class BoardLayout:
    """Port plan of a board model."""

    num_chips: int
    #: internal coherent edges: (chip_a, port_a, chip_b, port_b)
    coherent_edges: Tuple[Tuple[int, int, int, int], ...]
    #: southbridge attach point: (chip, port), or None for headless boards
    sb_attach: Optional[Tuple[int, int]]


#: The prototype's board: two sockets, one coherent link between them (the
#: second inter-socket link is left for the single-board TCC experiment),
#: southbridge on node0 port 0, HTX slot reachable from node1.
TYAN_S2912E = BoardLayout(
    num_chips=2,
    coherent_edges=((0, 3, 1, 3),),
    sb_attach=(0, 0),
)


def single_chip_layout(sb_port: Optional[int] = None) -> BoardLayout:
    """One-processor supernode; ``sb_port=None`` models a headless blade
    whose ROM hangs off a shared management path (frees all 4 HT ports for
    TCC links, needed by interior mesh positions)."""
    return BoardLayout(
        num_chips=1,
        coherent_edges=(),
        sb_attach=(0, sb_port) if sb_port is not None else None,
    )


class Board:
    """The physical supernode: chips + internal links + southbridge."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        layout: BoardLayout = TYAN_S2912E,
        memory_bytes: int = 256 * MiB,
        timing: TimingModel = DEFAULT_TIMING,
        skew_tolerance_ns: float = 100.0,
    ):
        self.sim = sim
        self.name = name
        self.layout = layout
        self.timing = timing
        self.chips: List[OpteronChip] = [
            OpteronChip(sim, f"{name}.n{i}", memory_bytes=memory_bytes, timing=timing)
            for i in range(layout.num_chips)
        ]
        self.internal_links: List[Link] = []
        for (ca, pa, cb, pb) in layout.coherent_edges:
            link = wire_link(
                sim, self.chips[ca], pa, self.chips[cb], pb,
                name=f"{name}.cht{ca}-{cb}", timing=timing,
                skew_tolerance_ns=skew_tolerance_ns,
            )
            self.internal_links.append(link)
        self.southbridge: Optional[Southbridge] = None
        if layout.sb_attach is not None:
            chip_idx, port = layout.sb_attach
            self.southbridge = Southbridge(sim, name=f"{name}.sb")
            wire_link(
                sim, self.chips[chip_idx], port, self.southbridge, 0,
                name=f"{name}.sblink", timing=timing,
                skew_tolerance_ns=skew_tolerance_ns,
            )

    @property
    def bsp(self) -> OpteronChip:
        """The boot-strap processor (always chip 0 in this model)."""
        return self.chips[0]

    def used_ports(self, chip_idx: int) -> set:
        return set(self.chips[chip_idx].ports.keys())

    def free_ports(self, chip_idx: int) -> set:
        from ..opteron.registers import NUM_LINKS

        return set(range(NUM_LINKS)) - self.used_ports(chip_idx)

    def assert_cold_reset(self) -> List[Event]:
        """Power-on: every device asserts cold reset on every attached
        link; returns the per-link training events."""
        events: List[Event] = []
        for chip in self.chips:
            chip.regs.reset(cold=True)
            chip.caches.flush_all()
            chip.mtrr.clear()
            for binding in chip.ports.values():
                ev = binding.fsm.assert_reset(binding.side, "cold")
                ev.add_callback(chip._make_status_updater(binding))
                events.append(ev)
        if self.southbridge is not None:
            events.append(self.southbridge.assert_reset("cold"))
        return events

    def assert_warm_reset(self) -> List[Event]:
        """The platform warm-reset rail: every chip applies pending link
        config and retrains; the southbridge participates too."""
        events: List[Event] = []
        for chip in self.chips:
            events.extend(chip._issue_warm_reset())
        if self.southbridge is not None:
            events.append(self.southbridge.assert_reset("warm"))
        return events

    def start(self) -> None:
        for chip in self.chips:
            chip.start()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Board {self.name} chips={len(self.chips)}>"
