"""Tests for the MESI protocol and the coherent-system model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import (
    Action,
    CoherentSystem,
    ProtocolError,
    State,
    check_line_invariant,
    local_read,
    local_write,
    probe_invalidate,
    probe_shared,
    read_fill_state,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Protocol tables (pure)
# ---------------------------------------------------------------------------

def test_read_transitions():
    assert local_read(State.MODIFIED).action is Action.NONE
    assert local_read(State.EXCLUSIVE).action is Action.NONE
    assert local_read(State.SHARED).action is Action.NONE
    t = local_read(State.INVALID)
    assert t.action is Action.FETCH and t.new_state is State.SHARED


def test_write_transitions():
    assert local_write(State.MODIFIED).action is Action.NONE
    t = local_write(State.EXCLUSIVE)
    assert t.action is Action.NONE and t.new_state is State.MODIFIED
    assert local_write(State.SHARED).action is Action.UPGRADE
    assert local_write(State.INVALID).action is Action.FETCH_EXCLUSIVE


def test_probe_shared_downgrades():
    assert probe_shared(State.MODIFIED) == (State.SHARED, True)
    assert probe_shared(State.EXCLUSIVE) == (State.SHARED, False)
    assert probe_shared(State.SHARED) == (State.SHARED, False)
    assert probe_shared(State.INVALID) == (State.INVALID, False)


def test_probe_invalidate_drops_everyone():
    assert probe_invalidate(State.MODIFIED) == (State.INVALID, True)
    assert probe_invalidate(State.SHARED) == (State.INVALID, False)


def test_read_fill_state():
    assert read_fill_state(any_other_sharer=False) is State.EXCLUSIVE
    assert read_fill_state(any_other_sharer=True) is State.SHARED


def test_invariant_checker():
    check_line_invariant([State.SHARED, State.SHARED, State.INVALID])
    check_line_invariant([State.MODIFIED, State.INVALID])
    with pytest.raises(ProtocolError):
        check_line_invariant([State.MODIFIED, State.MODIFIED])
    with pytest.raises(ProtocolError):
        check_line_invariant([State.EXCLUSIVE, State.SHARED])


# ---------------------------------------------------------------------------
# System behaviour
# ---------------------------------------------------------------------------

def run_ops(system, ops):
    """ops: list of (node_id, 'r'/'w', addr[, value]); returns results."""
    sim = system.sim
    results = []

    def driver():
        for op in ops:
            if op[1] == "r":
                v = yield from system.nodes[op[0]].read(op[2])
                results.append(v)
            else:
                yield from system.nodes[op[0]].write(op[2], op[3])
                results.append(None)

    done = sim.process(driver())
    sim.run_until_event(done)
    return results


def test_read_miss_fills_exclusive_then_shared():
    sim = Simulator()
    s = CoherentSystem(sim, 4)
    run_ops(s, [(0, "r", 0x40)])
    assert s.line_state(0x40, 0) is State.EXCLUSIVE
    run_ops(s, [(1, "r", 0x40)])
    assert s.line_state(0x40, 0) is State.SHARED
    assert s.line_state(0x40, 1) is State.SHARED


def test_write_invalidates_sharers():
    sim = Simulator()
    s = CoherentSystem(sim, 4)
    run_ops(s, [(0, "r", 0x40), (1, "r", 0x40), (2, "w", 0x40, 99)])
    assert s.line_state(0x40, 2) is State.MODIFIED
    assert s.line_state(0x40, 0) is State.INVALID
    assert s.line_state(0x40, 1) is State.INVALID


def test_read_your_writes_and_remote_visibility():
    sim = Simulator()
    s = CoherentSystem(sim, 4)
    got = run_ops(s, [(0, "w", 0x80, 1234), (0, "r", 0x80), (3, "r", 0x80)])
    assert got[1] == 1234  # own write visible
    assert got[2] == 1234  # dirty data supplied to the remote reader


def test_silent_e_to_m_upgrade():
    sim = Simulator()
    s = CoherentSystem(sim, 2)
    run_ops(s, [(0, "r", 0xC0)])
    probes_before = s.nodes[0].stats.probes_sent
    run_ops(s, [(0, "w", 0xC0, 5)])
    assert s.line_state(0xC0, 0) is State.MODIFIED
    assert s.nodes[0].stats.probes_sent == probes_before  # silent upgrade


def test_broadcast_probes_everyone():
    sim = Simulator()
    s = CoherentSystem(sim, 8, protocol="broadcast")
    run_ops(s, [(0, "w", 0x100, 1)])
    assert s.nodes[0].stats.probes_sent == 7


def test_directory_probes_only_sharers():
    sim = Simulator()
    s = CoherentSystem(sim, 8, protocol="directory")
    run_ops(s, [(0, "r", 0x100), (1, "r", 0x100), (2, "w", 0x100, 1)])
    # Node 2's RFO probed exactly nodes 0 and 1.
    assert s.nodes[2].stats.probes_sent == 2
    assert s.nodes[2].stats.directory_lookups >= 1


def test_broadcast_costs_more_latency_at_scale():
    def avg_write_latency(n, protocol):
        sim = Simulator()
        s = CoherentSystem(sim, n, protocol=protocol)

        def w(node):
            for i in range(10):
                yield from node.write(0x40 * (i % 4), i)

        done = sim.process(w(s.nodes[0]))
        sim.run_until_event(done)
        return sim.now / 10

    assert avg_write_latency(32, "broadcast") > avg_write_latency(4, "broadcast")


def test_concurrent_writers_never_violate_invariant():
    sim = Simulator()
    s = CoherentSystem(sim, 8)

    def hammer(node, seed):
        for i in range(40):
            yield from node.write(0x40 * ((seed + i) % 4), seed * 1000 + i)
            yield from node.read(0x40 * ((seed * 3 + i) % 4))

    procs = [sim.process(hammer(n, i)) for i, n in enumerate(s.nodes)]
    sim.run_until_event(sim.all_of(procs))
    assert s.check_all_invariants() > 0


def test_last_writer_wins_value():
    sim = Simulator()
    s = CoherentSystem(sim, 4)
    run_ops(s, [(0, "w", 0x40, 1), (1, "w", 0x40, 2), (2, "r", 0x40)])
    got = run_ops(s, [(3, "r", 0x40)])
    assert got[0] == 2


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.sampled_from("rw"), st.integers(0, 3)),
        min_size=1, max_size=60,
    )
)
@settings(max_examples=40, deadline=None)
def test_sequential_consistency_against_reference(ops):
    """Property: for a serial op stream, every read returns the value of
    the latest preceding write to that line (data never lost/corrupted),
    and invariants hold after every step."""
    sim = Simulator()
    s = CoherentSystem(sim, 4)
    ref = {}
    seq = []
    for i, (node, kind, lineno) in enumerate(ops):
        addr = 0x40 * lineno
        if kind == "w":
            seq.append((node, "w", addr, i + 1))
            ref[addr] = i + 1
        else:
            seq.append((node, "r", addr))
    results = run_ops(s, seq)
    ref2 = {}
    for (op, res) in zip(seq, results):
        if op[1] == "w":
            ref2[op[2]] = op[3]
        else:
            assert res == ref2.get(op[2], 0)
    s.check_all_invariants()


def test_bad_protocol_name_rejected():
    with pytest.raises(ValueError):
        CoherentSystem(Simulator(), 4, protocol="magic")
