"""Opteron K10 node model: registers, caches, WC buffers, northbridge."""

from .caches import CacheHierarchy, CacheLevel
from .chip import InterruptRecord, OpteronChip, PortBinding, wire_link
from .core import CoreFault, CpuCore
from .memory import Memory, MemoryController, MemoryError_
from .mtrr import MTRR, MTRRError, MTRRSet, MemoryType
from .northbridge import AddressMapError, MasterAbort, Northbridge, RouteKind, RouteResult
from .registers import (
    GRANULARITY,
    NUM_LINKS,
    NUM_MAP_ENTRIES,
    RESET_NODEID,
    DramConfigAccessor,
    DramPairAccessor,
    Function,
    HtInitControlAccessor,
    LinkControlAccessor,
    LinkFreqAccessor,
    MiscControlAccessor,
    MmioPairAccessor,
    NodeIDAccessor,
    RegisterFile,
    RoutingTableAccessor,
)
from .wc import FlushOp, WriteCombiner

__all__ = [
    "OpteronChip",
    "PortBinding",
    "InterruptRecord",
    "wire_link",
    "CpuCore",
    "CoreFault",
    "Northbridge",
    "RouteKind",
    "RouteResult",
    "MasterAbort",
    "AddressMapError",
    "Memory",
    "MemoryController",
    "MemoryError_",
    "MTRR",
    "MTRRSet",
    "MTRRError",
    "MemoryType",
    "CacheHierarchy",
    "CacheLevel",
    "WriteCombiner",
    "FlushOp",
    "RegisterFile",
    "Function",
    "NodeIDAccessor",
    "RoutingTableAccessor",
    "LinkControlAccessor",
    "LinkFreqAccessor",
    "HtInitControlAccessor",
    "DramPairAccessor",
    "MmioPairAccessor",
    "DramConfigAccessor",
    "MiscControlAccessor",
    "GRANULARITY",
    "NUM_LINKS",
    "NUM_MAP_ENTRIES",
    "RESET_NODEID",
]
