"""The MESI cache-coherence protocol (state machine, pure logic).

Paper Section I/III: "This requires a cache coherency mechanism [5] like
MESI which guarantees data consistency in the system at all times.  While
such a coherency model facilitates programmability of shared memory
systems it dramatically limits their scalability."

This module is the protocol itself -- deterministic transition tables used
by :mod:`repro.coherence.system` -- with the four states and the probe
actions each transition requires.  Keeping it pure makes the invariants
(single writer, no stale sharers) directly property-testable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

__all__ = ["State", "Action", "Transition", "local_read", "local_write",
           "probe_shared", "probe_invalidate", "ProtocolError",
           "check_line_invariant"]


class ProtocolError(RuntimeError):
    """Illegal MESI transition -- indicates a protocol bug."""


class State(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class Action(enum.Enum):
    """What the requesting node must do on the fabric."""

    NONE = "none"                      # pure cache hit
    FETCH = "fetch"                    # read miss: probe + fill
    FETCH_EXCLUSIVE = "rfo"            # write miss: probe-invalidate + fill
    UPGRADE = "upgrade"                # S->M: invalidate other sharers
    WRITEBACK = "writeback"            # dirty data supplied / flushed


@dataclass(frozen=True)
class Transition:
    new_state: State
    action: Action


# -- requester-side transitions ------------------------------------------------

_READ: Dict[State, Transition] = {
    State.MODIFIED: Transition(State.MODIFIED, Action.NONE),
    State.EXCLUSIVE: Transition(State.EXCLUSIVE, Action.NONE),
    State.SHARED: Transition(State.SHARED, Action.NONE),
    State.INVALID: Transition(State.SHARED, Action.FETCH),
}

_WRITE: Dict[State, Transition] = {
    State.MODIFIED: Transition(State.MODIFIED, Action.NONE),
    State.EXCLUSIVE: Transition(State.MODIFIED, Action.NONE),  # silent upgrade
    State.SHARED: Transition(State.MODIFIED, Action.UPGRADE),
    State.INVALID: Transition(State.MODIFIED, Action.FETCH_EXCLUSIVE),
}


def local_read(state: State) -> Transition:
    """The requester reads a line it holds in ``state``."""
    return _READ[state]


def local_write(state: State) -> Transition:
    """The requester writes a line it holds in ``state``."""
    return _WRITE[state]


def read_fill_state(any_other_sharer: bool) -> State:
    """State a read miss fills to: E if nobody else holds it, else S."""
    return State.SHARED if any_other_sharer else State.EXCLUSIVE


# -- remote-side (probe) transitions ----------------------------------------------

def probe_shared(state: State) -> Tuple[State, bool]:
    """A read probe hits a remote cache.

    Returns (new_state, supplies_data): an M holder must supply the dirty
    line (and write it back); E/S degrade to S silently.
    """
    if state is State.MODIFIED:
        return State.SHARED, True
    if state is State.EXCLUSIVE:
        return State.SHARED, False
    if state is State.SHARED:
        return State.SHARED, False
    return State.INVALID, False


def probe_invalidate(state: State) -> Tuple[State, bool]:
    """An RFO/upgrade probe: everyone else must drop the line."""
    if state is State.MODIFIED:
        return State.INVALID, True
    return State.INVALID, False


def check_line_invariant(states: Iterable[State]) -> None:
    """MESI safety: at most one M/E holder; M/E exclude any other valid
    copy.  Raises ProtocolError on violation."""
    states = [s for s in states if s is not State.INVALID]
    m = sum(1 for s in states if s is State.MODIFIED)
    e = sum(1 for s in states if s is State.EXCLUSIVE)
    if m + e > 1:
        raise ProtocolError(f"multiple exclusive holders: {states}")
    if (m or e) and len(states) > 1:
        raise ProtocolError(f"exclusive holder coexists with sharers: {states}")
