"""Calibrated baseline interconnects.

* :data:`CONNECTX_IB` -- the Mellanox ConnectX Infiniband adapter, "the
  state-of the art as it offers very good performance" (paper Section II),
  pinned to the paper's quoted numbers: ~1.4 us latency; 200 / 1500 /
  2500 MB/s at 64 B / 1 KB / 1 MB.
* :data:`TEN_GBE` -- a kernel-TCP 10 GbE stack, the "traditional
  technology ... more and more getting replaced" baseline.
* :data:`GIGE` -- plain gigabit Ethernet for the motivation table.
"""

from __future__ import annotations

from ..util.calibration import DEFAULT_IB, EthernetModel, IBModel
from .nic import NicModelParams, params_from_model

__all__ = ["CONNECTX_IB", "TEN_GBE", "GIGE", "ALL_BASELINES"]

CONNECTX_IB = params_from_model(DEFAULT_IB, "ConnectX IB")

TEN_GBE = params_from_model(EthernetModel(), "10GbE TCP")

GIGE = NicModelParams(
    name="GigE TCP",
    per_message_overhead_ns=6000.0,
    stream_bytes_per_ns=0.117,      # ~940 Mbit/s goodput
    base_latency_ns=30000.0,        # ~30 us kernel-to-kernel
    mtu_bytes=1500,
    per_segment_ns=120.0,
)

ALL_BASELINES = (CONNECTX_IB, TEN_GBE, GIGE)
