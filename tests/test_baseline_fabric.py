"""Tests for the multi-node NIC fabric + Communicator adapter."""

import numpy as np
import pytest

from repro.baselines import CONNECTX_IB, NicFabric
from repro.middleware import Communicator
from repro.sim import Simulator


def make_fabric(n=4):
    sim = Simulator()
    fabric = NicFabric(sim, n, CONNECTX_IB)
    comms = [Communicator(fabric.comm_provider(r)) for r in range(n)]
    return sim, fabric, comms


def run_all(sim, gens):
    procs = [sim.process(g) for g in gens]
    sim.run_until_event(sim.all_of(procs))
    return [p.value for p in procs]


def test_fabric_needs_two_hosts():
    with pytest.raises(ValueError):
        NicFabric(Simulator(), 1, CONNECTX_IB)


def test_endpoint_pairing():
    sim, fabric, _ = make_fabric(3)
    with pytest.raises(ValueError):
        fabric.endpoint(1, 1)
    # both orientations resolve to the same link, opposite sides
    e01 = fabric.endpoint(0, 1)
    e10 = fabric.endpoint(1, 0)
    assert e01._ep.link is e10._ep.link
    assert e01._ep.side != e10._ep.side


def test_mpi_over_nic_point_to_point():
    sim, _, comms = make_fabric(4)

    def a():
        yield from comms[0].send(b"over-the-nic", dest=2, tag=1)

    def b():
        return (yield from comms[2].recv(source=0, tag=1))

    _, got = run_all(sim, [a(), b()])
    assert got == b"over-the-nic"
    # NIC latency: far slower than a TCC exchange
    assert sim.now > 1000.0


def test_mpi_over_nic_collectives():
    sim, _, comms = make_fabric(4)

    def worker(c):
        arr = np.full(4, c.rank + 1, dtype=np.int64)
        total = yield from c.allreduce(arr, op="sum")
        yield from c.barrier()
        blocks = yield from c.allgather(bytes([c.rank]))
        return total, blocks

    results = run_all(sim, [worker(c) for c in comms])
    for total, blocks in results:
        assert (total == 10).all()
        assert blocks == [b"\x00", b"\x01", b"\x02", b"\x03"]


def test_same_code_runs_on_both_transports():
    """The adapter's whole point: one kernel, two fabrics, same results."""
    from repro.bench.app_bench import halo_worker
    from repro.core import TCClusterSystem
    from repro.topology import mesh2d

    # NIC side.
    sim, _, ncomms = make_fabric(4)
    nic_results: dict = {}
    run_all(sim, [halo_worker(c, nic_results, iters=2) for c in ncomms])

    # TCC side.
    sys_ = TCClusterSystem(mesh2d(2, 2)).boot()
    tcomms = [Communicator(sys_.cluster.library(r)) for r in range(4)]
    tcc_results: dict = {}
    run_all(sys_.sim, [halo_worker(c, tcc_results, iters=2) for c in tcomms])

    assert nic_results[0] == pytest.approx(tcc_results[0], rel=1e-12)
