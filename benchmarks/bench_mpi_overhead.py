"""F-mpi -- the middleware overhead the paper's evaluation excludes.

Section VI: "our evaluation does not include the overhead of the MPI
middleware".  We measure it: mini-MPI adds an 8-byte envelope plus tag
matching on top of the raw library; the cost is tens of nanoseconds and
shrinks (relatively) with message size.
"""

import pytest

from _common import write_result
from repro.bench import table
from repro.bench.mpi_bench import run_mpi_overhead


@pytest.fixture(scope="module")
def overhead_points():
    return run_mpi_overhead(payloads=(48, 512, 4096), iters=30)


def test_mpi_overhead(benchmark, overhead_points):
    points = overhead_points
    for p in points:
        # MPI is strictly slower than the raw library, but not wildly so.
        assert p.mpi_hrt_ns > p.msglib_hrt_ns
        assert p.overhead_ns < 250, f"MPI adds {p.overhead_ns:.0f} ns"
    # Relative overhead shrinks as payload grows.
    rels = [p.overhead_pct for p in points]
    assert rels[-1] < rels[0]

    rows = [(p.payload, round(p.msglib_hrt_ns, 1), round(p.mpi_hrt_ns, 1),
             round(p.overhead_ns, 1), f"{p.overhead_pct:.0f}%")
            for p in points]
    txt = table(
        ["payload B", "msglib HRT ns", "MPI HRT ns", "overhead ns", "rel"],
        rows, title="MPI middleware overhead over the raw message library",
    )
    write_result("mpi_overhead", txt)

    def kernel():
        return run_mpi_overhead(payloads=(48,), iters=8)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].payload == 48
