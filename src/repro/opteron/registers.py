"""BKDG-style configuration register file of one Opteron node.

Firmware configures a Fam 10h processor exclusively through PCI-config-space
registers grouped into *functions* of device 24+NodeID (the AMD "BIOS and
Kernel Developer's Guide" the paper cites as reference [17]):

* **F0** -- HT configuration: NodeID, routing tables, link control,
  HT init control (warm reset),
* **F1** -- address maps: DRAM base/limit pairs, MMIO base/limit pairs,
* **F2** -- DRAM controller,
* **F3** -- miscellaneous control (interrupt/system-management gating).

Our layouts are 32-bit and BKDG-shaped, with two documented deviations for
clarity (see DESIGN.md): base/limit registers carry address bits [47:24]
(16 MiB granularity) in bits [31:8] so that 48-bit physical addressing fits
a single register, and the *force non-coherent* debug bit the paper
exploits is modeled as bit 4 of each Link Control register.

The register file is the **single source of truth**: the northbridge
decodes its routing behaviour from these values, and the simulated chips
apply side effects (link retraining, warm reset) through write hooks --
exactly the contract real firmware programs against.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Tuple

from ..util.bitfield import get_bits, set_bits

__all__ = [
    "Function",
    "RegisterFile",
    "NodeIDAccessor",
    "RoutingTableAccessor",
    "LinkControlAccessor",
    "DramPairAccessor",
    "MmioPairAccessor",
    "DramConfigAccessor",
    "MiscControlAccessor",
    "HtInitControlAccessor",
    "GRANULARITY",
    "NUM_LINKS",
    "NUM_MAP_ENTRIES",
    "NUM_MMIO_ENTRIES",
    "RESET_NODEID",
]

#: Address-map granularity: bases/limits are multiples of 16 MiB.
GRANULARITY = 1 << 24
#: Opteron K10: "up to four outgoing HyperTransport links" (paper Sec. III).
NUM_LINKS = 4
#: Eight DRAM base/limit pairs (BKDG F1).
NUM_MAP_ENTRIES = 8
#: MMIO base/limit pairs.  The BKDG ships eight; we model a 16-entry file
#: (F1 offsets 0x80..0xFC, clear of the DRAM pairs at 0x40..0x7C) because
#: dimension-ordered interval routing on a 3D torus can need up to nine
#: folded intervals per node (three runs per dimension) -- see DESIGN.md
#: "Scaling the address map".
NUM_MMIO_ENTRIES = 16
#: Paper Section IV.E: "After system reset each NodeID register in each AP
#: is initially set to seven."
RESET_NODEID = 7


class Function(enum.IntEnum):
    HT_CONFIG = 0
    ADDRESS_MAP = 1
    DRAM_CTRL = 2
    MISC = 3


# F0 offsets
F0_ROUTING_BASE = 0x40       # + 4*i, i in 0..7
F0_NODEID = 0x60
F0_HT_INIT_CONTROL = 0x6C
F0_LINK_CONTROL_BASE = 0x84  # + 0x20*k
F0_LINK_FREQ_BASE = 0x88     # + 0x20*k

# F1 offsets
F1_DRAM_BASE = 0x40          # + 8*i
F1_DRAM_LIMIT = 0x44         # + 8*i
F1_MMIO_BASE = 0x80          # + 8*i
F1_MMIO_LIMIT = 0x84         # + 8*i

# F2 offsets
F2_DRAM_CONFIG = 0x80

# F3 offsets
F3_MISC_CONTROL = 0x70


class RegisterFile:
    """Sparse (function, offset) -> 32-bit value store with write hooks."""

    def __init__(self) -> None:
        self._regs: Dict[Tuple[int, int], int] = {}
        self._hooks: List[Callable[[int, int, int], None]] = []
        self._apply_reset_values()

    def _apply_reset_values(self) -> None:
        # NodeID starts at 7 (unvisited AP sentinel).
        self._regs[(Function.HT_CONFIG, F0_NODEID)] = RESET_NODEID
        # Routing tables: all destinations route to self (bit 0 of each
        # 5-bit route field: request, response, broadcast).
        for i in range(NUM_MAP_ENTRIES):
            self._regs[(Function.HT_CONFIG, F0_ROUTING_BASE + 4 * i)] = 0x00010101
        # Links enabled, not yet trained coherent.
        for k in range(NUM_LINKS):
            self._regs[(Function.HT_CONFIG, F0_LINK_CONTROL_BASE + 0x20 * k)] = 0x1

    def reset(self, cold: bool = True) -> None:
        """Cold reset restores power-on values; warm reset preserves them
        (that asymmetry is what the TCCluster boot sequence exploits)."""
        if cold:
            self._regs.clear()
            self._apply_reset_values()

    def read(self, func: int, offset: int) -> int:
        return self._regs.get((int(func), int(offset)), 0)

    def write(self, func: int, offset: int, value: int) -> None:
        if not 0 <= value < (1 << 32):
            raise ValueError(f"register value {value:#x} exceeds 32 bits")
        self._regs[(int(func), int(offset))] = value
        for hook in self._hooks:
            hook(int(func), int(offset), value)

    def rmw(self, func: int, offset: int, lo: int, width: int, field: int) -> None:
        """Read-modify-write one field."""
        self.write(func, offset, set_bits(self.read(func, offset), lo, width, field))

    def field(self, func: int, offset: int, lo: int, width: int) -> int:
        return get_bits(self.read(func, offset), lo, width)

    def add_write_hook(self, fn: Callable[[int, int, int], None]) -> None:
        self._hooks.append(fn)


# ---------------------------------------------------------------------------
# Typed accessors: each wraps one architectural register (group).
# ---------------------------------------------------------------------------

def _addr_to_field(addr: int, what: str) -> int:
    if addr % GRANULARITY:
        raise ValueError(
            f"{what} {addr:#x} not aligned to the 16 MiB address-map granularity"
        )
    if addr < 0 or addr >= (1 << 48):
        raise ValueError(f"{what} {addr:#x} outside the 48-bit physical space")
    return addr >> 24


class NodeIDAccessor:
    """F0x60: NodeId [2:0], NodeCnt [6:4] (nodes in the coherent fabric -1)."""

    def __init__(self, regs: RegisterFile):
        self.regs = regs

    @property
    def nodeid(self) -> int:
        return self.regs.field(Function.HT_CONFIG, F0_NODEID, 0, 3)

    @nodeid.setter
    def nodeid(self, v: int) -> None:
        if not 0 <= v < 8:
            raise ValueError(f"NodeID {v} out of 0..7")
        self.regs.rmw(Function.HT_CONFIG, F0_NODEID, 0, 3, v)

    @property
    def nodecnt(self) -> int:
        return self.regs.field(Function.HT_CONFIG, F0_NODEID, 4, 3)

    @nodecnt.setter
    def nodecnt(self, v: int) -> None:
        if not 0 <= v < 8:
            raise ValueError(f"NodeCnt {v} out of 0..7")
        self.regs.rmw(Function.HT_CONFIG, F0_NODEID, 4, 3, v)


class RoutingTableAccessor:
    """F0x40+4i: per-destination-NodeID route masks.

    Each 5-bit mask: bit 0 = deliver to self, bit 1+k = forward on link k.
    Fields: request [4:0], response [12:8], broadcast [20:16].
    """

    def __init__(self, regs: RegisterFile, dest_node: int):
        if not 0 <= dest_node < NUM_MAP_ENTRIES:
            raise ValueError(f"routing entry {dest_node} out of range")
        self.regs = regs
        self.offset = F0_ROUTING_BASE + 4 * dest_node

    def _get(self, lo: int) -> int:
        return self.regs.field(Function.HT_CONFIG, self.offset, lo, 5)

    def _set(self, lo: int, v: int) -> None:
        if not 0 <= v < 32:
            raise ValueError(f"route mask {v:#x} out of 5-bit range")
        self.regs.rmw(Function.HT_CONFIG, self.offset, lo, 5, v)

    request = property(lambda s: s._get(0), lambda s, v: s._set(0, v))
    response = property(lambda s: s._get(8), lambda s, v: s._set(8, v))
    broadcast = property(lambda s: s._get(16), lambda s, v: s._set(16, v))

    @staticmethod
    def to_self() -> int:
        return 0b00001

    @staticmethod
    def to_link(k: int) -> int:
        if not 0 <= k < NUM_LINKS:
            raise ValueError(f"link index {k} out of range")
        return 1 << (k + 1)

    def set_all(self, mask_value: int) -> None:
        self.request = mask_value
        self.response = mask_value
        self.broadcast = mask_value


class LinkControlAccessor:
    """F0x84+0x20k: bit0 enabled, bit1 trained-coherent (RO status),
    bit2 end-of-chain, bit4 **force non-coherent** (the debug bit the paper
    exploits), bit5 TCC-designated (firmware bookkeeping)."""

    def __init__(self, regs: RegisterFile, link: int):
        if not 0 <= link < NUM_LINKS:
            raise ValueError(f"link index {link} out of range")
        self.regs = regs
        self.link = link
        self.offset = F0_LINK_CONTROL_BASE + 0x20 * link

    def _bit(self, bit: int) -> bool:
        return bool(self.regs.field(Function.HT_CONFIG, self.offset, bit, 1))

    def _set_bit(self, bit: int, v: bool) -> None:
        self.regs.rmw(Function.HT_CONFIG, self.offset, bit, 1, int(v))

    enabled = property(lambda s: s._bit(0), lambda s, v: s._set_bit(0, v))
    coherent = property(lambda s: s._bit(1), lambda s, v: s._set_bit(1, v))
    end_of_chain = property(lambda s: s._bit(2), lambda s, v: s._set_bit(2, v))
    force_noncoherent = property(lambda s: s._bit(4), lambda s, v: s._set_bit(4, v))
    tcc_designated = property(lambda s: s._bit(5), lambda s, v: s._set_bit(5, v))


class LinkFreqAccessor:
    """F0x88+0x20k: width [5:0] bits, frequency [15:8] in 100 Mbit/s/lane
    units (pending values, applied at the next warm reset)."""

    def __init__(self, regs: RegisterFile, link: int):
        self.regs = regs
        self.offset = F0_LINK_FREQ_BASE + 0x20 * link

    @property
    def width_bits(self) -> int:
        return self.regs.field(Function.HT_CONFIG, self.offset, 0, 6)

    @width_bits.setter
    def width_bits(self, v: int) -> None:
        self.regs.rmw(Function.HT_CONFIG, self.offset, 0, 6, v)

    @property
    def gbit_per_lane(self) -> float:
        return self.regs.field(Function.HT_CONFIG, self.offset, 8, 8) / 10.0

    @gbit_per_lane.setter
    def gbit_per_lane(self, v: float) -> None:
        self.regs.rmw(Function.HT_CONFIG, self.offset, 8, 8, round(v * 10))


class HtInitControlAccessor:
    """F0x6C: bit0 warm-reset request (self-clearing, side effect via the
    chip's write hook), bit4 ColdResetDet, bit5 BiosRstDet."""

    def __init__(self, regs: RegisterFile):
        self.regs = regs

    def request_warm_reset(self) -> None:
        self.regs.rmw(Function.HT_CONFIG, F0_HT_INIT_CONTROL, 0, 1, 1)

    @property
    def warm_reset_pending(self) -> bool:
        return bool(self.regs.field(Function.HT_CONFIG, F0_HT_INIT_CONTROL, 0, 1))

    def clear_warm_reset(self) -> None:
        self.regs.rmw(Function.HT_CONFIG, F0_HT_INIT_CONTROL, 0, 1, 0)


class DramPairAccessor:
    """F1x40/F1x44 + 8i: one DRAM range.

    Base: bit0 RE, bit1 WE, [31:8] base[47:24].
    Limit: [2:0] DstNode, [31:8] limit[47:24] (limit is *inclusive* of the
    16 MiB block it names, BKDG-style).
    """

    def __init__(self, regs: RegisterFile, index: int):
        if not 0 <= index < NUM_MAP_ENTRIES:
            raise ValueError(f"DRAM map entry {index} out of range")
        self.regs = regs
        self.base_off = F1_DRAM_BASE + 8 * index
        self.limit_off = F1_DRAM_LIMIT + 8 * index

    def program(self, base: int, limit: int, dst_node: int,
                re: bool = True, we: bool = True) -> None:
        """Map [base, limit) to DRAM homed at ``dst_node``.

        ``limit`` is exclusive at 16 MiB granularity (we convert to the
        inclusive encoding internally).
        """
        if limit <= base:
            raise ValueError(f"empty DRAM range [{base:#x}, {limit:#x})")
        b = _addr_to_field(base, "DRAM base")
        l = _addr_to_field(limit, "DRAM limit") - 1
        if not 0 <= dst_node < 8:
            raise ValueError(f"DstNode {dst_node} out of 0..7")
        base_val = (b << 8) | (int(we) << 1) | int(re)
        limit_val = (l << 8) | dst_node
        self.regs.write(Function.ADDRESS_MAP, self.base_off, base_val)
        self.regs.write(Function.ADDRESS_MAP, self.limit_off, limit_val)

    def disable(self) -> None:
        self.regs.write(Function.ADDRESS_MAP, self.base_off, 0)
        self.regs.write(Function.ADDRESS_MAP, self.limit_off, 0)

    @property
    def enabled(self) -> bool:
        return bool(self.regs.field(Function.ADDRESS_MAP, self.base_off, 0, 2))

    @property
    def base(self) -> int:
        return self.regs.field(Function.ADDRESS_MAP, self.base_off, 8, 24) << 24

    @property
    def limit(self) -> int:
        """Exclusive limit."""
        return (self.regs.field(Function.ADDRESS_MAP, self.limit_off, 8, 24) + 1) << 24

    @property
    def dst_node(self) -> int:
        return self.regs.field(Function.ADDRESS_MAP, self.limit_off, 0, 3)


class MmioPairAccessor:
    """F1x80/F1x84 + 8i: one MMIO range.

    Base: bit0 RE, bit1 WE, bit2 NP (non-posted allowed), [31:8] base[47:24].
    Limit: [2:0] DstNode, [6:4] DstLink, [31:8] limit[47:24] inclusive.

    The TCCluster trick (paper Section IV.C): program DstNode = 0 = own
    NodeID so the northbridge believes it is the home node and forwards
    straight out of DstLink.
    """

    def __init__(self, regs: RegisterFile, index: int):
        if not 0 <= index < NUM_MMIO_ENTRIES:
            raise ValueError(f"MMIO map entry {index} out of range")
        self.regs = regs
        self.base_off = F1_MMIO_BASE + 8 * index
        self.limit_off = F1_MMIO_LIMIT + 8 * index

    def program(self, base: int, limit: int, dst_node: int, dst_link: int,
                re: bool = True, we: bool = True, nonposted: bool = False) -> None:
        if limit <= base:
            raise ValueError(f"empty MMIO range [{base:#x}, {limit:#x})")
        b = _addr_to_field(base, "MMIO base")
        l = _addr_to_field(limit, "MMIO limit") - 1
        if not 0 <= dst_node < 8:
            raise ValueError(f"DstNode {dst_node} out of 0..7")
        if not 0 <= dst_link < NUM_LINKS:
            raise ValueError(f"DstLink {dst_link} out of range")
        base_val = (b << 8) | (int(nonposted) << 2) | (int(we) << 1) | int(re)
        limit_val = (l << 8) | (dst_link << 4) | dst_node
        self.regs.write(Function.ADDRESS_MAP, self.base_off, base_val)
        self.regs.write(Function.ADDRESS_MAP, self.limit_off, limit_val)

    def disable(self) -> None:
        self.regs.write(Function.ADDRESS_MAP, self.base_off, 0)
        self.regs.write(Function.ADDRESS_MAP, self.limit_off, 0)

    @property
    def enabled(self) -> bool:
        return bool(self.regs.field(Function.ADDRESS_MAP, self.base_off, 0, 2))

    @property
    def nonposted_allowed(self) -> bool:
        return bool(self.regs.field(Function.ADDRESS_MAP, self.base_off, 2, 1))

    @property
    def base(self) -> int:
        return self.regs.field(Function.ADDRESS_MAP, self.base_off, 8, 24) << 24

    @property
    def limit(self) -> int:
        return (self.regs.field(Function.ADDRESS_MAP, self.limit_off, 8, 24) + 1) << 24

    @property
    def dst_node(self) -> int:
        return self.regs.field(Function.ADDRESS_MAP, self.limit_off, 0, 3)

    @property
    def dst_link(self) -> int:
        return self.regs.field(Function.ADDRESS_MAP, self.limit_off, 4, 3)


class DramConfigAccessor:
    """F2x80: bit0 initialized, [16:1] size in 16 MiB units."""

    def __init__(self, regs: RegisterFile):
        self.regs = regs

    @property
    def initialized(self) -> bool:
        return bool(self.regs.field(Function.DRAM_CTRL, F2_DRAM_CONFIG, 0, 1))

    @property
    def size(self) -> int:
        return self.regs.field(Function.DRAM_CTRL, F2_DRAM_CONFIG, 1, 16) << 24

    def program(self, size: int) -> None:
        if size % GRANULARITY:
            raise ValueError(f"DRAM size {size:#x} not a 16 MiB multiple")
        self.regs.write(
            Function.DRAM_CTRL, F2_DRAM_CONFIG, ((size >> 24) << 1) | 1
        )


class MiscControlAccessor:
    """F3x70: bit0 SMC/interrupt-broadcast generation enabled (reset 1).

    The custom kernel's job (paper Section VI): "all system management
    calls (SMC) need to be disabled which can be only achieved with a
    custom kernel."
    """

    def __init__(self, regs: RegisterFile):
        self.regs = regs

    @property
    def smc_enabled(self) -> bool:
        val = self.regs.read(Function.MISC, F3_MISC_CONTROL)
        if not self.regs.field(Function.MISC, F3_MISC_CONTROL, 8, 1):
            # Register never written: reset default is enabled.  Bit 8 is a
            # written-marker we keep internally.
            return True
        return bool(val & 1)

    @smc_enabled.setter
    def smc_enabled(self, v: bool) -> None:
        self.regs.write(Function.MISC, F3_MISC_CONTROL, (1 << 8) | int(v))
