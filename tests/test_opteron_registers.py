"""Tests for the BKDG-style register file and accessors."""

import pytest

from repro.opteron.registers import (
    GRANULARITY,
    RESET_NODEID,
    DramConfigAccessor,
    DramPairAccessor,
    Function,
    HtInitControlAccessor,
    LinkControlAccessor,
    LinkFreqAccessor,
    MiscControlAccessor,
    MmioPairAccessor,
    NodeIDAccessor,
    RegisterFile,
    RoutingTableAccessor,
)

M16 = GRANULARITY


def test_nodeid_resets_to_seven():
    """Paper Section IV.E: unvisited APs read NodeID 7."""
    regs = RegisterFile()
    assert NodeIDAccessor(regs).nodeid == RESET_NODEID


def test_nodeid_write_read():
    regs = RegisterFile()
    acc = NodeIDAccessor(regs)
    acc.nodeid = 3
    acc.nodecnt = 5
    assert acc.nodeid == 3 and acc.nodecnt == 5
    with pytest.raises(ValueError):
        acc.nodeid = 8


def test_routing_table_defaults_to_self():
    regs = RegisterFile()
    for i in range(8):
        acc = RoutingTableAccessor(regs, i)
        assert acc.request == 0b00001
        assert acc.response == 0b00001
        assert acc.broadcast == 0b00001


def test_routing_table_link_masks():
    regs = RegisterFile()
    acc = RoutingTableAccessor(regs, 2)
    acc.request = RoutingTableAccessor.to_link(1)
    acc.response = RoutingTableAccessor.to_link(3)
    assert acc.request == 0b00100
    assert acc.response == 0b10000
    assert acc.broadcast == 0b00001  # untouched


def test_link_control_force_noncoherent_bit():
    regs = RegisterFile()
    ctl = LinkControlAccessor(regs, 2)
    assert ctl.enabled            # reset default
    assert not ctl.force_noncoherent
    ctl.force_noncoherent = True
    assert ctl.force_noncoherent
    assert LinkControlAccessor(regs, 1).force_noncoherent is False


def test_link_freq_accessor():
    regs = RegisterFile()
    f = LinkFreqAccessor(regs, 0)
    f.width_bits = 16
    f.gbit_per_lane = 1.6
    assert f.width_bits == 16
    assert f.gbit_per_lane == pytest.approx(1.6)


def test_dram_pair_program_and_decode():
    regs = RegisterFile()
    pair = DramPairAccessor(regs, 0)
    pair.program(base=0, limit=16 * M16, dst_node=0)
    assert pair.enabled
    assert pair.base == 0
    assert pair.limit == 16 * M16
    assert pair.dst_node == 0


def test_dram_pair_alignment_enforced():
    regs = RegisterFile()
    with pytest.raises(ValueError, match="granularity"):
        DramPairAccessor(regs, 0).program(base=0x1000, limit=M16, dst_node=0)


def test_dram_pair_empty_range_rejected():
    regs = RegisterFile()
    with pytest.raises(ValueError, match="empty"):
        DramPairAccessor(regs, 0).program(base=M16, limit=M16, dst_node=0)


def test_dram_pair_disable():
    regs = RegisterFile()
    pair = DramPairAccessor(regs, 1)
    pair.program(base=M16, limit=2 * M16, dst_node=1)
    pair.disable()
    assert not pair.enabled


def test_mmio_pair_carries_dstlink_and_np():
    regs = RegisterFile()
    pair = MmioPairAccessor(regs, 0)
    pair.program(base=16 * M16, limit=32 * M16, dst_node=0, dst_link=2,
                 nonposted=False)
    assert pair.enabled
    assert pair.dst_link == 2
    assert pair.dst_node == 0
    assert not pair.nonposted_allowed
    assert pair.base == 16 * M16
    assert pair.limit == 32 * M16


def test_warm_reset_request_bit():
    regs = RegisterFile()
    init = HtInitControlAccessor(regs)
    assert not init.warm_reset_pending
    init.request_warm_reset()
    assert init.warm_reset_pending
    init.clear_warm_reset()
    assert not init.warm_reset_pending


def test_dram_config():
    regs = RegisterFile()
    cfg = DramConfigAccessor(regs)
    assert not cfg.initialized
    cfg.program(512 * M16)
    assert cfg.initialized
    assert cfg.size == 512 * M16
    with pytest.raises(ValueError):
        cfg.program(M16 + 5)


def test_smc_enabled_by_default_and_disable():
    regs = RegisterFile()
    misc = MiscControlAccessor(regs)
    assert misc.smc_enabled  # reset default
    misc.smc_enabled = False
    assert not misc.smc_enabled
    misc.smc_enabled = True
    assert misc.smc_enabled


def test_write_hooks_fire():
    regs = RegisterFile()
    seen = []
    regs.add_write_hook(lambda f, o, v: seen.append((f, o, v)))
    regs.write(Function.ADDRESS_MAP, 0x40, 0x123)
    assert seen == [(Function.ADDRESS_MAP, 0x40, 0x123)]


def test_cold_reset_restores_defaults():
    regs = RegisterFile()
    NodeIDAccessor(regs).nodeid = 0
    regs.reset(cold=True)
    assert NodeIDAccessor(regs).nodeid == RESET_NODEID


def test_warm_reset_preserves_registers():
    regs = RegisterFile()
    NodeIDAccessor(regs).nodeid = 2
    regs.reset(cold=False)
    assert NodeIDAccessor(regs).nodeid == 2


def test_value_must_fit_32_bits():
    regs = RegisterFile()
    with pytest.raises(ValueError):
        regs.write(0, 0x40, 1 << 32)
