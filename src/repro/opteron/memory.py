"""Physical memory and the DRAM controller model.

Each Opteron node owns local DRAM ("individual physical memory modules
attached to each processor").  Contents are stored sparsely (4 KiB pages
allocated on first touch) so an 8 GB node costs nothing until used, while
reads and writes move real bytes -- the message library's correctness is
verified end-to-end against these contents.

The :class:`MemoryController` adds DDR2 timing: a fixed access latency per
operation plus occupancy proportional to the burst size, with a single
command queue so that receive-side polling traffic and incoming TCCluster
writes contend for the same device -- the paper notes that UC polling
"generates additional processor-memory bus overhead".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim import Doorbell, Event, Simulator, Tracer, NULL_TRACER
from ..util.calibration import TimingModel, DEFAULT_TIMING

__all__ = ["Memory", "MemoryController", "MemoryError_"]

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Dual-channel DDR2-800 peak transfer rate, bytes/ns.
DDR2_BYTES_PER_NS = 12.8


class MemoryError_(RuntimeError):
    """Out-of-range physical memory access (master abort)."""


class Memory:
    """Sparse byte-addressable storage of one node's DRAM."""

    def __init__(self, size: int):
        if size <= 0 or size % PAGE_SIZE:
            raise ValueError(f"memory size must be a positive page multiple, got {size}")
        self.size = size
        self._pages: Dict[int, bytearray] = {}
        #: Payload bytes ever copied into backing pages (the data plane's
        #: one-copy accounting: on the zero-copy bulk path this is the
        #: *only* copy a payload byte experiences between the storing
        #: core's buffer and destination DRAM).
        self.bytes_copied = 0

    def _page(self, pageno: int) -> bytearray:
        page = self._pages.get(pageno)
        if page is None:
            page = self._pages[pageno] = bytearray(PAGE_SIZE)
        return page

    def check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise MemoryError_(
                f"access [{offset:#x}, {offset + length:#x}) outside DRAM of "
                f"size {self.size:#x}"
            )

    def write(self, offset: int, data) -> None:
        self.write_span(offset, data)

    def write_span(self, offset: int, data) -> None:
        """Commit a contiguous run (bytes or memoryview) with one slice op
        per touched page.

        A straddling run is walked through a memoryview so the per-page
        chunks are spans, not copies; a run that covers a whole absent
        page adopts it in a single ``bytearray(span)`` construction (no
        zero-fill-then-overwrite).  Every byte landing in a page counts
        toward :attr:`bytes_copied`.
        """
        length = len(data)
        self.check_range(offset, length)
        pageno, inpage = divmod(offset, PAGE_SIZE)
        if inpage + length <= PAGE_SIZE:
            # Fast path: the write stays inside one page (every cache-line
            # sized transfer does).
            self._page(pageno)[inpage : inpage + length] = data
            self.bytes_copied += length
            return
        mv = data if type(data) is memoryview else memoryview(data)
        pages = self._pages
        pos = 0
        while pos < length:
            pageno, inpage = divmod(offset + pos, PAGE_SIZE)
            n = min(PAGE_SIZE - inpage, length - pos)
            chunk = mv[pos : pos + n]
            if n == PAGE_SIZE and pageno not in pages:
                pages[pageno] = bytearray(chunk)
            else:
                self._page(pageno)[inpage : inpage + n] = chunk
            pos += n
        self.bytes_copied += length

    def write_masked(self, offset: int, data: bytes, mask: bytes) -> None:
        """Byte-enable write: only bytes with mask[i] == 1 are stored."""
        if len(mask) != len(data):
            raise ValueError("mask/data length mismatch")
        self.check_range(offset, len(data))
        run_start = None
        for i in range(len(data) + 1):
            valid = i < len(data) and mask[i]
            if valid and run_start is None:
                run_start = i
            elif not valid and run_start is not None:
                self.write(offset + run_start, data[run_start:i])
                run_start = None

    def read(self, offset: int, length: int) -> bytes:
        self.check_range(offset, length)
        pageno, inpage = divmod(offset, PAGE_SIZE)
        page = self._pages.get(pageno)
        if page is not None and inpage + length <= PAGE_SIZE:
            # Fast path: one resident page (the polling receive path).
            return bytes(page[inpage : inpage + length])
        # General path: absent pages -- fully or partially covered -- read
        # as zeros through the same zero-filled-output rule, so a read
        # straddling a resident and an absent page cannot diverge from a
        # read of the absent page alone.
        out = bytearray(length)
        pos = 0
        while pos < length:
            pageno, inpage = divmod(offset + pos, PAGE_SIZE)
            n = min(PAGE_SIZE - inpage, length - pos)
            page = self._pages.get(pageno)
            if page is not None:
                out[pos : pos + n] = page[inpage : inpage + n]
            pos += n
        return bytes(out)

    @property
    def resident_bytes(self) -> int:
        """Actually allocated backing storage (for footprint accounting)."""
        return len(self._pages) * PAGE_SIZE


class MemoryController:
    """DES-timed front end of a node's DRAM.

    The single command port is modeled arithmetically: requests are served
    FCFS in submission order, each occupying the port for the transfer
    time from ``max(now, busy_until)``, with the access latency pipelined
    behind it.  This is timing-identical to a one-slot FCFS semaphore (the
    pre-overhaul implementation) but costs one calendar entry per
    operation instead of a coroutine plus a resource handshake -- the
    controller sits on both hot paths (incoming TCCluster ring writes and
    UC polling reads).

    Data is sampled/committed at the *completion* time of the operation,
    so in-flight reads observe writes that commit before they finish --
    the same ordering the coroutine version produced.
    """

    def __init__(
        self,
        sim: Simulator,
        memory: Memory,
        timing: TimingModel = DEFAULT_TIMING,
        name: str = "mc",
    ):
        self.sim = sim
        self.memory = memory
        self.timing = timing
        self.name = name
        self._wr_name = f"{name}.write"
        self._rd_name = f"{name}.read"
        self.tracer: Tracer = NULL_TRACER
        self._busy_until = 0.0
        #: (lo, hi, doorbell) ranges rung when a write commits inside them
        #: (the poll-parking notification hook; see msglib.endpoint).
        self._watches: List[Tuple[int, int, Doorbell]] = []
        #: Active arithmetic commit spans (flow-level fidelity; see
        #: :class:`repro.sim.flows.CommitSpan`).  Every foreign port
        #: claim folds in the span arrivals due by now first, so FCFS
        #: ordering against span traffic is exact; content and write
        #: accounting flush lazily at observation points.
        self._spans: List = []
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def _occupancy_ns(self, nbytes: int) -> float:
        return max(nbytes / DDR2_BYTES_PER_NS, 2.0)

    def read_latency_ns(self, length: int, uncached: bool = True) -> float:
        """Uncontended service time of a read (occupancy + access latency).

        Poll parking uses this to reconstruct the virtual poll grid."""
        base = self.timing.dram_read_uc_ns if uncached else self.timing.dram_read_ns
        return self._occupancy_ns(length) + base

    # -- write-commit notification ----------------------------------------
    def watch(self, lo: int, hi: int, doorbell: Doorbell) -> None:
        """Ring ``doorbell`` whenever a write commits into ``[lo, hi)``."""
        if hi <= lo:
            raise ValueError(f"empty watch range [{lo:#x}, {hi:#x})")
        self._watches.append((lo, hi, doorbell))
        if self._spans:
            now = self.sim._now
            for s in list(self._spans):
                s.add_watch(lo, hi, doorbell, now)

    def unwatch(self, doorbell: Doorbell) -> None:
        self._watches = [w for w in self._watches if w[2] is not doorbell]
        for s in list(self._spans):
            s.remove_watch(doorbell)

    def _claim_port(self, nbytes: int) -> float:
        """Reserve the command port FCFS; returns the transfer-end time."""
        now = self.sim._now
        if self._spans:
            self._sync_spans(now)
        start = self._busy_until if self._busy_until > now else now
        self._busy_until = end = start + self._occupancy_ns(nbytes)
        return end

    # -- commit-span support (flow-level fidelity) -------------------------
    def _sync_spans(self, now: float) -> None:
        """Apply all span arrivals due by ``now`` in global time order."""
        spans = self._spans
        if len(spans) == 1:
            spans[0].sync_to(now)
            return
        while True:
            best = None
            ba = now
            for s in spans:
                a = s.next_arrival()
                if a <= ba:
                    best, ba = s, a
            if best is None:
                return
            best.apply_one()

    def flush_spans(self, now: float) -> None:
        """Make span DRAM content and write accounting real up to ``now``
        (called before any content observation)."""
        if not self._spans:
            return
        self._sync_spans(now)
        for s in list(self._spans):
            s.flush_until(now)

    def sample(self, offset: int, length: int) -> bytes:
        """Zero-time DRAM sample with span content made real first (the
        quantized park-wake read path; see msglib.endpoint)."""
        self.flush_spans(self.sim._now)
        return self.memory.read(offset, length)

    def write(self, offset: int, data, mask: Optional[bytes] = None) -> Event:
        """Timed write; the returned event fires when the data is in DRAM.

        ``mask`` selects byte enables (HT sized-byte writes).  ``data`` is
        held *by reference* until the commit instant -- the caller must
        not mutate it in the meantime (packet payloads and memoryview
        spans into immutable source buffers satisfy this by construction;
        see DESIGN.md "Data-plane memory model").
        """
        done = self.sim.event(name=self._wr_name)
        # The port is held only for the transfer (bandwidth sharing); the
        # access latency is pipelined behind it, as in a real controller.
        complete = self._claim_port(len(data)) + self.timing.dram_write_ns
        self.sim._push(complete, self._commit_write,
                       (offset, data, mask, done))
        return done

    def write_posted(self, offset: int, data,
                     mask: Optional[bytes] = None) -> None:
        """Fire-and-forget timed write: commit timing and semantics are
        identical to :meth:`write`, but no completion event is allocated
        (the hot posted-write paths never wait on one, and a triggered
        event with no callbacks still costs a calendar dispatch).  The
        same hold-by-reference contract as :meth:`write` applies."""
        complete = self._claim_port(len(data)) + self.timing.dram_write_ns
        self.sim._push(complete, self._commit_write,
                       (offset, data, mask, None))

    def _commit_write(self, offset: int, data, mask: Optional[bytes],
                      done: Optional[Event]) -> None:
        if self._spans:
            self.flush_spans(self.sim._now)
        if mask is None:
            self.memory.write_span(offset, data)
        else:
            self.memory.write_masked(offset, data, mask)
        self.writes += 1
        self.bytes_written += len(data)
        if self.tracer.enabled:
            self.tracer.emit(self.sim._now, self.name, "write_done",
                             (offset, len(data)))
        if done is not None:
            done.succeed()
        if self._watches:
            end = offset + len(data)
            for lo, hi, db in self._watches:
                if lo < end and offset < hi:
                    db.ring()

    def read(self, offset: int, length: int, uncached: bool = True) -> Event:
        """Timed read; event value is the bytes.

        ``uncached`` selects the UC latency (cache-bypassing polling path)
        versus the ordinary cache-miss fill latency.
        """
        done = self.sim.event(name=self._rd_name)
        base = self.timing.dram_read_uc_ns if uncached else self.timing.dram_read_ns
        complete = self._claim_port(length) + base
        self.sim._push(complete, self._commit_read, (offset, length, done))
        return done

    def _commit_read(self, offset: int, length: int, done: Event) -> None:
        if self._spans:
            self.flush_spans(self.sim._now)
        data = self.memory.read(offset, length)
        self.reads += 1
        self.bytes_read += length
        done.succeed(data)
