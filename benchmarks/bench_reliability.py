"""R-retry -- fault tolerance of the link layer and above.

Paper Section III: HyperTransport "defines fault tolerance mechanisms on
the link level"; the prototype's cable is exactly where bit errors would
appear ("due to signal integrity issues of our cable based approach").
The sweep injects per-packet error rates and checks that HT3 retry keeps
the fabric lossless while throughput degrades gracefully.

Beyond link retry, the fault-injection scenarios measure end-to-end
*recovery*: how long a pairwise message stream stalls across a link flap
(down -> warm retrain) and across a node crash + warm-reset rejoin.
Results accumulate in ``BENCH_reliability.json`` at the repo root.
"""

import json
import pathlib

import pytest

from _common import write_result
from repro.bench.ablation import run_ber_sweep
from repro.bench import table
from repro.bench.recovery import (
    RECOVERY_FIGURE_SPECS,
    calibrate_fail_down,
    run_fail_down_calibration,
    run_hysteresis_study,
    run_recovery_figure,
)
from repro.ht.link import FAIL_DOWN_THRESHOLD_DEFAULT
from repro.cluster import TCCluster
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.msglib import MsgConfig, TransportError
from repro.obs.metrics import fault_counters
from repro.topology import chain
from repro.util.units import MiB

RATES = (0.0, 0.01, 0.05, 0.2)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_reliability.json"


def _merge_bench_json(key: str, payload: dict) -> None:
    """Accumulate per-scenario results into one JSON report."""
    report = {}
    if BENCH_JSON.exists():
        try:
            report = json.loads(BENCH_JSON.read_text())
        except ValueError:
            report = {}
    report[key] = payload
    BENCH_JSON.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _run_fault_scenario(plan: FaultPlan, n_msgs: int = 80,
                        msg_bytes: int = 256) -> dict:
    """Pairwise stream on chain(2) under ``plan``; returns delivery and
    recovery-latency metrics (all deterministic)."""
    cfg = MsgConfig(send_deadline_ns=1e7, recv_deadline_ns=4e7)
    cl = TCCluster(chain(2), msg_cfg=cfg, memory_bytes=64 * MiB).boot()
    inj = FaultInjector(cl, plan)
    inj.arm()
    t0 = cl.sim.now
    ep_a = cl.library(0).connect(1)
    ep_b = cl.library(1).connect(0)
    deliveries = []
    errors = []

    def tx(_=None):
        try:
            for i in range(n_msgs):
                yield from ep_a.send(bytes([i % 251]) * msg_bytes)
        except TransportError as exc:
            errors.append(f"tx: {exc}")

    def rx(_=None):
        try:
            for _ in range(n_msgs):
                yield from ep_b.recv()
                deliveries.append(cl.sim.now)
        except TransportError as exc:
            errors.append(f"rx: {exc}")

    cl.sim.process(tx(), name="rel-tx")
    cl.sim.process(rx(), name="rel-rx")
    cl.run(2e8)
    # Recovery latency: longest gap between consecutive deliveries that
    # brackets a fault firing (the stream's stall across the outage).
    stall_ns = 0.0
    fire_times = [t for t, _ in inj.fired]
    for prev, nxt in zip(deliveries, deliveries[1:]):
        if any(prev <= f <= nxt for f in fire_times):
            stall_ns = max(stall_ns, nxt - prev)
    return {
        "messages": n_msgs,
        "delivered": len(deliveries),
        "errors": errors,
        "faults": {k: v for k, v in
                   fault_counters(cl.sim).as_dict().items() if v},
        "completion_ns": (deliveries[-1] - t0) if deliveries else None,
        "recovery_stall_ns": stall_ns,
    }


@pytest.fixture(scope="module")
def ber_points():
    return run_ber_sweep(error_rates=RATES)


def test_link_retry_reliability(benchmark, ber_points):
    points = ber_points
    # --- lossless at every error rate ------------------------------------
    assert all(p.delivered_ok for p in points)
    # retries scale with the error rate
    retries = [p.retries for p in points]
    assert retries[0] == 0
    assert retries == sorted(retries)
    # throughput degrades monotonically and gracefully (no collapse)
    mbps = [p.mbps for p in points]
    assert mbps == sorted(mbps, reverse=True)
    assert mbps[-1] > 0.4 * mbps[0], "20% per-packet errors still >40% tput"

    rows = [(f"{p.error_rate:.2f}", round(p.mbps), p.retries,
             "yes" if p.delivered_ok else "NO") for p in points]
    txt = table(["pkt error rate", "MB/s (1 MiB)", "retries", "lossless"],
                rows, title="HT3 retry under injected link errors")
    write_result("reliability", txt)

    def kernel():
        return run_ber_sweep(error_rates=(0.05,), size=64 * 1024)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].delivered_ok


def test_link_flap_recovery(benchmark):
    """A mid-stream link flap: the stream must complete losslessly, with
    the stall bounded by the retrain time plus deadline-free NAK replay."""
    plan = FaultPlan().add(8_000.0, FaultKind.LINK_FLAP, 0,
                           duration_ns=20_000.0)

    def kernel():
        return _run_fault_scenario(plan)

    point = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert point["delivered"] == point["messages"], point
    assert not point["errors"]
    assert point["faults"].get("retrains", 0) >= 1
    assert point["recovery_stall_ns"] >= 20_000.0, "flap outage not visible"
    _merge_bench_json("link_flap", point)
    rows = [(k, point[k]) for k in
            ("messages", "delivered", "completion_ns", "recovery_stall_ns")]
    write_result("reliability_flap",
                 table(["metric", "value"], rows,
                       title="Link flap: lossless recovery via NAK + warm retrain"))


def test_node_crash_rejoin_recovery(benchmark):
    """Node crash + warm-reset rejoin through the firmware path: the
    stream rides through on retransmit, nothing is lost or duplicated."""
    plan = (FaultPlan()
            .add(8_000.0, FaultKind.NODE_CRASH, 1)
            .add(30_000.0, FaultKind.NODE_WARM_RESET, 1))

    def kernel():
        return _run_fault_scenario(plan)

    point = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert point["delivered"] == point["messages"], point
    assert not point["errors"]
    assert point["faults"].get("node_crashes") == 1
    assert point["faults"].get("node_rejoins") == 1
    _merge_bench_json("node_crash_rejoin", point)
    rows = [(k, point[k]) for k in
            ("messages", "delivered", "completion_ns", "recovery_stall_ns")]
    write_result("reliability_crash",
                 table(["metric", "value"], rows,
                       title="Node crash + warm-reset rejoin recovery"))


def test_fail_down_calibration(benchmark):
    """Retry-storm sweep: fail_down_threshold x storm BER, scored with a
    per-drop retransmit penalty.  The frozen default in ``ht.link`` must
    stay weakly optimal on the grid (self-validating calibration)."""

    def kernel():
        return run_fail_down_calibration()

    points = benchmark.pedantic(kernel, rounds=1, iterations=1)
    best, scores = calibrate_fail_down(points)
    assert best is not None, "no threshold survived the delivery guard"
    # Weak optimality: the shipped default scores within 1% of the
    # sweep's winner (re-run the sweep and update the constant if the
    # scenario model moves enough to break this).
    assert scores[str(FAIL_DOWN_THRESHOLD_DEFAULT)] >= \
        0.99 * scores[str(best)], (FAIL_DOWN_THRESHOLD_DEFAULT, scores)
    hysteresis = run_hysteresis_study()
    with_rt = next(h for h in hysteresis if h.retrain_after_storm)
    without_rt = next(h for h in hysteresis if not h.retrain_after_storm)
    # The hysteresis loop is real: a fail-down happened, the retrained
    # link recovers full goodput, the stranded one stays degraded.
    assert without_rt.fail_downs >= 1
    assert without_rt.width_after_storm < with_rt.width_after_storm
    assert without_rt.post_mbps < 0.7 * with_rt.post_mbps
    assert with_rt.post_mbps == pytest.approx(with_rt.pre_mbps, rel=0.05)
    _merge_bench_json("fail_down_calibration", {
        "default_threshold": FAIL_DOWN_THRESHOLD_DEFAULT,
        "best_threshold": best,
        "scores": scores,
        "grid": [p.as_dict() for p in points],
        "hysteresis": [h.as_dict() for h in hysteresis],
    })
    rows = [(th, s) for th, s in sorted(
        scores.items(), key=lambda kv: -kv[1])]
    write_result("reliability_fail_down",
                 table(["threshold", "effective MB/s (grid sum)"], rows,
                       title="fail_down_threshold calibration "
                             f"(default={FAIL_DOWN_THRESHOLD_DEFAULT})"))


def test_recovery_latency_figure(benchmark):
    """The recovery figure: end-to-end stall vs flap duration, storm
    magnitude, crash gap and topology, with a golden shape check."""

    def kernel():
        return run_recovery_figure()

    fig = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert set(fig) == {key for key, _ in RECOVERY_FIGURE_SPECS}
    # Every scenario on these topologies recovers completely.
    for key, p in fig.items():
        assert p["delivered"] == p["messages"], (key, p)
        assert p["errors"] == 0, (key, p)
    # Shape: stall grows weakly monotonically with flap duration, and a
    # flap outage is never shorter than the link-down window itself.
    flaps = [fig[f"flap:chain2:{int(d)}"]
             for d in (5_000, 20_000, 60_000, 120_000)]
    stalls = [p["stall_ns"] for p in flaps]
    assert stalls == sorted(stalls), stalls
    for p in flaps:
        assert p["stall_ns"] >= p["duration_ns"]
    # Crash recovery can't beat the crash->rejoin gap, and the crashed
    # receiver path must exercise the resynchronization machinery
    # (retransmits into the rejoined node).
    for gap in (15_000, 40_000):
        p = fig[f"crash:chain2:{int(gap)}"]
        assert p["stall_ns"] >= gap, p
        assert p["node_crashes"] == 1
    # Storms stall less than hard outages of the same duration: retry
    # keeps the stream trickling.
    assert fig["storm:chain2:0.001"]["stall_ns"] <= \
        fig["flap:chain2:20000"]["stall_ns"] + 30_000.0
    _merge_bench_json("recovery_figure", fig)
    rows = [(key, p["stall_ns"], p["completion_ns"], p["retransmits"],
             p["session_resets"]) for key, p in fig.items()]
    write_result("reliability_recovery_figure",
                 table(["scenario", "stall ns", "completion ns",
                        "retransmits", "session resets"], rows,
                       title="End-to-end recovery latency figure"))
