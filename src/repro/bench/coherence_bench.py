"""Coherence-scalability benchmark (the paper's motivation, Sections I/III).

Sweeps node count for a write-sharing workload under

* broadcast MESI (Opteron-style: probe everyone, wait for the last
  response) -- the paper's reason SMPs stop at 8 sockets,
* directory MESI (Horus/3-Leaf style, "moderately increase the
  scalability to 32 nodes"),
* TCCluster message passing, whose per-operation cost has *no*
  N-proportional probe term, only the topology's hop growth.

The output is the table behind the claim that abandoning coherence is
what lets TCCluster scale.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..coherence import CoherentSystem
from ..sim import Simulator
from ..util.calibration import TimingModel, DEFAULT_TIMING

__all__ = ["CoherenceScalePoint", "run_coherence_scaling", "tcc_op_latency_ns"]


@dataclass(frozen=True)
class CoherenceScalePoint:
    nodes: int
    protocol: str
    ops: int
    avg_op_ns: float
    probes_per_op: float
    total_ns: float


def tcc_op_latency_ns(nodes: int, timing: TimingModel = DEFAULT_TIMING,
                      base_hrt_ns: float = 234.0, per_hop_ns: float = 41.5) -> float:
    """TCCluster's equivalent communication cost per operation: the
    measured 64-byte half round trip plus mesh hop growth (~(2/3)sqrt(N)
    average hops, each under 50 ns).  No term grows with N beyond
    topology distance -- the point of the architecture."""
    avg_hops = max(0.0, (2 / 3) * math.sqrt(nodes) - 1)
    return base_hrt_ns + avg_hops * per_hop_ns


def run_coherence_scaling(
    node_counts: Sequence[int] = (2, 4, 8, 16, 32, 64),
    protocols: Sequence[str] = ("broadcast", "directory"),
    ops_per_node: int = 60,
    shared_lines: int = 16,
    write_fraction: float = 0.3,
    seed: int = 1234,
    timing: TimingModel = DEFAULT_TIMING,
) -> List[CoherenceScalePoint]:
    """Each node performs a mixed read/write stream over a hot shared
    working set plus private lines; reports mean latency per operation."""
    points: List[CoherenceScalePoint] = []
    for protocol in protocols:
        for n in node_counts:
            sim = Simulator()
            system = CoherentSystem(sim, n, protocol=protocol, timing=timing)
            rng = random.Random(seed)
            total_ops = n * ops_per_node

            def node_workload(node, rng_seed):
                local_rng = random.Random(rng_seed)
                for _ in range(ops_per_node):
                    if local_rng.random() < 0.5:
                        addr = 64 * local_rng.randrange(shared_lines)
                    else:
                        addr = 64 * (1000 + node.node_id * 64
                                     + local_rng.randrange(8))
                    if local_rng.random() < write_fraction:
                        yield from node.write(addr, local_rng.randrange(1 << 30))
                    else:
                        yield from node.read(addr)

            procs = [
                sim.process(node_workload(node, rng.randrange(1 << 30)))
                for node in system.nodes
            ]
            sim.run_until_event(sim.all_of(procs))
            system.check_all_invariants()
            probes = sum(nd.stats.probes_sent for nd in system.nodes)
            # Nodes run concurrently, each issuing ops_per_node sequential
            # operations; the mean per-op latency is the makespan divided
            # by the per-node stream length.
            points.append(
                CoherenceScalePoint(
                    nodes=n,
                    protocol=protocol,
                    ops=total_ops,
                    avg_op_ns=sim.now / ops_per_node,
                    probes_per_op=probes / total_ops,
                    total_ns=sim.now,
                )
            )
    # TCCluster equivalents.
    for n in node_counts:
        lat = tcc_op_latency_ns(n, timing)
        points.append(
            CoherenceScalePoint(n, "tccluster", n * ops_per_node, lat, 0.0,
                                lat * ops_per_node)
        )
    return points
