"""Smoke tests for the benchmark harnesses (small parameterizations).

The full sweeps with their shape assertions live in benchmarks/; these
tests keep the harness code itself exercised by the unit suite.
"""

import pytest

from repro.bench import (
    endpoint_footprint_table,
    header,
    make_prototype,
    run_bandwidth_sweep,
    run_latency_sweep,
    run_msglib_latency,
    run_multihop,
    run_ordering_ablation,
    run_wc_ablation,
    series_plot,
    table,
    tcc_op_latency_ns,
)
from repro.util.units import KiB


@pytest.fixture(scope="module")
def system():
    return make_prototype()


def test_bandwidth_sweep_small(system):
    pts = run_bandwidth_sweep(sizes=(64, 4096), modes=("weak", "strict"),
                              system=system)
    assert len(pts) == 4
    weak64 = next(p for p in pts if p.mode == "weak" and p.size == 64)
    strict64 = next(p for p in pts if p.mode == "strict" and p.size == 64)
    assert weak64.mbps > strict64.mbps
    assert weak64.mbps == pytest.approx(2510, rel=0.05)


def test_latency_sweep_small(system):
    pts = run_latency_sweep(sizes=(64,), iters=10, system=system)
    assert 100 < pts[0].hrt_ns < 250


def test_msglib_latency_reuses_system(system):
    a = run_msglib_latency(slot_counts=(1,), iters=5, system=system)
    b = run_msglib_latency(slot_counts=(1,), iters=5, system=system)
    assert a[0].hrt_ns == pytest.approx(b[0].hrt_ns, rel=0.25)


def test_multihop_increments_positive():
    pts = run_multihop(iters=8)
    assert pts[0].hrt_ns < pts[1].hrt_ns < pts[2].hrt_ns


def test_wc_ablation_small():
    pts = run_wc_ablation(size=8 * KiB)
    by = {p.mapping: p for p in pts}
    assert by["WC"].mbps > 3 * by["UC"].mbps


def test_ordering_ablation_small():
    pts = run_ordering_ablation(intervals=(1, None), size=8 * KiB)
    assert pts[0].mbps < pts[1].mbps


def test_eager_threshold_default_is_justified():
    """At ~2 KB the rendezvous path already beats multi-slot eager --
    the library's 1 KiB default cutoff is on the right side."""
    from repro.bench.msglib_bench import run_eager_threshold_sweep

    pts = run_eager_threshold_sweep(iters=8)
    rdzv = next(p for p in pts if p.protocol == "rendezvous")
    eager = next(p for p in pts if p.protocol == "eager")
    assert rdzv.hrt_ns < eager.hrt_ns


def test_endpoint_footprint_linear():
    foot = endpoint_footprint_table((2, 4, 8))
    assert foot[1].ring_bytes == 2 * foot[0].ring_bytes


def test_tcc_op_latency_grows_slowly():
    assert tcc_op_latency_ns(64) < 2 * tcc_op_latency_ns(2)


def test_latency_anatomy_accounts_for_every_ns():
    from repro.bench.anatomy import run_latency_anatomy

    a = run_latency_anatomy()
    # Stages tile the interval exactly: no gap, no overlap, no slack.
    cursor = 0.0
    for s in a.stages:
        assert s.start_ns == pytest.approx(cursor, abs=1e-9)
        assert s.duration_ns > 0
        cursor = s.end_ns
    assert cursor == pytest.approx(a.total_ns)
    # One-way anatomy sits below the ping-pong HRT (which adds response
    # send costs) but in the same regime.
    assert 120 < a.total_ns < 260


def test_reporting_table_alignment():
    txt = table(["a", "bb"], [(1, 2.5), (10, 33333.0)], title="T")
    lines = txt.splitlines()
    assert lines[0] == "T"
    assert "33,333" in txt


def test_reporting_series_plot():
    txt = series_plot(["x", "y"], [1.0, 2.0], width=10, label="L")
    assert txt.startswith("L")
    assert txt.count("|") == 2


def test_reporting_header():
    h = header("Title")
    assert h.splitlines()[0] == "=" * 5
