"""Tests for the engine/link wall-clock fast paths (PR 2).

Three families, matching the hot-path overhaul's risk surface:

* lazy Event dispatch -- ``succeed()`` on a callback-less event pushes
  nothing; ``add_callback`` must recover both the *deferred* (triggered,
  never scheduled) and the *late* (already dispatched) cases,
* the numeric-sleep fast path under interrupts (wake-token staleness),
* poll parking and burst serialization as virtual-time-invariant
  transformations (park/doorbell race, burst-vs-per-packet seeded fuzz).
"""

import dataclasses
import random

import pytest

from repro.ht import Link, LinkSide, VirtualChannel, make_posted_write
from repro.sim import Doorbell, Interrupt, Simulator


# ---------------------------------------------------------------------------
# Lazy event dispatch
# ---------------------------------------------------------------------------

def test_succeed_without_callbacks_pushes_nothing():
    sim = Simulator()
    ev = sim.event()
    before = sim.heap_pushes
    ev.succeed("v")
    assert sim.heap_pushes == before, "callback-less succeed must be free"
    assert ev.triggered and ev.ok and ev.value == "v"


def test_add_callback_on_lazy_triggered_event_schedules_dispatch():
    """Deferred path: triggered but never scheduled (no callbacks at
    trigger time) -- the first add_callback must schedule the dispatch."""
    sim = Simulator()
    ev = sim.event()
    ev.succeed(41)
    sim.run()  # nothing to do; the event is lazily triggered
    seen = []
    ev.add_callback(lambda e: seen.append(e.value + 1))
    assert seen == [], "callback must run from the calendar, not inline"
    sim.run()
    assert seen == [42]


def test_add_callback_after_dispatch_runs_late():
    """Late path: the event has already *dispatched* its callback list
    (``_callbacks`` consumed); a subsequent add_callback still runs, as a
    fresh zero-delay calendar entry."""
    sim = Simulator()
    ev = sim.event()
    order = []
    ev.add_callback(lambda e: order.append("first"))
    ev.succeed("v")
    sim.run()  # dispatches "first"
    assert order == ["first"]
    ev.add_callback(lambda e: order.append(("late", e.value)))
    assert order == ["first"], "late callback must not run inline"
    sim.run()
    assert order == ["first", ("late", "v")]


def test_failed_lazy_event_raises_when_finally_awaited():
    sim = Simulator()
    ev = sim.event()
    ev.fail(ValueError("deferred boom"))

    def waiter():
        yield ev

    sim.process(waiter())
    with pytest.raises(ValueError, match="deferred boom"):
        sim.run()


# ---------------------------------------------------------------------------
# Numeric-sleep fast path vs interrupts
# ---------------------------------------------------------------------------

def test_interrupt_during_fastpath_sleep():
    """An interrupt mid-way through ``yield <float>`` must (a) arrive at
    the interrupt time, and (b) leave the now-stale calendar wake entry
    inert -- the process resumes from its *new* sleep, not the old one."""
    sim = Simulator()
    resumes = []

    def sleeper():
        try:
            yield 100.0
            resumes.append(("uninterrupted", sim.now))
        except Interrupt as i:
            resumes.append(("interrupted", sim.now, i.cause))
        yield 30.0  # re-sleep across the stale t=100 wake entry
        resumes.append(("resleep", sim.now))

    proc = sim.process(sleeper())
    sim.schedule(50.0, proc.interrupt, "poke")
    sim.run()
    assert resumes == [
        ("interrupted", 50.0, "poke"),
        ("resleep", 80.0),
    ]
    assert not proc.is_alive


def test_interrupt_during_zero_delay_step():
    """Same staleness guard for the ``yield None`` zero-delay step: an
    interrupt scheduled at the same timestamp must not double-wake."""
    sim = Simulator()
    log = []

    def stepper():
        yield 10.0
        try:
            yield None
            log.append("stepped")
        except Interrupt:
            log.append("interrupted")
        yield 5.0
        log.append(("done", sim.now))

    proc = sim.process(stepper())
    # Delivered at t=10 with a lower seq than the process's own step wake.
    sim.schedule(10.0, proc.interrupt)
    sim.run()
    assert log == ["interrupted", ("done", 15.0)]


# ---------------------------------------------------------------------------
# Park / doorbell
# ---------------------------------------------------------------------------

def test_doorbell_ring_between_snapshot_and_wait_not_lost():
    """The lost-wakeup race the compare-and-wait closes: a producer rings
    after the consumer snapshots the count but before it parks."""
    sim = Simulator()
    db = Doorbell(sim, "db")
    seen = db.count
    db.ring()  # racing producer
    ev = db.wait(seen)
    assert ev.triggered, "ring between snapshot and wait must not be lost"


def test_doorbell_coalesces_but_never_loses_rings():
    sim = Simulator()
    db = Doorbell(sim, "db")
    wakes = []

    def consumer():
        while len(wakes) < 2:
            seen = db.count
            yield db.wait(seen)
            wakes.append((sim.now, db.count))

    sim.process(consumer())
    sim.schedule(5.0, db.ring)
    sim.schedule(5.0, db.ring)   # same-timestamp burst: coalesced
    sim.schedule(9.0, db.ring)
    sim.run()
    assert wakes == [(5.0, 2), (9.0, 3)]


def test_parked_receiver_wakes_for_concurrent_send():
    """End-to-end park/doorbell: a receiver idle long enough to park must
    wake for a message sent while it is parked, at the same virtual time
    (quantized to the poll grid) a busy-polling receiver would see it."""
    from repro.core import TCClusterSystem

    def run(parking: bool):
        sys_ = TCClusterSystem.two_board_prototype()
        sys_.sim.features.poll_parking = parking
        sys_.boot()
        cl = sys_.cluster
        a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
        tx, rx = sys_.connect(a, b)
        sim = sys_.sim
        got = []

        def receiver():
            got.append(((yield from rx.recv()), sim.now))

        def sender():
            yield 300_000.0  # receiver is parked long before this
            yield from tx.send(b"wake-up" * 9)
            yield from tx.flush()

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got and got[0][0] == b"wake-up" * 9
        return got[0][1], rx.stats.park_wakes

    t_parked, wakes_parked = run(parking=True)
    t_polled, wakes_polled = run(parking=False)
    assert wakes_parked >= 1, "the idle window must actually park"
    assert wakes_polled == 0
    assert t_parked == t_polled, "parking moved the receive completion time"


# ---------------------------------------------------------------------------
# Burst serialization equivalence (seeded fuzz)
# ---------------------------------------------------------------------------

def _run_stream(burst: bool, seed: int):
    """Drive a random posted-write stream through a clean link; return
    (delivery records, LinkStats) for equivalence comparison."""
    rng = random.Random(seed)
    sizes = [rng.choice((4, 8, 32, 64)) for _ in range(120)]
    gaps = [rng.choice((0.0, 0.0, 0.0, 5.0, 500.0)) for _ in sizes]

    sim = Simulator()
    sim.features.burst_serialization = burst
    link = Link(sim, "l0")
    link.activate("noncoherent")
    deliveries = []

    def rx():
        while len(deliveries) < len(sizes):
            p = yield link.receive(LinkSide.B)
            deliveries.append((sim.now, p.addr, len(p.data)))

    def tx():
        for i, (n, gap) in enumerate(zip(sizes, gaps)):
            if gap:
                yield gap
            yield link.send(
                LinkSide.A, make_posted_write(0x1000 + 64 * i, bytes([i % 255 + 1]) * n)
            )

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert len(deliveries) == len(sizes)
    return deliveries, link.stats(LinkSide.A)


@pytest.mark.parametrize("seed", [1, 7, 42, 1234])
def test_burst_vs_per_packet_identical(seed):
    d_burst, s_burst = _run_stream(burst=True, seed=seed)
    d_plain, s_plain = _run_stream(burst=False, seed=seed)
    assert d_burst == d_plain, "burst path moved a delivery timestamp"
    for f in dataclasses.fields(s_burst):
        if f.name == "bursts":
            continue
        assert getattr(s_burst, f.name) == getattr(s_plain, f.name), (
            f"LinkStats.{f.name} differs between burst and per-packet"
        )
    assert s_burst.bursts > 0, "fuzz stream never exercised the burst path"
    assert s_plain.bursts == 0


# ---------------------------------------------------------------------------
# Cancellable calendar entries (adaptive-fidelity support)
# ---------------------------------------------------------------------------

def test_cancelled_entry_skipped_without_advancing_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    seq = sim._push_cancellable(50.0, lambda: fired.append("never"), None)
    sim._cancel(seq)
    sim.run()
    assert fired == [5.0]
    # The revoked entry must not have dragged the clock to t=50.
    assert sim.now == 5.0
    assert not sim._cancelled, "cancel bookkeeping must drain"


def test_cancel_is_scoped_to_one_entry():
    sim = Simulator()
    fired = []
    keep = sim._push_cancellable(3.0, lambda: fired.append("keep"), None)
    drop = sim._push_cancellable(3.0, lambda: fired.append("drop"), None)
    assert keep != drop
    sim._cancel(drop)
    sim.run()
    assert fired == ["keep"]
    assert sim.now == 3.0


def test_cancelled_entry_skipped_in_run_until_event():
    sim = Simulator()
    seq = sim._push_cancellable(40.0, lambda: None, None)
    sim._cancel(seq)
    ev = sim.event()
    sim.schedule(2.0, ev.succeed)
    sim.run_until_event(ev)
    assert sim.now == 2.0


# ---------------------------------------------------------------------------
# Adaptive-fidelity demotion edge cases (ISSUE 3 satellite): each foreign
# disturbance must flip the train back to per-packet mode with an end
# state identical to a run that never aggregated.  The deep sweep lives in
# test_train_equivalence.py; these pin the three named hazards.
# ---------------------------------------------------------------------------

from test_train_equivalence import assert_equivalent, run_train_mode


def test_train_contention_arriving_mid_train():
    # A local posted write enters the northbridge while the train is in
    # full flight (K=64 window spans ~1.5us; t=241.3 is mid-window).
    slow = run_train_mode(64, fast=False, kind="submit", t_off=241.3)
    fast = run_train_mode(64, fast=True, kind="submit", t_off=241.3)
    assert_equivalent(slow, fast)
    assert fast["train_demotions"] >= 1, "contention must demote"


def test_train_link_degradation_mid_train():
    # A BER pulse (retry-capable link state) during the aggregate window:
    # the fidelity switch may not keep arithmetic timestamps once the
    # wire can corrupt packets.
    slow = run_train_mode(64, fast=False, kind="ber", t_off=160.9)
    fast = run_train_mode(64, fast=True, kind="ber", t_off=160.9)
    assert_equivalent(slow, fast)
    assert fast["train_demotions"] >= 1, "degradation must demote"


def test_train_interrupt_inside_aggregated_window():
    slow = run_train_mode(64, fast=False, kind="interrupt", t_off=93.1)
    fast = run_train_mode(64, fast=True, kind="interrupt", t_off=93.1)
    assert_equivalent(slow, fast)
    assert "store_interrupted" in fast["done"]
    assert fast["train_demotions"] >= 1, "interrupt must demote"


def test_train_foreign_rx_traffic_mid_train():
    # A packet from elsewhere entering the same link direction.
    slow = run_train_mode(16, fast=False, kind="send", t_off=47.77)
    fast = run_train_mode(16, fast=True, kind="send", t_off=47.77)
    assert_equivalent(slow, fast)
