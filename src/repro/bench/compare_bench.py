"""TCCluster vs NIC baselines (T-ib): the paper's comparison numbers.

Paper Section VI: "As a baseline, the Infiniband ConnectX network adapter
from Mellanox can be referenced ... it can be seen that TCCluster
provides a significant performance edge over Infiniband especially for
small messages", and "Other high performance networks like Infiniband
currently achieve end-to-end latencies of around 1 us ... which leads to
a 4X performance advantage for TCCluster".

The harness measures TCCluster live (simulated) and runs the calibrated
NIC models both analytically and through their DES implementation (the
two must agree -- asserted by the tests), then prints the ratio table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import ALL_BASELINES, CONNECTX_IB, NicLink, NicModelParams
from ..sim import Simulator
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import bandwidth_mbps
from .microbench import make_prototype, run_bandwidth_sweep
from .msglib_bench import run_msglib_latency

__all__ = [
    "ComparisonRow",
    "run_nic_des_bandwidth",
    "run_nic_des_latency",
    "run_baseline_comparison",
]


@dataclass(frozen=True)
class ComparisonRow:
    size: int
    tcc_mbps: float
    baseline: str
    baseline_mbps: float
    ratio: float


def run_nic_des_bandwidth(params: NicModelParams, size: int,
                          messages: int = 16) -> float:
    """Back-to-back messages through the DES NIC; returns MB/s."""
    sim = Simulator()
    link = NicLink(sim, params)
    tx, rx = link.endpoint(0), link.endpoint(1)
    data = bytes(size)

    def sender():
        for _ in range(messages):
            yield from tx.send(data)

    def receiver():
        for _ in range(messages):
            yield from rx.recv()

    start = sim.now
    sp = sim.process(sender())
    sim.process(receiver())
    sim.run_until_event(sp)
    elapsed = sim.now - start
    return bandwidth_mbps(messages * size, elapsed)


def run_nic_des_latency(params: NicModelParams, size: int = 64,
                        iters: int = 20) -> float:
    """Ping-pong half round trip through the DES NIC."""
    sim = Simulator()
    link = NicLink(sim, params)
    a, b = link.endpoint(0), link.endpoint(1)
    data = bytes(size)

    def echo():
        for _ in range(iters):
            msg = yield from b.recv()
            yield from b.send(msg)

    def ping():
        for _ in range(iters):
            yield from a.send(data)
            yield from a.recv()

    sim.process(echo())
    done = sim.process(ping())
    sim.run_until_event(done)
    return sim.now / (2 * iters)


def run_baseline_comparison(
    sizes: Sequence[int] = (64, 1024, 65536, 1048576),
    baselines: Sequence[NicModelParams] = ALL_BASELINES,
    timing: TimingModel = DEFAULT_TIMING,
) -> Dict[str, List[ComparisonRow]]:
    """Bandwidth rows per baseline + a latency summary entry."""
    sys_ = make_prototype(timing)
    tcc_bw = {p.size: p.mbps
              for p in run_bandwidth_sweep(sizes=sizes, modes=("weak",),
                                           system=sys_)}
    # Software-to-software latency through the message library (the level
    # at which the paper's 227 ns and the IB 1.4 us are comparable).
    tcc_lat = run_msglib_latency(slot_counts=(1,), iters=30, system=sys_)[0].hrt_ns

    out: Dict[str, List[ComparisonRow]] = {"bandwidth": [], "latency": []}
    for params in baselines:
        for size in sizes:
            base_mbps = size / (
                params.per_message_overhead_ns + size / params.stream_bytes_per_ns
            ) * 1000.0
            out["bandwidth"].append(
                ComparisonRow(size, tcc_bw[size], params.name, base_mbps,
                              tcc_bw[size] / base_mbps)
            )
        base_lat = params.base_latency_ns + 64 / params.stream_bytes_per_ns
        out["latency"].append(
            ComparisonRow(64, tcc_lat, params.name, base_lat,
                          base_lat / tcc_lat)
        )
    return out
