"""Generic NIC-based interconnect model (the traditional architecture).

Paper Section IV: "The traditional approach uses network interface cards
(NIC) that offer various services to the host. ... a NIC often provides
DMA functionality to retrieve data from the sender and to deliver it into
the receiver's main memory."

The model reproduces the cost *structure* that makes NICs slower than
TCCluster for small messages:

* a per-message initiation cost (descriptor build, doorbell write, WQE
  fetch, DMA setup) that cannot be amortized,
* a streaming stage that segments the payload at the MTU and clocks it at
  the wire rate,
* a fixed pipeline latency (NIC processing on both sides + PCIe/HTX DMA
  hops) that dominates the end-to-end latency of small messages.

Initiation and streaming are serialized per message -- matching how
MPI-level benchmarks of the era behave and pinning the model exactly to
the paper's quoted ConnectX numbers (see
:class:`repro.util.calibration.IBModel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..sim import Event, Resource, Simulator, Store
from ..util.calibration import EthernetModel, IBModel

__all__ = ["NicModelParams", "NicLink", "NicEndpoint", "params_from_model"]


@dataclass(frozen=True)
class NicModelParams:
    """Timing parameters of one NIC generation."""

    name: str
    per_message_overhead_ns: float
    stream_bytes_per_ns: float
    base_latency_ns: float
    mtu_bytes: int
    per_segment_ns: float

    @property
    def pipeline_fixed_ns(self) -> float:
        """Fixed both-sides NIC+DMA pipeline latency: whatever remains of
        the end-to-end small-message latency after initiation and the
        wire time of a minimal frame."""
        small_wire = 64 / self.stream_bytes_per_ns
        return max(
            0.0, self.base_latency_ns - self.per_message_overhead_ns - small_wire
        )


def params_from_model(model: Union[IBModel, EthernetModel], name: str) -> NicModelParams:
    return NicModelParams(
        name=name,
        per_message_overhead_ns=model.per_message_overhead_ns,
        stream_bytes_per_ns=model.stream_bytes_per_ns,
        base_latency_ns=model.base_latency_ns,
        mtu_bytes=model.mtu_bytes,
        per_segment_ns=model.per_segment_ns,
    )


class NicEndpoint:
    """One side of a NIC-connected node pair."""

    def __init__(self, link: "NicLink", side: int):
        self.link = link
        self.side = side
        self.sim = link.sim
        self._rx: Store = Store(link.sim, name=f"{link.name}.rx{side}")
        self.msgs_sent = 0
        self.bytes_sent = 0

    def send(self, data: bytes):
        """Generator: completes when the message has left this host
        (initiation + wire occupancy), like an MPI send returning."""
        if not data:
            raise ValueError("empty message")
        p = self.link.params
        sim = self.sim
        # Initiation: driver + doorbell + WQE fetch + DMA setup.
        yield sim.timeout(p.per_message_overhead_ns)
        # Wire: segments at the MTU, serialized on this direction's wire.
        wire = self.link._wire[self.side]
        yield wire.acquire()
        try:
            nseg = -(-len(data) // p.mtu_bytes)
            yield sim.timeout(len(data) / p.stream_bytes_per_ns
                              + nseg * p.per_segment_ns)
        finally:
            wire.release()
        # Delivery lands after the fixed receive pipeline.
        other = self.link.endpoints[1 - self.side]
        sim.schedule(p.pipeline_fixed_ns, other._rx.try_put, bytes(data))
        self.msgs_sent += 1
        self.bytes_sent += len(data)

    def recv(self):
        """Generator: blocks until a message is delivered (completion
        queue semantics -- no CPU polling of raw memory needed)."""
        data = yield self._rx.get()
        return data

    def pending(self) -> int:
        return len(self._rx)


class NicLink:
    """A pair of hosts joined by a NIC-based interconnect."""

    def __init__(self, sim: Simulator, params: NicModelParams, name: str = "nic"):
        self.sim = sim
        self.params = params
        self.name = name
        self._wire = [Resource(sim, 1, name=f"{name}.wire0"),
                      Resource(sim, 1, name=f"{name}.wire1")]
        self.endpoints = [NicEndpoint(self, 0), NicEndpoint(self, 1)]

    def endpoint(self, side: int) -> NicEndpoint:
        return self.endpoints[side]
