"""Cluster topology graphs: supernodes and the TCC links between them.

Paper Section IV.E/F: supernodes (boards of 1-8 coherent processors) are
interconnected by non-coherent TCCluster links through a backplane.  Each
Opteron has four HT links; after coherent fabric and southbridge usage, a
small number of ports per supernode remain for TCC links, so practical
topologies are low-degree: chains, rings, 2D meshes/tori.

A :class:`ClusterTopology` is a labeled graph: vertices are supernode
indices, edges carry which (node-within-supernode, port) each end uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Endpoint",
    "TccEdge",
    "ClusterTopology",
    "chain",
    "ring",
    "mesh2d",
    "torus2d",
    "fully_connected",
    "TopologyError",
]


class TopologyError(ValueError):
    """Ill-formed topology (port reuse, disconnected graph...)."""


@dataclass(frozen=True)
class Endpoint:
    """One end of a TCC link: which supernode, node within it, and port."""

    supernode: int
    node: int
    port: int


@dataclass(frozen=True)
class TccEdge:
    a: Endpoint
    b: Endpoint

    def other(self, supernode: int) -> Endpoint:
        if self.a.supernode == supernode:
            return self.b
        if self.b.supernode == supernode:
            return self.a
        raise KeyError(f"edge does not touch supernode {supernode}")

    def end_at(self, supernode: int) -> Endpoint:
        if self.a.supernode == supernode:
            return self.a
        if self.b.supernode == supernode:
            return self.b
        raise KeyError(f"edge does not touch supernode {supernode}")


class ClusterTopology:
    """Supernode graph with per-edge port assignments."""

    def __init__(self, num_supernodes: int, edges: Iterable[TccEdge],
                 kind: str = "custom", shape: Optional[Tuple[int, ...]] = None):
        if num_supernodes <= 0:
            raise TopologyError("need at least one supernode")
        self.num_supernodes = num_supernodes
        self.edges: List[TccEdge] = list(edges)
        self.kind = kind
        self.shape = shape
        self._adjacency: Dict[int, List[TccEdge]] = {
            i: [] for i in range(num_supernodes)
        }
        used_ports: set = set()
        for e in self.edges:
            for ep in (e.a, e.b):
                if not 0 <= ep.supernode < num_supernodes:
                    raise TopologyError(f"endpoint {ep} references unknown supernode")
                key = (ep.supernode, ep.node, ep.port)
                if key in used_ports:
                    raise TopologyError(
                        f"port reused: supernode {ep.supernode} node {ep.node} "
                        f"port {ep.port}"
                    )
                used_ports.add(key)
            if e.a.supernode == e.b.supernode:
                raise TopologyError("self-loop TCC link")
            self._adjacency[e.a.supernode].append(e)
            self._adjacency[e.b.supernode].append(e)

    def neighbors(self, supernode: int) -> List[Tuple[int, TccEdge]]:
        return [(e.other(supernode).supernode, e) for e in self._adjacency[supernode]]

    def degree(self, supernode: int) -> int:
        return len(self._adjacency[supernode])

    def is_connected(self) -> bool:
        if self.num_supernodes == 1:
            return True
        seen = {0}
        stack = [0]
        while stack:
            s = stack.pop()
            for n, _ in self.neighbors(s):
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        return len(seen) == self.num_supernodes

    def shortest_next_hops(self, src: int,
                           exclude: Iterable[TccEdge] = ()) -> Dict[int, TccEdge]:
        """BFS: for every destination, the first edge on a shortest path.

        ``exclude`` removes edges from consideration (dead TCC links
        during fault recovery); destinations only reachable through them
        are simply absent from the result.
        """
        from collections import deque

        dead = set(map(id, exclude))
        first_edge: Dict[int, TccEdge] = {}
        dist = {src: 0}
        q = deque([src])
        while q:
            s = q.popleft()
            for n, e in self.neighbors(s):
                if id(e) in dead:
                    continue
                if n not in dist:
                    dist[n] = dist[s] + 1
                    first_edge[n] = first_edge.get(s, e) if s != src else e
                    q.append(n)
        return first_edge

    def hop_distance(self, src: int, dst: int,
                     exclude: Iterable[TccEdge] = ()) -> int:
        from collections import deque

        if src == dst:
            return 0
        dead = set(map(id, exclude))
        dist = {src: 0}
        q = deque([src])
        while q:
            s = q.popleft()
            for n, e in self.neighbors(s):
                if id(e) in dead:
                    continue
                if n not in dist:
                    dist[n] = dist[s] + 1
                    if n == dst:
                        return dist[n]
                    q.append(n)
        raise TopologyError(f"no path from {src} to {dst}")


# ---------------------------------------------------------------------------
# Builders.  Ports: we reserve port 0 of node 0 for the southbridge and use
# the caller-provided port plan otherwise; default plans put TCC links on
# the last node's free ports, matching the prototype (HTX on node 1).
# ---------------------------------------------------------------------------

def _edge(sa: int, na: int, pa: int, sb: int, nb: int, pb: int) -> TccEdge:
    return TccEdge(Endpoint(sa, na, pa), Endpoint(sb, nb, pb))


def chain(n: int, node: int = 0, left_port: int = 1, right_port: int = 2) -> ClusterTopology:
    """A 1-D chain of supernodes (the 2-board prototype is chain(2))."""
    edges = [
        _edge(i, node, right_port, i + 1, node, left_port) for i in range(n - 1)
    ]
    return ClusterTopology(n, edges, kind="chain", shape=(n,))


def ring(n: int, node: int = 0, left_port: int = 1, right_port: int = 2) -> ClusterTopology:
    if n < 3:
        raise TopologyError("a ring needs at least 3 supernodes")
    edges = [
        _edge(i, node, right_port, (i + 1) % n, node, left_port) for i in range(n)
    ]
    return ClusterTopology(n, edges, kind="ring", shape=(n,))


def mesh2d(rows: int, cols: int, node: int = 0,
           ports: Sequence[int] = (0, 1, 2, 3)) -> ClusterTopology:
    """rows x cols mesh; ports (west, east, north, south).

    The paper's physical-implementation section argues an n x n mesh with
    blades arranged n horizontal x n vertical minimizes trace length.
    """
    if rows <= 0 or cols <= 0:
        raise TopologyError("mesh dimensions must be positive")
    pw, pe, pn, ps = ports

    def sid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(_edge(sid(r, c), node, pe, sid(r, c + 1), node, pw))
            if r + 1 < rows:
                edges.append(_edge(sid(r, c), node, ps, sid(r + 1, c), node, pn))
    return ClusterTopology(rows * cols, edges, kind="mesh2d", shape=(rows, cols))


def torus2d(rows: int, cols: int, node: int = 0,
            ports: Sequence[int] = (0, 1, 2, 3)) -> ClusterTopology:
    if rows < 3 or cols < 3:
        raise TopologyError("a 2D torus needs at least 3x3 supernodes")
    pw, pe, pn, ps = ports

    def sid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            edges.append(_edge(sid(r, c), node, pe, sid(r, (c + 1) % cols), node, pw))
            edges.append(_edge(sid(r, c), node, ps, sid((r + 1) % rows, c), node, pn))
    return ClusterTopology(rows * cols, edges, kind="torus2d", shape=(rows, cols))


def fully_connected(n: int, node: int = 0) -> ClusterTopology:
    """All-to-all; limited by the four HT ports per node, so n <= 5 with a
    single-node supernode (ports 0..3)."""
    if n > 5:
        raise TopologyError(
            "fully connected topology exceeds the 4 HT ports per node"
        )
    edges = []
    port_next = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            pi, pj = port_next[i], port_next[j]
            port_next[i] += 1
            port_next[j] += 1
            edges.append(_edge(i, node, pi, j, node, pj))
    return ClusterTopology(n, edges, kind="full", shape=(n,))
