"""The assembled Opteron node: cores, caches, northbridge, DRAM, links.

Mirrors paper Figure 1 ("AMD Opteron Chip Architecture: Multiple modules
including memory controllers and a crossbar switch are integrated on a
single processor chip"): four cores with L1/L2 and a shared L3, a DDR2
memory controller, an IO bridge, up to four HyperTransport link ports and
the crossbar/router (:class:`repro.opteron.northbridge.Northbridge`).

The chip also wires register side effects:

* writing the warm-reset bit of F0x6C re-trains all attached links with
  the pending (force-non-coherent, width, frequency) values -- the paper's
  "Warm Reset" boot step,
* link training outcomes are reflected back into the Link Control status
  bits so firmware can observe what it got.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ht.link import Link, LinkSide
from ..ht.linkinit import LinkInitFSM
from ..ht.packet import Packet, make_broadcast
from ..sim import Simulator, Tracer, NULL_TRACER
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import MiB
from .caches import CacheHierarchy
from .core import CpuCore
from .memory import Memory, MemoryController
from .mtrr import MTRRSet, MemoryType
from .northbridge import Northbridge
from .registers import (
    F0_HT_INIT_CONTROL,
    DramConfigAccessor,
    DramPairAccessor,
    Function,
    HtInitControlAccessor,
    LinkControlAccessor,
    LinkFreqAccessor,
    MiscControlAccessor,
    MmioPairAccessor,
    NodeIDAccessor,
    RegisterFile,
    RoutingTableAccessor,
    NUM_LINKS,
)

__all__ = ["OpteronChip", "PortBinding", "InterruptRecord", "wire_link"]


@dataclass
class PortBinding:
    """One HT port: the attached link, which side we are, and its FSM."""

    port: int
    link: Link
    side: str
    fsm: LinkInitFSM


@dataclass(frozen=True)
class InterruptRecord:
    time: float
    vector: int
    smc: bool


class OpteronChip:
    """One simulated Shanghai Opteron node."""

    NUM_CORES = 4

    def __init__(
        self,
        sim: Simulator,
        name: str,
        memory_bytes: int = 512 * MiB,
        timing: TimingModel = DEFAULT_TIMING,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.name = name
        self.timing = timing
        self.tracer = tracer
        self.regs = RegisterFile()
        self.memory = Memory(memory_bytes)
        self.memctrl = MemoryController(sim, self.memory, timing, name=f"{name}.mc")
        self.caches = CacheHierarchy(timing)
        self.mtrr = MTRRSet(default=MemoryType.WB)
        self.ports: Dict[int, PortBinding] = {}
        self.nb = Northbridge(sim, self)
        self.cores: List[CpuCore] = [CpuCore(self, i) for i in range(self.NUM_CORES)]
        self.interrupts: List[InterruptRecord] = []
        self._in_reset_hook = False
        self.regs.add_write_hook(self._on_reg_write)

    # -- convenient accessors -------------------------------------------------
    @property
    def nodeid(self) -> int:
        return NodeIDAccessor(self.regs).nodeid

    def node_id_reg(self) -> NodeIDAccessor:
        return NodeIDAccessor(self.regs)

    def routing_table(self, dest_node: int) -> RoutingTableAccessor:
        return RoutingTableAccessor(self.regs, dest_node)

    def link_control(self, port: int) -> LinkControlAccessor:
        return LinkControlAccessor(self.regs, port)

    def link_freq(self, port: int) -> LinkFreqAccessor:
        return LinkFreqAccessor(self.regs, port)

    def dram_pair(self, index: int) -> DramPairAccessor:
        return DramPairAccessor(self.regs, index)

    def mmio_pair(self, index: int) -> MmioPairAccessor:
        return MmioPairAccessor(self.regs, index)

    def dram_config(self) -> DramConfigAccessor:
        return DramConfigAccessor(self.regs)

    def misc_control(self) -> MiscControlAccessor:
        return MiscControlAccessor(self.regs)

    # -- link topology -----------------------------------------------------------
    def attach_link(self, port: int, link: Link, side: str, fsm: LinkInitFSM) -> None:
        if not 0 <= port < NUM_LINKS:
            raise ValueError(f"port {port} out of range")
        if port in self.ports:
            raise ValueError(f"{self.name}: port {port} already attached")
        self.ports[port] = PortBinding(port, link, side, fsm)

    def start(self) -> None:
        """Begin fabric processing (after links are attached)."""
        self.nb.start()

    # -- config-space access -------------------------------------------------------
    def config_read(self, func: int, offset: int) -> int:
        return self.regs.read(func, offset)

    def config_write(self, func: int, offset: int, value: int) -> None:
        self.regs.write(func, offset, value)

    # -- register side effects -------------------------------------------------------
    def _on_reg_write(self, func: int, offset: int, value: int) -> None:
        if self._in_reset_hook:
            return
        if func == Function.HT_CONFIG and offset == F0_HT_INIT_CONTROL and (value & 1):
            self._in_reset_hook = True
            try:
                HtInitControlAccessor(self.regs).clear_warm_reset()
            finally:
                self._in_reset_hook = False
            self.sim.schedule(0.0, self._issue_warm_reset)

    def _issue_warm_reset(self) -> List:
        """Apply pending link configuration and re-train all links.

        Returns the per-link training events (used by firmware to wait for
        the reset to complete)."""
        events = []
        for binding in self.ports.values():
            ctl = self.link_control(binding.port)
            freq = self.link_freq(binding.port)
            fsm = binding.fsm
            fsm.set_force_noncoherent(binding.side, ctl.force_noncoherent)
            if freq.width_bits:
                fsm.program_rate(binding.side, freq.width_bits, freq.gbit_per_lane)
            ev = fsm.assert_reset(binding.side, "warm")
            ev.add_callback(self._make_status_updater(binding))
            events.append(ev)
        return events

    def discard_volatile_state(self) -> Tuple[int, int, int]:
        """Model a hard crash: drop cached line copies, open
        write-combining buffers and queued posted writes.  Local DRAM
        (and with it the msglib rings, heaps and feedback lines)
        survives; everything on-chip does not.  Returns the
        ``(cache_lines, wc_bytes, posted_packets)`` discarded."""
        lines = self.caches.discard_all()
        wc_bytes = sum(core.wc.discard() for core in self.cores)
        posted = self.nb.discard_posted()
        return lines, wc_bytes, posted

    def cold_reset(self) -> None:
        """Power-on: registers to reset values, links retrain from scratch."""
        self.regs.reset(cold=True)
        self.caches.flush_all()
        self.mtrr.clear()
        for binding in self.ports.values():
            ev = binding.fsm.assert_reset(binding.side, "cold")
            ev.add_callback(self._make_status_updater(binding))

    def _make_status_updater(self, binding: PortBinding):
        def update(ev) -> None:
            if not ev.ok:
                return
            ctl = self.link_control(binding.port)
            ctl.coherent = ev.value == "coherent"

        return update

    # -- interrupts -------------------------------------------------------------
    def deliver_interrupt(self, pkt: Packet) -> None:
        """A broadcast reached this chip's local APICs."""
        self.interrupts.append(
            InterruptRecord(
                self.sim.now, (pkt.addr >> 8) & 0xFF, smc=bool(pkt.addr & 0x10)
            )
        )

    def send_interrupt(self, vector: int, smc: bool = False) -> bool:
        """Originate an interrupt/SMC broadcast.

        Returns False (suppressed) when SMC generation is disabled -- the
        custom-kernel requirement of paper Section VI.
        """
        if smc and not self.misc_control().smc_enabled:
            self.nb.counters.inc("smc_suppressed")
            return False
        # Interrupt broadcasts target the APIC window; the vector and SMC
        # flag ride in (dword-aligned) address bits.
        addr = 0xFDF8_0000 | ((vector & 0xFF) << 8) | (0x10 if smc else 0)
        pkt = make_broadcast(addr, unitid=self.nodeid)
        self.nb.broadcast(pkt)
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OpteronChip {self.name} nodeid={self.nodeid} ports={sorted(self.ports)}>"


def wire_link(
    sim: Simulator,
    chip_a: OpteronChip,
    port_a: int,
    chip_b: OpteronChip,
    port_b: int,
    name: Optional[str] = None,
    timing: Optional[TimingModel] = None,
    skew_tolerance_ns: float = 100.0,
    **link_kw,
) -> Link:
    """Create a Link + init FSM between two chips and attach both ends.

    Chip A is always :data:`LinkSide.A`.  Returns the link; the FSM is
    reachable via either chip's port binding.
    """
    t = timing or chip_a.timing
    link = Link(
        sim,
        name=name or f"{chip_a.name}p{port_a}--{chip_b.name}p{port_b}",
        timing=t,
        **link_kw,
    )
    fsm = LinkInitFSM(sim, link, skew_tolerance_ns=skew_tolerance_ns)
    chip_a.attach_link(port_a, link, LinkSide.A, fsm)
    chip_b.attach_link(port_b, link, LinkSide.B, fsm)
    #: Device registry used by firmware enumeration to traverse the fabric
    #: (models config cycles flowing over the link).
    link.attached = {LinkSide.A: chip_a, LinkSide.B: chip_b}
    return link
