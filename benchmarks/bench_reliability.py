"""R-retry -- fault tolerance of the link layer.

Paper Section III: HyperTransport "defines fault tolerance mechanisms on
the link level"; the prototype's cable is exactly where bit errors would
appear ("due to signal integrity issues of our cable based approach").
The sweep injects per-packet error rates and checks that HT3 retry keeps
the fabric lossless while throughput degrades gracefully.
"""

import pytest

from _common import write_result
from repro.bench.ablation import run_ber_sweep
from repro.bench import table

RATES = (0.0, 0.01, 0.05, 0.2)


@pytest.fixture(scope="module")
def ber_points():
    return run_ber_sweep(error_rates=RATES)


def test_link_retry_reliability(benchmark, ber_points):
    points = ber_points
    # --- lossless at every error rate ------------------------------------
    assert all(p.delivered_ok for p in points)
    # retries scale with the error rate
    retries = [p.retries for p in points]
    assert retries[0] == 0
    assert retries == sorted(retries)
    # throughput degrades monotonically and gracefully (no collapse)
    mbps = [p.mbps for p in points]
    assert mbps == sorted(mbps, reverse=True)
    assert mbps[-1] > 0.4 * mbps[0], "20% per-packet errors still >40% tput"

    rows = [(f"{p.error_rate:.2f}", round(p.mbps), p.retries,
             "yes" if p.delivered_ok else "NO") for p in points]
    txt = table(["pkt error rate", "MB/s (1 MiB)", "retries", "lossless"],
                rows, title="HT3 retry under injected link errors")
    write_result("reliability", txt)

    def kernel():
        return run_ber_sweep(error_rates=(0.05,), size=64 * 1024)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].delivered_ok
