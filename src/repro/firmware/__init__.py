"""Modified-coreboot firmware: boards, enumeration, the TCC boot sequence."""

from .board import Board, BoardError, BoardLayout, TYAN_S2912E, single_chip_layout
from .boot import (
    BoardPlan,
    BootReport,
    FirmwareContext,
    FirmwareError,
    TCClusterFirmware,
    mtrr_cover,
)
from .enumeration import EnumerationError, EnumerationResult, coherent_enumeration
from .southbridge import DEFAULT_ROM_IMAGE, Southbridge

__all__ = [
    "Board",
    "BoardLayout",
    "BoardError",
    "TYAN_S2912E",
    "single_chip_layout",
    "BoardPlan",
    "BootReport",
    "FirmwareContext",
    "FirmwareError",
    "TCClusterFirmware",
    "mtrr_cover",
    "EnumerationResult",
    "EnumerationError",
    "coherent_enumeration",
    "Southbridge",
    "DEFAULT_ROM_IMAGE",
]
