"""Collective algorithms: topology-aware, bandwidth-optimal, size-adaptive.

The seed collectives in :mod:`repro.middleware.mpi` are rank-space and
single-algorithm: ``allreduce`` is a binomial reduce-to-0 plus broadcast,
which moves the full array every round and ignores mesh/torus placement.
This module adds the bandwidth-optimal algorithms and the machinery to
pick between them:

* **ring reduce-scatter / allreduce** -- 2(n-1) steps moving m/n bytes
  each, 2m(n-1)/n total per rank (the bandwidth lower bound), embedded on
  a Hamiltonian supernode ring
  (:meth:`repro.topology.graph.ClusterTopology.hamiltonian_supernode_ring`)
  so every phase crosses only single-hop TCC links;
* **Rabenseifner allreduce** -- recursive-halving reduce-scatter plus
  recursive-doubling allgather: same bandwidth term but only 2·log2(n)
  message latencies, the better large-message choice when no neighbor
  ring embedding exists;
* **segmented binomial broadcast** -- the binomial tree pipelined in
  ``segment_bytes`` chunks so interior ranks forward segment k while
  receiving segment k+1;
* **pairwise-exchange alltoall** -- posts the receive concurrently with
  every send (XOR partners on power-of-two communicators) so bulk blocks
  stream full-duplex instead of serializing send-then-recv.

**Size-adaptive selection** (MPICH-style): latency-optimal binomial below
a crossover, bandwidth-optimal ring/Rabenseifner above.  The crossover is
*derived from the calibrated machine model*, not guessed: alpha is the
fig7 single-slot one-hop latency (234.45 ns, ``tests/golden/
fig7_latency.json``), beta the effective serialized cost per byte from
:class:`repro.util.calibration.TimingModel`.  Equating the binomial cost
``2·ceil(log2 n)·(alpha + m·beta)`` with the ring cost ``2(n-1)·alpha +
2·m·beta·(n-1)/n`` gives

    m* = alpha · ((n-1) - lg n) / (beta · (lg n - (n-1)/n))

(about 7.2 KiB at n=64 with the default timing).  Every threshold and
algorithm is overridable per-Communicator via :class:`CollectiveTuning`.

Deadlock notes.  Ring steps pair an ``isend`` with a blocking ``recv``
so every rank is always draining its inbound ring while its outbound
chunk trickles through the flow-control window -- a uniform blocking
send-then-recv cycle would wedge once chunks exceed the eager window.
XOR *exchanges* (Rabenseifner's halving/doubling levels, the pairwise
alltoall) are different: on an even torus the half-dimension partner is
antipodal, both route choices tie, and three or more concurrent
bidirectional antipodal flows on one ring use every same-direction link
including the wraparound -- a closed channel-dependency cycle the
HT-style fabric (no dateline virtual channels) cannot break.  Two mitigations apply, by pattern:

* Rabenseifner's halving/doubling levels run *half-duplex in a
  deterministic order* (the partner with the lower logical id streams
  first).  Each level flips a single rank-id bit, i.e. a single
  coordinate bit, so lower id *is* the lower coordinate in the tied
  dimension: the level's concurrent flows all head "up" from the lower
  half and never cross the wrap link.  Cost: one extra serialization
  per level, leaving Rabenseifner ~3x binomial at n=64 by the
  alpha-beta model.
* The pairwise alltoall's tied steps are *leg-synchronized*
  (:func:`alltoall_pairwise`): per-pair ordering is not enough there,
  because independent pairs drift -- a laggard pair still streaming its
  first leg while a fast pair's second leg occupies the wrap link
  re-closes the cycle, and diagonal steps (antipodal in several
  dimensions at once) wrap somewhere in *either* direction.  Ranks are
  partitioned by the half of each tied ring they sit in; one leg sends
  at a time, with a dissemination barrier (single-packet tokens, unable
  to exhaust link credits) draining the fabric between legs.

Ring and tree phases (single flow per ring direction) keep the
full-duplex isend+recv overlap -- the Hamiltonian embedding makes every
ring transfer single-hop, which sinks at its destination without
forwarding and is deadlock-free by construction.  Large eager-path
chunks ride the flow-fidelity macro-event layer (:mod:`repro.sim.flows`)
exactly like any other msglib traffic.
"""

from __future__ import annotations

import math
import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..util.calibration import DEFAULT_TIMING, TimingModel

__all__ = [
    "CollectiveTuning",
    "FIG7_ALPHA_NS",
    "allreduce_crossover_bytes",
    "bcast_crossover_bytes",
    "ALLTOALL_CROSSOVER_BYTES",
    "select_allreduce",
    "select_bcast",
    "select_alltoall",
    "ring_embedding",
    "ring_hop_profile",
    "chunk_bounds",
]

#: Calibrated one-hop single-slot HRT/2 latency (golden fig7 point); the
#: alpha term of the cost model.  Hard-coded so the selector never reads
#: golden files at simulation time.
FIG7_ALPHA_NS = 234.45

#: Below this per-block size the linear alltoall's send-then-recv is fine
#: (sends retire locally); above it, blocks start to fill the eager ring
#: window and the pairwise exchange's concurrently posted receive is what
#: keeps both directions streaming.
ALLTOALL_CROSSOVER_BYTES = 2048

_RS_TAG = (1 << 27)              # ring reduce-scatter steps
_RING_AG_TAG = (1 << 27) + (1 << 20)   # ring allgather steps
_RAB_FOLD_TAG = (1 << 27) + (2 << 20)  # Rabenseifner non-pow2 fold
_RAB_RS_TAG = (1 << 27) + (3 << 20)    # recursive halving levels
_RAB_AG_TAG = (1 << 27) + (4 << 20)    # recursive doubling levels
_RAB_UNFOLD_TAG = (1 << 27) + (5 << 20)
_SEG_TAG = (1 << 27) + (6 << 20)       # bcast segments

_HDR = struct.Struct("<q")

#: Cap on outstanding isend requests in the pipelined broadcast (bounds
#: simulator process count, deep enough to keep every tree edge busy).
_MAX_INFLIGHT = 32


def _beta_ns_per_byte(timing: TimingModel) -> float:
    # Effective serialized cost per payload byte of a full 64 B slot
    # (header + CRC overhead folded in), from the calibrated link model.
    return timing.serialization_ns(64) / 64.0


def allreduce_crossover_bytes(nranks: int,
                              alpha_ns: float = FIG7_ALPHA_NS,
                              timing: TimingModel = DEFAULT_TIMING) -> int:
    """Message size where ring allreduce overtakes binomial reduce+bcast."""
    if nranks <= 2:
        return 1 << 62  # binomial == optimal; never switch
    beta = _beta_ns_per_byte(timing)
    lg = math.ceil(math.log2(nranks))
    denom = lg - (nranks - 1) / nranks
    if denom <= 0:
        return 1 << 62
    return max(0, int(alpha_ns * ((nranks - 1) - lg) / (beta * denom)))


def bcast_crossover_bytes(nranks: int, segment_bytes: int,
                          alpha_ns: float = FIG7_ALPHA_NS,
                          timing: TimingModel = DEFAULT_TIMING) -> int:
    """Message size where the segmented pipeline overtakes plain binomial.

    Binomial moves the whole message down every tree level
    (``lg·(alpha + m·beta)``); the pipeline pays one segment of fill per
    level plus the streaming term (``lg·(alpha + s·beta) + (m/s)·(alpha +
    s·beta)``).  Equating and solving for m gives the crossover below.
    """
    if nranks <= 2:
        return 1 << 62  # no interior rank to pipeline through
    beta = _beta_ns_per_byte(timing)
    lg = math.ceil(math.log2(nranks))
    per_seg = alpha_ns + segment_bytes * beta
    denom = (lg - 1) * beta - alpha_ns / segment_bytes
    if denom <= 0:
        return 1 << 62
    return max(segment_bytes, int(lg * per_seg / denom))


def select_allreduce(nbytes: int, nranks: int, crossover: int,
                     ring_single_hop: bool) -> str:
    if nranks <= 2 or nbytes <= crossover:
        return "binomial"
    # Above the crossover both candidates hit the 2m(n-1)/n bandwidth
    # bound; prefer the ring when the embedding guarantees single-hop
    # neighbor traffic (no shared links, no multi-hop congestion), else
    # Rabenseifner's lg(n) latency terms win.
    return "ring" if ring_single_hop else "rabenseifner"


def select_bcast(nbytes: int, nranks: int, crossover: int) -> str:
    return "binomial" if nranks <= 2 or nbytes <= crossover else "segmented"


def select_alltoall(block_bytes: int, crossover: int) -> str:
    return "linear" if block_bytes <= crossover else "pairwise"


@dataclass
class CollectiveTuning:
    """Per-Communicator overrides for the size-adaptive selector.

    ``*_algorithm`` forces one algorithm unconditionally; ``*_crossover_
    bytes`` replaces the derived threshold while keeping the adaptive
    dispatch.  ``None`` everywhere means fully derived behaviour.
    """

    allreduce_algorithm: Optional[str] = None   # binomial | ring | rabenseifner
    allreduce_crossover_bytes: Optional[int] = None
    bcast_algorithm: Optional[str] = None       # binomial | segmented
    bcast_crossover_bytes: Optional[int] = None
    bcast_segment_bytes: int = 8192
    alltoall_algorithm: Optional[str] = None    # linear | pairwise
    alltoall_crossover_bytes: Optional[int] = None


# ---------------------------------------------------------------------------
# Topology-aware rank embedding
# ---------------------------------------------------------------------------

def ring_embedding(topology, rank_supernodes: Optional[Sequence[int]],
                   nranks: int) -> List[int]:
    """Rank order for ring collectives.

    On a grid topology this walks the Hamiltonian supernode ring and
    keeps each supernode's ranks adjacent (chips on one board exchange
    over the coherent fabric, not a TCC link), so ring phases only ever
    cross single-hop links.  Off-grid, or when the rank->supernode map is
    unavailable or partial, it falls back to plain rank order.
    """
    if topology is None or not getattr(topology, "is_grid", False):
        return list(range(nranks))
    if rank_supernodes is None or len(rank_supernodes) != nranks:
        return list(range(nranks))
    by_sn: dict = {}
    for rank, sn in enumerate(rank_supernodes):
        by_sn.setdefault(sn, []).append(rank)
    if set(by_sn) != set(range(topology.num_supernodes)):
        return list(range(nranks))
    order: List[int] = []
    for sn in topology.hamiltonian_supernode_ring():
        order.extend(by_sn[sn])
    return order


def ring_hop_profile(topology, order: Sequence[int],
                     rank_supernodes: Sequence[int]) -> List[int]:
    """TCC hop count of each (cyclic) consecutive pair in ``order``."""
    n = len(order)
    hops: List[int] = []
    for i in range(n):
        a = rank_supernodes[order[i]]
        b = rank_supernodes[order[(i + 1) % n]]
        hops.append(0 if a == b else topology.hop_distance(a, b))
    return hops


def chunk_bounds(total: int, n: int) -> List[Tuple[int, int]]:
    """Balanced element ranges: chunk i is ``[i*total//n, (i+1)*total//n)``."""
    return [(i * total // n, (i + 1) * total // n) for i in range(n)]


# ---------------------------------------------------------------------------
# Ring reduce-scatter / allreduce (generators driven by the Communicator)
# ---------------------------------------------------------------------------

def _ring_reduce_scatter(comm, acc: np.ndarray, fn):
    """n-1 ring steps; afterwards ring position q fully owns the chunk of
    rank ``order[q]`` (i.e. every rank owns *its own* rank-indexed chunk).
    Returns ``(bounds_by_pos, pos)`` for the follow-on phases."""
    order = comm.ring_order
    n = len(order)
    pos = order.index(comm.rank)
    right = order[(pos + 1) % n]
    left = order[(pos - 1) % n]
    by_rank = chunk_bounds(acc.size, n)
    bounds = [by_rank[order[q]] for q in range(n)]  # position-space chunks
    for step in range(n - 1):
        s0, s1 = bounds[(pos - step - 1) % n]
        r0, r1 = bounds[(pos - step - 2) % n]
        req = comm.isend(acc[s0:s1].tobytes(), right, tag=_RS_TAG + step)
        raw = yield from comm.recv(left, tag=_RS_TAG + step)
        other = comm._reduce_payload(raw, (r1 - r0) * acc.itemsize,
                                     acc.dtype, None, left)
        acc[r0:r1] = fn(acc[r0:r1], other)
        yield from req.wait()
    return bounds, pos


def _ring_allgather(comm, acc: np.ndarray, bounds, pos: int):
    order = comm.ring_order
    n = len(order)
    right = order[(pos + 1) % n]
    left = order[(pos - 1) % n]
    for step in range(n - 1):
        s0, s1 = bounds[(pos - step) % n]
        r0, r1 = bounds[(pos - step - 1) % n]
        req = comm.isend(acc[s0:s1].tobytes(), right, tag=_RING_AG_TAG + step)
        raw = yield from comm.recv(left, tag=_RING_AG_TAG + step)
        acc[r0:r1] = comm._reduce_payload(raw, (r1 - r0) * acc.itemsize,
                                          acc.dtype, None, left)
        yield from req.wait()


def allreduce_ring(comm, flat: np.ndarray, fn):
    """Ring allreduce over the embedded neighbor ring; returns the fully
    reduced flat array (same dtype, writable copy)."""
    acc = flat.copy()
    bounds, pos = yield from _ring_reduce_scatter(comm, acc, fn)
    yield from _ring_allgather(comm, acc, bounds, pos)
    return acc


def reduce_scatter_ring(comm, flat: np.ndarray, fn):
    """Ring reduce-scatter; returns this rank's fully reduced chunk
    (rank-indexed bounds from :func:`chunk_bounds`)."""
    acc = flat.copy()
    bounds, pos = yield from _ring_reduce_scatter(comm, acc, fn)
    lo, hi = bounds[pos]
    return acc[lo:hi].copy()


def _exchange(comm, peer: int, payload: bytes, tag: int, send_first: bool):
    """Half-duplex pairwise exchange (see the module deadlock notes):
    the ``send_first`` side streams its payload, then receives; the other
    side mirrors.  Returns the received payload."""
    if send_first:
        yield from comm.send(payload, peer, tag)
        raw = yield from comm.recv(peer, tag=tag)
    else:
        raw = yield from comm.recv(peer, tag=tag)
        yield from comm.send(payload, peer, tag)
    return raw


# ---------------------------------------------------------------------------
# Rabenseifner allreduce (recursive halving + recursive doubling)
# ---------------------------------------------------------------------------

def allreduce_rabenseifner(comm, flat: np.ndarray, fn):
    """Rabenseifner's allreduce; returns the reduced flat array.

    Non-power-of-two sizes use the standard MPICH fold: the first 2r
    ranks (r = n - 2^floor(lg n)) pair up, each pair pre-reduces into the
    even rank, odd ranks sit out the power-of-two core and receive the
    result at the end.
    """
    n, me = comm.size, comm.rank
    acc = flat.copy()
    nel = acc.size
    item = acc.itemsize
    p = 1 << (n.bit_length() - 1)
    r = n - p

    newrank = -1
    if me < 2 * r:
        partner = me + 1 if me % 2 == 0 else me - 1
        half = nel // 2
        if me % 2 == 0:
            # Pair pre-reduce: even keeps [0:half), odd reduces the rest,
            # then the even rank assembles the pair's full vector.
            req = comm.isend(acc[half:].tobytes(), partner,
                             tag=_RAB_FOLD_TAG)
            raw = yield from comm.recv(partner, tag=_RAB_FOLD_TAG)
            other = comm._reduce_payload(raw, half * item, acc.dtype,
                                         None, partner)
            acc[:half] = fn(acc[:half], other)
            yield from req.wait()
            raw = yield from comm.recv(partner, tag=_RAB_FOLD_TAG + 1)
            acc[half:] = comm._reduce_payload(raw, (nel - half) * item,
                                              acc.dtype, None, partner)
            newrank = me // 2
        else:
            req = comm.isend(acc[:half].tobytes(), partner,
                             tag=_RAB_FOLD_TAG)
            raw = yield from comm.recv(partner, tag=_RAB_FOLD_TAG)
            other = comm._reduce_payload(raw, (nel - half) * item,
                                         acc.dtype, None, partner)
            acc[half:] = fn(acc[half:], other)
            yield from req.wait()
            yield from comm.send(acc[half:].tobytes(), partner,
                                 tag=_RAB_FOLD_TAG + 1)
    else:
        newrank = me - r

    def real_rank(nr: int) -> int:
        return nr * 2 if nr < r else nr + r

    if newrank >= 0:
        # Recursive-halving reduce-scatter over the 2^k core.
        lo, hi = 0, nel
        splits: List[Tuple[int, int, int]] = []  # (partner, give_lo, give_hi)
        mask, level = p >> 1, 0
        while mask >= 1:
            partner = real_rank(newrank ^ mask)
            mid = lo + (hi - lo) // 2
            if newrank & mask:
                give = (lo, mid)
                lo = mid
            else:
                give = (mid, hi)
                hi = mid
            splits.append((partner, give[0], give[1]))
            raw = yield from _exchange(comm, partner,
                                       acc[give[0]:give[1]].tobytes(),
                                       _RAB_RS_TAG + level,
                                       not (newrank & mask))
            other = comm._reduce_payload(raw, (hi - lo) * item, acc.dtype,
                                         None, partner)
            acc[lo:hi] = fn(acc[lo:hi], other)
            mask >>= 1
            level += 1
        # Recursive-doubling allgather, replaying the splits in reverse
        # (same partner per level, so the same side streams first).
        for level in range(len(splits) - 1, -1, -1):
            partner, g0, g1 = splits[level]
            raw = yield from _exchange(comm, partner,
                                       acc[lo:hi].tobytes(),
                                       _RAB_AG_TAG + level,
                                       not (newrank & (p >> (level + 1))))
            acc[g0:g1] = comm._reduce_payload(raw, (g1 - g0) * item,
                                              acc.dtype, None, partner)
            lo, hi = min(lo, g0), max(hi, g1)

    if me < 2 * r:
        if me % 2 == 0:
            yield from comm.send(acc.tobytes(), me + 1, tag=_RAB_UNFOLD_TAG)
        else:
            raw = yield from comm.recv(me - 1, tag=_RAB_UNFOLD_TAG)
            acc = comm._reduce_payload(raw, nel * item, acc.dtype,
                                       None, me - 1).copy()
    return acc


# ---------------------------------------------------------------------------
# Segmented (pipelined) binomial broadcast
# ---------------------------------------------------------------------------

def _binomial_tree(n: int, rel: int, me: int) -> Tuple[Optional[int], List[int]]:
    """Parent and children of ``me`` in the relative-rank binomial tree
    (same shape as the seed ``bcast``)."""
    parent = None
    mask = 1
    while mask < n:
        if rel & mask:
            parent = (me - mask) % n
            break
        mask <<= 1
    children: List[int] = []
    mask >>= 1
    while mask > 0:
        if rel + mask < n:
            children.append((me + mask) % n)
        mask >>= 1
    return parent, children


def bcast_segmented(comm, data: Optional[bytes], root: int,
                    segment_bytes: int, header: Optional[bytes] = None):
    """Pipelined binomial broadcast: the length header travels the tree
    first, then segments stream down it with a bounded isend window so an
    interior rank forwards segment k while segment k+1 is in flight.

    The header carries the ``b"\\x01"`` wire prefix of the adaptive bcast
    dispatch; non-root callers that already consumed it pass it in via
    ``header`` and forward it verbatim.
    """
    n, me = comm.size, comm.rank
    rel = (me - root) % n
    parent, children = _binomial_tree(n, rel, me)

    if parent is None:
        total = len(data)
        header = b"\x01" + _HDR.pack(total)
    else:
        if header is None:
            header = yield from comm.recv(parent, tag=_SEG_TAG)
        (total,) = _HDR.unpack(header[1:1 + _HDR.size])
    for child in children:
        yield from comm.send(header, child, tag=_SEG_TAG)

    nseg = (total + segment_bytes - 1) // segment_bytes
    pending: Deque = deque()
    parts: List[bytes] = []
    for k in range(nseg):
        if parent is None:
            seg = bytes(data[k * segment_bytes:(k + 1) * segment_bytes])
        else:
            seg = yield from comm.recv(parent, tag=_SEG_TAG + 1 + k)
            parts.append(seg)
        for child in children:
            pending.append(comm.isend(seg, child, tag=_SEG_TAG + 1 + k))
            while len(pending) > _MAX_INFLIGHT:
                yield from pending.popleft().wait()
    while pending:
        yield from pending.popleft().wait()
    return bytes(data) if parent is None else b"".join(parts)


# ---------------------------------------------------------------------------
# Pairwise-exchange alltoall
# ---------------------------------------------------------------------------

def _tied_dims(topology, sn_a: int, sn_b: int) -> List[int]:
    """Grid dimensions where the modular distance between two supernodes
    is exactly half an even wrapped ring of four or more -- the
    antipodal tie, where the fabric's dimension-ordered router always
    picks "+" and concurrent flows can cover a whole ring."""
    ca = topology.coords_of(sn_a)
    cb = topology.coords_of(sn_b)
    out = []
    for d, size in enumerate(topology.shape):
        if (topology.wrap[d] and size >= 4 and size % 2 == 0
                and (cb[d] - ca[d]) % size == size // 2):
            out.append(d)
    return out


def _route_wrap_leg(topology, sn_src: int, sn_dst: int,
                    dims: Sequence[int]) -> int:
    """Leg index of one route: one bit per legged dimension, set when
    the dimension-ordered route crosses that ring's wrap link
    (mirroring the fabric's shortest-path, tie-toward-"+" direction
    choice).  For a tied (antipodal) pair this degenerates to "source
    coordinate in the upper half"."""
    cs = topology.coords_of(sn_src)
    cd = topology.coords_of(sn_dst)
    leg = 0
    for k, d in enumerate(dims):
        size = topology.shape[d]
        fwd = (cd[d] - cs[d]) % size
        if fwd == 0:
            continue
        bwd = size - fwd
        if fwd <= bwd:
            wraps = cs[d] + fwd >= size
        else:
            wraps = cs[d] < bwd
        if wraps:
            leg |= 1 << k
    return leg


def _alltoall_grid(comm) -> bool:
    topo, sns = comm.topology, comm._rank_supernodes
    return (topo is not None and getattr(topo, "is_grid", False)
            and sns is not None and len(sns) == comm.size)


def _step_tied(comm, peer_of) -> List[int]:
    """Union of tied dimensions over every pairing ``r -> peer_of(r)``
    of one alltoall step.  Computed over *all* pairings so every rank
    agrees on whether (and how) the step is leg-synchronized."""
    topo, sns = comm.topology, comm._rank_supernodes
    return sorted({d for r in range(comm.size)
                   for d in _tied_dims(topo, sns[r], sns[peer_of(r)])})


def _step_wrap_dims(comm, peer_of) -> List[int]:
    """Dimensions in which at least one route ``r -> peer_of(r)`` of a
    shift-schedule step crosses a wrap link of a ring of three or more.
    Uniform shifts cover every link of each moved ring -- including the
    wrap -- so any such dimension needs leg synchronization."""
    topo, sns = comm.topology, comm._rank_supernodes
    dims = set()
    ndims = len(topo.shape)
    for r in range(comm.size):
        leg = _route_wrap_leg(topo, sns[r], sns[peer_of(r)],
                              range(ndims))
        for d in range(ndims):
            if (leg >> d) & 1 and topo.shape[d] >= 3:
                dims.add(d)
    return sorted(dims)


def _legged_step(comm, payload: bytes, dst: int, src: int, tag: int,
                 dims: Sequence[int]):
    """One leg-synchronized alltoall step: ranks are partitioned by
    whether their route wraps each legged ring, one leg streams its
    bulk sends at a time, and a dissemination barrier (tiny token
    messages that cannot exhaust link credits) drains the fabric between
    legs.  Within a leg the concurrent same-direction flows of every
    ring then leave at least one link idle -- non-wrapping flows miss
    the wrap link, wrapping flows miss an interior one -- so the torus
    channel cycle (module deadlock notes) cannot close.  Returns the
    block received from ``src``."""
    topo, sns = comm.topology, comm._rank_supernodes
    me = comm.rank
    my_leg = _route_wrap_leg(topo, sns[me], sns[dst], dims)
    src_leg = _route_wrap_leg(topo, sns[src], sns[me], dims)
    got = None
    for leg in range(1 << len(dims)):
        req = None
        if leg == my_leg:
            req = comm.isend(payload, dst, tag=tag)
        if leg == src_leg:
            got = yield from comm.recv(src, tag=tag)
        if req is not None:
            yield from req.wait()
        yield from comm.barrier()
    return got


def alltoall_pairwise(comm, blocks: Sequence[bytes]):
    """Personalized all-to-all, one partner per step.

    Power-of-two sizes pair partners by XOR; other sizes walk the
    classic (rank +- step) schedule.  Untied steps stream full-duplex
    with the receive posted concurrently with the send; tied (torus
    antipodal) steps run through :func:`_legged_step`."""
    n, me = comm.size, comm.rank
    out: List[Optional[bytes]] = [None] * n
    out[me] = bytes(blocks[me])
    pow2 = (n & (n - 1)) == 0
    grid = _alltoall_grid(comm)
    wrapped = grid and any(comm.topology.wrap)
    for step in range(1, n):
        if pow2:
            dst = src = me ^ step
            legged = (_step_tied(comm, lambda r, s=step: r ^ s)
                      if grid else [])
        else:
            dst = (me + step) % n
            src = (me - step) % n
            # The shift schedule wraps every moved ring (see
            # alltoall_linear); leg-synchronize each wrap-crossing step.
            legged = (_step_wrap_dims(comm, lambda r, s=step: (r + s) % n)
                      if wrapped else [])
        tag = _PAIRWISE_TAG + step
        if legged:
            out[src] = yield from _legged_step(comm, blocks[dst], dst,
                                               src, tag, legged)
        else:
            req = comm.isend(blocks[dst], dst, tag=tag)
            out[src] = yield from comm.recv(src, tag=tag)
            yield from req.wait()
    return out


def alltoall_linear(comm, blocks: Sequence[bytes], tag_base: int):
    """The seed linear exchange -- blocking send then receive, one
    partner per step, the cheap small-block path.

    On wrapped grids the shift schedule ``(rank + step)`` is unsafe:
    a uniform shift covers *every* same-direction link of each moved
    ring at once, wrap included, and closes the torus channel cycle at
    any step once blocks stream.  So on a wrapped grid, power-of-two
    communicators walk the XOR partner order instead (whose non-tied
    steps leave ring-link gaps, and whose tied steps are
    leg-synchronized like the pairwise schedule), while other sizes keep
    the shift order but run every wrap-crossing step through
    :func:`_legged_step`.  Meshes and off-grid communicators keep the
    seed behaviour exactly."""
    n, me = comm.size, comm.rank
    out: List[Optional[bytes]] = [None] * n
    out[me] = bytes(blocks[me])
    grid = _alltoall_grid(comm)
    wrapped = grid and any(comm.topology.wrap)
    pow2 = (n & (n - 1)) == 0
    for step in range(1, n):
        if wrapped and pow2:
            dst = src = me ^ step
            legged = _step_tied(comm, lambda r, s=step: r ^ s)
        elif wrapped:
            dst = (me + step) % n
            src = (me - step) % n
            legged = _step_wrap_dims(comm, lambda r, s=step: (r + s) % n)
        else:
            dst = (me + step) % n
            src = (me - step) % n
            legged = []
        if legged:
            out[src] = yield from _legged_step(comm, blocks[dst], dst,
                                               src, tag_base + step, legged)
        else:
            yield from comm.send(blocks[dst], dst, tag=tag_base + step)
            out[src] = yield from comm.recv(src, tag=tag_base + step)
    return out


_PAIRWISE_TAG = (1 << 27) + (7 << 20)
