"""F-app -- application-level comparison (paper Section VII outlook).

The same MPI Jacobi halo-exchange kernel, byte-for-byte, over the
TCCluster blade mesh and over NIC fabrics.  Halo traffic is small and
latency-bound, so the NIC's per-message initiation cost dominates and
TCCluster's advantage carries from microbenchmark to application.
"""

import pytest

from _common import write_result
from repro.bench.app_bench import run_halo_comparison
from repro.bench import table


@pytest.fixture(scope="module")
def halo_results():
    return run_halo_comparison(iters=5)


def test_application_halo_comparison(benchmark, halo_results):
    results = halo_results
    by = {r.fabric: r for r in results}
    tcc = by["TCCluster"]
    ib = by["ConnectX IB"]
    tengbe = by["10GbE TCP"]

    # --- identical numerics on every fabric (same kernel!) --------------
    assert tcc.final_residual == pytest.approx(ib.final_residual, rel=1e-12)
    assert tcc.final_residual == pytest.approx(tengbe.final_residual, rel=1e-12)
    # --- the latency advantage survives at application level -----------
    assert ib.per_iter_ns / tcc.per_iter_ns > 2.5
    assert tengbe.per_iter_ns / tcc.per_iter_ns > 20

    rows = [(r.fabric, r.iterations, f"{r.makespan_ns / 1000:.1f}",
             f"{r.per_iter_ns / 1000:.2f}",
             f"{r.per_iter_ns / tcc.per_iter_ns:.1f}x")
            for r in results]
    txt = table(
        ["fabric", "iters", "makespan us", "per-iter us", "vs TCC"],
        rows,
        title="2-D Jacobi halo exchange (2x2 ranks), identical MPI code",
    )
    write_result("app_halo", txt)

    def kernel():
        return run_halo_comparison(iters=2, nic_params=())

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].fabric == "TCCluster"
