"""Render a :meth:`TCCluster.metrics` snapshot as text or JSON.

The benchmarks call :func:`format_report` after a run so every figure
comes with the hardware-counter view behind it (link utilization,
endpoint totals, latency percentiles) -- the evaluation style of the
interconnect-measurement literature (hardware counters + latency
histograms as the primary instrument).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["format_report"]


def _link_rows(links: Dict[str, Any]) -> List[tuple]:
    rows = []
    for name, sides in sorted(links.items()):
        for side, s in sorted(sides.items()):
            rows.append((
                name, side, s["packets"], s["wire_bytes"], s["retries"],
                s["drops"], round(100.0 * s["utilization"], 2),
            ))
    return rows


def _endpoint_rows(endpoints: Dict[str, Any]) -> List[tuple]:
    rows = []
    for pair, s in sorted(endpoints.items()):
        rows.append((
            pair, s["msgs_sent"], s["msgs_received"], s["bytes_sent"],
            s["tx_stalls"], round(s["tx_stall_ns"], 1),
            s["max_inflight_slots"],
        ))
    return rows


def format_report(snapshot: Dict[str, Any], fmt: str = "text") -> str:
    """``fmt`` is ``"text"`` (aligned tables) or ``"json"`` (indented)."""
    # Imported here: repro.bench pulls in the whole stack, which itself
    # imports repro.obs for instrumentation.
    from ..bench.reporting import table

    if fmt == "json":
        return json.dumps(snapshot, indent=2, sort_keys=True, default=str)
    if fmt != "text":
        raise ValueError(f"unknown report format {fmt!r}")
    parts: List[str] = [f"metrics @ t={snapshot.get('time_ns', 0.0):,.1f} ns"]
    links = snapshot.get("links")
    if links:
        parts.append(table(
            ["link", "tx", "packets", "wire B", "retries", "drops", "util %"],
            _link_rows(links), title="links"))
    endpoints = snapshot.get("endpoints")
    if endpoints:
        parts.append(table(
            ["endpoint", "sent", "recvd", "tx B", "stalls", "stall ns", "max inflight"],
            _endpoint_rows(endpoints), title="endpoints"))
    lat = snapshot.get("message_latency_ns")
    if lat and lat.get("count"):
        parts.append(
            "message latency ns: "
            f"n={lat['count']}  mean={lat['mean']:.1f}  p50={lat['p50']:.1f}  "
            f"p99={lat['p99']:.1f}  max={lat['max']:.1f}"
        )
    nb = snapshot.get("northbridges")
    if nb:
        rows = []
        for chip, counters in sorted(nb.items()):
            interesting = {k: v for k, v in counters.items() if v}
            rows.append((chip, ", ".join(f"{k}={v}" for k, v in
                                         sorted(interesting.items())) or "-"))
        parts.append(table(["chip", "northbridge counters"], rows,
                           title="northbridges"))
    wc = snapshot.get("write_combining")
    if wc:
        rows = [(chip, s["fills"], s["full_flushes"], s["partial_flushes"],
                 s["evictions"]) for chip, s in sorted(wc.items())]
        parts.append(table(
            ["chip", "fills", "full flushes", "partial", "evictions"],
            rows, title="write combining"))
    return "\n\n".join(parts)
