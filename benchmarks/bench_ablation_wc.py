"""A-wc -- write-combining ablation.

Paper Section VI: "Our approach makes intensive use of the write
combining capability to generate maximum sized HyperTransport packets
which reduce the command overhead."  Disabling WC (UC mapping) turns
every 8-byte store into its own posted write: 8x the packets, ~10x less
bandwidth.
"""

import pytest

from _common import write_result
from repro.bench import run_wc_ablation, table
from repro.util.units import KiB


@pytest.fixture(scope="module")
def ablation_points():
    return run_wc_ablation(size=256 * KiB)


def test_wc_ablation(benchmark, ablation_points):
    points = {p.mapping: p for p in ablation_points}
    wc, uc = points["WC"], points["UC"]

    # --- combining produces maximum-sized packets -----------------------
    assert wc.packets == wc.size // 64, "one 64 B posted write per line"
    assert uc.packets == uc.size // 8, "one posted write per 8 B store"
    assert uc.packets == 8 * wc.packets
    # and the bandwidth benefit is large
    assert wc.mbps / uc.mbps > 5, f"WC speedup only {wc.mbps / uc.mbps:.1f}x"

    rows = [(p.mapping, p.size, p.packets, round(p.mbps)) for p in
            ablation_points]
    txt = table(["mapping", "bytes", "link packets", "MB/s"], rows,
                title="Write-combining ablation (256 KiB stream)")
    write_result("ablation_wc", txt)

    def kernel():
        return run_wc_ablation(size=16 * KiB)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].mapping == "WC"
