"""Arms a :class:`~repro.faults.plan.FaultPlan` on a cluster's calendar.

The injector is a thin dispatch layer: every :class:`FaultEvent` becomes
one ``sim.schedule`` entry whose callback performs the state transition
(drop a link, steal credits, raise the BER, crash a node...).  Recovery
is *not* the injector's job -- the link FSMs, the northbridge fault
forwarder, the msglib retransmit path and the :class:`RouteManager` do
that; the injector only breaks things, deterministically.

Targets are taken modulo the population (``cluster.tcc_links`` for link
kinds, ranks for node kinds), so a randomly drawn plan fits any cluster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..ht.link import Link
from ..ht.linkinit import LinkInitFSM
from ..obs.metrics import fault_counters
from .plan import LINK_KINDS, FaultEvent, FaultKind, FaultPlan, FaultPlanError
from .routes import RouteManager

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.system import TCCluster

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules a plan's faults against a booted cluster.

    ``arm()`` pushes every event onto the calendar; the simulation then
    runs normally and faults fire interleaved with the workload.  The
    same plan armed at the same sim time on the same cluster produces
    the same perturbation sequence -- an empty plan schedules nothing
    and leaves the run bit-identical to a fault-free one.
    """

    def __init__(self, cluster: "TCCluster", plan: FaultPlan,
                 route_manager: Optional[RouteManager] = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.routes = route_manager or RouteManager(cluster, pressure_flood=True)
        #: ``(fire_time_ns, event)`` log of everything actually injected.
        self.fired: List[Tuple[float, FaultEvent]] = []
        #: ``(event, reason)`` log of plan conflicts dropped by
        #: ``arm(on_conflict="skip")``.
        self.skipped: List[Tuple[FaultEvent, str]] = []

    # ------------------------------------------------------------------
    def validate(self) -> List[Tuple[FaultEvent, str]]:
        """Dry-run the plan against this cluster's populations.

        Walks the events in firing order, tracking which links are
        permanently killed and which ranks are crashed-but-not-yet
        -rejoined, and flags every event aimed at a target that is
        already scheduled dead at its firing time: killing a dead link,
        crashing a crashed node, or flapping/stalling/storming a link
        whose owner rank is down (a flap's delayed retrain would
        resurrect a crashed node's link mid-outage).  Returns
        ``[(event, reason), ...]`` -- empty for a conflict-free plan.
        """
        conflicts: List[Tuple[FaultEvent, str]] = []
        dead_links: set = set()
        down_ranks: set = set()
        chip_rank = {
            id(info.chip): r
            for r, info in enumerate(getattr(self.cluster, "ranks", []))
        }
        for ev in self.plan.sorted_events():
            if ev.kind in LINK_KINDS:
                link = self._link_of(ev)
                if id(link) in dead_links:
                    conflicts.append(
                        (ev, f"link {link.name} was already killed"))
                    continue
                crashed_owner = None
                for chip in getattr(link, "attached", {}).values():
                    r = chip_rank.get(id(chip))
                    if r is not None and r in down_ranks:
                        crashed_owner = r
                        break
                if crashed_owner is not None:
                    conflicts.append(
                        (ev, f"link {link.name} belongs to crashed rank "
                             f"{crashed_owner}"))
                    continue
                if ev.kind is FaultKind.LINK_KILL:
                    dead_links.add(id(link))
            elif ev.kind is FaultKind.NODE_CRASH:
                rank = self._rank_of(ev)
                if rank in down_ranks:
                    conflicts.append((ev, f"rank {rank} is already crashed"))
                    continue
                down_ranks.add(rank)
            elif ev.kind is FaultKind.NODE_WARM_RESET:
                down_ranks.discard(self._rank_of(ev))
        return conflicts

    # ------------------------------------------------------------------
    def arm(self, on_conflict: str = "raise") -> int:
        """Schedule every plan event, ``at_ns`` relative to *now*.

        Plans are armed after boot, whose duration depends on topology
        and timing model -- relative offsets keep one plan meaningful
        across clusters.  Returns the number of events armed.

        The plan is validated up front (see :meth:`validate`): an event
        targeting a node or link already scheduled dead at its firing
        time used to surface much later as an opaque mid-recovery
        failure.  ``on_conflict="raise"`` (default) rejects such plans
        with :class:`FaultPlanError` before anything touches the
        calendar; ``"skip"`` drops the conflicting events
        deterministically, recording them in :attr:`skipped` -- the
        right mode for randomly drawn plans, which may legally collide.
        """
        if on_conflict not in ("raise", "skip"):
            raise ValueError(f"on_conflict must be 'raise' or 'skip', "
                             f"got {on_conflict!r}")
        conflicts = self.validate()
        if conflicts and on_conflict == "raise":
            ev, why = conflicts[0]
            raise FaultPlanError(
                f"fault plan conflict at t={ev.at_ns:.0f}ns: "
                f"{ev.kind.name} target {ev.target} -- {why} "
                f"({len(conflicts)} conflicting event(s); "
                f"arm(on_conflict='skip') drops them)")
        self.skipped = conflicts
        dropped = {id(ev) for ev, _ in conflicts}
        sim = self.sim
        armed = 0
        for ev in self.plan.sorted_events():
            if id(ev) in dropped:
                continue
            sim.schedule(ev.at_ns, self._fire, ev)
            armed += 1
        return armed

    # ------------------------------------------------------------------
    def _link_of(self, ev: FaultEvent) -> Link:
        links = self.cluster.tcc_links
        if not links:
            raise FaultPlanError("cluster has no TCC links to fault")
        return links[ev.target % len(links)]

    def _rank_of(self, ev: FaultEvent) -> int:
        nranks = sum(len(b.chips) for b in self.cluster.boards)
        return ev.target % nranks

    @staticmethod
    def _fsm_of(link: Link) -> Optional[LinkInitFSM]:
        """The init FSM wired to ``link`` (via either attached chip)."""
        for chip in getattr(link, "attached", {}).values():
            for binding in getattr(chip, "ports", {}).values():
                if binding.link is link:
                    return binding.fsm
        return None

    # ------------------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        fc = fault_counters(self.sim)
        fc.faults_injected += 1
        self.fired.append((self.sim.now, ev))
        if ev.kind is FaultKind.LINK_FLAP:
            self._fire_flap(ev)
        elif ev.kind is FaultKind.LINK_KILL:
            self.routes.route_around(self._link_of(ev))
        elif ev.kind is FaultKind.BER_STORM:
            self._fire_storm(ev)
        elif ev.kind is FaultKind.CREDIT_STALL:
            self._fire_stall(ev)
        elif ev.kind is FaultKind.NODE_CRASH:
            self.cluster.crash_node(self._rank_of(ev))
        elif ev.kind is FaultKind.NODE_WARM_RESET:
            self.sim.process(
                self.cluster.rejoin_node(self._rank_of(ev)),
                name=f"rejoin-rank{self._rank_of(ev)}",
            )
        else:  # pragma: no cover - enum is closed
            raise FaultPlanError(f"unknown fault kind {ev.kind}")

    def _fire_flap(self, ev: FaultEvent) -> None:
        link = self._link_of(ev)
        if link.dead:
            return  # a prior LINK_KILL wins; flapping a corpse is a no-op
        link.bring_down()
        fsm = self._fsm_of(link)

        def _revive() -> None:
            if not link.dead and fsm is not None:
                fsm.retrain("warm")

        self.sim.schedule(max(ev.duration_ns, 1.0), _revive)

    def _fire_storm(self, ev: FaultEvent) -> None:
        link = self._link_of(ev)
        old = link.ber
        link.ber = ev.magnitude

        def _calm() -> None:
            link.ber = old

        self.sim.schedule(max(ev.duration_ns, 1.0), _calm)

    def _fire_stall(self, ev: FaultEvent) -> None:
        """Drain every flow-control credit of the link (both directions,
        all VCs); the receiver looks wedged until the credits return."""
        link = self._link_of(ev)
        # Macro-event fast paths (trains, flows) plan against full credit
        # pools; demote them *before* the theft so their reconstruction
        # sees the pre-fault state -- stealing out from under a promoted
        # schedule would silently break its exactness contract.
        link._abort_trains()
        stolen = []
        for d in link._dirs.values():
            for vc, pool in d.credits.items():
                n = 0
                while pool.try_take():
                    n += 1
                if n:
                    stolen.append((pool, n))
        if not stolen:
            return

        def _restore() -> None:
            for pool, n in stolen:
                pool.give(n)

        self.sim.schedule(max(ev.duration_ns, 1.0), _restore)
