"""T-boot -- the Section V boot sequence at increasing scale.

Verifies both prototype configurations' lineage: the full 13-step
sequence (cold reset ... load OS) completes, every designated TCC link
trains non-coherent, and the synchronized-reset scheme holds as boards
are added.
"""

import pytest

from _common import write_result
from repro.bench import prototype_stage_times, run_boot_scaling, table
from repro.core import TCClusterSystem


@pytest.fixture(scope="module")
def stage_times():
    return prototype_stage_times()


def test_boot_stages_and_scaling(benchmark, stage_times):
    stages = stage_times
    order = [
        "cold_reset", "coherent_enumeration", "force_noncoherent",
        "warm_reset", "northbridge_init", "cpu_msr_init", "memory_init",
        "exit_car", "noncoherent_enumeration", "post_init",
    ]
    # --- all stages ran, in order ---------------------------------------
    assert list(stages.keys()) == order
    times = list(stages.values())
    assert times == sorted(times)

    points = run_boot_scaling(sizes=(2, 4, 8), mesh_sizes=(2, 3))
    # every TCC link end verified non-coherent
    by_topo = {p.topology: p for p in points}
    assert by_topo["chain(2)"].tcc_links_verified == 2
    assert by_topo["chain(8)"].tcc_links_verified == 14
    assert by_topo["mesh(2x2)"].tcc_links_verified == 8
    assert by_topo["mesh(3x3)"].tcc_links_verified == 24
    # boot time is dominated by the fixed per-board sequence, not N
    assert by_topo["chain(8)"].boot_ns < by_topo["chain(2)"].boot_ns * 2

    rows = [(k, f"{v / 1000:.1f}") for k, v in stages.items()]
    txt = table(["stage", "completed at (us)"], rows,
                title="Two-board prototype: firmware stage timeline")
    rows2 = [(p.topology, p.supernodes, f"{p.boot_ns / 1000:.1f}",
              p.tcc_links_verified) for p in points]
    txt += "\n\n" + table(
        ["topology", "supernodes", "boot us", "TCC link ends verified"],
        rows2, title="Boot scaling")
    write_result("boot", txt)

    def kernel():
        return TCClusterSystem.two_board_prototype().boot()

    sys_ = benchmark(kernel)
    assert sys_.cluster.ready
