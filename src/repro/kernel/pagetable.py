"""Per-process virtual memory map with memory-type attributes.

The TCCluster driver "maps the remote address range as memory mapped IO
and provides access to the API" and "requests page wise memory mapping of
remote addresses into user space" (paper Section V).  This module models
the paging layer: page-granular mappings carrying access permissions and
the effective memory type (the PAT/MTRR combination user mappings get).

We use an identity virtual->physical layout (documented simplification:
the library's addresses *are* global physical addresses) but permissions
and types are enforced on every access, which is where the TCCluster
rules live: remote windows map write-only + write-combining, exported
local rings map read-write + uncacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..opteron.mtrr import MemoryType

__all__ = ["PageTable", "Mapping", "PageFault", "PAGE_SIZE"]

PAGE_SIZE = 4096


class PageFault(RuntimeError):
    """Access outside a mapping or violating its permissions."""


@dataclass(frozen=True)
class Mapping:
    """One mmap'ed region."""

    base: int
    size: int
    mtype: MemoryType
    readable: bool = True
    writable: bool = True
    tag: str = ""

    @property
    def limit(self) -> int:
        return self.base + self.size

    def covers(self, addr: int, length: int) -> bool:
        return self.base <= addr and addr + length <= self.limit


class PageTable:
    """Page-granular mappings of one process."""

    def __init__(self, name: str = "pt"):
        self.name = name
        self._pages: Dict[int, Mapping] = {}
        self._mappings: list = []

    def map(self, base: int, size: int, mtype: MemoryType,
            readable: bool = True, writable: bool = True, tag: str = "") -> Mapping:
        if base % PAGE_SIZE or size % PAGE_SIZE or size <= 0:
            raise PageFault(
                f"mmap of [{base:#x}, +{size:#x}) is not page aligned"
            )
        m = Mapping(base, size, mtype, readable, writable, tag)
        for page in range(base // PAGE_SIZE, (base + size) // PAGE_SIZE):
            if page in self._pages:
                raise PageFault(
                    f"{self.name}: page {page * PAGE_SIZE:#x} already mapped "
                    f"({self._pages[page].tag!r})"
                )
            self._pages[page] = m
        self._mappings.append(m)
        return m

    def unmap(self, m: Mapping) -> None:
        for page in range(m.base // PAGE_SIZE, (m.base + m.size) // PAGE_SIZE):
            if self._pages.get(page) is m:
                del self._pages[page]
        self._mappings.remove(m)

    def lookup(self, addr: int, length: int = 1) -> Mapping:
        m = self._pages.get(addr // PAGE_SIZE)
        if m is None or not m.covers(addr, length):
            raise PageFault(
                f"{self.name}: access [{addr:#x}, +{length}) not mapped"
            )
        return m

    def check_store(self, addr: int, length: int) -> Mapping:
        m = self.lookup(addr, length)
        if not m.writable:
            raise PageFault(f"{self.name}: store to read-only {addr:#x}")
        return m

    def check_load(self, addr: int, length: int) -> Mapping:
        m = self.lookup(addr, length)
        if not m.readable:
            raise PageFault(
                f"{self.name}: load from write-only {addr:#x} (TCCluster "
                "remote windows are writes-only)"
            )
        return m

    @property
    def mappings(self) -> Tuple[Mapping, ...]:
        return tuple(self._mappings)
