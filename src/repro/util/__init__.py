"""Shared utilities: units, bit fields, calibration constants."""

from .bitfield import BitField, FieldSpec, get_bits, mask, set_bits
from .calibration import DEFAULT_IB, DEFAULT_TIMING, EthernetModel, IBModel, TimingModel
from .units import (
    CACHELINE,
    GiB,
    KiB,
    MiB,
    bandwidth_mbps,
    bytes_per_ns_to_mbps,
    fmt_bytes,
    fmt_time_ns,
    gbit_per_s_to_bytes_per_ns,
    mbps_to_bytes_per_ns,
    ns_to_us,
    us_to_ns,
)

__all__ = [
    "BitField",
    "FieldSpec",
    "get_bits",
    "set_bits",
    "mask",
    "TimingModel",
    "DEFAULT_TIMING",
    "IBModel",
    "DEFAULT_IB",
    "EthernetModel",
    "CACHELINE",
    "KiB",
    "MiB",
    "GiB",
    "bandwidth_mbps",
    "bytes_per_ns_to_mbps",
    "mbps_to_bytes_per_ns",
    "gbit_per_s_to_bytes_per_ns",
    "fmt_bytes",
    "fmt_time_ns",
    "ns_to_us",
    "us_to_ns",
]
