"""Baseline interconnects: NIC-based models calibrated to published numbers."""

from .fabric import NicCommProvider, NicFabric
from .nic import NicEndpoint, NicLink, NicModelParams, params_from_model
from .presets import ALL_BASELINES, CONNECTX_IB, GIGE, TEN_GBE

__all__ = [
    "NicLink",
    "NicFabric",
    "NicCommProvider",
    "NicEndpoint",
    "NicModelParams",
    "params_from_model",
    "CONNECTX_IB",
    "TEN_GBE",
    "GIGE",
    "ALL_BASELINES",
]
