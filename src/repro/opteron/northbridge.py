"""The Opteron northbridge: crossbar, address maps, routing, IO bridge.

Paper Section IV.C describes the two-stage routing this module implements:

    "The first step is to compare the address of every packet against the
    DRAM and MMIO address ranges which are defined by base/limit
    registers.  This lookup returns the NodeID which defines the home node
    of the requested DRAM or I/O address.  This NodeID then indexes the
    routing table which returns the corresponding HyperTransport link to
    which the packet should be forwarded.  MMIO accesses which target an
    IO device that is connected to the local node are treated different.
    In this case the destination link is directly provided by the
    base/limit registers without the need of indexing the routing table.
    This fact is exploited by our approach which assigns NodeID zero to
    every node in the TCCluster and which maps every MMIO address range to
    NodeID zero as well."

All decisions here are decoded from the BKDG-style register file, so the
firmware's programming (correct or buggy) directly determines packet flow.

The northbridge also enforces the paper's *writes-only* property: a
non-posted request whose response would have to cross a TCCluster link
cannot allocate a routable SrcTag (see :mod:`repro.ht.tags`).  With
``strict_reads=False`` the guard is lifted and the emergent misbehaviour
(the response is misrouted back into the remote node itself, because every
TCCluster node claims NodeID 0) can be observed in simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..ht.link import Link, LinkDownError, LinkSide, LinkState
from ..ht.packet import Command, Packet, make_read, make_read_response, make_target_done, pool_for
from ..ht.tags import ResponseMatchingTable, UnroutableResponseError
from ..obs.metrics import fault_counters, flow_counters, metrics_for
from ..sim import AnyOf, Counter, Event, Simulator, Store
from ..util.calibration import TimingModel
from . import registers as regs_mod
from .registers import (
    DramPairAccessor,
    Function,
    MmioPairAccessor,
    NodeIDAccessor,
    RegisterFile,
    RoutingTableAccessor,
)

if TYPE_CHECKING:  # pragma: no cover
    from .chip import OpteronChip

__all__ = ["Northbridge", "RouteKind", "RouteResult", "MasterAbort", "AddressMapError"]


class MasterAbort(RuntimeError):
    """No address-map entry claims the target address."""


class AddressMapError(ValueError):
    """Inconsistent address-map programming detected by validate()."""


class RouteKind(enum.Enum):
    DRAM_LOCAL = "dram-local"
    DRAM_REMOTE = "dram-remote"
    MMIO_LOCAL_LINK = "mmio-local-link"   # forward straight out of DstLink
    MMIO_REMOTE = "mmio-remote"           # MMIO homed at another fabric node
    NONE = "none"


@dataclass(frozen=True)
class RouteResult:
    kind: RouteKind
    dst_node: Optional[int] = None
    dst_link: Optional[int] = None
    #: Offset into local DRAM (DRAM_LOCAL only).
    local_offset: Optional[int] = None
    writable: bool = True
    readable: bool = True


_ROUTE_NONE = RouteResult(RouteKind.NONE)


@dataclass(frozen=True)
class _DramEntry:
    base: int
    limit: int
    dst_node: int
    re: bool
    we: bool


@dataclass(frozen=True)
class _MmioEntry:
    base: int
    limit: int
    dst_node: int
    dst_link: int
    nonposted: bool
    re: bool
    we: bool


class Northbridge:
    """One node's crossbar + router.  Owned by :class:`OpteronChip`."""

    def __init__(self, sim: Simulator, chip: "OpteronChip"):
        self.sim = sim
        self.chip = chip
        self.name = f"{chip.name}.nb"
        self.timing: TimingModel = chip.timing
        self.regs: RegisterFile = chip.regs
        self.tags = ResponseMatchingTable()
        self.counters = Counter()
        self._m = metrics_for(sim)
        #: Posted-write buffering between the CPU cores (SRQ) and the
        #: fabric; its capacity is the calibrated aggregate that produces
        #: the Figure 6 buffering peak.
        self.posted_q: Store = Store(
            sim, capacity=self.timing.posted_buffer_packets, name=f"{self.name}.postedq"
        )
        #: Enforce the writes-only rule at request issue (the driver-level
        #: behaviour); disable to observe the emergent misrouting.
        self.strict_reads = True
        #: Patience window of the link-down recovery path: how long a
        #: packet whose egress link died waits for a retrain or a routing
        #: update before it is dropped (posted semantics permit the loss;
        #: the message layer's retransmit machinery restores delivery).
        self.link_down_wait_ns = 100_000.0
        self._dram_entries: List[_DramEntry] = []
        self._mmio_entries: List[_MmioEntry] = []
        self._pending_reads: Dict[int, Event] = {}
        self._started = False
        #: Active aggregate-fidelity packet train (repro.opteron.train);
        #: any foreign submit while one is running demotes it first.
        self._train = None
        #: Egress port of the current promoted remote-read run (window
        #: accounting for :class:`repro.sim.flows.ReadFlow`): consecutive
        #: same-port promotions count as one window, a demotion or a port
        #: change starts a new one.
        self._read_flow_port: Optional[int] = None
        # Register-decode caches: the fabric data path hits nodeid / DRAM
        # readiness / local-offset translation on every packet, and
        # re-decoding BKDG bitfields per packet dominates profiles.  Any
        # register write invalidates them (coarse but correct).
        self._nodeid_cache: Optional[int] = None
        self._dram_ready_cache: Optional[bool] = None
        self._local_bases: Optional[List[Tuple[int, int, int]]] = None
        self._route_table: Optional[List[tuple]] = None
        #: Set on any ADDRESS_MAP register write; the (expensive) BKDG
        #: bitfield decode is deferred to the next route/translate --
        #: firmware boot rewrites the maps dozens of times before the
        #: first packet ever consults them.
        self._maps_dirty = False
        #: Flyweight posted-write packets (shared per simulation).
        self._pool = pool_for(sim)
        self._depth_series = f"{self.name}.posted_q_depth"
        self._cpu_read_name = f"{self.name}.cpu_read"
        self.regs.add_write_hook(self._on_reg_write)
        self.reload_maps()

    # ------------------------------------------------------------------
    # Register decode
    # ------------------------------------------------------------------
    def _on_reg_write(self, func: int, offset: int, value: int) -> None:
        self._nodeid_cache = None
        self._dram_ready_cache = None
        self._local_bases = None
        self._route_table = None
        if func == Function.ADDRESS_MAP:
            self._maps_dirty = True

    def _ensure_maps(self) -> None:
        """Decode pending ADDRESS_MAP programming.  The decode is
        register-pure (no virtual time passes), so deferring it from the
        register write to the first consumer is observationally
        identical."""
        if self._maps_dirty:
            self.reload_maps()

    def reload_maps(self) -> None:
        self._maps_dirty = False
        dram: List[_DramEntry] = []
        mmio: List[_MmioEntry] = []
        for i in range(regs_mod.NUM_MAP_ENTRIES):
            d = DramPairAccessor(self.regs, i)
            if d.enabled:
                re = bool(self.regs.field(Function.ADDRESS_MAP, d.base_off, 0, 1))
                we = bool(self.regs.field(Function.ADDRESS_MAP, d.base_off, 1, 1))
                dram.append(_DramEntry(d.base, d.limit, d.dst_node, re, we))
        for i in range(regs_mod.NUM_MMIO_ENTRIES):
            m = MmioPairAccessor(self.regs, i)
            if m.enabled:
                re = bool(self.regs.field(Function.ADDRESS_MAP, m.base_off, 0, 1))
                we = bool(self.regs.field(Function.ADDRESS_MAP, m.base_off, 1, 1))
                mmio.append(
                    _MmioEntry(m.base, m.limit, m.dst_node, m.dst_link,
                               m.nonposted_allowed, re, we)
                )
        dram.sort(key=lambda e: e.base)
        mmio.sort(key=lambda e: e.base)
        self._dram_entries = dram
        self._mmio_entries = mmio
        self._route_table = None

    def validate(self) -> None:
        """Firmware sanity check: DRAM ranges must not overlap each other,
        and local DRAM must not be shadowed by an MMIO entry.  Section IV.D
        also requires each node's map to be hole-free over the global
        space; that cluster-level property is checked by
        :func:`repro.topology.address_assignment.validate_node_map`."""
        self._ensure_maps()
        prev_limit = 0
        prev = None
        for e in self._dram_entries:
            if prev is not None and e.base < prev_limit:
                raise AddressMapError(
                    f"DRAM ranges overlap: [{prev.base:#x},{prev.limit:#x}) and "
                    f"[{e.base:#x},{e.limit:#x})"
                )
            prev, prev_limit = e, e.limit
        my = self.nodeid
        for d in self._dram_entries:
            if d.dst_node != my:
                continue
            for m in self._mmio_entries:
                if d.base < m.limit and m.base < d.limit:
                    raise AddressMapError(
                        f"local DRAM [{d.base:#x},{d.limit:#x}) shadowed by "
                        f"MMIO [{m.base:#x},{m.limit:#x})"
                    )

    @property
    def nodeid(self) -> int:
        nid = self._nodeid_cache
        if nid is None:
            nid = self._nodeid_cache = NodeIDAccessor(self.regs).nodeid
        return nid

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, addr: int) -> RouteResult:
        """Two-stage lookup: address map first, then routing table.

        The decode is register-pure, so every :class:`RouteResult` is
        prebuilt once per map programming and shared between calls;
        local DRAM results carry ``local_offset=None`` and consumers
        that need the per-address offset call :meth:`_local_offset`.
        """
        tbl = self._route_table
        if tbl is None:
            self._ensure_maps()
            tbl = self._route_table = self._build_route_table()
        for base, limit, result, re_, we in tbl:
            if base <= addr < limit:
                return result
        return _ROUTE_NONE

    def _build_route_table(self) -> List[tuple]:
        """Flatten the decoded maps into ``(base, limit, prebuilt, re, we)``
        rows in lookup order (DRAM entries first, as the crossbar checks
        them)."""
        my = self.nodeid
        tbl: List[tuple] = []
        for e in self._dram_entries:
            if e.dst_node == my:
                # Shared result with local_offset=None: the per-address
                # offset is computed by the (few) consumers that need it,
                # so the packet-rate hot path allocates nothing.
                tbl.append((e.base, e.limit,
                            RouteResult(RouteKind.DRAM_LOCAL, dst_node=my,
                                        readable=e.re, writable=e.we),
                            e.re, e.we))
            else:
                tbl.append((e.base, e.limit,
                            RouteResult(RouteKind.DRAM_REMOTE,
                                        dst_node=e.dst_node,
                                        readable=e.re, writable=e.we),
                            e.re, e.we))
        for e in self._mmio_entries:
            if e.dst_node == my:
                r = RouteResult(RouteKind.MMIO_LOCAL_LINK, dst_node=my,
                                dst_link=e.dst_link,
                                readable=e.re, writable=e.we)
            else:
                r = RouteResult(RouteKind.MMIO_REMOTE, dst_node=e.dst_node,
                                readable=e.re, writable=e.we)
            tbl.append((e.base, e.limit, r, e.re, e.we))
        return tbl

    def _local_offset(self, addr: int) -> int:
        """Map a global address into this node's DRAM, accounting for
        multiple local ranges (offsets accumulate in base order)."""
        bases = self._local_bases
        if bases is None:
            self._ensure_maps()
            my = self.nodeid
            bases = []
            running = 0
            for e in self._dram_entries:
                if e.dst_node != my:
                    continue
                bases.append((e.base, e.limit, running))
                running += e.limit - e.base
            self._local_bases = bases
        for base, limit, running in bases:
            if base <= addr < limit:
                return running + (addr - base)
        raise MasterAbort(f"{self.name}: address {addr:#x} is not local DRAM")

    def _route_mask_to_port(self, mask_value: int) -> Optional[int]:
        """Decode a 5-bit routing-table mask: bit0=self, bit k+1=link k."""
        if mask_value & 1:
            return None  # deliver to self
        for k in range(regs_mod.NUM_LINKS):
            if mask_value & (1 << (k + 1)):
                return k
        raise MasterAbort(f"{self.name}: empty route mask {mask_value:#x}")

    def _fabric_port_for(self, dst_node: int, route: str = "request") -> int:
        acc = RoutingTableAccessor(self.regs, dst_node)
        mask_value = getattr(acc, route)
        port = self._route_mask_to_port(mask_value)
        if port is None:
            raise MasterAbort(
                f"{self.name}: routing table says node {dst_node} is self, "
                "but the address map disagreed"
            )
        return port

    # ------------------------------------------------------------------
    # CPU-side interface (the SRQ)
    # ------------------------------------------------------------------
    def submit_posted(self, addr: int, data: bytes,
                      mask: Optional[bytes] = None) -> Optional[Event]:
        """Accept a posted write from a core's WC/UC store path.

        Returns None when the packet is accepted into the posted buffer
        immediately (the store has 'left the processor' and the core may
        retire it); otherwise an event that fires on acceptance.  ``mask``
        selects the sized-byte write form.
        """
        if self._train is not None:
            # A foreign submit invalidates the train's schedule: demote to
            # per-packet state before this packet touches the queue.
            self._train.abort(self.sim._now)
        pkt = self._pool.posted_write(addr, data, unitid=self.nodeid,
                                      coherent=True, mask=mask)
        pkt.inject_time = self.sim._now
        if self.posted_q.try_put(pkt):
            return None
        return self.posted_q.put(pkt)

    def cpu_read(self, addr: int, length: int, uncached: bool = True) -> Event:
        """A core load.  Local DRAM and remote coherent DRAM work; reads
        into TCCluster MMIO windows violate the writes-only rule."""
        done = self.sim.event(name=self._cpu_read_name)
        # Readable local DRAM (the UC polling receive path, by far the
        # hottest read case) runs as a lean calendar-callback chain with
        # exactly the calendar entries and virtual times of the coroutine
        # below -- minus the per-load Process/generator allocation and
        # trampoline.  Everything else (remote, MMIO, faults) keeps the
        # full coroutine.
        r = self.route(addr)
        if r.kind is RouteKind.DRAM_LOCAL and r.readable:
            sim = self.sim
            sim._push(sim._now, self._cpu_read_local_start,
                      (addr, length, uncached, done))
        else:
            self.sim.process(self._do_cpu_read(addr, length, uncached, done))
        return done

    def _cpu_read_local_start(self, addr: int, length: int, uncached: bool,
                              done: Event) -> None:
        """Entry 1 of the local-read chain (the coroutine's start hop)."""
        sim = self.sim
        sim._push(sim._now + self.timing.nb_request_ns,
                  self._cpu_read_local_issue, (addr, length, uncached, done))

    def _cpu_read_local_issue(self, addr: int, length: int, uncached: bool,
                              done: Event) -> None:
        """Entry 2: crossbar latency elapsed; issue at the controller."""
        if not self._dram_ready():
            done.fail(MasterAbort(
                f"{self.name}: DRAM accessed before memory init"
            ))
            return
        ev = self.chip.memctrl.read(self._local_offset(addr), length, uncached)

        def _complete(ev: Event, done=done, counters=self.counters) -> None:
            counters.inc("local_reads")
            done.succeed(ev.value)

        ev.add_callback(_complete)

    def _do_cpu_read(self, addr: int, length: int, uncached: bool, done: Event):
        r = self.route(addr)
        yield self.timing.nb_request_ns
        if r.kind is RouteKind.NONE:
            done.fail(MasterAbort(f"{self.name}: read from unmapped {addr:#x}"))
            return
        if not r.readable:
            done.fail(MasterAbort(f"{self.name}: address {addr:#x} is write-only"))
            return
        if r.kind is RouteKind.DRAM_LOCAL:
            if not self._dram_ready():
                done.fail(MasterAbort(
                    f"{self.name}: DRAM accessed before memory init"
                ))
                return
            data = yield self.chip.memctrl.read(
                self._local_offset(addr), length, uncached
            )
            self.counters.inc("local_reads")
            done.succeed(data)
            return
        if r.kind is RouteKind.DRAM_REMOTE:
            # Coherent fabric read: tag + request + response.  A dead
            # egress link no longer fails the load outright: the request
            # never left (its SrcTag was released), so the requester can
            # safely wait for a retrain or routing update and re-issue,
            # bounded by the same patience window the posted recovery
            # path uses.  Past the window the caller sees LinkDownError.
            deadline = self.sim.now + self.link_down_wait_ns
            while True:
                try:
                    data = yield from self._remote_read(addr, length, r.dst_node)
                except LinkDownError as exc:
                    remaining = deadline - self.sim.now
                    if remaining <= 0:
                        done.fail(exc)
                        return
                    try:
                        port = self._fabric_port_for(r.dst_node)
                        binding = self.chip.ports.get(port)
                    except MasterAbort:
                        binding = None
                    if binding is not None:
                        yield AnyOf(self.sim, [binding.link.up_gate.wait(),
                                               self.sim.timeout(remaining)])
                    else:
                        yield self.sim.timeout(min(remaining, 1000.0))
                    continue
                done.succeed(data)
                return
        # MMIO read: the writes-only rule.
        if self.strict_reads:
            try:
                self.tags.allocate(None)
            except UnroutableResponseError as exc:
                done.fail(exc)
                return
        # Permissive mode: emit the read and let the fabric demonstrate why
        # this cannot work (the response is misrouted at the remote node).
        if (length % 4) or length > 64:
            done.fail(ValueError("MMIO reads are 1..16 dwords"))
            return
        tag = self.tags.allocate(self.nodeid, context=done)
        self._pending_reads[tag] = done
        pkt = make_read(addr, length // 4, srctag=tag, unitid=self.nodeid)
        try:
            yield from self._emit_mmio(pkt, r)
        except LinkDownError as exc:
            self._pending_reads.pop(tag, None)
            self.tags.match(tag)
            done.fail(exc)
            return
        self.counters.inc("unroutable_mmio_reads_issued")
        # `done` now waits for a response that will never arrive.

    def _remote_read(self, addr: int, length: int, dst_node: int):
        if (length % 4) or length > 64:
            raise ValueError("fabric reads are 1..16 dwords")
        response = self.sim.event(name=f"{self.name}.read_rsp")
        tag = self.tags.allocate(dst_node, context=response)
        pkt = make_read(addr, length // 4, srctag=tag, unitid=self.nodeid, coherent=True)
        port = self._fabric_port_for(dst_node)
        if self.sim.features.flow_fidelity:
            from ..sim.flows import ReadFlow

            flow = ReadFlow.plan(self, port, pkt, addr, length, response)
            if flow is not None:
                fl = flow_counters(self.sim)
                if self._read_flow_port != port:
                    self._read_flow_port = port
                    fl.read_windows += 1
                fl.read_reads += 1
                data = yield response
                self.counters.inc("remote_reads")
                return data
        try:
            yield self._send_on_port(port, pkt)
        except LinkDownError:
            # The request never left: release the SrcTag so a retry (or
            # any later read) does not exhaust the matching table.
            self.tags.match(tag)
            raise
        data = yield response
        self.counters.inc("remote_reads")
        return data

    def _emit_mmio(self, pkt: Packet, r: RouteResult):
        """Send a packet out of the MMIO destination link (IO bridge
        converts coherent -> non-coherent on the way)."""
        if pkt.coherent:
            yield self.timing.nb_iobridge_ns
            pkt.coherent = False
        yield self._send_on_port(r.dst_link, pkt)

    def _send_on_port(self, port: int, pkt: Packet) -> Event:
        binding = self.chip.ports.get(port)
        if binding is None:
            raise MasterAbort(f"{self.name}: no link attached at port {port}")
        return binding.link.send(binding.side, pkt)

    def _send_on_port_fast(self, port: int, pkt: Packet) -> Optional[Event]:
        """Like :meth:`_send_on_port` but returns None when the TX queue
        accepts the packet immediately (no Event allocated)."""
        binding = self.chip.ports.get(port)
        if binding is None:
            raise MasterAbort(f"{self.name}: no link attached at port {port}")
        if binding.link.try_send(binding.side, pkt):
            return None
        return binding.link.send(binding.side, pkt)

    def _forward_fault(self, pkt: Packet, response: bool = False):
        """Recover a packet whose egress link was down at send time.

        The loop re-resolves the route each round -- an interval-routing
        update (:class:`repro.faults.routes.RouteManager`) may already
        steer the address (or, for ``response`` packets, the requester
        NodeID) around the dead link -- then retries the send.  When no
        active egress exists it waits, bounded by ``link_down_wait_ns``,
        for the chosen link to retrain; past the window the packet is
        dropped with accounting.  Posted HT semantics permit the drop,
        and the message layer's deadline/retransmit machinery restores
        exactly-once-or-failed delivery end to end.
        """
        sim = self.sim
        fc = fault_counters(sim)
        deadline = sim.now + self.link_down_wait_ns
        while True:
            try:
                if response:
                    port = self._fabric_port_for(pkt.unitid, route="response")
                else:
                    r = self.route(pkt.addr)
                    if r.kind is RouteKind.MMIO_LOCAL_LINK:
                        port = r.dst_link
                    elif r.kind in (RouteKind.DRAM_REMOTE, RouteKind.MMIO_REMOTE):
                        port = self._fabric_port_for(r.dst_node)
                    else:
                        port = None
            except MasterAbort:
                port = None
            binding = self.chip.ports.get(port) if port is not None else None
            if binding is not None and binding.link.state == LinkState.ACTIVE:
                try:
                    ev = self._send_on_port_fast(port, pkt)
                except LinkDownError:
                    pass  # lost the race with another bring_down; re-wait
                else:
                    if ev is not None:
                        yield ev
                    self.counters.inc("fault_forwards")
                    return
            remaining = deadline - sim.now
            if remaining <= 0:
                self.counters.inc("fault_drops")
                fc.packets_dropped += 1
                self._pool.recycle(pkt)
                return
            if binding is not None:
                # Wake on retrain or when patience runs out.
                yield AnyOf(sim, [binding.link.up_gate.wait(),
                                  sim.timeout(remaining)])
            else:
                # No egress at all right now: poll for a routing update.
                yield sim.timeout(min(remaining, 1000.0))

    # ------------------------------------------------------------------
    # Interrupt / broadcast origination
    # ------------------------------------------------------------------
    def broadcast(self, pkt: Packet, exclude_port: Optional[int] = None) -> None:
        """Deliver a broadcast locally and forward it per the BCRte masks.

        The forwarding set is the broadcast route of the *own* node entry
        (BKDG uses per-node BCRte; firmware programs the own entry to list
        the links broadcasts fan out on)."""
        acc = RoutingTableAccessor(self.regs, self.nodeid)
        mask_value = acc.broadcast
        if mask_value & 1:
            self.chip.deliver_interrupt(pkt)
        for k in range(regs_mod.NUM_LINKS):
            if k == exclude_port:
                continue
            if mask_value & (1 << (k + 1)) and k in self.chip.ports:
                b = self.chip.ports[k]
                if b.link.state == "active":
                    b.link.send(b.side, pkt)
                    self.counters.inc("broadcasts_forwarded")

    def discard_posted(self) -> int:
        """Drop every posted write buffered in the SRQ/crossbar queue
        (hard crash: queue contents are volatile chip state).  Senders
        blocked on a full queue are admitted and dropped too -- posted
        semantics already completed their stores.  Returns the number of
        packets discarded."""
        n = 0
        while True:
            ok, pkt = self.posted_q.try_get()
            if not ok:
                break
            self._pool.recycle(pkt)
            n += 1
        return n

    # ------------------------------------------------------------------
    # Fabric-side processing
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the dispatcher and one receive loop per attached port."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._dispatcher(), name=f"{self.name}.dispatch")
        for k in list(self.chip.ports):
            self.sim.process(self._rx_loop(k), name=f"{self.name}.rx{k}")

    def _dispatcher(self):
        """Drain the CPU posted queue into memory or the fabric."""
        t = self.timing
        # Crossbar + IO-bridge latency taken as one sleep on the TCCluster
        # transmit path: one calendar entry instead of two.  The route
        # decode is register-pure (no virtual time passes in route()), so
        # sampling it before the sleep is observationally identical.
        tx_step = t.nb_request_ns + t.nb_iobridge_ns
        req_step = t.nb_request_ns
        posted_q = self.posted_q
        m = self._m
        sim = self.sim
        route = self.route
        counters_inc = self.counters.inc
        memctrl = self.chip.memctrl
        pool_recycle = self._pool.recycle
        while True:
            ok, pkt = posted_q.try_get()
            if not ok:
                pkt = yield posted_q.get()
            if m.enabled:
                m.track(self._depth_series, sim.now, len(posted_q._items))
            r = route(pkt.addr)
            if not r.writable and r.kind is not RouteKind.NONE:
                yield req_step
                counters_inc("write_to_readonly")
                continue
            if r.kind is RouteKind.DRAM_LOCAL:
                yield req_step
                if not self._dram_ready():
                    counters_inc("dram_uninitialized")
                    continue
                memctrl.write_posted(self._local_offset(pkt.addr),
                                     pkt.data, pkt.mask)
                # Commit point: the calendar entry holds the payload span
                # itself, so the packet shell can be reused immediately.
                pool_recycle(pkt)
                counters_inc("local_writes")
            elif r.kind is RouteKind.MMIO_LOCAL_LINK:
                # The TCCluster transmit path: an MMIO window homed at this
                # node whose DstLink points straight out of the chip.
                yield tx_step
                pkt.coherent = False
                try:
                    ev = self._send_on_port_fast(r.dst_link, pkt)
                except LinkDownError:
                    yield from self._forward_fault(pkt)
                else:
                    if ev is not None:
                        yield ev
                counters_inc("mmio_writes")
            elif r.kind is RouteKind.DRAM_REMOTE:
                yield req_step
                port = self._fabric_port_for(r.dst_node)
                try:
                    ev = self._send_on_port_fast(port, pkt)
                except LinkDownError:
                    yield from self._forward_fault(pkt)
                else:
                    if ev is not None:
                        yield ev
                counters_inc("fabric_writes")
            elif r.kind is RouteKind.MMIO_REMOTE:
                # MMIO homed at another fabric node: one coherent hop
                # first, counted apart from plain DRAM fabric writes.
                yield req_step
                port = self._fabric_port_for(r.dst_node)
                try:
                    ev = self._send_on_port_fast(port, pkt)
                except LinkDownError:
                    yield from self._forward_fault(pkt)
                else:
                    if ev is not None:
                        yield ev
                counters_inc("fabric_writes")
                counters_inc("mmio_remote_writes")
            else:
                yield req_step
                counters_inc("master_aborts")

    def _rx_loop(self, port: int):
        """Process packets arriving on one link."""
        binding = self.chip.ports[port]
        link, side = binding.link, binding.side
        t = self.timing
        req_step = t.nb_request_ns
        rx_convert_step = t.nb_request_ns + t.nb_iobridge_ns
        try_receive = link.try_receive
        receive = link.receive
        route = self.route
        counters_inc = self.counters.inc
        memctrl = self.chip.memctrl
        pool_recycle = self._pool.recycle
        local_offset = self._local_offset
        while True:
            # Fast path: a packet already waiting is consumed inline (the
            # credit returns immediately instead of via a callback event).
            ok, pkt = try_receive(side)
            if not ok:
                pkt = yield receive(side)
            if pkt.cmd is Command.BROADCAST:
                yield req_step
                self.broadcast(pkt, exclude_port=port)
                counters_inc("broadcasts_received")
                continue
            if pkt.cmd.is_response:
                yield from self._handle_response(pkt, port)
                continue
            r = route(pkt.addr)
            if r.kind is RouteKind.DRAM_LOCAL:
                if pkt.coherent:
                    yield req_step
                else:
                    # IO bridge: non-coherent -> coherent conversion,
                    # folded into the crossbar sleep (one calendar entry).
                    yield rx_convert_step
                    pkt.coherent = True
                cmd = pkt.cmd
                if ((cmd is Command.WRITE_POSTED
                     or cmd is Command.WRITE_POSTED_BYTE)
                        and self._dram_ready()):
                    # Posted-write destination commit, inlined: the bulk
                    # data plane lands here once per packet, so skipping
                    # the _local_access generator frame is worth it.
                    memctrl.write_posted(local_offset(pkt.addr),
                                         pkt.data, pkt.mask)
                    pool_recycle(pkt)
                    counters_inc("rx_writes")
                else:
                    yield from self._local_access(pkt, port)
            elif r.kind in (RouteKind.MMIO_LOCAL_LINK, RouteKind.MMIO_REMOTE,
                            RouteKind.DRAM_REMOTE):
                coh0 = pkt.coherent
                if r.kind is RouteKind.MMIO_LOCAL_LINK:
                    out_port = r.dst_link
                    if pkt.coherent:
                        yield t.nb_forward_ns + t.nb_iobridge_ns
                        pkt.coherent = False
                    else:
                        yield t.nb_forward_ns
                else:
                    yield t.nb_forward_ns
                    out_port = self._fabric_port_for(r.dst_node)
                if out_port == port:
                    counters_inc("routing_loops")
                    continue
                if (self.sim.features.flow_fidelity
                        and pkt.cmd is Command.WRITE_POSTED
                        and pkt.mask is None
                        and not (coh0
                                 and r.kind is RouteKind.MMIO_LOCAL_LINK)):
                    # Multi-hop forwarding fast path: promote while the
                    # out direction is still quiescent; the flow absorbs
                    # this packet and the rest of the run at the delivery
                    # point.
                    from ..sim.flows import ForwardFlow

                    d_in = link._dirs[LinkSide.other(side)]
                    b_out = self.chip.ports.get(out_port)
                    if (b_out is not None
                            and ForwardFlow.eligible(self, d_in, b_out, pkt)):
                        ForwardFlow(self, d_in, b_out, out_port, pkt)
                        counters_inc("forwarded")
                        continue
                try:
                    ev = self._send_on_port_fast(out_port, pkt)
                except LinkDownError:
                    yield from self._forward_fault(pkt)
                else:
                    if ev is not None:
                        yield ev
                counters_inc("forwarded")
            else:
                counters_inc("master_aborts")

    def _dram_ready(self) -> bool:
        ready = self._dram_ready_cache
        if ready is None:
            from .registers import DramConfigAccessor

            ready = self._dram_ready_cache = DramConfigAccessor(self.regs).initialized
        return ready

    def _local_access(self, pkt: Packet, port: int,
                      offset: Optional[int] = None):
        """Service a request that targets this node's DRAM.  ``offset`` is
        the already-routed local DRAM offset (recomputed if not given)."""
        t = self.timing
        if not self._dram_ready():
            self.counters.inc("dram_uninitialized")
            return
        if offset is None:
            offset = self._local_offset(pkt.addr)
        if pkt.is_write and pkt.cmd.is_posted:
            self.chip.memctrl.write_posted(offset, pkt.data, pkt.mask)
            # Destination commit point of the TCCluster data plane: hand
            # the packet shell back (no-op for constructor-built packets).
            self._pool.recycle(pkt)
            self.counters.inc("rx_writes")
            return
        if pkt.is_write:
            yield self.chip.memctrl.write(offset, pkt.data, pkt.mask)
            rsp = make_target_done(srctag=pkt.srctag, unitid=pkt.unitid)
            yield from self._route_response(rsp, port)
            self.counters.inc("rx_np_writes")
            return
        if pkt.cmd is Command.READ:
            data = yield self.chip.memctrl.read(offset, pkt.dword_count * 4,
                                                uncached=False)
            rsp = make_read_response(data, srctag=pkt.srctag, unitid=pkt.unitid,
                                     coherent=pkt.coherent)
            yield from self._route_response(rsp, port)
            self.counters.inc("rx_reads")
            return
        self.counters.inc("unhandled_requests")

    def _route_response(self, rsp: Packet, rx_port: int):
        """Responses route by the requester NodeID carried in unitid."""
        dst = rsp.unitid
        if dst == self.nodeid:
            # The pathological TCCluster case: every node is NodeID 0, so a
            # response to a remote requester is routed back into ourselves.
            self._complete_or_misroute(rsp)
            return
        port = self._fabric_port_for(dst, route="response")
        try:
            ev = self._send_on_port(port, rsp)
        except LinkDownError:
            yield from self._forward_fault(rsp, response=True)
        else:
            yield ev

    def _handle_response(self, pkt: Packet, port: int):
        yield self.timing.nb_request_ns
        if pkt.unitid == self.nodeid:
            self._complete_or_misroute(pkt)
        else:
            out = self._fabric_port_for(pkt.unitid, route="response")
            if out == port:
                self.counters.inc("routing_loops")
                return
            try:
                ev = self._send_on_port(out, pkt)
            except LinkDownError:
                yield from self._forward_fault(pkt, response=True)
            else:
                yield ev

    def _complete_or_misroute(self, pkt: Packet) -> None:
        try:
            ev = self.tags.match(pkt.srctag)
        except KeyError:
            # Response for a request we never issued: the emergent
            # misrouting the paper describes (Section IV.A).
            self.counters.inc("misrouted_responses")
            return
        self._pending_reads.pop(pkt.srctag, None)
        if isinstance(ev, Event) and not ev.triggered:
            if pkt.error:
                ev.fail(MasterAbort("remote access returned error response"))
            else:
                ev.succeed(pkt.data)
        self.counters.inc("responses_matched")
