#!/usr/bin/env python3
"""PGAS example: distributed token counting with one-sided puts.

Demonstrates the paper's PGAS claim (Section IV.A): "TCCluster is
compatible with PGAS implementations like UPC over GASNet" -- relaxed
one-sided puts for data movement, sfence for ordering, active-message
gets (the writes-only fabric cannot load remotely), and software barriers
for global synchronization.

Each rank owns a shard of a global counter table living in the symmetric
segment.  Ranks hash local tokens, push per-owner count deltas with
put_notify, the owners fold them in, and finally every rank reads the
global table with get().

Run:  python examples/pgas_wordcount.py
"""

import struct

from repro import TCClusterSystem
from repro.middleware import GasRuntime
from repro.util.units import fmt_time_ns

TOKENS = {
    0: ["ht", "link", "node", "ht", "dram", "link", "ht"],
    1: ["node", "node", "dram", "ht", "probe"],
    2: ["link", "link", "probe", "dram", "ht", "node"],
    3: ["dram", "ht", "probe", "probe", "link"],
}
VOCAB = ["ht", "link", "node", "dram", "probe"]
SLOT = 8  # one u64 counter per word


def owner_of(word: str, nranks: int) -> int:
    return sum(word.encode()) % nranks


def worker(gas: GasRuntime, results: dict):
    me, n = gas.rank, gas.size
    # Phase 1: count local tokens per owner.
    deltas = {}
    for tok in TOKENS[me]:
        deltas.setdefault(tok, 0)
        deltas[tok] += 1

    # Phase 2: push deltas into each owner's inbox region (one-sided).
    # Inbox layout: per sender, a (word_index, count) u64 pair array at
    # offset 0x1000 + sender * 0x100.
    for word, count in deltas.items():
        dst = owner_of(word, n)
        idx = VOCAB.index(word)
        off = 0x1000 + me * 0x100 + idx * 16
        payload = struct.pack("<QQ", idx + 1, count)
        if dst == me:
            yield from gas.put(me, off, payload)
        else:
            yield from gas.put(dst, off, payload)
    yield from gas.fence()
    yield from gas.barrier()

    # Phase 3: owners fold their inboxes into the global table at 0x0.
    for word in VOCAB:
        if owner_of(word, n) != me:
            continue
        idx = VOCAB.index(word)
        total = 0
        for sender in range(n):
            raw = yield from gas.local_read(0x1000 + sender * 0x100 + idx * 16, 16)
            stored_idx, count = struct.unpack("<QQ", raw)
            if stored_idx == idx + 1:
                total += count
        yield from gas.put(me, idx * SLOT, struct.pack("<Q", total))
    yield from gas.fence()
    yield from gas.barrier()

    # Phase 4: everyone assembles the global view with get().
    view = {}
    for word in VOCAB:
        idx = VOCAB.index(word)
        raw = yield from gas.get(owner_of(word, n), idx * SLOT, 8)
        view[word] = struct.unpack("<Q", raw)[0]
    results[me] = view
    yield from gas.barrier()


def main() -> None:
    print("Booting the two-board prototype for a PGAS word count...")
    system = TCClusterSystem.two_board_prototype().boot()
    cluster = system.cluster
    gases = [GasRuntime(cluster.library(r)) for r in range(cluster.nranks)]
    for g in gases:
        g.start()

    results: dict = {}
    start = system.sim.now
    procs = [system.process(worker, g, results) for g in gases]
    system.run_until(system.sim.all_of(procs))
    for g in gases:
        g.stop()

    expected = {}
    for toks in TOKENS.values():
        for t in toks:
            expected[t] = expected.get(t, 0) + 1
    print(f"  completed in {fmt_time_ns(system.sim.now - start)} (virtual)")
    print(f"  global counts (rank 0's view): {results[0]}")
    assert all(results[r] == expected for r in results), "views must agree"
    print("  all ranks agree with the expected counts:", expected)


if __name__ == "__main__":
    main()
