"""Cluster assembly: boards, TCC links, boot orchestration, prototypes."""

from .prototypes import (
    SingleBoardPrototype,
    TYAN_S2912E_DUAL,
    build_single_board_prototype,
)
from .snapshot import (
    BootImage,
    SnapshotError,
    boot_signature,
    capture_image,
    restore_image,
    image_for,
    seed_image_cache,
    cached_images,
    clear_image_cache,
)
from .system import ClusterError, RankInfo, TCCluster, default_layout

__all__ = [
    "TCCluster",
    "ClusterError",
    "RankInfo",
    "default_layout",
    "SingleBoardPrototype",
    "build_single_board_prototype",
    "TYAN_S2912E_DUAL",
    "BootImage",
    "SnapshotError",
    "boot_signature",
    "capture_image",
    "restore_image",
    "image_for",
    "seed_image_cache",
    "cached_images",
    "clear_image_cache",
]
