"""Tests for the link-init FSM: cold/warm reset, force-non-coherent."""

import pytest

from repro.ht import (
    BOOT_GBIT_PER_LANE,
    BOOT_WIDTH_BITS,
    Link,
    LinkInitFSM,
    LinkSide,
    LinkState,
    LinkTrainingError,
)
from repro.sim import Simulator


def trained(sim, fsm, kind="cold", skew=0.0):
    """Assert reset on both sides (optionally skewed) and run training."""
    ev_a = fsm.assert_reset(LinkSide.A, kind)
    if skew:
        sim.run(until=sim.now + skew)
    ev_b = fsm.assert_reset(LinkSide.B, kind)
    sim.run()
    return ev_a, ev_b


def test_cold_reset_trains_coherent_between_two_cpus():
    """Paper: 'In the case of two Opterons the link type will be coherent.'"""
    sim = Simulator()
    link = Link(sim, "l0")
    fsm = LinkInitFSM(sim, link)
    ev_a, ev_b = trained(sim, fsm, "cold")
    assert link.state == LinkState.ACTIVE
    assert link.link_type == "coherent"
    assert ev_a.value == "coherent" and ev_b.value == "coherent"


def test_cold_reset_uses_boot_rate():
    sim = Simulator()
    link = Link(sim, "l0")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    assert link.width_bits == BOOT_WIDTH_BITS
    assert link.gbit_per_lane == BOOT_GBIT_PER_LANE


def test_southbridge_identifies_noncoherent():
    sim = Simulator()
    link = Link(sim, "sb")
    fsm = LinkInitFSM(sim, link)
    fsm.persona(LinkSide.B).identify_coherent = False  # southbridge side
    trained(sim, fsm, "cold")
    assert link.link_type == "noncoherent"


def test_force_noncoherent_takes_effect_only_at_warm_reset():
    """The core TCCluster mechanism (paper Section IV.B)."""
    sim = Simulator()
    link = Link(sim, "tcc")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    assert link.link_type == "coherent"

    # Firmware writes the debug register: nothing changes yet.
    fsm.set_force_noncoherent(LinkSide.A)
    fsm.set_force_noncoherent(LinkSide.B)
    assert link.link_type == "coherent"

    # Warm reset: reinitialization applies the pending modification.
    trained(sim, fsm, "warm")
    assert link.link_type == "noncoherent"


def test_warm_reset_applies_programmed_rate():
    """Paper: 'the link speed is increased from 400 to 4.800 Mbit/s'
    (we program the prototype's cable-limited 1600 Mbit/s)."""
    sim = Simulator()
    link = Link(sim, "tcc")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    fsm.program_rate(LinkSide.A, 16, 1.6)
    fsm.program_rate(LinkSide.B, 16, 1.6)
    trained(sim, fsm, "warm")
    assert link.width_bits == 16
    assert link.gbit_per_lane == 1.6


def test_rate_negotiation_takes_minimum():
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    fsm.program_rate(LinkSide.A, 16, 2.0)
    fsm.program_rate(LinkSide.B, 8, 1.6)
    trained(sim, fsm, "warm")
    assert link.width_bits == 8
    assert link.gbit_per_lane == 1.6


def test_program_rate_beyond_capability_rejected():
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link)
    with pytest.raises(LinkTrainingError):
        fsm.program_rate(LinkSide.A, 32, 1.6)
    with pytest.raises(LinkTrainingError):
        fsm.program_rate(LinkSide.A, 16, 9.9)


def test_cold_reset_clears_force_bit_and_pending_rate():
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    fsm.set_force_noncoherent(LinkSide.A)
    fsm.program_rate(LinkSide.A, 16, 1.6)
    trained(sim, fsm, "cold")  # cold reset wipes pending config
    assert link.link_type == "coherent"
    assert link.width_bits == BOOT_WIDTH_BITS


def test_reset_skew_beyond_tolerance_fails_training():
    """Models the prototype requirement to 'power them up simultaneously'."""
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link, skew_tolerance_ns=100.0)
    ev_a = fsm.assert_reset(LinkSide.A, "cold")
    sim.run(until=500.0)
    ev_b = fsm.assert_reset(LinkSide.B, "cold")
    with pytest.raises(LinkTrainingError, match="skew"):
        sim.run_until_event(ev_b)
    assert link.state == LinkState.DOWN
    assert ev_a.triggered and not ev_a.ok


def test_reset_skew_within_tolerance_is_fine():
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link, skew_tolerance_ns=100.0)
    trained(sim, fsm, "cold", skew=50.0)
    assert link.state == LinkState.ACTIVE


def test_train_count_and_kind_tracked():
    sim = Simulator()
    link = Link(sim, "l")
    fsm = LinkInitFSM(sim, link)
    trained(sim, fsm, "cold")
    trained(sim, fsm, "warm")
    assert fsm.train_count == 2
    assert fsm.last_kind == "warm"
