"""Memory Type Range Registers (MTRRs) and x86 memory types.

Paper Section V, the "CPU MSR Init" boot step:

    "The Memory Type Range Registers (MTRR) on both nodes are reconfigured
    to map a large uncachable address space to the TCCluster MMIO link.
    This causes the processor's system request queue to generate
    non-coherent posted HT packets which are required for TCCluster."

and Section VI on the receive side:

    "the receiver needs to map the local memory which is accessible by the
    remote nodes as uncachable.  This guarantees that all reads to remote
    node accessible memory bypass the cache."

Three types matter here:

* **WB** (write-back): ordinary cacheable RAM,
* **WC** (write-combining): stores are collected in the core's
  write-combining buffers and emitted as full-line posted writes -- the
  TCCluster transmit path,
* **UC** (uncacheable): every access goes straight to memory, strongly
  ordered -- the TCCluster receive/polling path (and the slow transmit
  ablation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["MemoryType", "MTRR", "MTRRSet", "MTRRError"]


class MTRRError(ValueError):
    """Invalid MTRR programming (alignment, overlap conflicts...)."""


class MemoryType(enum.Enum):
    UC = "uncacheable"
    WC = "write-combining"
    WB = "write-back"

    @property
    def cacheable(self) -> bool:
        return self is MemoryType.WB

    @property
    def combines_writes(self) -> bool:
        return self is MemoryType.WC


@dataclass(frozen=True)
class MTRR:
    """One variable-range register: [base, base+size) -> type.

    Real MTRRs use a base/mask pair that constrains size to powers of two
    and base to size alignment; we enforce the same constraints so that
    firmware bugs (misaligned TCC windows) fail here like they would on
    hardware.
    """

    base: int
    size: int
    mtype: MemoryType

    def __post_init__(self) -> None:
        if self.size <= 0 or (self.size & (self.size - 1)) != 0:
            raise MTRRError(f"MTRR size {self.size:#x} is not a power of two")
        if self.base % self.size != 0:
            raise MTRRError(
                f"MTRR base {self.base:#x} not aligned to size {self.size:#x}"
            )
        if self.base < 0:
            raise MTRRError("MTRR base must be non-negative")

    @property
    def limit(self) -> int:
        return self.base + self.size

    def covers(self, addr: int) -> bool:
        return self.base <= addr < self.limit


# x86 type-combining precedence: UC wins over everything, then WC, then WB.
_PRECEDENCE = {MemoryType.UC: 0, MemoryType.WC: 1, MemoryType.WB: 2}


class MTRRSet:
    """A core's variable MTRRs plus the default type.

    Fam 10h has 8 variable ranges; exceeding that raises, as the firmware
    would run out of registers.  ``num_variable`` can be lifted per
    instance: the paper's mandatory custom kernel (Section VI) maps the
    TCC windows write-combining through the PAT, which has no range-count
    limit, and we model that headroom as additional variable ranges (the
    alignment rules stay enforced).
    """

    NUM_VARIABLE = 8

    def __init__(self, default: MemoryType = MemoryType.WB,
                 num_variable: Optional[int] = None):
        self.default = default
        self.num_variable = (self.NUM_VARIABLE if num_variable is None
                             else num_variable)
        self._ranges: List[MTRR] = []

    def add(self, base: int, size: int, mtype: MemoryType) -> MTRR:
        if len(self._ranges) >= self.num_variable:
            raise MTRRError(
                f"all {self.num_variable} variable MTRRs are in use"
            )
        r = MTRR(base, size, mtype)
        self._ranges.append(r)
        return r

    def clear(self) -> None:
        self._ranges.clear()

    @property
    def ranges(self) -> Tuple[MTRR, ...]:
        return tuple(self._ranges)

    def type_for(self, addr: int) -> MemoryType:
        """Effective type at ``addr`` (overlaps combine by precedence)."""
        hits = [r.mtype for r in self._ranges if r.covers(addr)]
        if not hits:
            return self.default
        return min(hits, key=lambda t: _PRECEDENCE[t])

    def type_for_range(self, base: int, length: int) -> MemoryType:
        """Effective type for a whole access; mixed-type accesses take the
        most restrictive (lowest-precedence) type, as hardware effectively
        does for split transactions."""
        if length <= 0:
            raise ValueError("length must be positive")
        # Sample at MTRR boundaries within the access.
        points = {base, base + length - 1}
        for r in self._ranges:
            if base < r.limit and r.base < base + length:
                points.add(max(base, r.base))
                points.add(min(base + length - 1, r.limit - 1))
        types = {self.type_for(p) for p in points}
        return min(types, key=lambda t: _PRECEDENCE[t])
