"""Unit coverage for the crash/rejoin resynchronization machinery.

The chaos harness (``test_chaos.py``) proves the end-to-end property;
these tests pin the individual contracts: the HELLO/feedback wire
format, the lost-volatile-state model of ``crash_node``, the epoch
handshake itself, the deprecated ``revive()`` escape hatch, and the
injector's up-front plan validation.
"""

import warnings

import pytest

from repro.cluster import TCCluster
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.faults.injector import FaultPlanError
from repro.msglib import MsgConfig, SessionReset, TransportError
from repro.msglib.slots import (
    pack_feedback,
    pack_hello,
    unpack_feedback,
    unpack_feedback_epoch,
    unpack_header,
    unpack_hello,
)
from repro.obs.metrics import fault_counters
from repro.topology import chain
from repro.util.units import MiB

CFG = dict(send_deadline_ns=2e5, recv_deadline_ns=5e5,
           retransmit_base_ns=50_000.0)


def _pair(session_handshake: bool = True):
    cfg = MsgConfig(session_handshake=session_handshake, **CFG)
    cl = TCCluster(chain(2), msg_cfg=cfg, memory_bytes=64 * MiB).boot()
    return cl, cl.library(0).connect(1), cl.library(1).connect(0)


def _drive(cl, gen, horizon_ns=5e6, name="driver"):
    """Run one generator process to completion; returns its result box."""
    box = {}

    def wrap():
        box["value"] = yield from gen()

    cl.sim.process(wrap(), name=name)
    cl.run(until=cl.sim.now + horizon_ns)
    return box


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

def test_hello_roundtrip_and_validation():
    raw = pack_hello(7, epoch=3, recv_seq=41, heap_recvd=4096)
    seq, marker = unpack_header(raw)
    assert seq == 7
    assert unpack_hello(raw) == (3, 41, 4096)
    with pytest.raises(ValueError):
        pack_hello(7, epoch=0, recv_seq=0, heap_recvd=0)
    with pytest.raises(ValueError):
        pack_hello(7, epoch=-1, recv_seq=0, heap_recvd=0)


def test_feedback_epoch_zero_is_byte_identical_to_legacy_layout():
    """The epoch field rides in what used to be zero padding: fault-free
    feedback lines must stay bit-identical to the two-field format."""
    legacy = pack_feedback(12, 3072)
    assert unpack_feedback(legacy) == (12, 3072)
    assert unpack_feedback_epoch(legacy) == 0
    assert legacy == pack_feedback(12, 3072, epoch=0)
    stamped = pack_feedback(12, 3072, epoch=5)
    assert unpack_feedback(stamped) == (12, 3072)
    assert unpack_feedback_epoch(stamped) == 5
    # Only the epoch bytes differ.
    assert stamped[:16] == legacy[:16]
    assert stamped[24:] == legacy[24:]


# ---------------------------------------------------------------------------
# Lost-volatile-state model
# ---------------------------------------------------------------------------

def test_crash_node_discards_volatile_state_and_marks_sessions():
    cl, ep_a, ep_b = _pair()

    got = []

    def rx():
        data = yield from ep_b.recv()
        got.append(data)

    def warm():
        yield from ep_a.send(b"x" * 64)

    cl.sim.process(rx(), name="warm-rx")
    _drive(cl, warm)
    assert got == [b"x" * 64]
    fc = fault_counters(cl.sim)
    assert fc.node_crashes == 0
    # Warm a line into the victim's cache hierarchy (msglib polling is
    # uncached, so the ring traffic alone leaves the caches cold).
    cl.ranks[1].chip.caches.fill_line(0x1000, b"\xAA" * 64)
    cl.crash_node(1)
    assert fc.node_crashes == 1
    # The warmed line copy was on-chip state and is gone with the crash.
    assert fc.crash_lines_discarded > 0
    assert 0x1000 not in cl.ranks[1].chip.caches.levels[0]
    # The victim's endpoints are marked dead toward their peers so the
    # next reliable send runs the handshake instead of transmitting into
    # a torn session.
    assert ep_b.peer_dead
    assert not ep_a.peer_dead  # survivor learns via its send deadline


def test_crash_discard_drops_unacked_retransmit_images():
    cl, ep_a, _ = _pair()
    ep_a._unacked.append((1, 0, b"\x00" * 64, None, None))
    assert ep_a.crash_discard() == 1
    assert not ep_a._unacked
    assert ep_a.peer_dead


# ---------------------------------------------------------------------------
# The epoch handshake end to end
# ---------------------------------------------------------------------------

def test_handshake_resynchronizes_after_crash_rejoin():
    """Crash the receiver long enough to expire the send deadline; the
    sender's retry must resynchronize via HELLO/HELLO-ACK with zero
    ``revive()`` calls and deliveries must resume gap-free."""
    cl, ep_a, ep_b = _pair()
    # The crash must land mid-stream (one message costs ~600 ns here).
    plan = (FaultPlan()
            .add(2_000.0, FaultKind.NODE_CRASH, 1)
            .add(400_000.0, FaultKind.NODE_WARM_RESET, 1))
    FaultInjector(cl, plan).arm()
    got = []

    def tx():
        sent = 0
        for i in range(6):
            for _ in range(8):
                try:
                    yield from ep_a.send(bytes([i]) * 64)
                    sent += 1
                    break
                except TransportError:
                    continue
        return sent

    def rx():
        # Dedupe: an expired send whose slots had already landed in DRAM
        # is legally redelivered after its app-level retry (at-least-once
        # on TransportError).
        while len(got) < 6:
            try:
                msg = yield from ep_b.recv()
            except TransportError:
                continue
            if msg[0] not in got:
                got.append(msg[0])

    cl.sim.process(rx(), name="rx")
    box = _drive(cl, tx, horizon_ns=2e7, name="tx")
    assert box["value"] == 6
    assert got == list(range(6))
    assert fault_counters(cl.sim).session_resets >= 1
    assert ep_a.session_epoch >= 1
    assert ep_a.session_epoch == ep_b.session_epoch
    assert ep_a.stats.session_resets + ep_b.stats.session_resets >= 2


def test_reconnect_times_out_with_session_reset_when_peer_stays_dead():
    """No rejoin: the reconnect handshake must fail with a typed
    SessionReset within its deadline instead of hanging."""
    cl, ep_a, _ = _pair()
    cl.crash_node(1)

    def tx():
        outcomes = []
        for _ in range(2):
            try:
                yield from ep_a.send(b"y" * 64)
                outcomes.append("ok")
            except SessionReset:
                outcomes.append("reset")
            except TransportError:
                outcomes.append("expired")
        return outcomes

    box = _drive(cl, tx, horizon_ns=5e6)
    # First send burns the deadline (peer declared dead), the retry runs
    # the handshake against a dead peer and surfaces SessionReset.
    assert box["value"] == ["expired", "reset"]
    assert ep_a.peer_dead


def test_handshake_disabled_requires_deprecated_revive():
    """The legacy escape hatch: with ``session_handshake=False`` a dead
    session fails fast and only a manual ``revive()`` (now deprecated)
    reopens it.  ``revive`` keeps the cursors, so it only works for an
    endpoint that attempted nothing while the peer was down -- the
    contract the handshake exists to remove."""
    cl, ep_a, ep_b = _pair(session_handshake=False)
    cl.crash_node(1)
    # The victim's own endpoint knows immediately (crash_discard).
    assert ep_b.peer_dead

    def dead():
        try:
            yield from ep_b.send(b"z" * 64)
        except TransportError as exc:
            return str(exc)

    msg = _drive(cl, dead, horizon_ns=5e6)["value"]
    assert msg and "handshake disabled" in msg

    def rejoin():
        yield from cl.rejoin_node(1)

    _drive(cl, rejoin, horizon_ns=5e6)
    with pytest.warns(DeprecationWarning):
        ep_b.revive()
    assert not ep_b.peer_dead

    got = []

    def resumed_rx():
        data = yield from ep_a.recv()
        got.append(data)

    def resumed_tx():
        yield from ep_b.send(b"w" * 64)

    cl.sim.process(resumed_rx(), name="resumed-rx")
    _drive(cl, resumed_tx, horizon_ns=5e6)
    assert got == [b"w" * 64]


def test_revive_warns_even_when_session_is_healthy():
    _, ep_a, _ = _pair()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with pytest.raises(DeprecationWarning):
            ep_a.revive()


# ---------------------------------------------------------------------------
# Injector plan validation
# ---------------------------------------------------------------------------

def test_arm_rejects_kill_then_kill_on_same_link():
    cl, _, _ = _pair()
    plan = (FaultPlan()
            .add(1_000.0, FaultKind.LINK_KILL, 0)
            .add(2_000.0, FaultKind.LINK_KILL, 0))
    with pytest.raises(FaultPlanError, match="conflict"):
        FaultInjector(cl, plan).arm()


def test_arm_rejects_fault_on_crashed_rank():
    cl, _, _ = _pair()
    plan = (FaultPlan()
            .add(1_000.0, FaultKind.NODE_CRASH, 1)
            .add(2_000.0, FaultKind.NODE_CRASH, 1))
    with pytest.raises(FaultPlanError):
        FaultInjector(cl, plan).arm()


def test_arm_on_conflict_skip_records_dropped_events():
    cl, _, _ = _pair()
    plan = (FaultPlan()
            .add(1_000.0, FaultKind.LINK_KILL, 0)
            .add(2_000.0, FaultKind.LINK_KILL, 0)
            .add(3_000.0, FaultKind.NODE_CRASH, 1))
    inj = FaultInjector(cl, plan)
    armed = inj.arm(on_conflict="skip")
    assert armed == 2
    assert len(inj.skipped) == 1
    ev, why = inj.skipped[0]
    assert ev.at_ns == 2_000.0 and ev.kind is FaultKind.LINK_KILL
    assert why
    with pytest.raises(ValueError):
        FaultInjector(cl, plan).arm(on_conflict="maybe")
