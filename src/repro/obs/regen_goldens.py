"""Regenerate the golden regression files under ``tests/golden/``.

Run after an *intentional* timing/protocol change, review the diff, and
commit the updated JSON together with the change::

    PYTHONPATH=src python -m repro.obs.regen_goldens [outdir]

``outdir`` defaults to ``<repo>/tests/golden`` resolved relative to this
file.  Pass ``--fast`` to skip the slow 4 MiB Figure 6 points (the
checked-in goldens include them; a fast regen preserves the previous slow
values if the file already exists).
"""

from __future__ import annotations

import argparse
import os
from typing import Optional

from .golden import load_golden, save_golden
from .scenarios import (
    CANONICAL_TOLERANCES,
    FIG6_GOLDEN_SIZES,
    FIG6_SLOW_SIZES,
    FIG7_GOLDEN_SLOTS,
    FIGURE_TOLERANCES,
    run_canonical_2node,
    run_golden_figures,
)

__all__ = ["default_golden_dir", "regenerate"]


def default_golden_dir() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "tests", "golden")


def _carry_forward_slow_fig6(path: str, metrics: dict) -> dict:
    """Preserve fig6.<mode>.<slow size> keys from an existing file."""
    if not os.path.exists(path):
        return metrics
    old = load_golden(path).get("metrics", {})
    for size in FIG6_SLOW_SIZES:
        for mode in ("weak", "strict"):
            key = f"fig6.{mode}.{size}.mbps"
            if key in old and key not in metrics:
                metrics[key] = old[key]
    return metrics


def regenerate(outdir: Optional[str] = None, fast: bool = False,
               verbose: bool = True) -> None:
    outdir = outdir or default_golden_dir()
    os.makedirs(outdir, exist_ok=True)

    def note(msg: str) -> None:
        if verbose:
            print(msg)

    note(f"regenerating goldens into {outdir}")

    canonical = run_canonical_2node()
    save_golden(os.path.join(outdir, "canonical_2node.json"), canonical,
                tolerances=CANONICAL_TOLERANCES)
    note("  canonical_2node.json written")

    # Fast and slow figure points run on *separate* fresh prototypes, in
    # exactly the configuration the tests use -- sweep state (window wrap,
    # simulator clock) must match between regen and regression run.
    figures = run_golden_figures(fig6_sizes=FIG6_GOLDEN_SIZES,
                                 fig7_slots=FIG7_GOLDEN_SLOTS)
    if not fast:
        slow = run_golden_figures(fig6_sizes=FIG6_SLOW_SIZES, fig7_slots=())
        figures["fig6"].update(slow["fig6"])

    fig6_path = os.path.join(outdir, "fig6_bandwidth.json")
    carried = _carry_forward_slow_fig6(fig6_path, {}) if fast else {}
    doc = save_golden(fig6_path, {"fig6": figures["fig6"]},
                      tolerances=FIGURE_TOLERANCES)
    if carried:
        doc["metrics"].update(carried)
        import json
        with open(fig6_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
    note("  fig6_bandwidth.json written"
         + (" (fast points; slow carried forward if present)" if fast else ""))

    save_golden(os.path.join(outdir, "fig7_latency.json"),
                {"fig7": figures["fig7"]}, tolerances=FIGURE_TOLERANCES)
    note("  fig7_latency.json written")


def main() -> None:  # pragma: no cover - thin CLI
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("outdir", nargs="?", default=None)
    ap.add_argument("--fast", action="store_true",
                    help="skip the 4 MiB Figure 6 points")
    args = ap.parse_args()
    regenerate(args.outdir, fast=args.fast)


if __name__ == "__main__":  # pragma: no cover
    main()
