"""Tests for the zero-copy data plane: packet pool, lazy wire image,
span payloads and the one-copy/O(1)-allocation invariants end to end.

The pool hands out flyweight packets that skip dataclass init, so the
load-bearing property is *state isolation*: a recycled-and-reused packet
must be indistinguishable from a constructor-built one.  The fuzz test
checks exactly that, by encoding every pooled packet against a fresh
reference built through the fully-validated constructor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TCClusterSystem
from repro.ht.packet import (
    Command,
    PacketError,
    PacketPool,
    make_broadcast,
    make_nonposted_write,
    make_posted_write,
    pool_for,
)
from repro.obs.metrics import datapath_counters
from repro.sim import Simulator
from repro.util.units import KiB


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------

def test_pool_checkout_recycle_reuses_object():
    pool = PacketPool()
    p1 = pool.posted_write(0x100, b"\xAA" * 16)
    assert pool.allocated == 1 and pool.reused == 0
    pool.recycle(p1)
    assert pool.recycled == 1
    p2 = pool.posted_write(0x200, b"\xBB" * 8)
    assert p2 is p1, "free-listed packet not reused"
    assert pool.allocated == 1 and pool.reused == 1
    assert p2.addr == 0x200 and bytes(p2.data) == b"\xBB" * 8


def test_recycle_is_noop_for_foreign_and_double_recycle():
    pool = PacketPool()
    foreign = make_posted_write(0x40, b"\x01" * 4)
    pool.recycle(foreign)
    assert pool.recycled == 0 and not pool._free
    p = pool.posted_write(0x40, b"\x02" * 4)
    pool.recycle(p)
    pool.recycle(p)  # double recycle must not duplicate the free entry
    assert pool.recycled == 1
    assert len(pool._free) == 1


def test_pool_free_list_is_capped():
    pool = PacketPool()
    pkts = [pool.posted_write(0x40, b"\x00" * 4) for _ in range(pool.MAX_FREE + 10)]
    for p in pkts:
        pool.recycle(p)
    assert len(pool._free) == pool.MAX_FREE
    assert pool.recycled == pool.MAX_FREE + 10


def test_pool_fast_path_still_validates():
    pool = PacketPool()
    with pytest.raises(PacketError):
        pool.posted_write(0x41, b"\x00" * 4)  # unaligned address
    with pytest.raises(PacketError):
        pool.posted_write(0x40, b"\x00" * 3)  # ragged payload
    with pytest.raises(PacketError):
        pool.posted_write(0x40, b"")  # empty payload
    with pytest.raises(PacketError):
        pool.posted_write(1 << 48, b"\x00" * 4)  # beyond phys addr space


def test_pool_masked_write_takes_validated_constructor():
    pool = PacketPool()
    p = pool.posted_write(0x40, b"\x01\x02\x03\x04", mask=b"\x01\x00\x01\x00")
    assert p.cmd is Command.WRITE_POSTED_BYTE
    assert not p._pooled  # constructor-built: recycle must ignore it
    pool.recycle(p)
    assert pool.recycled == 0


# ---------------------------------------------------------------------------
# Lazy wire image == eager construction
# ---------------------------------------------------------------------------

def test_pooled_packet_wire_image_matches_constructor():
    pool = PacketPool()
    pkt = pool.posted_write(0x1000, b"\xCD" * 64, unitid=3, coherent=True)
    ref = make_posted_write(0x1000, b"\xCD" * 64, unitid=3, coherent=True)
    assert pkt.wire_bytes() == ref.wire_bytes()
    assert pkt.crc32 == ref.crc32
    assert pkt.encode() == ref.encode()


def test_wire_bytes_cache_consistent_with_encode():
    pkt = make_posted_write(0x1000, b"\x11" * 32)
    # wire_bytes (cached, arithmetic) must equal the actual encoded length.
    assert pkt.wire_bytes() == len(pkt.encode())
    assert pkt.wire_bytes(crc_bytes=0) == len(pkt.encode()) - 4


def test_memoryview_span_payload_is_not_copied():
    src = bytes(range(256))
    span = memoryview(src)[64:128]
    pool = PacketPool()
    pkt = pool.posted_write(0x2000, span)
    assert type(pkt.data) is memoryview, "span payload must ride by reference"
    ref = make_posted_write(0x2000, bytes(span))
    assert pkt.encode() == ref.encode()


# ---------------------------------------------------------------------------
# Fuzzed round trip: reuse never leaks state (satellite: property test)
# ---------------------------------------------------------------------------

_aligned_addr = st.integers(min_value=0, max_value=(1 << 30) // 4 - 1).map(
    lambda a: a * 4
)
_dword_payload = st.integers(min_value=1, max_value=16).flatmap(
    lambda n: st.binary(min_size=4 * n, max_size=4 * n)
)
_op = st.tuples(
    st.sampled_from(["posted", "posted_masked", "nonposted", "broadcast"]),
    _aligned_addr,
    _dword_payload,
)


@given(ops=st.lists(_op, min_size=1, max_size=40))
@settings(max_examples=60)
def test_pool_round_trip_never_leaks_state(ops):
    """Property: pooled/recycled packets are byte-identical on the wire
    to constructor-built references, across mixed posted / non-posted /
    broadcast traffic with interleaved recycling."""
    pool = PacketPool()
    live = []
    for kind, addr, payload, in ops:
        if kind == "posted":
            pkt = pool.posted_write(addr, payload, unitid=1)
            ref = make_posted_write(addr, payload, unitid=1)
        elif kind == "posted_masked":
            msk = bytes((i % 2) for i in range(1, len(payload) + 1))
            pkt = pool.posted_write(addr, payload, mask=msk)
            ref = make_posted_write(addr, payload, mask=msk)
        elif kind == "nonposted":
            pkt = make_nonposted_write(addr, payload, srctag=5)
            ref = make_nonposted_write(addr, payload, srctag=5)
        else:
            pkt = make_broadcast(addr, payload)
            ref = make_broadcast(addr, payload)
        assert pkt.wire_bytes() == ref.wire_bytes()
        assert pkt.crc32 == ref.crc32
        assert pkt.encode() == ref.encode()
        live.append(pkt)
        if len(live) > 4:
            pool.recycle(live.pop(0))  # interleaved return -> forces reuse
    for p in live:
        pool.recycle(p)
    # After all that churn, a fresh checkout must be pristine.
    pkt = pool.posted_write(0x40, b"\x3C" * 8)
    assert pkt.mask is None and pkt.srctag == 0 and pkt.seqid == 0
    assert pkt.src_node is None and pkt._agg_tag is None
    assert not pkt.passpw and not pkt.error
    assert pkt.encode() == make_posted_write(0x40, b"\x3C" * 8).encode()


# ---------------------------------------------------------------------------
# End to end: one copy per byte, O(1) packet objects
# ---------------------------------------------------------------------------

def test_bulk_transfer_one_copy_and_pooled_packets():
    """A bulk store through the per-packet data plane copies each payload
    byte exactly once (at destination page commit) and recirculates a
    bounded packet population."""
    sys_ = TCClusterSystem.two_board_prototype()
    sys_.sim.features.adaptive_fidelity = False  # force per-packet plane
    sys_.boot()
    cl = sys_.cluster
    sim = sys_.sim
    proc = cl.spawn_process(0, name="txp")
    info, pinfo = cl.ranks[0], cl.ranks[1]
    driver = cl.kernels[info.supernode].driver_for(info.chip_index)
    window_off = 32 * 1024 * 1024
    tx_base = pinfo.base + window_off
    size = 16 * KiB
    driver.mmap_remote(proc.pagetable, tx_base, size, tag="pool-test")
    data = bytes(range(256)) * (size // 256)
    dest = pinfo.chip.memctrl.memory

    before = datapath_counters(sim, memories=(dest,))

    def xfer():
        yield from proc.store(tx_base, data)
        yield from proc.core.sfence()

    sim.run_until_event(sim.process(xfer()))
    sim.run()
    after = datapath_counters(sim, memories=(dest,))

    assert dest.read(window_off, size) == data
    lines = size // 64
    copied = after["bytes_copied"] - before["bytes_copied"]
    alloc = after["packets_alloc"] - before["packets_alloc"]
    pooled = after["packets_pooled"] - before["packets_pooled"]
    recycled = after["packets_recycled"] - before["packets_recycled"]
    assert copied == size, f"one-copy invariant broken: {copied} != {size}"
    assert recycled == lines, "every data packet must return to the pool"
    assert alloc + pooled == lines
    assert alloc < lines, "pool never engaged: every packet freshly built"


def test_pool_is_per_simulation():
    sim1, sim2 = Simulator(), Simulator()
    pool1, pool2 = pool_for(sim1), pool_for(sim2)
    assert pool1 is not pool2
    assert pool_for(sim1) is pool1  # stable across calls
