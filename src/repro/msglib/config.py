"""Message-library configuration and the per-node region layout.

Paper Section IV.A:

    "As there exists no hardware support for managing messages it is
    impossible to share receive buffer space between multiple endpoints.
    Therefore, each node has to allocate a 4 KB ring buffer for each
    endpoint it want to communicate with.  While this limitation prohibits
    unlimited scalability the approach is sufficient to support hundreds
    of endpoints."

Every node reserves three regions inside its exported local DRAM, at
offsets identical across the cluster (all ranks compute the same layout):

* **ring region** -- one 4 KB ring per possible sender rank,
* **feedback region** -- one cache line per peer, written *by* that peer
  (as receiver) to acknowledge consumption ("Periodically, the APIs on
  the endpoints have to exchange pointer information to communicate
  buffer fill levels and to implement flow control"),
* **heap region** -- one rendezvous landing zone per sender rank for
  large messages ("data is written directly to the final destination on
  the remote node and an additional queue is used for synchronization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..util.units import CACHELINE, KiB, MiB

__all__ = ["MsgConfig", "RegionLayout", "SLOT_BYTES", "SLOT_PAYLOAD", "SLOT_HEADER"]

SLOT_BYTES = CACHELINE          # one slot == one posted write == one line
SLOT_HEADER = 8                 # u32 seq, u32 len/marker
SLOT_PAYLOAD = SLOT_BYTES - SLOT_HEADER
PAGE = 4096

#: len-field marker for rendezvous control slots.
RENDEZVOUS_MARKER = 0xFFFF_FFFF

#: len-field marker for session-handshake (HELLO) control slots.
HELLO_MARKER = 0xFFFF_FFFE


def _round_up(x: int, align: int) -> int:
    return (x + align - 1) // align * align


@dataclass(frozen=True)
class MsgConfig:
    """Tunables of the message library."""

    #: Per-endpoint receive ring ("a 4 KB ring buffer for each endpoint").
    ring_bytes: int = 4 * KiB
    #: Messages up to this size go eagerly through the ring; larger ones
    #: use the rendezvous heap.
    eager_max: int = 1024
    #: Per-sender rendezvous landing zone.
    heap_bytes: int = 1 * MiB
    #: Receiver acknowledges every this-many consumed slots.
    fb_interval_slots: int = 16
    #: Bulk UC read chunk for draining multi-slot messages / heap payloads.
    read_chunk: int = 1024
    #: Offset of the message regions inside each node's local DRAM (leaves
    #: low memory to the OS).
    region_offset: int = 1 * MiB
    # -- reliability (all default-off: the fault-free protocol, its
    # timing and its calendar footprint are unchanged) -------------------
    #: End-to-end delivery guard: when set, ``send()`` only completes
    #: once the peer has acknowledged the message's ring slots, and
    #: raises :class:`~repro.msglib.endpoint.TransportError` (declaring
    #: the peer dead) if that takes longer than this many ns.
    send_deadline_ns: Optional[float] = None
    #: ``recv()`` deadline: raise ``TransportError`` when no message
    #: completes within this many ns (per-call override available).
    recv_deadline_ns: Optional[float] = None
    #: First retransmit backoff while waiting for acknowledgements;
    #: doubles after every retransmission round (exponential backoff).
    retransmit_base_ns: float = 50_000.0
    #: In-band session handshake: when a reliable endpoint finds its peer
    #: declared dead, ``send()`` runs an epoch-numbered HELLO/HELLO-ACK
    #: exchange over the ring instead of raising immediately, resyncing
    #: both sides' cursors and resuming.  Inert while no fault has ever
    #: declared a peer dead, so the fault-free calendar is unchanged.
    session_handshake: bool = True
    #: Deadline for one HELLO/HELLO-ACK round trip before the reconnect
    #: attempt is abandoned with :class:`SessionReset` (falls back to
    #: ``send_deadline_ns`` when unset).
    reconnect_deadline_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.ring_bytes % SLOT_BYTES or self.ring_bytes < 4 * SLOT_BYTES:
            raise ValueError("ring_bytes must be >= 4 slots and slot-aligned")
        if self.ring_bytes % PAGE:
            raise ValueError("ring_bytes must be page aligned (mmap granularity)")
        if self.eager_max > (self.nslots // 2) * SLOT_PAYLOAD:
            raise ValueError("eager_max larger than half the ring capacity")
        if self.heap_bytes % PAGE:
            raise ValueError("heap_bytes must be page aligned")
        if self.fb_interval_slots >= self.nslots:
            raise ValueError("fb_interval_slots must be below the slot count")
        if self.read_chunk % SLOT_BYTES:
            raise ValueError("read_chunk must be line aligned")
        if self.send_deadline_ns is not None and self.send_deadline_ns <= 0:
            raise ValueError("send_deadline_ns must be positive (or None)")
        if self.recv_deadline_ns is not None and self.recv_deadline_ns <= 0:
            raise ValueError("recv_deadline_ns must be positive (or None)")
        if self.retransmit_base_ns <= 0:
            raise ValueError("retransmit_base_ns must be positive")
        if self.reconnect_deadline_ns is not None and self.reconnect_deadline_ns <= 0:
            raise ValueError("reconnect_deadline_ns must be positive (or None)")

    @property
    def nslots(self) -> int:
        return self.ring_bytes // SLOT_BYTES

    def layout(self, nranks: int) -> "RegionLayout":
        return RegionLayout(self, nranks)


class RegionLayout:
    """Concrete offsets once the rank count is known."""

    def __init__(self, cfg: MsgConfig, nranks: int):
        if nranks < 2:
            raise ValueError("a cluster needs at least two ranks")
        self.cfg = cfg
        self.nranks = nranks
        self.ring_off = cfg.region_offset
        ring_total = _round_up(nranks * cfg.ring_bytes, PAGE)
        self.fb_off = self.ring_off + ring_total
        fb_total = _round_up(nranks * CACHELINE, PAGE)
        self.heap_off = self.fb_off + fb_total
        self.total = self.heap_off + nranks * cfg.heap_bytes - cfg.region_offset

    # All helpers return offsets *within a node's local DRAM*.
    def ring_of_sender(self, sender_rank: int) -> int:
        self._check(sender_rank)
        return self.ring_off + sender_rank * self.cfg.ring_bytes

    def feedback_of_peer(self, peer_rank: int) -> int:
        """The line peer_rank (as receiver) writes acknowledgements into."""
        self._check(peer_rank)
        return self.fb_off + peer_rank * CACHELINE

    def heap_of_sender(self, sender_rank: int) -> int:
        self._check(sender_rank)
        return self.heap_off + sender_rank * self.cfg.heap_bytes

    def fb_region(self) -> Tuple[int, int]:
        return self.fb_off, _round_up(self.nranks * CACHELINE, PAGE)

    def ring_region(self) -> Tuple[int, int]:
        return self.ring_off, _round_up(self.nranks * self.cfg.ring_bytes, PAGE)

    def heap_region(self) -> Tuple[int, int]:
        return self.heap_off, self.nranks * self.cfg.heap_bytes

    def required_bytes(self) -> int:
        """Local DRAM the layout needs, from offset 0."""
        return self.heap_off + self.nranks * self.cfg.heap_bytes

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of 0..{self.nranks - 1}")
