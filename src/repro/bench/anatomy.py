"""Anatomy of one TCCluster message: per-stage latency decomposition.

Sends a single 64-byte line across the idle prototype with tracing
enabled and attributes every nanosecond of the one-way trip to a pipeline
stage -- the breakdown behind the paper's headline 227 ns:

    software entry -> stores retired -> wire (serialization + flight)
    -> remote northbridge/IO bridge -> DRAM write -> polling detection

Useful both as documentation (where does the time actually go?) and as a
regression anchor: if a refactor silently adds a pipeline stage, the
stage table moves even when the headline number happens to compensate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim import Tracer
from ..util.calibration import TimingModel, DEFAULT_TIMING
from .microbench import _RawWindow, make_prototype

__all__ = ["Stage", "MessageAnatomy", "run_latency_anatomy"]


@dataclass(frozen=True)
class Stage:
    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class MessageAnatomy:
    stages: List[Stage]
    total_ns: float

    def as_rows(self):
        return [(s.name, round(s.start_ns, 2), round(s.end_ns, 2),
                 round(s.duration_ns, 2)) for s in self.stages]


def run_latency_anatomy(timing: TimingModel = DEFAULT_TIMING) -> MessageAnatomy:
    """Trace one 64-byte store+detect round on an idle prototype."""
    sys_ = make_prototype(timing)
    cluster = sys_.cluster
    a = cluster.rank_of(0, 1)
    b = cluster.rank_of(1, 1)
    win_a = _RawWindow(cluster, a, b)
    sim = cluster.sim

    tracer = Tracer()
    link = cluster.tcc_links[0]
    link.tracer = tracer
    rx_chip = cluster.ranks[b].chip
    rx_chip.memctrl.tracer = tracer

    marks: Dict[str, float] = {}
    line = b"\xA5" * 64

    def sender():
        marks["t0_entry"] = sim.now
        yield sim.timeout(timing.send_overhead_ns)
        yield from win_a.proc.store(win_a.tx_mailbox, line)
        yield from win_a.proc.sfence()
        marks["t1_retired"] = sim.now

    def receiver():
        proc = cluster.spawn_process(b, name="anatomy-rx")
        # Reuse the exporting driver mapping made by win_b-style setup:
        drv = cluster.kernels[cluster.ranks[b].supernode].driver_for(
            cluster.ranks[b].chip_index)
        drv.mmap_local_export(proc.pagetable,
                              cluster.ranks[b].base + 48 * 1024 * 1024,
                              4096, tag="anatomy-mbox")
        while True:
            data = yield from proc.load(
                cluster.ranks[b].base + 48 * 1024 * 1024, 8)
            if data != b"\x00" * 8:
                marks["t5_detected"] = sim.now
                return
            yield sim.timeout(timing.poll_iteration_ns)

    rx = sim.process(receiver())
    sim.process(sender())
    sim.run_until_event(rx)

    tx_times = [r.time for r in tracer.records
                if r.event == "tx" and r.component == link.name]
    rx_times = [r.time for r in tracer.records
                if r.event == "rx" and r.component == link.name]
    wr_times = [r.time for r in tracer.records if r.event == "write_done"]
    if not (tx_times and rx_times and wr_times):
        raise RuntimeError("tracing did not capture the expected events")

    t0 = marks["t0_entry"]
    stages = [
        Stage("software entry + WC fill + sfence drain", 0.0,
              marks["t1_retired"] - t0),
        Stage("sender NB + IO bridge + serialization",
              marks["t1_retired"] - t0, tx_times[0] - t0),
        Stage("cable flight", tx_times[0] - t0, rx_times[0] - t0),
        Stage("receiver NB + IO bridge + DRAM write",
              rx_times[0] - t0, wr_times[0] - t0),
        Stage("polling detection (UC load)", wr_times[0] - t0,
              marks["t5_detected"] - t0),
    ]
    return MessageAnatomy(stages, marks["t5_detected"] - t0)
