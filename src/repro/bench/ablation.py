"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **A-wc** -- write combining on/off: the paper's transmit path depends on
  "intensive use of the write combining capability to generate maximum
  sized HyperTransport packets which reduce the command overhead"; the
  ablation maps the window UC instead of WC, turning every 8-byte store
  into its own posted write.
* **A-ord** -- the sfence-frequency trade-off between the paper's two
  send mechanisms: fence every k lines, k = 1 is the strictly-ordered
  curve, k = infinity the weakly-ordered one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..opteron.mtrr import MemoryType
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import CACHELINE, KiB, bandwidth_mbps
from .microbench import _RawWindow, _drain, _stream, make_prototype

__all__ = ["WcAblationPoint", "OrderingPoint", "BerPoint", "run_wc_ablation",
           "run_ordering_ablation", "run_ber_sweep"]


@dataclass(frozen=True)
class WcAblationPoint:
    mapping: str          # "WC" or "UC"
    size: int
    mbps: float
    packets: int          # link packets used (shows the combining effect)


@dataclass(frozen=True)
class OrderingPoint:
    fence_interval: Optional[int]   # lines per sfence; None = never
    mbps: float


def run_wc_ablation(size: int = 256 * KiB,
                    timing: TimingModel = DEFAULT_TIMING) -> List[WcAblationPoint]:
    """Stream the same bytes through a WC and a UC mapping."""
    points: List[WcAblationPoint] = []
    for mapping, mtype in (("WC", MemoryType.WC), ("UC", MemoryType.UC)):
        sys_ = make_prototype(timing)
        cluster = sys_.cluster
        a = cluster.rank_of(0, 1)
        b = cluster.rank_of(1, 1)
        win = _RawWindow(cluster, a, b)
        if mtype is MemoryType.UC:
            # Remap the window UC: replace the page-table mapping.
            pt = win.proc.pagetable
            m = pt.lookup(win.tx_base)
            pt.unmap(m)
            pt.map(win.tx_base, m.size, MemoryType.UC,
                   readable=False, writable=True, tag="bench-win-uc")
        link = cluster.tcc_links[0]
        before = link.stats("A").packets
        start = cluster.sim.now
        done = cluster.sim.process(_stream(win, size, "weak"))
        end = cluster.sim.run_until_event(done)
        f = cluster.sim.process(win.proc.sfence())
        cluster.sim.run_until_event(f)
        _drain(cluster)
        points.append(
            WcAblationPoint(
                mapping, size, bandwidth_mbps(size, end - start),
                link.stats("A").packets - before,
            )
        )
    return points


@dataclass(frozen=True)
class BerPoint:
    """Throughput/latency under injected link errors (HT3 retry)."""

    error_rate: float
    mbps: float
    retries: int
    delivered_ok: bool


def run_ber_sweep(
    error_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.2),
    size: int = 1 << 20,  # past the posted buffer, so the drain rate shows
    timing: TimingModel = DEFAULT_TIMING,
) -> List[BerPoint]:
    """Stream through a lossy HTX cable; HT3 per-packet retry keeps the
    fabric lossless while throughput degrades gracefully ("defines fault
    tolerance mechanisms on the link level", paper Section III)."""
    from repro.core import TCClusterSystem

    points: List[BerPoint] = []
    for ber in error_rates:
        sys_ = TCClusterSystem.two_board_prototype(timing=timing)
        for link in sys_.cluster.tcc_links:
            link.ber = ber
        sys_.boot()
        cluster = sys_.cluster
        a = cluster.rank_of(0, 1)
        b = cluster.rank_of(1, 1)
        win = _RawWindow(cluster, a, b)
        link = cluster.tcc_links[0]
        start = cluster.sim.now
        done = cluster.sim.process(_stream(win, size, "weak"))
        end = cluster.sim.run_until_event(done)
        f = cluster.sim.process(win.proc.sfence())
        cluster.sim.run_until_event(f)
        _drain(cluster)
        # Verify every byte landed despite the errors.
        expected = bytes(range(64)) * (size // 64)
        rinfo = cluster.ranks[b]
        got = rinfo.chip.memory.read(32 * 1024 * 1024, min(size, 8 * MiB_))
        ok = got == expected[: len(got)]
        points.append(
            BerPoint(ber, bandwidth_mbps(size, end - start),
                     link.stats("A").retries, ok)
        )
    return points


MiB_ = 1 << 20


def run_ordering_ablation(
    intervals: Sequence[Optional[int]] = (1, 2, 4, 8, 16, 64, None),
    size: int = 256 * KiB,
    timing: TimingModel = DEFAULT_TIMING,
) -> List[OrderingPoint]:
    """Bandwidth as a function of sfence frequency."""
    sys_ = make_prototype(timing)
    cluster = sys_.cluster
    a = cluster.rank_of(0, 1)
    b = cluster.rank_of(1, 1)
    win = _RawWindow(cluster, a, b)
    points: List[OrderingPoint] = []
    for k in intervals:
        start = cluster.sim.now
        done = cluster.sim.process(_stream(win, size, "weak", fence_interval=k))
        end = cluster.sim.run_until_event(done)
        f = cluster.sim.process(win.proc.sfence())
        cluster.sim.run_until_event(f)
        _drain(cluster)
        points.append(OrderingPoint(k, bandwidth_mbps(size, end - start)))
    return points
