"""Tests for dual-link aggregation (paper Section V's Tyan board option)."""

import pytest

from repro.ht import Link, LinkSide, make_posted_write
from repro.ht.aggregate import AggregatedLink
from repro.sim import Simulator
from repro.util.calibration import DEFAULT_TIMING


def make_agg(sim, n=2, **kw):
    members = [Link(sim, f"m{i}", **kw) for i in range(n)]
    agg = AggregatedLink(sim, members)
    agg.activate("coherent")
    return agg, members


def test_needs_two_members():
    sim = Simulator()
    with pytest.raises(ValueError):
        AggregatedLink(sim, [Link(sim, "m0")])


def test_state_reflects_members():
    sim = Simulator()
    agg, members = make_agg(sim)
    assert agg.state == "active"
    assert agg.link_type == "coherent"
    members[0].bring_down()
    assert agg.state == "down"


def test_in_order_delivery_despite_striping():
    """Packets stripe across both members but arrive in send order."""
    sim = Simulator()
    agg, members = make_agg(sim)
    n = 40
    got = []

    def tx():
        for i in range(n):
            yield agg.send(LinkSide.A, make_posted_write(0x1000 + 64 * i,
                                                         bytes([i]) * 4))

    def rx():
        for _ in range(n):
            pkt = yield agg.receive(LinkSide.B)
            got.append(pkt.data[0])

    sim.process(tx())
    sim.process(rx())
    sim.run()
    assert got == list(range(n))
    # both members actually carried traffic
    assert members[0].stats(LinkSide.A).packets == n // 2
    assert members[1].stats(LinkSide.A).packets == n // 2


def test_resequencer_holds_out_of_order_arrivals():
    """Slow down member 0 so member 1's packets arrive first; order must
    still hold at the receive side."""
    sim = Simulator()
    m0 = Link(sim, "m0", gbit_per_lane=0.4)   # slow lane
    m1 = Link(sim, "m1", gbit_per_lane=5.2)   # fast lane
    agg = AggregatedLink(sim, [m0, m1])
    agg.activate("coherent")
    got = []

    def tx():
        for i in range(10):
            yield agg.send(LinkSide.A, make_posted_write(0x0, bytes([i]) * 4))

    def rx():
        for _ in range(10):
            pkt = yield agg.receive(LinkSide.B)
            got.append((pkt.data[0], sim.now))

    sim.process(tx())
    sim.process(rx())
    sim.run()
    assert [g[0] for g in got] == list(range(10))


def test_aggregate_doubles_streaming_bandwidth():
    sim = Simulator()
    agg, _ = make_agg(sim)
    single = Link(sim, "single")
    single.activate("coherent")
    n = 200

    def drive(dev, done):
        def rx():
            for _ in range(n):
                yield dev.receive(LinkSide.B)
            done.append(sim.now)

        def tx():
            for i in range(n):
                yield dev.send(LinkSide.A, make_posted_write(0x0, b"\x00" * 64))

        sim.process(rx())
        sim.process(tx())

    t_agg, t_single = [], []
    drive(agg, t_agg)
    sim.run()
    start = sim.now
    drive(single, t_single)
    sim.run()
    dur_single = t_single[0] - start
    assert t_agg[0] == pytest.approx(dur_single / 2, rel=0.06)
    assert agg.bytes_per_ns == pytest.approx(2 * single.bytes_per_ns)


def test_aggregate_stats_sum_members():
    sim = Simulator()
    agg, members = make_agg(sim)

    def rx():
        for _ in range(4):
            yield agg.receive(LinkSide.B)

    sim.process(rx())
    for i in range(4):
        agg.send(LinkSide.A, make_posted_write(0x0, b"\x00" * 64))
    sim.run()
    s = agg.stats(LinkSide.A)
    assert s.packets == 4
    assert s.wire_bytes == 4 * 76
