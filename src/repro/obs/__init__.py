"""Observability: metrics registry, trace export, goldens, reporting.

The subsystem has four layers:

* :mod:`repro.obs.metrics` -- the per-simulator :class:`MetricsRegistry`
  (counters / gauges / log-bucketed histograms / time-weighted
  accumulators), near-zero cost while disabled,
* :mod:`repro.obs.export` -- JSONL export of traces and snapshots,
* :mod:`repro.obs.golden` -- tolerance-based comparison of snapshots
  against checked-in golden JSON files,
* :mod:`repro.obs.report` -- text/JSON rendering of a cluster snapshot.

:mod:`repro.obs.scenarios` (imported explicitly -- it drags in the full
cluster stack) defines the canonical runs behind ``tests/golden/``, and
``python -m repro.obs.regen_goldens`` rewrites those files.
"""

from .export import JsonlExporter, read_jsonl, trace_records_to_jsonl
from .golden import (
    GoldenMismatch,
    assert_matches_golden,
    compare_to_golden,
    flatten,
    load_golden,
    save_golden,
)
from .metrics import (CollectiveCounters, FaultCounters, LogHistogram,
                      MetricsRegistry, collective_counters,
                      datapath_counters, enable_metrics, fault_counters,
                      metrics_for)
from .report import format_report

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "metrics_for",
    "enable_metrics",
    "datapath_counters",
    "FaultCounters",
    "fault_counters",
    "CollectiveCounters",
    "collective_counters",
    "JsonlExporter",
    "trace_records_to_jsonl",
    "read_jsonl",
    "GoldenMismatch",
    "flatten",
    "compare_to_golden",
    "assert_matches_golden",
    "load_golden",
    "save_golden",
    "format_report",
]
