"""Tests for the paper's first prototype: single board, TCC loopback.

Section V: one inter-socket link stays coherent (so firmware can still
configure node1 and verify results), the other becomes a TCCluster link;
stores into node0's alias window loop over the non-coherent link into
node1's memory.
"""

import pytest

from repro.cluster import build_single_board_prototype
from repro.opteron import MemoryType, RouteKind
from repro.util.units import MiB

M256 = 256 * MiB


@pytest.fixture(scope="module")
def proto():
    return build_single_board_prototype().boot()


def test_link_types_after_boot(proto):
    """One coherent link + one forced-non-coherent link between the same
    two processors -- the configuration's defining property."""
    assert proto.coherent_link.link_type == "coherent"
    assert proto.tcc_link.link_type == "noncoherent"
    assert proto.tcc_link.width_bits == 16
    assert proto.firmware.report.tcc_links_verified == 2  # both ends


def test_enumeration_used_the_coherent_link(proto):
    assert proto.node0.nodeid == 0
    assert proto.node1.nodeid == 1
    # the DFS saw exactly two nodes despite the extra link
    assert len(proto.firmware.report.enumeration.nodes) == 2


def test_alias_window_routing(proto):
    nb0 = proto.node0.nb
    r = nb0.route(proto.alias_base + 0x40)
    assert r.kind is RouteKind.MMIO_LOCAL_LINK
    assert r.dst_link == 2
    # node1 claims the same window as local DRAM; the route result is a
    # shared row (local_offset=None) and the per-address offset comes
    # from the translation helper.
    r1 = proto.node1.nb.route(proto.alias_base + 0x40)
    assert r1.kind is RouteKind.DRAM_LOCAL
    assert r1.local_offset is None
    assert proto.node1.nb._local_offset(proto.alias_base + 0x40) == M256 + 0x40


def test_store_loops_over_tcc_into_node1_memory(proto):
    """The paper's 'whether we can successfully transfer data over the
    TCCluster link' check."""
    core = proto.node0.cores[0]
    before = proto.tcc_link.stats("A").packets

    def tx():
        yield from core.store(proto.alias_base + 0x2000, b"\x3C" * 64)
        yield from core.sfence()

    proto.sim.process(tx())
    proto.sim.run()
    assert proto.node1.memory.read(M256 + 0x2000, 64) == b"\x3C" * 64
    assert proto.tcc_link.stats("A").packets == before + 1


def test_node1_core_reads_transferred_data_at_same_address(proto):
    """node1's view maps the alias window onto the same cells, so its
    cores verify the transfer at the very address node0 wrote."""
    core0 = proto.node0.cores[0]
    core1 = proto.node1.cores[0]
    addr = proto.alias_base + 0x3000
    got = {}

    def scenario():
        yield from core0.store(addr, b"loopback-proof!!" * 4)
        yield from core0.sfence()
        yield proto.sim.timeout(500.0)
        got["data"] = yield from core1.load(addr, 16)

    done = proto.sim.process(scenario())
    proto.sim.run_until_event(done)
    assert got["data"] == b"loopback-proof!!"


def test_alias_window_is_write_combining_on_node0(proto):
    assert proto.node0.mtrr.type_for(proto.alias_base) is MemoryType.WC
    # node1 has no MMIO window and thus no WC MTRR
    assert proto.node1.mtrr.type_for(proto.alias_base) is MemoryType.WB


def test_coherent_link_still_carries_fabric_reads(proto):
    """BSP-side access to node1's memory over the coherent link (the
    firmware's verification path) still works alongside the TCC link."""
    core0 = proto.node0.cores[0]
    got = {}

    def scenario():
        # node1's real slice [256M, 512M) is coherent DRAM for node0.
        data = yield from core0.load(M256 + 0x100, 8)
        got["data"] = data

    # Seed node1's memory directly (as if node1 wrote it).
    proto.node1.memory.write(0x100, b"COHERENT"[:8])
    done = proto.sim.process(scenario())
    proto.sim.run_until_event(done)
    assert got["data"] == b"COHERENT"
    assert proto.node0.nb.counters["remote_reads"] >= 1
