"""The TCCluster character-device driver.

Paper Section VI: "We developed a Linux driver which can map remote
TCCluster memory addresses into the user space" plus the receive-side
rule: "the receiver needs to map the local memory which is accessible by
the remote nodes as uncachable."

The driver brokers three operations for user space:

* :meth:`mmap_remote` -- map a window of another node's memory,
  write-combining and **write-only** (reads cannot cross a TCC link),
* :meth:`mmap_local_export` -- map a region of local DRAM that remote
  nodes will write into, **uncacheable** so polling sees fresh data; the
  driver programs an MTRR/PAT entry for the region,
* :meth:`restrict_export` -- per Section IV.D: "If a system desires to
  provide only parts of the local memory to remote nodes, the driver has
  to restrict the address ranges that can be mapped into user space by
  remote nodes."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..opteron import OpteronChip
from ..opteron.mtrr import MemoryType, MTRRError
from .pagetable import Mapping, PageFault, PageTable

__all__ = ["TccDriver", "DriverError"]


class DriverError(RuntimeError):
    """ioctl-style failure from the tccluster device."""


class TccDriver:
    """Kernel-side driver instance on one node (chip)."""

    def __init__(self, chip: OpteronChip, local_base: int, local_limit: int,
                 global_base: int, global_limit: int):
        """``local_*``: this node's DRAM slice in the global space;
        ``global_*``: the whole TCCluster space."""
        self.chip = chip
        self.local_base = local_base
        self.local_limit = local_limit
        self.global_base = global_base
        self.global_limit = global_limit
        #: global-address windows remote nodes may target on this node;
        #: empty means everything local is exportable.
        self._export_windows: List[Tuple[int, int]] = []
        self._uc_programmed: List[Tuple[int, int]] = []

    # -- policy ------------------------------------------------------------
    def restrict_export(self, base: int, limit: int) -> None:
        """Allow remote access only inside [base, limit) (repeatable)."""
        if not (self.local_base <= base < limit <= self.local_limit):
            raise DriverError(
                f"export window [{base:#x},{limit:#x}) outside local DRAM "
                f"[{self.local_base:#x},{self.local_limit:#x})"
            )
        self._export_windows.append((base, limit))

    def _export_allowed(self, base: int, limit: int) -> bool:
        if not self._export_windows:
            return True
        return any(b <= base and limit <= l for (b, l) in self._export_windows)

    # -- mmap services -----------------------------------------------------------
    def mmap_remote(self, pt: PageTable, base: int, size: int,
                    tag: str = "tcc-remote") -> Mapping:
        """Map a remote window write-only + write-combining."""
        limit = base + size
        if not (self.global_base <= base < limit <= self.global_limit):
            raise DriverError(
                f"remote window [{base:#x},{limit:#x}) outside the global "
                f"space [{self.global_base:#x},{self.global_limit:#x})"
            )
        if base >= self.local_base and limit <= self.local_limit:
            raise DriverError(
                "mmap_remote used for a local range; use mmap_local_export"
            )
        return pt.map(base, size, MemoryType.WC,
                      readable=False, writable=True, tag=tag)

    def mmap_local_export(self, pt: PageTable, base: int, size: int,
                          tag: str = "tcc-ring") -> Mapping:
        """Map local memory that remote nodes write into: UC, read-write."""
        limit = base + size
        if not (self.local_base <= base < limit <= self.local_limit):
            raise DriverError(
                f"[{base:#x},{limit:#x}) is not local to {self.chip.name}"
            )
        if not self._export_allowed(base, limit):
            raise DriverError(
                f"export of [{base:#x},{limit:#x}) denied by driver policy"
            )
        self._ensure_uncacheable(base, limit)
        return pt.map(base, size, MemoryType.UC,
                      readable=True, writable=True, tag=tag)

    def _ensure_uncacheable(self, base: int, limit: int) -> None:
        """Program MTRR/PAT so polling bypasses the cache.

        MTRRs need power-of-two sizing; the driver rounds the region out to
        the smallest legal cover (over-covering local DRAM with UC is safe,
        merely slow)."""
        for (b, l) in self._uc_programmed:
            if b <= base and limit <= l:
                return
        size = 1 << max(12, (limit - base - 1).bit_length())
        aligned = (base // size) * size
        while aligned + size < limit:
            size <<= 1
            aligned = (base // size) * size
        try:
            self.chip.mtrr.add(aligned, size, MemoryType.UC)
        except MTRRError as exc:
            raise DriverError(
                f"cannot mark ring region UC: {exc} -- unmap something first"
            ) from exc
        self._uc_programmed.append((aligned, aligned + size))

    # -- address helpers ------------------------------------------------------------
    def local_offset_to_global(self, offset: int) -> int:
        addr = self.local_base + offset
        if addr >= self.local_limit:
            raise DriverError(f"offset {offset:#x} beyond local DRAM")
        return addr

    def is_local(self, addr: int) -> bool:
        return self.local_base <= addr < self.local_limit
