"""TCCluster reproduction: the processor host interface as a network.

A full-stack simulation reproduction of

    Litz, Thuermer, Bruening: "TCCluster: A Cluster Architecture Utilizing
    the Processor Host Interface as a Network Interconnect", CLUSTER 2010.

Subpackages (bottom-up):

* :mod:`repro.sim` -- deterministic discrete-event engine,
* :mod:`repro.ht` -- HyperTransport links, packets, training,
* :mod:`repro.opteron` -- K10 node: registers, caches, WC, northbridge,
* :mod:`repro.coherence` -- MESI/probe substrate + scaling cost model,
* :mod:`repro.topology` -- graphs, interval-routing address assignment,
* :mod:`repro.firmware` -- modified-coreboot boot sequence,
* :mod:`repro.kernel` -- minimal Linux: driver, page tables, numactl,
* :mod:`repro.msglib` -- ring-buffer message library,
* :mod:`repro.middleware` -- mini-MPI / PGAS on top (paper outlook),
* :mod:`repro.baselines` -- Infiniband/Ethernet NIC models,
* :mod:`repro.cluster` -- system assembly and boot orchestration,
* :mod:`repro.core` -- the public facade (:class:`TCClusterSystem`),
* :mod:`repro.bench` -- harnesses regenerating the paper's figures.
"""

from .core import TCClusterSystem
from .util.calibration import DEFAULT_IB, DEFAULT_TIMING, IBModel, TimingModel

__version__ = "1.0.0"

__all__ = [
    "TCClusterSystem",
    "TimingModel",
    "DEFAULT_TIMING",
    "IBModel",
    "DEFAULT_IB",
    "__version__",
]
