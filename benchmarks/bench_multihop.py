"""T-hops -- multi-hop latency (Section VI in-text claim).

Paper: "We also measured multi-hop latencies by binding the benchmark
process to different processor sockets using numactl ... each hop
increases the end-to-end latency by less then 50 ns."
"""

import pytest

from _common import write_result
from repro.bench import run_multihop, table


@pytest.fixture(scope="module")
def hop_points():
    from repro.sim.parallel import resolve_jobs

    jobs = resolve_jobs()
    if jobs > 1:
        from repro.bench.sweep_points import run_multihop_parallel

        return run_multihop_parallel(iters=40, jobs=jobs)
    return run_multihop(iters=40)


def test_multihop_latency(benchmark, hop_points):
    points = hop_points
    assert [p.extra_hops for p in points] == [0, 1, 2]
    base = points[0].hrt_ns
    increments = [
        points[i + 1].hrt_ns - points[i].hrt_ns for i in range(len(points) - 1)
    ]
    # --- the claim: each hop adds less than 50 ns -----------------------
    for inc in increments:
        assert 0 < inc < 50.0, f"hop increment {inc:.1f} ns (paper: < 50 ns)"

    rows = [(p.extra_hops, round(p.hrt_ns, 1),
             round(p.hrt_ns - base, 1)) for p in points]
    txt = table(["extra hops", "HRT ns", "delta vs 0 hops"], rows,
                title="Multi-hop latency via numactl binding (reproduced)")
    txt += f"\nper-hop increments: {[round(i, 1) for i in increments]} ns"
    write_result("multihop_latency", txt)

    def kernel():
        return run_multihop(iters=5)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[-1].extra_hops == 2
