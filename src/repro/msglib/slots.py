"""Ring-slot wire format.

One slot is one cache line and therefore one HT posted write, which makes
it *atomic* at the receiver: when the sequence number is visible, the
whole slot is.  Multi-slot messages rely on per-VC in-order delivery: the
receiver syncs on the last slot's sequence number and may then bulk-read
the span.

Layout (little endian):

    u32 seq      -- global slot counter of this flow, starting at 1
    u32 len      -- total message bytes (first slot), remaining bytes
                    (continuation slots), or RENDEZVOUS_MARKER
    56 B payload
"""

from __future__ import annotations

import struct
from typing import Tuple

from .config import (
    HELLO_MARKER,
    RENDEZVOUS_MARKER,
    SLOT_BYTES,
    SLOT_HEADER,
    SLOT_PAYLOAD,
)

__all__ = [
    "pack_slot",
    "unpack_header",
    "unpack_payload",
    "pack_rendezvous_control",
    "unpack_rendezvous_control",
    "pack_hello",
    "unpack_hello",
    "pack_feedback",
    "unpack_feedback",
    "unpack_feedback_epoch",
    "slots_needed",
    "RENDEZVOUS_MARKER",
    "HELLO_MARKER",
]

_HDR = struct.Struct("<II")
_RDZV = struct.Struct("<QQQ")   # heap offset, payload len, heap end cursor
_HELLO = struct.Struct("<QQQ")  # session epoch, sender's recv_seq, heap_recvd
_FB = struct.Struct("<QQ")      # slots consumed, heap bytes consumed
_FB_EPOCH = struct.Struct("<Q")  # session epoch echo at offset 16


def slots_needed(msg_len: int) -> int:
    """Ring slots an eager message of ``msg_len`` bytes occupies."""
    if msg_len <= 0:
        raise ValueError("empty message")
    return (msg_len + SLOT_PAYLOAD - 1) // SLOT_PAYLOAD


def pack_slot(seq: int, length: int, payload: bytes) -> bytes:
    """Build the 64-byte slot image (payload zero-padded)."""
    if seq <= 0 or seq >= 1 << 32:
        raise ValueError(f"slot seq {seq} out of u32 range (must be nonzero)")
    if len(payload) > SLOT_PAYLOAD:
        raise ValueError(f"payload {len(payload)} exceeds {SLOT_PAYLOAD}")
    return _HDR.pack(seq, length) + payload.ljust(SLOT_PAYLOAD, b"\x00")


def unpack_header(raw: bytes) -> Tuple[int, int]:
    """(seq, len) from the first 8 bytes of a slot."""
    return _HDR.unpack_from(raw, 0)


def unpack_payload(raw: bytes, nbytes: int) -> bytes:
    if nbytes > SLOT_PAYLOAD:
        raise ValueError("slot payload overrun")
    return raw[SLOT_HEADER : SLOT_HEADER + nbytes]


def pack_rendezvous_control(seq: int, heap_offset: int, length: int,
                            heap_end: int) -> bytes:
    """A control slot announcing a large payload parked in the heap."""
    body = _RDZV.pack(heap_offset, length, heap_end)
    return _HDR.pack(seq, RENDEZVOUS_MARKER) + body.ljust(SLOT_PAYLOAD, b"\x00")


def unpack_rendezvous_control(raw: bytes) -> Tuple[int, int, int]:
    """(heap_offset, length, heap_end) from a control slot."""
    return _RDZV.unpack_from(raw, SLOT_HEADER)


def pack_hello(seq: int, epoch: int, recv_seq: int, heap_recvd: int) -> bytes:
    """A session-control slot announcing a reconnect handshake.

    Carries the initiator's new session epoch plus its *receive* cursors
    so the peer, as a sender toward the initiator, can resynchronize its
    transmit state in the same step.
    """
    if epoch <= 0:
        raise ValueError("session epoch must be positive")
    body = _HELLO.pack(epoch, recv_seq, heap_recvd)
    return _HDR.pack(seq, HELLO_MARKER) + body.ljust(SLOT_PAYLOAD, b"\x00")


def unpack_hello(raw: bytes) -> Tuple[int, int, int]:
    """(epoch, recv_seq, heap_recvd) from a HELLO control slot."""
    return _HELLO.unpack_from(raw, SLOT_HEADER)


def pack_feedback(slots_consumed: int, heap_consumed: int,
                  epoch: int = 0) -> bytes:
    """The 64-byte acknowledgement line a receiver writes back.

    ``epoch`` (offset 16) doubles as the HELLO-ACK: a receiver that has
    processed a HELLO control slot echoes the adopted session epoch in
    every subsequent feedback write.  It stays 0 until the first session
    reset, so the fault-free line image is byte-identical to the legacy
    two-field format (the tail was zero padding already).
    """
    line = _FB.pack(slots_consumed, heap_consumed) + _FB_EPOCH.pack(epoch)
    return line.ljust(SLOT_BYTES, b"\x00")


def unpack_feedback(raw: bytes) -> Tuple[int, int]:
    return _FB.unpack_from(raw, 0)


def unpack_feedback_epoch(raw: bytes) -> int:
    """The session-epoch echo from a feedback line (0 = never reset)."""
    return _FB_EPOCH.unpack_from(raw, 16)[0]
