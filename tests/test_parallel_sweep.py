"""Tests for the parallel sweep runner (repro.sim.parallel).

The runner's contract: per-point determinism (a fresh system per point
reproduces the serial shared-system sweep exactly), structured failure
surfacing (exceptions, crashes, timeouts name the point), and a merge
step over metrics snapshots that is associative on counters/histograms.
"""

import os
import time

import pytest

from repro.sim.parallel import (
    PointPayload,
    PointResult,
    SweepError,
    SweepPoint,
    merge_snapshots,
    resolve_jobs,
    run_sweep,
)

# ---------------------------------------------------------------------------
# Module-level point functions (must be picklable by reference)
# ---------------------------------------------------------------------------


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"bad point {x}")


def die(x):
    os._exit(13)  # simulates a worker crash (segfault/OOM-kill)


def slow(x):
    time.sleep(30)
    return x


def with_payload(x):
    return PointPayload(x, {"time_ns": 1.0, "counters": {"ops": x}})


def tiny_sim_point(seed):
    """A real (minimal) simulator point: deterministic given its seed."""
    from repro.sim import Simulator

    sim = Simulator()
    ticks = []

    def proc():
        for i in range(seed % 5 + 1):
            yield 10.0 * (i + 1)
            ticks.append(sim.now)

    sim.process(proc())
    sim.run()
    return (seed, tuple(ticks), sim.now)


# ---------------------------------------------------------------------------
# resolve_jobs
# ---------------------------------------------------------------------------


def test_resolve_jobs_priority(monkeypatch):
    monkeypatch.delenv("TCC_PARALLEL", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("TCC_PARALLEL", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit wins over env
    monkeypatch.setenv("TCC_PARALLEL", "auto")
    assert resolve_jobs() >= 1
    monkeypatch.setenv("TCC_PARALLEL", "0")
    assert resolve_jobs() == max(os.cpu_count() or 1, 1)
    with pytest.raises(ValueError):
        resolve_jobs(-2)


# ---------------------------------------------------------------------------
# run_sweep basics
# ---------------------------------------------------------------------------


def _points(fn, xs):
    return [SweepPoint(key=f"p{x}", fn=fn, args=(x,)) for x in xs]


def test_serial_and_parallel_agree():
    pts = _points(square, range(8))
    serial = run_sweep(pts, jobs=1)
    par = run_sweep(pts, jobs=4)
    assert serial.values() == par.values() == [x * x for x in range(8)]
    assert [r.key for r in par.results] == [p.key for p in pts]  # order kept
    assert serial.jobs == 1 and par.jobs == 4
    assert par.ok and serial.ok


def test_deterministic_sim_points_parallel():
    pts = [SweepPoint(key=f"s{s}", fn=tiny_sim_point, args=(s,), seed=s)
           for s in (1, 2, 3, 7)]
    serial = run_sweep(pts, jobs=1).values()
    par = run_sweep(pts, jobs=4).values()
    assert serial == par


def test_duplicate_keys_rejected():
    pts = [SweepPoint(key="same", fn=square, args=(1,)),
           SweepPoint(key="same", fn=square, args=(2,))]
    with pytest.raises(ValueError, match="duplicate"):
        run_sweep(pts, jobs=1)


def test_exception_surfaced_with_key_serial():
    pts = _points(square, [1]) + _points(boom, [9])
    with pytest.raises(SweepError, match="p9") as ei:
        run_sweep(pts, jobs=1)
    bad = [r for r in ei.value.results if not r.ok]
    assert len(bad) == 1 and bad[0].key == "p9"
    assert "ValueError" in bad[0].error and "bad point 9" in bad[0].error


def test_exception_surfaced_with_key_parallel():
    pts = _points(square, [1, 2]) + _points(boom, [9])
    with pytest.raises(SweepError, match="p9"):
        run_sweep(pts, jobs=2)
    # non-strict mode returns the structured results instead
    report = run_sweep(pts, jobs=2, strict=False)
    assert not report.ok
    by_key = {r.key: r for r in report.results}
    assert by_key["p1"].ok and by_key["p2"].ok and not by_key["p9"].ok
    with pytest.raises(SweepError, match="p9"):
        by_key["p9"].unwrap()


def test_worker_crash_surfaced():
    pts = _points(square, [1]) + [SweepPoint(key="crash", fn=die, args=(0,))]
    report = run_sweep(pts, jobs=2, strict=False)
    bad = {r.key: r for r in report.results}["crash"]
    assert not bad.ok and "crash" in bad.error.lower()


def test_timeout_surfaced():
    pts = _points(square, [1]) + [SweepPoint(key="stuck", fn=slow, args=(0,))]
    with pytest.raises(SweepError, match="stuck"):
        run_sweep(pts, jobs=2, timeout=2.0)


def test_worker_stats_and_attribution_counters():
    pts = _points(with_payload, [2, 3, 4])
    report = run_sweep(pts, jobs=2)
    assert sum(st["points"] for st in report.worker_stats.values()) == 3
    merged = report.merged_metrics
    assert merged["counters"]["ops"] == 2 + 3 + 4
    assert merged["counters"]["parallel.points"] == 3
    assert merged["counters"]["parallel.points_failed"] == 0
    assert merged["counters"]["parallel.jobs"] == 2
    assert merged["counters"]["parallel.worker_wall_s"] >= 0
    assert merged["counters"]["parallel.pool_wall_s"] >= 0
    d = report.to_dict()
    assert d["points"] == 3 and d["failed"] == []


# ---------------------------------------------------------------------------
# merge_snapshots
# ---------------------------------------------------------------------------


def _registry_snapshot(values, now):
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.enabled = True
    for v in values:
        reg.inc("n")
        reg.observe("lat", v)
        reg.set_gauge("depth", v)
        reg.track("occ", now, v)
    return reg.snapshot(now)


def test_merge_snapshots_counters_hist_gauges():
    a = _registry_snapshot([4, 8, 16], 100.0)
    b = _registry_snapshot([32, 64], 50.0)
    merged = merge_snapshots([a, b, None])
    assert merged["counters"]["n"] == 5
    assert merged["time_ns"] == 150.0
    assert merged["gauge_max"]["depth"] == 64
    h = merged["histograms"]["lat"]
    assert h["count"] == 5
    assert h["min"] == 4 and h["max"] == 64
    assert h["mean"] == pytest.approx((4 + 8 + 16 + 32 + 64) / 5)
    assert sum(h["buckets"].values()) == 5
    assert h["min"] <= h["p50"] <= h["max"]
    # merging with an empty snapshot list yields an empty frame
    empty = merge_snapshots([])
    assert empty["counters"] == {} and empty["time_ns"] == 0.0


def test_merge_snapshots_matches_single_registry():
    """Merging per-point snapshots == one registry seeing all samples."""
    combined = _registry_snapshot([4, 8, 16, 32, 64], 150.0)
    merged = merge_snapshots(
        [_registry_snapshot([4, 8, 16], 150.0),
         _registry_snapshot([32, 64], 0.0)]
    )
    h0, h1 = combined["histograms"]["lat"], merged["histograms"]["lat"]
    assert h0["count"] == h1["count"] and h0["buckets"] == h1["buckets"]
    assert h0["mean"] == pytest.approx(h1["mean"])
    assert combined["counters"] == merged["counters"]


# ---------------------------------------------------------------------------
# fresh-system-per-point == serial shared-system sweep (the determinism
# contract the benchmark fixtures rely on)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_fig6_points_parallel_equals_serial():
    from repro.bench.microbench import run_bandwidth_sweep
    from repro.bench.sweep_points import run_bandwidth_sweep_parallel

    sizes = (64, 4096)
    serial = run_bandwidth_sweep(sizes=sizes)
    par = run_bandwidth_sweep_parallel(sizes=sizes, jobs=2)
    assert [(p.size, p.mode, p.elapsed_ns, p.mbps) for p in serial] == \
           [(p.size, p.mode, p.elapsed_ns, p.mbps) for p in par]


# ---------------------------------------------------------------------------
# atomic write_result (benchmarks/_common.py)
# ---------------------------------------------------------------------------


def test_write_result_atomic_and_namespaced(tmp_path, monkeypatch):
    import importlib.util
    import pathlib

    spec = importlib.util.spec_from_file_location(
        "bench_common",
        pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "_common.py",
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    monkeypatch.setattr(mod, "RESULTS_DIR", tmp_path)
    mod.write_result("fig", "hello")
    assert (tmp_path / "fig.txt").read_text() == "hello\n"
    mod.write_result("fig", "world", point="64B")
    assert (tmp_path / "fig.64B.txt").read_text() == "world\n"
    assert (tmp_path / "fig.txt").read_text() == "hello\n"
    # no tmp droppings left behind
    assert not [p for p in tmp_path.iterdir() if p.name.startswith(".")]
