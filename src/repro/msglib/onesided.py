"""One-sided rendezvous communication (paper Section IV.A).

    "Remote stores can also be utilized to implement one-sided rendezvous
    like communication.  In this case data is written directly to the
    final destination on the remote node and an additional queue is used
    for synchronization and management."

:class:`OneSidedRegion` is that primitive, symmetric on both ranks:

* each side registers a region of its exported local DRAM as the landing
  zone (the *final destination* -- no copies at the receiver),
* ``put(offset, data)`` stores straight into the peer's region, sfences,
  and pushes an (offset, length) descriptor through the regular ring
  endpoint -- the "additional queue",
* ``wait_put()`` blocks on the queue and hands back the descriptor; the
  data is already in place and readable via ``read_local``.

Unlike the PGAS runtime this needs no dispatcher process: the queue is
the pair's ordinary endpoint, so notifications arrive in put order.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..kernel.pagetable import PAGE_SIZE
from .endpoint import Endpoint, MessageError
from .library import MessageLibrary

__all__ = ["OneSidedRegion"]

_DESC = struct.Struct("<QQ")  # offset, length


class OneSidedRegion:
    """A symmetric put-target region between this rank and one peer."""

    def __init__(self, lib: MessageLibrary, peer: int,
                 region_offset: int, region_bytes: int):
        """``region_offset`` is relative to each rank's local DRAM base and
        must be identical on both sides (symmetric allocation)."""
        if region_offset % PAGE_SIZE or region_bytes % PAGE_SIZE:
            raise MessageError("one-sided region must be page aligned")
        if region_bytes <= 0:
            raise MessageError("empty one-sided region")
        self.lib = lib
        self.proc = lib.proc
        self.peer = peer
        self.region_bytes = region_bytes
        self.endpoint: Endpoint = lib.connect(peer)
        my_base = lib.rank_base(lib.rank)
        peer_base = lib.rank_base(peer)
        self.local_addr = my_base + region_offset
        self.remote_addr = peer_base + region_offset
        # Receive side: my region, exported + UC so puts are visible.
        lib.driver.restrict_export(self.local_addr,
                                   self.local_addr + region_bytes)
        lib.driver.mmap_local_export(self.proc.pagetable, self.local_addr,
                                     region_bytes, tag=f"1s-local<-{peer}")
        # Transmit side: the peer's region, write-only WC.
        lib.driver.mmap_remote(self.proc.pagetable, self.remote_addr,
                               region_bytes, tag=f"1s-remote->{peer}")
        self.puts = 0
        self.received = 0

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length <= 0 or offset + length > self.region_bytes:
            raise MessageError(
                f"one-sided access [{offset:#x}, +{length}) outside the "
                f"{self.region_bytes}-byte region"
            )

    def put(self, offset: int, data: bytes):
        """Write ``data`` directly to the peer's region + notify."""
        self._check(offset, len(data))
        yield from self.proc.store(self.remote_addr + offset, data)
        # Payload must be globally visible before the descriptor.
        yield from self.proc.sfence()
        yield from self.endpoint.send(_DESC.pack(offset, len(data)))
        yield from self.endpoint.flush()
        self.puts += 1

    def wait_put(self) -> Tuple[int, int]:
        """Generator: next (offset, length) descriptor, data already
        resident in the local region."""
        raw = yield from self.endpoint.recv()
        if len(raw) != _DESC.size:
            raise MessageError("foreign traffic on the one-sided queue")
        offset, length = _DESC.unpack(raw)
        self._check(offset, length)
        self.received += 1
        return offset, length

    def read_local(self, offset: int, length: int):
        """Read the landed bytes (UC, so always fresh)."""
        self._check(offset, length)
        data = yield from self.proc.load(self.local_addr + offset, length)
        return data
