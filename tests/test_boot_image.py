"""Boot-image oracle: ``restore(capture(boot()))`` must equal ``boot()``.

The property is bit-exactness, checked two ways:

* **state fingerprint** -- every register, MTRR, memory page, cache
  line, NB/memctrl counter, link persona/stat/RNG state, and the
  virtual-clock quadruple of the restored system equal the cold-booted
  one's at the drained post-boot point;
* **downstream trace** -- an identical message workload run on both
  systems finishes at the same virtual times with the same calendar
  event and push counts (restore rebases the clock to the capture
  point, so even the *absolute* counters line up).

Parameterized over mesh2d/torus2d/torus3d shapes and the SimFeatures
fast-path switches; a chaos-compatibility case proves a fault plan
armed after restore fires and recovers identically to one armed after
a cold boot.
"""

import pytest

from repro.cluster.snapshot import (
    SnapshotError,
    capture_image,
    clear_image_cache,
    image_for,
    restore_image,
)
from repro.cluster.system import TCCluster
from repro.obs.metrics import boot_image_counters, fault_counters
from repro.sim import Simulator
from repro.topology import chain, mesh2d, torus2d, torus3d
from repro.util.calibration import DEFAULT_TIMING
from repro.util.units import KiB


def _system(topo_name, features):
    topo, nps = {
        "proto2": (chain(2, node=1, left_port=2, right_port=2), 2),
        "mesh3x3": (mesh2d(3, 3), 1),
        "torus4x4": (torus2d(4, 4), 1),
        "torus222": (torus3d(2, 2, 2), 1),
    }[topo_name]
    sim = Simulator()
    for name, value in features.items():
        setattr(sim.features, name, value)
    return TCCluster(topo, nodes_per_supernode=nps, sim=sim)


def _fingerprint(cl):
    """Full architectural-state digest of a drained cluster."""
    out = {}
    for r in cl.ranks:
        c = r.chip
        out[f"regs{r.rank}"] = sorted(c.regs._regs.items())
        out[f"pages{r.rank}"] = {n: bytes(p) for n, p in c.memory._pages.items()}
        out[f"mtrr{r.rank}"] = [(m.base, m.size, m.mtype) for m in c.mtrr.ranges]
        out[f"nbc{r.rank}"] = dict(c.nb.counters._counts)
        out[f"mc{r.rank}"] = (c.memctrl._busy_until, c.memctrl.reads,
                              c.memctrl.writes, c.memctrl.bytes_read,
                              c.memctrl.bytes_written)
        out[f"caches{r.rank}"] = [(list(l._lines.keys()), l.hits, l.misses)
                                  for l in c.caches.levels]
    for l in cl._all_links():
        out[f"link:{l.name}"] = (
            l.state, l.link_type, l.width_bits, l.gbit_per_lane,
            l._rng.getstate(),
            {s: (d.stats.packets, d.stats.busy_ns)
             for s, d in l._dirs.items()})
    out["clock"] = (cl.sim._now, cl.sim._seq,
                    cl.sim._event_count, cl.sim._push_count)
    return out


def _workload(cl, nbytes=32 * KiB):
    """The canonical downstream trace: one eager+rendezvous message
    between ranks 0 and 1; returns completion times and clock state."""
    ep0 = cl.library(0).connect(1)
    ep1 = cl.library(1).connect(0)
    payload = bytes(range(256)) * (nbytes // 256)
    done = {}

    def sender():
        yield from ep0.send(payload)
        done["sent"] = cl.sim.now

    def receiver():
        msg = yield from ep1.recv()
        done["recv"] = (cl.sim.now, len(msg))

    cl.sim.process(receiver(), name="rx")
    cl.sim.process(sender(), name="tx")
    cl.sim.run()
    return done, cl.sim.event_count, cl.sim._push_count, cl.sim.now


FEATURE_COMBOS = {
    "default": {},
    "legacy": {"poll_parking": False, "burst_serialization": False,
               "adaptive_fidelity": False, "flow_fidelity": False},
    "no-flow": {"flow_fidelity": False},
}


@pytest.mark.parametrize("features", sorted(FEATURE_COMBOS))
@pytest.mark.parametrize("topo", ["mesh3x3", "torus4x4", "torus222"])
def test_restore_is_bit_exact(topo, features):
    cold = _system(topo, FEATURE_COMBOS[features]).boot()
    cold.sim.run()
    image = capture_image(cold)
    restored = restore_image(image)
    assert restored.restored_from_image
    assert restored.restore_event_count > 0

    fp_cold, fp_rest = _fingerprint(cold), _fingerprint(restored)
    assert sorted(fp_cold) == sorted(fp_rest)
    for key in fp_cold:
        assert fp_cold[key] == fp_rest[key], f"state diverged at {key}"

    # Identical downstream canonical trace: same virtual times, same
    # absolute event/push counts (the clock was rebased to the capture
    # point), same final time.
    assert _workload(cold) == _workload(restored)


def test_restore_prototype_with_image_api():
    """The public API path: system-level capture + from_image."""
    from repro.core import TCClusterSystem

    cold = TCClusterSystem.two_board_prototype().boot()
    image = cold.capture_image()
    restored = TCClusterSystem.from_image(image)
    assert _workload(cold.cluster) == _workload(restored.cluster)


def test_chaos_after_restore_matches_cold_boot():
    """A fault plan armed after restore fires and recovers identically
    to the same plan armed after a cold boot."""
    from repro.faults import FaultInjector, FaultKind, FaultPlan

    def run(cl):
        plan = (FaultPlan()
                .add(5_000.0, FaultKind.LINK_FLAP, 0, duration_ns=3_000.0)
                .add(20_000.0, FaultKind.CREDIT_STALL, 0,
                     duration_ns=2_000.0))
        inj = FaultInjector(cl, plan)
        inj.arm()
        result = _workload(cl, nbytes=64 * KiB)
        fired = [(t, ev.kind) for t, ev in inj.fired]
        return result, fired, fault_counters(cl.sim).as_dict()

    cold = TCCluster(torus2d(4, 4)).boot()
    cold.sim.run()
    image = capture_image(cold)
    restored = restore_image(image)

    res_cold = run(cold)
    res_restored = run(restored)
    assert res_cold == res_restored


def test_capture_requires_booted_cluster():
    cl = TCCluster(mesh2d(2, 2))
    with pytest.raises(SnapshotError):
        capture_image(cl)


def test_image_cache_and_counters():
    clear_image_cache()
    ctr = boot_image_counters()
    b0, h0, r0 = ctr.built, ctr.cache_hits, ctr.restored

    topo = mesh2d(2, 2)
    img1 = image_for(topo)
    img2 = image_for(mesh2d(2, 2))
    assert img1 is img2
    assert ctr.built == b0 + 1
    assert ctr.cache_hits == h0 + 1

    # A different timing model is a different signature -> new image.
    img3 = image_for(mesh2d(2, 2),
                     timing=DEFAULT_TIMING.scaled(link_width_bits=8))
    assert img3 is not img1
    assert img3.signature != img1.signature
    assert ctr.built == b0 + 2

    restore_image(img1)
    assert ctr.restored == r0 + 1
    clear_image_cache()


def test_restored_prototype_fixture(restored_prototype):
    """The opt-in conftest fixture hands out restored, working systems."""
    assert restored_prototype.cluster.restored_from_image
    a, b = restored_prototype.compute_ranks()[:2]
    tx, rx = restored_prototype.connect(a, b)
    out = []

    def sender():
        yield from tx.send(b"image-restored")

    def receiver():
        out.append((yield from rx.recv()))

    restored_prototype.process(sender)
    done = restored_prototype.process(receiver)
    restored_prototype.run_until(done)
    assert out == [b"image-restored"]


def test_restored_mesh_fixture(restored_mesh):
    assert restored_mesh.cluster.restored_from_image
    assert restored_mesh.nranks == 4
