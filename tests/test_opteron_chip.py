"""Chip-level tests: register side effects, resets, interrupts."""

import pytest

from repro.ht import LinkSide
from repro.opteron import MemoryType, OpteronChip, wire_link
from repro.opteron.registers import RESET_NODEID
from repro.sim import Simulator
from repro.util.units import MiB


def make_pair():
    sim = Simulator()
    a = OpteronChip(sim, "a", memory_bytes=256 * MiB)
    b = OpteronChip(sim, "b", memory_bytes=256 * MiB)
    link = wire_link(sim, a, 0, b, 0, name="l")
    return sim, a, b, link


def cold(sim, *chips):
    evs = []
    for c in chips:
        for binding in c.ports.values():
            ev = binding.fsm.assert_reset(binding.side, "cold")
            ev.add_callback(c._make_status_updater(binding))
            evs.append(ev)
    sim.run_until_event(sim.all_of(evs))


def test_warm_reset_via_register_write_hook():
    """Writing the F0x6C warm-reset bit retrains the chip's links with
    pending values -- the register-side-effect path firmware relies on."""
    sim, a, b, link = make_pair()
    cold(sim, a, b)
    assert link.link_type == "coherent"
    for chip in (a, b):
        chip.link_control(0).force_noncoherent = True
        chip.link_freq(0).width_bits = 16
        chip.link_freq(0).gbit_per_lane = 1.6
    # Both chips request the warm reset through the register.
    from repro.opteron.registers import HtInitControlAccessor

    HtInitControlAccessor(a.regs).request_warm_reset()
    HtInitControlAccessor(b.regs).request_warm_reset()
    sim.run()
    assert link.link_type == "noncoherent"
    assert link.width_bits == 16
    # The self-clearing bit reads back zero.
    assert not HtInitControlAccessor(a.regs).warm_reset_pending


def test_status_updater_reflects_training():
    sim, a, b, link = make_pair()
    cold(sim, a, b)
    assert a.link_control(0).coherent
    assert b.link_control(0).coherent


def test_cold_reset_clears_chip_state():
    sim, a, b, link = make_pair()
    cold(sim, a, b)
    a.node_id_reg().nodeid = 3
    a.mtrr.add(0, 1 << 24, MemoryType.UC)
    a.caches.fill_line(0x40, b"\x01" * 64)
    # A full power cycle: the chip-level cold_reset wipes registers,
    # MTRRs and caches (the FSM-only helper above does not).
    a.cold_reset()
    b.cold_reset()
    sim.run()
    assert a.nodeid == RESET_NODEID
    assert len(a.mtrr.ranges) == 0
    data, _ = a.caches.read_line(0x40)
    assert data is None


def test_double_attach_rejected():
    sim, a, b, link = make_pair()
    c = OpteronChip(sim, "c", memory_bytes=256 * MiB)
    with pytest.raises(ValueError, match="already attached"):
        wire_link(sim, a, 0, c, 0)


def test_port_range_validated():
    sim = Simulator()
    a = OpteronChip(sim, "a", memory_bytes=256 * MiB)
    b = OpteronChip(sim, "b", memory_bytes=256 * MiB)
    with pytest.raises(ValueError, match="out of range"):
        wire_link(sim, a, 4, b, 0)


def test_config_space_roundtrip():
    sim = Simulator()
    chip = OpteronChip(sim, "x", memory_bytes=256 * MiB)
    chip.config_write(1, 0x40, 0xDEAD)
    assert chip.config_read(1, 0x40) == 0xDEAD


def test_interrupt_records_vector_and_smc_flag():
    sim = Simulator()
    chip = OpteronChip(sim, "x", memory_bytes=256 * MiB)
    chip.send_interrupt(vector=0x42, smc=False)
    chip.send_interrupt(vector=0x10, smc=True)
    sim.run()
    assert [(i.vector, i.smc) for i in chip.interrupts] == [
        (0x42, False), (0x10, True)
    ]


def test_link_attached_registry():
    sim, a, b, link = make_pair()
    assert link.attached[LinkSide.A] is a
    assert link.attached[LinkSide.B] is b
