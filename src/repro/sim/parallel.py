"""Process-pool fan-out of independent simulation points.

The paper's evaluation is a family of *independent* sweep points (Figure
6 message sizes, multi-hop bindings, coherence node counts).  Each point
is one fully deterministic :class:`~repro.sim.engine.Simulator` with its
own seed, so points can run in separate worker processes without any
shared virtual clock -- determinism is per point, parallelism is across
points.

Contract (see DESIGN.md "Scale-out execution model"):

* a :class:`SweepPoint` names a **module-level, picklable** function plus
  its arguments; the function builds its own simulator/system from
  scratch and returns a picklable value,
* workers never share simulator state; the merge step combines *results*
  (and optional per-point metrics snapshots), never live objects,
* the serial path (``jobs <= 1``) executes the exact same point
  functions in-process, in submission order, so golden/determinism
  checks can always bypass the pool.

Worker crashes (a killed or segfaulted process) and timeouts surface as
structured :class:`PointResult` failures naming the point key -- not as a
bare ``BrokenProcessPool`` traceback.

Job-count resolution (:func:`resolve_jobs`): an explicit ``--jobs``
value wins; otherwise the ``TCC_PARALLEL`` environment variable;
otherwise 1 (serial).  ``0`` or ``"auto"`` selects ``os.cpu_count()``.

Worker-local shared state: point functions used to re-construct
*everything* per task -- including state identical across points, like a
boot image of the common topology.  ``run_sweep(worker_state=...,
worker_init=...)`` ships one picklable value to each worker **once** (at
pool spin-up, not per task) and runs ``worker_init(state)`` there;
points read it back via :func:`current_worker_state`.  The serial path
installs the same state inline so ``jobs=1`` stays bit-identical.  The
boot-image layer (:mod:`repro.cluster.snapshot`) uses this to seed each
worker's image cache with the parent's pre-booted images, so a sweep
boots each distinct signature once instead of once per point.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SweepPoint",
    "PointPayload",
    "PointResult",
    "SweepReport",
    "SweepError",
    "run_sweep",
    "merge_snapshots",
    "resolve_jobs",
    "usable_cpus",
    "current_worker_state",
]

#: Environment variable consulted by :func:`resolve_jobs`.
JOBS_ENV = "TCC_PARALLEL"

#: Per-process shared state installed by ``run_sweep(worker_state=...)``
#: (in pool workers via the initializer; in the serial path inline).
_WORKER_STATE: Any = None


def current_worker_state() -> Any:
    """The sweep-shared state of this process (None outside a sweep)."""
    return _WORKER_STATE


def _init_worker(state: Any, init: Optional[Callable[[Any], None]]) -> None:
    """Pool-worker initializer: runs once per worker process, not per
    task -- the hoisting point for per-signature setup shared by every
    point this worker will execute."""
    global _WORKER_STATE
    _WORKER_STATE = state
    if init is not None:
        init(state)


class SweepError(RuntimeError):
    """A sweep point failed, crashed, or timed out.

    ``results`` carries every per-point outcome gathered before the
    failure (including the failing ones), so callers can report partial
    progress."""

    def __init__(self, msg: str, results: Optional[List["PointResult"]] = None):
        super().__init__(msg)
        self.results = results or []


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point.

    ``fn`` must be defined at module level (picklable by reference) and
    must build its own simulator -- it receives ``*args, **kwargs`` and
    nothing else.  ``key`` names the point in reports and error messages.
    ``seed`` is bookkeeping only: pass it through ``kwargs`` if the point
    function consumes one (kept separate so reports can group by seed).
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


@dataclass(frozen=True)
class PointPayload:
    """Optional structured return of a point function.

    When a point function returns a ``PointPayload``, ``value`` becomes
    the :attr:`PointResult.value` and ``metrics`` (a
    ``MetricsRegistry.snapshot()`` dict) participates in the sweep-level
    :func:`merge_snapshots`.  Plain return values are passed through
    unchanged with no metrics contribution.
    """

    value: Any
    metrics: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class PointResult:
    """Outcome of one sweep point (success or structured failure)."""

    key: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    worker_pid: int = 0
    wall_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None

    def unwrap(self) -> Any:
        if not self.ok:
            raise SweepError(f"sweep point {self.key!r} failed: {self.error}")
        return self.value


@dataclass
class SweepReport:
    """All point results plus sweep-level accounting.

    ``merged_metrics`` combines the per-point registry snapshots (points
    that returned a :class:`PointPayload` with metrics) and adds the
    runner's own attribution counters under the ``parallel.`` prefix:
    points executed, worker wall-clock, pool wall-clock -- so speedups
    are measurable from the report alone, per worker.
    """

    results: List[PointResult]
    jobs: int
    wall_s: float
    worker_stats: Dict[int, Dict[str, float]]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def values(self) -> List[Any]:
        return [r.unwrap() for r in self.results]

    @property
    def merged_metrics(self) -> Dict[str, Any]:
        merged = merge_snapshots(
            [r.metrics for r in self.results if r.metrics is not None]
        )
        c = merged.setdefault("counters", {})
        c["parallel.points"] = c.get("parallel.points", 0) + len(self.results)
        c["parallel.points_failed"] = c.get("parallel.points_failed", 0) + sum(
            1 for r in self.results if not r.ok
        )
        c["parallel.worker_wall_s"] = round(
            c.get("parallel.worker_wall_s", 0.0)
            + sum(r.wall_s for r in self.results), 6
        )
        c["parallel.pool_wall_s"] = round(
            c.get("parallel.pool_wall_s", 0.0) + self.wall_s, 6
        )
        c["parallel.jobs"] = self.jobs
        c["parallel.workers"] = len(self.worker_stats)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "wall_s": round(self.wall_s, 4),
            "points": len(self.results),
            "failed": [r.key for r in self.results if not r.ok],
            "worker_stats": {
                str(pid): {k: round(v, 4) for k, v in st.items()}
                for pid, st in sorted(self.worker_stats.items())
            },
        }


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container/cgroup or
    taskset-restricted CI runner may only be allowed one of them, in
    which case a serial-vs-pool wall-clock comparison measures pool
    *overhead*, not scale-out (the misleading "0.94x speedup").  Callers
    benchmarking pool speedup should skip the comparison when this
    returns 1 (see ``bench_wallclock.bench_fig6_full_sweep``).
    """
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_jobs(explicit: Optional[Any] = None) -> int:
    """Resolve the worker count: explicit value > TCC_PARALLEL env > 1."""
    raw = explicit if explicit is not None else os.environ.get(JOBS_ENV)
    if raw is None or raw == "":
        return 1
    if isinstance(raw, str) and raw.strip().lower() == "auto":
        return max(os.cpu_count() or 1, 1)
    n = int(raw)
    if n == 0:
        return max(os.cpu_count() or 1, 1)
    if n < 0:
        raise ValueError(f"jobs must be >= 0, got {n}")
    return n


def _execute_point(point: SweepPoint) -> PointResult:
    """Run one point in the current process (worker or serial path)."""
    t0 = time.perf_counter()
    try:
        out = point.fn(*point.args, **point.kwargs)
    except BaseException as exc:  # surfaced structurally, never swallowed
        return PointResult(
            key=point.key,
            ok=False,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            worker_pid=os.getpid(),
            wall_s=time.perf_counter() - t0,
        )
    metrics = None
    if isinstance(out, PointPayload):
        metrics = out.metrics
        out = out.value
    return PointResult(
        key=point.key,
        ok=True,
        value=out,
        worker_pid=os.getpid(),
        wall_s=time.perf_counter() - t0,
        metrics=metrics,
    )


def _worker_stats(results: Sequence[PointResult]) -> Dict[int, Dict[str, float]]:
    stats: Dict[int, Dict[str, float]] = {}
    for r in results:
        st = stats.setdefault(r.worker_pid, {"points": 0, "wall_s": 0.0})
        st["points"] += 1
        st["wall_s"] += r.wall_s
    return stats


def run_sweep(
    points: Sequence[SweepPoint],
    jobs: Optional[Any] = None,
    timeout: Optional[float] = None,
    strict: bool = True,
    worker_state: Any = None,
    worker_init: Optional[Callable[[Any], None]] = None,
) -> SweepReport:
    """Execute ``points``, fanning out across ``jobs`` worker processes.

    Results come back **in submission order** regardless of completion
    order, so parallel and serial sweeps produce identically ordered
    reports.  ``timeout`` bounds the whole sweep (seconds of wall time);
    on expiry the pending points are surfaced by key.  With ``strict``
    (default) any failed point raises :class:`SweepError` after all
    gathered results are attached to the exception.

    ``worker_state`` (picklable) is installed once per worker process
    before any point runs -- readable via :func:`current_worker_state` --
    and ``worker_init(worker_state)`` runs there once (e.g. to seed a
    boot-image cache).  The serial path installs/initializes the same
    state inline, restoring the previous state afterwards.
    """
    points = list(points)
    keys = [p.key for p in points]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep point keys: {dupes}")
    njobs = resolve_jobs(jobs)
    t0 = time.perf_counter()

    if njobs <= 1 or len(points) <= 1:
        global _WORKER_STATE
        prev_state = _WORKER_STATE
        _init_worker(worker_state, worker_init)
        try:
            results = [_execute_point(p) for p in points]
        finally:
            _WORKER_STATE = prev_state
        wall = time.perf_counter() - t0
        report = SweepReport(results, jobs=1, wall_s=wall,
                             worker_stats=_worker_stats(results))
        if strict and not report.ok:
            bad = [r for r in results if not r.ok]
            raise SweepError(
                f"{len(bad)}/{len(results)} sweep points failed: "
                f"{[r.key for r in bad]}; first error:\n{bad[0].error}",
                results,
            )
        return report

    results_by_key: Dict[str, PointResult] = {}
    deadline = None if timeout is None else t0 + timeout
    with ProcessPoolExecutor(max_workers=min(njobs, len(points)),
                             initializer=_init_worker,
                             initargs=(worker_state, worker_init)) as pool:
        fut_to_point = {pool.submit(_execute_point, p): p for p in points}
        pending = set(fut_to_point)
        while pending:
            budget = None if deadline is None else deadline - time.perf_counter()
            if budget is not None and budget <= 0:
                done, still = set(), pending
            else:
                done, still = wait(pending, timeout=budget,
                                   return_when=FIRST_COMPLETED)
            if not done:  # timed out with work outstanding
                stuck = sorted(fut_to_point[f].key for f in still)
                for f in still:
                    f.cancel()
                for f in still:
                    p = fut_to_point[f]
                    results_by_key[p.key] = PointResult(
                        key=p.key, ok=False,
                        error=f"timed out after {timeout}s (sweep deadline)",
                    )
                pool.shutdown(wait=False, cancel_futures=True)
                partial = [results_by_key[k] for k in keys if k in results_by_key]
                raise SweepError(
                    f"sweep timed out after {timeout}s; unfinished points: "
                    f"{stuck}", partial,
                )
            for f in done:
                p = fut_to_point[f]
                try:
                    results_by_key[p.key] = f.result()
                except BaseException as exc:
                    # The worker process died (crash/OOM/kill) -- the pool
                    # raises rather than returning; surface it by key.
                    results_by_key[p.key] = PointResult(
                        key=p.key, ok=False,
                        error=f"worker crashed: {type(exc).__name__}: {exc}",
                    )
            pending -= done

    results = [results_by_key[k] for k in keys]
    wall = time.perf_counter() - t0
    report = SweepReport(results, jobs=njobs, wall_s=wall,
                         worker_stats=_worker_stats(results))
    if strict and not report.ok:
        bad = [r for r in results if not r.ok]
        raise SweepError(
            f"{len(bad)}/{len(results)} sweep points failed: "
            f"{[r.key for r in bad]}; first error:\n{bad[0].error}",
            results,
        )
    return report


# ---------------------------------------------------------------------------
# Metrics snapshot merging
# ---------------------------------------------------------------------------

def _merge_histogram(into: Dict[str, Any], h: Dict[str, Any]) -> Dict[str, Any]:
    if not into or not into.get("count"):
        return dict(h)
    if not h.get("count"):
        return into
    buckets = dict(into.get("buckets", {}))
    for b, n in h.get("buckets", {}).items():
        buckets[b] = buckets.get(b, 0) + n
    count = into["count"] + h["count"]
    total = into["mean"] * into["count"] + h["mean"] * h["count"]
    merged = {
        "count": count,
        "mean": total / count,
        "min": min(into["min"], h["min"]),
        "max": max(into["max"], h["max"]),
        "buckets": buckets,
    }
    # Percentiles cannot be merged exactly from summaries; recompute the
    # same linear-interpolation estimate LogHistogram uses, from buckets.
    for p_name, p in (("p50", 50.0), ("p99", 99.0)):
        target = p / 100.0 * count
        seen = 0
        est = merged["max"]
        for b in sorted(int(k) for k in buckets):
            n = buckets[str(b)] if str(b) in buckets else buckets[b]
            if seen + n >= target:
                lo, hi = float(b), float(2 * b if b else 2)
                frac = (target - seen) / n
                est = max(merged["min"], min(merged["max"], lo + frac * (hi - lo)))
                break
            seen += n
        merged[p_name] = est
    return merged


def merge_snapshots(snapshots: Sequence[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Combine per-point ``MetricsRegistry.snapshot()`` dicts.

    Counters sum; ``gauge_max`` takes the max; histograms merge bucket
    counts (percentiles re-estimated); accumulator averages combine
    weighted by sample count.  Plain ``gauges`` (last-value) are dropped:
    "last" is meaningless across independent simulators.  ``time_ns``
    sums -- it is total simulated virtual time across points.
    """
    merged: Dict[str, Any] = {
        "time_ns": 0.0,
        "counters": {},
        "gauge_max": {},
        "histograms": {},
        "accumulators": {},
    }
    for snap in snapshots:
        if not snap:
            continue
        merged["time_ns"] += snap.get("time_ns", 0.0)
        for k, v in snap.get("counters", {}).items():
            merged["counters"][k] = merged["counters"].get(k, 0) + v
        for k, v in snap.get("gauge_max", {}).items():
            if v > merged["gauge_max"].get(k, float("-inf")):
                merged["gauge_max"][k] = v
        for k, h in snap.get("histograms", {}).items():
            merged["histograms"][k] = _merge_histogram(
                merged["histograms"].get(k, {}), h
            )
        for k, a in snap.get("accumulators", {}).items():
            cur = merged["accumulators"].get(k)
            if cur is None:
                merged["accumulators"][k] = dict(a)
            else:
                n0, n1 = cur.get("samples", 0), a.get("samples", 0)
                if n0 + n1:
                    cur["avg"] = (
                        cur.get("avg", 0.0) * n0 + a.get("avg", 0.0) * n1
                    ) / (n0 + n1)
                cur["samples"] = n0 + n1
    return merged
