"""Middleware on top of the message library: mini-MPI and PGAS."""

from .collectives import (CollectiveTuning, allreduce_crossover_bytes,
                          bcast_crossover_bytes, chunk_bounds,
                          ring_embedding, ring_hop_profile)
from .mpi import ANY_TAG, Communicator, MpiError, REDUCE_OPS, Request
from .pgas import DEFAULT_GAS_BYTES, DEFAULT_GAS_OFFSET, GasError, GasRuntime

__all__ = [
    "Communicator",
    "Request",
    "ANY_TAG",
    "MpiError",
    "REDUCE_OPS",
    "CollectiveTuning",
    "allreduce_crossover_bytes",
    "bcast_crossover_bytes",
    "chunk_bounds",
    "ring_embedding",
    "ring_hop_profile",
    "GasRuntime",
    "GasError",
    "DEFAULT_GAS_OFFSET",
    "DEFAULT_GAS_BYTES",
]
