"""Golden-snapshot comparison with per-key tolerances.

A golden file is JSON of the form::

    {
      "_schema": "tccluster-golden-v1",
      "metrics": { "<dotted.key>": <number>, ... },
      "tolerances": {
        "default_rel": 0.05,
        "keys": { "<dotted.key or prefix*>": {"rel": 0.02} | {"abs": 3} }
      }
    }

``metrics`` is a *flattened* view of a nested snapshot (dict keys joined
with dots).  Comparison walks the golden keys: every golden key must
exist in the actual snapshot and agree within tolerance.  Extra actual
keys are ignored, so adding new instrumentation never breaks existing
goldens; removing or renaming a metric fails loudly.

Tolerance resolution for a key: an exact ``keys`` entry wins, else the
longest matching ``prefix*`` entry, else ``default_rel``.  Integers
compare under the same rule (a relative tolerance of 0 demands equality,
which deterministic counters like packet counts should use).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "GoldenMismatch",
    "flatten",
    "compare_to_golden",
    "assert_matches_golden",
    "load_golden",
    "save_golden",
]

SCHEMA = "tccluster-golden-v1"
Number = Union[int, float]


class GoldenMismatch(AssertionError):
    """Raised when a snapshot deviates from its golden beyond tolerance."""

    def __init__(self, violations: List[str]):
        self.violations = violations
        super().__init__(
            f"{len(violations)} golden metric(s) out of tolerance:\n  "
            + "\n  ".join(violations)
        )


def flatten(tree: Dict[str, Any], prefix: str = "") -> Dict[str, Number]:
    """Flatten nested dicts to dotted keys, keeping only numeric leaves."""
    out: Dict[str, Number] = {}
    for k, v in tree.items():
        key = f"{prefix}.{k}" if prefix else str(k)
        if isinstance(v, dict):
            out.update(flatten(v, key))
        elif isinstance(v, bool):
            out[key] = int(v)
        elif isinstance(v, (int, float)) and math.isfinite(v):
            out[key] = v
    return out


def _tolerance_for(key: str, tolerances: Dict[str, Any]) -> Dict[str, Number]:
    keys = tolerances.get("keys", {})
    if key in keys:
        return keys[key]
    best: Optional[str] = None
    for pat in keys:
        if pat.endswith("*") and key.startswith(pat[:-1]):
            if best is None or len(pat) > len(best):
                best = pat
    if best is not None:
        return keys[best]
    return {"rel": tolerances.get("default_rel", 0.05)}


def _within(actual: Number, expect: Number, tol: Dict[str, Number]) -> bool:
    if "abs" in tol and abs(actual - expect) <= tol["abs"]:
        return True
    if "rel" in tol:
        return abs(actual - expect) <= abs(expect) * tol["rel"]
    return "abs" in tol and False


def compare_to_golden(actual_tree: Dict[str, Any],
                      golden: Dict[str, Any]) -> List[str]:
    """Return a list of human-readable violations (empty == pass)."""
    if golden.get("_schema") != SCHEMA:
        return [f"golden schema {golden.get('_schema')!r} != {SCHEMA!r}"]
    actual = flatten(actual_tree)
    tolerances = golden.get("tolerances", {})
    violations: List[str] = []
    for key, expect in golden.get("metrics", {}).items():
        if key not in actual:
            violations.append(f"{key}: missing from snapshot (golden={expect})")
            continue
        got = actual[key]
        tol = _tolerance_for(key, tolerances)
        if not _within(got, expect, tol):
            spec = ", ".join(f"{k}={v}" for k, v in sorted(tol.items()))
            violations.append(
                f"{key}: got {got:g}, golden {expect:g} (tolerance {spec})"
            )
    return violations


def assert_matches_golden(actual_tree: Dict[str, Any],
                          golden_path: str) -> None:
    """Raise :class:`GoldenMismatch` listing every out-of-tolerance key."""
    violations = compare_to_golden(actual_tree, load_golden(golden_path))
    if violations:
        raise GoldenMismatch(violations)


def load_golden(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_golden(path: str, metrics_tree: Dict[str, Any],
                tolerances: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Flatten ``metrics_tree`` and write a golden file; returns it."""
    doc = {
        "_schema": SCHEMA,
        "metrics": flatten(metrics_tree),
        "tolerances": tolerances or {"default_rel": 0.05},
    }
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
