"""Fault plans: declarative, seedable schedules of injected failures.

A :class:`FaultPlan` is pure data -- nothing here touches a simulator.
Plans are either built explicitly (:meth:`FaultPlan.add`) or drawn from a
seeded RNG (:meth:`FaultPlan.random`), and handed to
:class:`~repro.faults.injector.FaultInjector` to be armed on a cluster's
calendar.  Determinism contract: plan construction uses only the given
seed (never wall-clock entropy), so the same seed + the same cluster
yields the same injected sequence, event for event.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """Ill-formed fault plan (negative time, bad duration...)."""


class FaultKind(enum.Enum):
    #: Link drops, then retrains (warm) after ``duration_ns``.
    LINK_FLAP = "link-flap"
    #: Link dies permanently: retrain refused, routing recomputed around it.
    LINK_KILL = "link-kill"
    #: Every HT link of the node drops at once; the node stops until a
    #: NODE_WARM_RESET rejoins it.
    NODE_CRASH = "node-crash"
    #: Warm-reset rejoin of a (crashed) node through the firmware path.
    NODE_WARM_RESET = "node-warm-reset"
    #: All flow-control credits of a link vanish for ``duration_ns``
    #: (receiver-side stall), then return.
    CREDIT_STALL = "credit-stall"
    #: Link BER jumps to ``magnitude`` for ``duration_ns`` (HT3 retry
    #: storm; retry exhaustion may drop packets / trigger fail-down).
    BER_STORM = "ber-storm"


#: Kinds whose ``target`` indexes ``cluster.tcc_links``.
LINK_KINDS = (FaultKind.LINK_FLAP, FaultKind.LINK_KILL,
              FaultKind.CREDIT_STALL, FaultKind.BER_STORM)
#: Kinds whose ``target`` is a rank.
NODE_KINDS = (FaultKind.NODE_CRASH, FaultKind.NODE_WARM_RESET)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` indexes ``cluster.tcc_links`` for link kinds and the rank
    table for node kinds (the injector wraps it modulo the population, so
    randomly drawn plans fit any cluster).  ``duration_ns`` is the
    transient's length for flap/stall/storm and the crash-to-rejoin gap
    emitted by :meth:`FaultPlan.random`; ``magnitude`` is the storm BER.
    """

    #: Firing time in ns, relative to when the injector arms the plan
    #: (i.e. typically "ns after boot finished").
    at_ns: float
    kind: FaultKind
    target: int = 0
    duration_ns: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise FaultPlanError(f"fault time {self.at_ns} is negative")
        if self.duration_ns < 0:
            raise FaultPlanError(f"duration {self.duration_ns} is negative")
        if not 0.0 <= self.magnitude < 1.0:
            raise FaultPlanError(f"magnitude {self.magnitude} out of [0, 1)")


@dataclass
class FaultPlan:
    """An ordered schedule of faults (empty by default: inject nothing)."""

    events: List[FaultEvent] = field(default_factory=list)
    #: The seed the plan was drawn from (None for hand-built plans);
    #: carried for reporting only.
    seed: int = -1

    def add(self, at_ns: float, kind: FaultKind, target: int = 0,
            duration_ns: float = 0.0, magnitude: float = 0.0) -> "FaultPlan":
        self.events.append(
            FaultEvent(at_ns, kind, target, duration_ns, magnitude)
        )
        return self

    def sorted_events(self) -> List[FaultEvent]:
        """Events in firing order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.at_ns)

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> dict:
        out: dict = {}
        for e in self.events:
            out[e.kind.value] = out.get(e.kind.value, 0) + 1
        return out

    @staticmethod
    def random(
        seed: int,
        horizon_ns: float,
        num_links: int = 1,
        num_ranks: int = 2,
        n_events: int = 4,
        kinds: Sequence[FaultKind] = (FaultKind.LINK_FLAP,
                                      FaultKind.CREDIT_STALL,
                                      FaultKind.BER_STORM),
        flap_ns: Tuple[float, float] = (2_000.0, 20_000.0),
        stall_ns: Tuple[float, float] = (1_000.0, 10_000.0),
        storm_ns: Tuple[float, float] = (5_000.0, 50_000.0),
        crash_gap_ns: Tuple[float, float] = (20_000.0, 80_000.0),
    ) -> "FaultPlan":
        """Draw a deterministic plan from ``seed``.

        Times land in the middle 5..60% of the horizon so recovery has
        room to complete before the workload's own deadline.  A drawn
        ``NODE_CRASH`` automatically emits the matching
        ``NODE_WARM_RESET`` one ``crash_gap_ns`` later, so random plans
        never strand a node.  The default kind set is the transient trio
        (flap / stall / storm); destructive kinds (LINK_KILL,
        NODE_CRASH) must be opted into because they require topology
        redundancy or an explicit rejoin to stay recoverable.
        """
        if horizon_ns <= 0:
            raise FaultPlanError("horizon must be positive")
        if n_events < 0:
            raise FaultPlanError("n_events must be non-negative")
        if not kinds:
            raise FaultPlanError("need at least one fault kind")
        rng = random.Random(seed)
        plan = FaultPlan(seed=seed)
        for _ in range(n_events):
            at = rng.uniform(0.05, 0.60) * horizon_ns
            kind = rng.choice(list(kinds))
            if kind in LINK_KINDS:
                target = rng.randrange(max(num_links, 1))
            else:
                target = rng.randrange(max(num_ranks, 1))
            if kind is FaultKind.LINK_FLAP:
                plan.add(at, kind, target, duration_ns=rng.uniform(*flap_ns))
            elif kind is FaultKind.CREDIT_STALL:
                plan.add(at, kind, target, duration_ns=rng.uniform(*stall_ns))
            elif kind is FaultKind.BER_STORM:
                plan.add(at, kind, target,
                         duration_ns=rng.uniform(*storm_ns),
                         magnitude=10.0 ** rng.uniform(-4.0, -2.0))
            elif kind is FaultKind.NODE_CRASH:
                gap = rng.uniform(*crash_gap_ns)
                plan.add(at, kind, target, duration_ns=gap)
                plan.add(at + gap, FaultKind.NODE_WARM_RESET, target)
            else:  # LINK_KILL / explicit NODE_WARM_RESET
                plan.add(at, kind, target)
        return plan
