"""Tests for sparse memory and the DRAM controller timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opteron.memory import Memory, MemoryController, MemoryError_, PAGE_SIZE
from repro.sim import Simulator
from repro.util.calibration import DEFAULT_TIMING


def test_memory_starts_zeroed():
    mem = Memory(1 << 20)
    assert mem.read(0, 16) == b"\x00" * 16
    assert mem.read((1 << 20) - 4, 4) == b"\x00" * 4


def test_memory_write_read_roundtrip():
    mem = Memory(1 << 20)
    mem.write(0x1234, b"hello world!")
    assert mem.read(0x1234, 12) == b"hello world!"


def test_memory_cross_page_write():
    mem = Memory(1 << 20)
    data = bytes(range(200))
    addr = PAGE_SIZE - 100
    mem.write(addr, data)
    assert mem.read(addr, 200) == data


def test_memory_out_of_range_rejected():
    mem = Memory(1 << 20)
    with pytest.raises(MemoryError_):
        mem.write((1 << 20) - 2, b"1234")
    with pytest.raises(MemoryError_):
        mem.read(-1, 4)


def test_memory_size_must_be_page_multiple():
    with pytest.raises(ValueError):
        Memory(1000)
    with pytest.raises(ValueError):
        Memory(0)


def test_memory_sparse_footprint():
    mem = Memory(1 << 30)  # 1 GiB address space
    assert mem.resident_bytes == 0
    mem.write(0x10_0000, b"x")
    assert mem.resident_bytes == PAGE_SIZE


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 16) - 64),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_memory_matches_reference_model(writes):
    """Property: sparse memory behaves exactly like a flat bytearray."""
    mem = Memory(1 << 16)
    ref = bytearray(1 << 16)
    for addr, data in writes:
        mem.write(addr, data)
        ref[addr : addr + len(data)] = data
    assert mem.read(0, 1 << 16) == bytes(ref)


def test_memory_read_straddling_resident_and_absent_pages():
    """Regression: a read crossing from a resident page into an absent one
    (and vice versa) must see the resident bytes plus zeros -- the unified
    zero-filled-output branch, not a short or shifted result."""
    mem = Memory(1 << 20)
    mem.write(PAGE_SIZE - 8, b"\xAA" * 8)  # page 0 resident, page 1 absent
    assert mem.read(PAGE_SIZE - 8, 16) == b"\xAA" * 8 + b"\x00" * 8
    # Mirror image: absent page 0, resident page 1.
    mem2 = Memory(1 << 20)
    mem2.write(PAGE_SIZE, b"\xBB" * 8)
    assert mem2.read(PAGE_SIZE - 8, 16) == b"\x00" * 8 + b"\xBB" * 8
    # Fully absent middle page between two resident neighbours.
    mem3 = Memory(1 << 20)
    mem3.write(PAGE_SIZE - 4, b"\x11" * 4)
    mem3.write(2 * PAGE_SIZE, b"\x22" * 4)
    got = mem3.read(PAGE_SIZE - 4, PAGE_SIZE + 8)
    assert got == b"\x11" * 4 + b"\x00" * PAGE_SIZE + b"\x22" * 4


def test_write_span_accepts_memoryview_and_counts_one_copy():
    mem = Memory(1 << 20)
    src = bytes(range(256)) * 2
    mem.write_span(0x100, memoryview(src))
    assert mem.read(0x100, len(src)) == src
    assert mem.bytes_copied == len(src)


def test_write_span_straddling_pages_counts_every_byte_once():
    mem = Memory(1 << 20)
    data = bytes(range(200))
    mem.write_span(PAGE_SIZE - 100, data)
    assert mem.read(PAGE_SIZE - 100, 200) == data
    assert mem.bytes_copied == 200


def test_write_span_adopts_whole_absent_page():
    """A span covering an entire absent page becomes that page's backing
    store in one construction (no zero-fill-then-overwrite double cost);
    the result and the copy accounting are identical either way."""
    mem = Memory(1 << 20)
    data = bytes((i * 7) & 0xFF for i in range(2 * PAGE_SIZE))
    mem.write_span(0, memoryview(data))  # pages 0 and 1 both absent
    assert mem.read(0, len(data)) == data
    assert mem.bytes_copied == len(data)
    assert mem.resident_bytes == 2 * PAGE_SIZE


def test_memctrl_write_timing():
    sim = Simulator()
    mem = Memory(1 << 20)
    mc = MemoryController(sim, mem)
    ev = mc.write(0x100, b"\xAA" * 64)
    sim.run()
    assert ev.triggered
    # fixed latency + occupancy 64/12.8
    assert sim.now == pytest.approx(DEFAULT_TIMING.dram_write_ns + 5.0)
    assert mem.read(0x100, 64) == b"\xAA" * 64


def test_memctrl_read_uc_slower_than_cached_fill_is_marked():
    sim = Simulator()
    mc = MemoryController(sim, Memory(1 << 20))
    mc.memory.write(0x40, b"\x07" * 8)
    ev = mc.read(0x40, 8, uncached=True)
    data = sim.run_until_event(ev)
    assert data == b"\x07" * 8
    t_uc = sim.now
    ev2 = mc.read(0x40, 8, uncached=False)
    sim.run_until_event(ev2)
    t_wb = sim.now - t_uc
    # The WB miss fill is the *slower* DRAM op; UC is a targeted read.
    assert t_wb > t_uc


def test_memctrl_port_pipelines_latency():
    """The port serializes only the data transfer; access latency is
    pipelined, so back-to-back writes complete one occupancy apart."""
    sim = Simulator()
    mc = MemoryController(sim, Memory(1 << 20))
    done = []
    ev1 = mc.write(0x0, b"\x01" * 64)
    ev2 = mc.write(0x100, b"\x02" * 64)
    ev1.add_callback(lambda e: done.append(("w1", sim.now)))
    ev2.add_callback(lambda e: done.append(("w2", sim.now)))
    sim.run()
    t1 = dict(done)["w1"]
    t2 = dict(done)["w2"]
    occupancy = 64 / 12.8
    assert t1 == pytest.approx(DEFAULT_TIMING.dram_write_ns + occupancy)
    assert t2 - t1 == pytest.approx(occupancy)


def test_memctrl_counters():
    sim = Simulator()
    mc = MemoryController(sim, Memory(1 << 20))
    mc.write(0, b"\x00" * 32)
    mc.read(0, 16)
    sim.run()
    assert mc.writes == 1 and mc.bytes_written == 32
    assert mc.reads == 1 and mc.bytes_read == 16
