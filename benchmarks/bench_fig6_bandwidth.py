"""Figure 6 -- TCCluster bandwidth vs message size, both ordering modes.

Paper anchors (Section VI + abstract):
* weakly ordered sustains ~2700 MB/s; ~2500 MB/s already at 64 B,
* a buffering peak of ~5300 MB/s observed at 256 KB,
* strictly ordered (sfence per cache line) limited to ~2000 MB/s.
"""

import pytest

from _common import write_result
from repro.bench import (
    make_prototype,
    run_bandwidth_sweep,
    series_plot,
    table,
)
from repro.util.units import KiB, MiB, fmt_bytes

SIZES = tuple(64 << i for i in range(0, 17))  # 64 B .. 4 MiB


@pytest.fixture(scope="module")
def fig6_points():
    # TCC_PARALLEL=N (or "auto") fans the 34 points out across N worker
    # processes; per-point results are identical to the serial sweep
    # (fresh booted prototypes reach the same drained quiescent state the
    # serial sweep restores between points).
    from repro.sim.parallel import resolve_jobs

    jobs = resolve_jobs()
    if jobs > 1:
        from repro.bench.sweep_points import run_bandwidth_sweep_parallel

        return run_bandwidth_sweep_parallel(sizes=SIZES, jobs=jobs)
    return run_bandwidth_sweep(sizes=SIZES)


def test_fig6_bandwidth(benchmark, fig6_points):
    points = fig6_points
    weak = {p.size: p.mbps for p in points if p.mode == "weak"}
    strict = {p.size: p.mbps for p in points if p.mode == "strict"}

    # --- shape assertions against the paper's anchors -------------------
    assert weak[64] == pytest.approx(2500, rel=0.10), "64 B point (abstract: 2500 MB/s)"
    assert max(weak.values()) == pytest.approx(5300, rel=0.05), "peak ~5300 MB/s"
    peak_size = max(weak, key=weak.get)
    assert 4 * KiB <= peak_size <= 256 * KiB, "peak in the buffered regime"
    assert weak[256 * KiB] == pytest.approx(5300, rel=0.05), "256 KB point"
    assert weak[4 * MiB] == pytest.approx(2700, rel=0.06), "sustained ~2700 MB/s"
    assert weak[4 * MiB] > weak[1 * MiB] * 0.8  # declining toward sustained
    assert strict[4 * MiB] == pytest.approx(2000, rel=0.03), "strict plateau 2000"
    assert all(strict[s] <= weak[s] * 1.01 for s in SIZES), "strict never wins"
    # strictly ordered is monotone toward its plateau
    svals = [strict[s] for s in SIZES]
    assert all(b >= a - 1 for a, b in zip(svals, svals[1:]))

    rows = [
        (fmt_bytes(s), round(weak[s]), round(strict[s]))
        for s in SIZES
    ]
    txt = table(["size", "weak MB/s", "strict MB/s"], rows,
                title="Figure 6: TCCluster bandwidth (reproduced)")
    txt += "\n\n" + series_plot([fmt_bytes(s) for s in SIZES],
                                [weak[s] for s in SIZES],
                                label="weakly ordered (MB/s)")
    write_result("fig6_bandwidth", txt)

    # Timed kernel: one 64 KiB weak measurement on a booted system.
    sys_ = make_prototype()

    def kernel():
        return run_bandwidth_sweep(sizes=(64 * KiB,), modes=("weak",),
                                   system=sys_)

    result = benchmark(kernel)
    assert result[0].mbps > 4000
