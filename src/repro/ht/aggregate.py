"""HT link aggregation: striping one logical link over two physical ones.

Paper Section V: "The mainboard provides two HyperTransport links between
processor Node0 and processors Node1 which can be aggregated to a dual
link."

:class:`AggregatedLink` presents the same interface as
:class:`~repro.ht.link.Link` (send / receive / stats / lifecycle) while
striping packets round-robin across its member links and **resequencing**
at the receiver: HT guarantees in-order delivery per link, but two
striped lanes can interleave, so each packet carries a per-direction
sequence tag and the receive side releases packets in tag order.

Aggregation roughly doubles streaming bandwidth; small-packet latency is
unchanged (a single packet still crosses one physical link).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..sim import Event, Simulator, Store
from .link import Link, LinkSide, LinkState
from .packet import Packet

__all__ = ["AggregatedLink"]


class _Resequencer:
    """Releases packets in stripe-tag order for one direction."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.out: Store = Store(sim, name=f"{name}.out")
        self._next = 0
        self._stash: Dict[int, Packet] = {}

    def push(self, tag: int, pkt: Packet) -> None:
        self._stash[tag] = pkt
        while self._next in self._stash:
            self.out.try_put(self._stash.pop(self._next))
            self._next += 1


class AggregatedLink:
    """Two (or more) member links behaving as one ordered link."""

    def __init__(self, sim: Simulator, members: List[Link], name: str = "agg"):
        if len(members) < 2:
            raise ValueError("aggregation needs at least two member links")
        self.sim = sim
        self.members = list(members)
        self.name = name
        self._tx_tag = {LinkSide.A: itertools.count(), LinkSide.B: itertools.count()}
        self._rr = {LinkSide.A: 0, LinkSide.B: 0}
        self._reseq = {
            LinkSide.A: _Resequencer(sim, f"{name}.rxA"),
            LinkSide.B: _Resequencer(sim, f"{name}.rxB"),
        }
        for i, m in enumerate(self.members):
            sim.process(self._pump(m, LinkSide.A), name=f"{name}.m{i}.pumpA")
            sim.process(self._pump(m, LinkSide.B), name=f"{name}.m{i}.pumpB")

    # -- Link-compatible surface ------------------------------------------
    @property
    def state(self) -> str:
        if all(m.state == LinkState.ACTIVE for m in self.members):
            return LinkState.ACTIVE
        return LinkState.DOWN

    @property
    def link_type(self) -> Optional[str]:
        types = {m.link_type for m in self.members}
        return types.pop() if len(types) == 1 else None

    @property
    def bytes_per_ns(self) -> float:
        return sum(m.bytes_per_ns for m in self.members)

    def activate(self, link_type: str) -> None:
        for m in self.members:
            m.activate(link_type)

    def bring_down(self) -> None:
        for m in self.members:
            m.bring_down()

    def send(self, side: str, pkt: Packet) -> Event:
        """Stripe: tag the packet, pick the next member round-robin.

        Payloads are never touched here -- a zero-copy memoryview span on
        ``pkt.data`` rides the stripe and the resequencer untouched (only
        the ``_agg_tag`` side-channel is written)."""
        tag = next(self._tx_tag[side])
        pkt._agg_tag = tag  # side-channel attribute; not on the wire model
        idx = self._rr[side]
        self._rr[side] = (idx + 1) % len(self.members)
        return self.members[idx].send(side, pkt)

    def try_send(self, side: str, pkt: Packet) -> bool:
        tag = next(self._tx_tag[side])
        pkt._agg_tag = tag
        idx = self._rr[side]
        ok = self.members[idx].try_send(side, pkt)
        if ok:
            self._rr[side] = (idx + 1) % len(self.members)
        return ok

    def receive(self, side: str) -> Event:
        return self._reseq[side].out.get()

    def try_receive(self, side: str):
        return self._reseq[side].out.try_get()

    def pending_rx(self, side: str) -> int:
        return len(self._reseq[side].out)

    def stats(self, side: str):
        """Aggregate transmit stats (summed over members, every field)."""
        from .link import LinkStats

        total = LinkStats()
        for m in self.members:
            s = m.stats(side)
            total.packets += s.packets
            total.payload_bytes += s.payload_bytes
            total.wire_bytes += s.wire_bytes
            total.retry_wire_bytes += s.retry_wire_bytes
            total.retries += s.retries
            total.drops += s.drops
            total.busy_ns += s.busy_ns
            total.credit_stall_ns += s.credit_stall_ns
            total.bursts += s.bursts
        return total

    # -- internals -----------------------------------------------------------
    def _pump(self, member: Link, rx_side: str):
        """Move arrivals from one member into the resequencer."""
        reseq = self._reseq[rx_side]
        while True:
            pkt = yield member.receive(rx_side)
            tag = getattr(pkt, "_agg_tag", None)
            if tag is None:
                # Non-striped traffic (e.g. sent directly on a member):
                # release immediately, bypassing resequencing.
                reseq.out.try_put(pkt)
                continue
            reseq.push(tag, pkt)
