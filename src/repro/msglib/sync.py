"""Synchronization primitives built on remote stores.

Paper Section IV.A: "global synchronization messages implemented through
remote stores are used to enforce strict sequential consistency.  They can
be realized through API managed software barriers", and Section VI: "The
message library will offer support for synchronization primitives using
the Sfence machine instruction."

:class:`ClusterBarrier` is a dissemination barrier: in round k every rank
sends a token to rank (me + 2^k) mod n and waits for the token from
(me - 2^k) mod n -- log2(n) rounds of small eager messages, each finalized
with an sfence.
"""

from __future__ import annotations

import struct
from typing import Dict

from .endpoint import MessageError
from .library import MessageLibrary

__all__ = ["ClusterBarrier"]

_TOKEN = struct.Struct("<II")  # generation, round


class ClusterBarrier:
    """Dissemination barrier over message-library endpoints."""

    def __init__(self, lib: MessageLibrary):
        self.lib = lib
        self.n = lib.nranks
        self.generation = 0
        self._rounds = max(1, (self.n - 1).bit_length())

    def wait(self):
        """Generator: returns when every rank has entered the barrier."""
        self.generation += 1
        gen = self.generation
        me, n = self.lib.rank, self.n
        if n == 1:
            return gen
        dist = 1
        for rnd in range(self._rounds):
            peer_out = (me + dist) % n
            peer_in = (me - dist) % n
            ep_out = self.lib.connect(peer_out)
            ep_in = self.lib.connect(peer_in)
            yield from ep_out.send(_TOKEN.pack(gen, rnd))
            yield from ep_out.flush()  # sfence: the token must leave now
            data = yield from ep_in.recv()
            got_gen, got_rnd = _TOKEN.unpack(data[:8])
            if (got_gen, got_rnd) != (gen, rnd):
                raise MessageError(
                    f"barrier token mismatch: got gen {got_gen} round "
                    f"{got_rnd}, expected {gen}/{rnd}"
                )
            dist <<= 1
        return gen
