"""Event tracing and statistics collection.

Hardware models emit trace records (packet injected, link busy, buffer
occupancy...) through a :class:`Tracer`.  Tracing is off by default and has
near-zero cost when disabled, so the bandwidth sweeps stay fast; tests and
debugging enable it to assert on ordering and occupancy invariants.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "Counter", "OnlineStats", "IntervalAccumulator"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: what happened, where, when."""

    time: float
    component: str
    event: str
    info: Any = None


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    ``Tracer(enabled=False)`` is a null sink -- ``emit`` returns immediately.
    """

    def __init__(self, enabled: bool = True, keep: Optional[int] = None):
        self.enabled = enabled
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._filters: List[Callable[[TraceRecord], bool]] = []

    def emit(self, time: float, component: str, event: str, info: Any = None) -> None:
        if not self.enabled:
            return
        rec = TraceRecord(time, component, event, info)
        for f in self._filters:
            if not f(rec):
                return
        self.records.append(rec)
        if self.keep is not None and len(self.records) > self.keep:
            del self.records[: len(self.records) - self.keep]

    def add_filter(self, fn: Callable[[TraceRecord], bool]) -> None:
        """Keep only records for which ``fn(record)`` is true."""
        self._filters.append(fn)

    def clear(self) -> None:
        self.records.clear()

    def by_event(self, event: str) -> List[TraceRecord]:
        return [r for r in self.records if r.event == event]

    def by_component(self, component: str) -> List[TraceRecord]:
        return [r for r in self.records if r.component == component]

    def counts(self) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = defaultdict(int)
        for r in self.records:
            out[(r.component, r.event)] += 1
        return dict(out)

    def __len__(self) -> int:
        return len(self.records)


NULL_TRACER = Tracer(enabled=False)


class Counter:
    """A named bag of integer counters (packets sent, probes issued...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = defaultdict(int)

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __getitem__(self, name: str) -> int:
        return self.get(name)


class OnlineStats:
    """Streaming mean/min/max/variance (Welford) for latency samples."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> None:
        self.n += 1
        d = x - self._mean
        self._mean += d / self.n
        self._m2 += d * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return self.variance ** 0.5

    def __repr__(self) -> str:  # pragma: no cover
        return f"<OnlineStats n={self.n} mean={self.mean:.3f}>"


@dataclass
class IntervalAccumulator:
    """Integrates a piecewise-constant signal over time (e.g. queue depth),
    yielding its time-weighted average -- the standard utilization metric."""

    last_time: float = 0.0
    last_value: float = 0.0
    integral: float = 0.0
    started: bool = False
    samples: int = field(default=0)

    def update(self, time: float, value: float) -> None:
        if self.started:
            if time < self.last_time:
                raise ValueError("time went backwards in IntervalAccumulator")
            self.integral += self.last_value * (time - self.last_time)
        self.last_time = time
        self.last_value = value
        self.started = True
        self.samples += 1

    def average(self, now: float) -> float:
        if not self.started or now <= 0:
            return 0.0
        total = self.integral + self.last_value * (now - self.last_time)
        return total / now
