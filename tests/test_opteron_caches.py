"""Tests for the cache hierarchy, especially the no-snoop staleness."""

from repro.opteron.caches import CacheHierarchy, CacheLevel
from repro.util.units import CACHELINE


def test_miss_then_hit():
    c = CacheHierarchy()
    line = 0x1000
    data, _ = c.read_line(line)
    assert data is None
    c.fill_line(line, b"\xAB" * CACHELINE)
    data, latency = c.read_line(line)
    assert data == b"\xAB" * CACHELINE
    assert latency > 0


def test_l1_hit_faster_than_l3_only_hit():
    c = CacheHierarchy()
    c.fill_line(0x40, b"\x01" * CACHELINE)
    _, lat_l1 = c.read_line(0x40)
    # Evict from L1/L2 only: fill L1+L2 beyond capacity with other lines.
    for i in range(1, (64 << 10) // CACHELINE + (512 << 10) // CACHELINE + 8):
        c.l1.fill(0x40 + i * CACHELINE, b"\x00" * CACHELINE)
        c.l2.fill(0x40 + i * CACHELINE, b"\x00" * CACHELINE)
    assert 0x40 not in c.l1 and 0x40 not in c.l2
    _, lat_l3 = c.read_line(0x40)
    assert lat_l3 > lat_l1


def test_outer_hit_promotes_to_l1():
    c = CacheHierarchy()
    c.l3.fill(0x80, b"\x07" * CACHELINE)
    c.read_line(0x80)
    assert 0x80 in c.l1


def test_write_updates_present_copies():
    c = CacheHierarchy()
    c.fill_line(0x100, b"\x00" * CACHELINE)
    assert c.write_line_if_present(0x100, 8, b"\xFF" * 8)
    data, _ = c.read_line(0x100)
    assert data[8:16] == b"\xFF" * 8
    assert data[:8] == b"\x00" * 8


def test_write_to_absent_line_reports_miss():
    c = CacheHierarchy()
    assert not c.write_line_if_present(0x200, 0, b"\x01" * 8)


def test_invalidate_removes_all_levels():
    c = CacheHierarchy()
    c.fill_line(0x300, b"\x11" * CACHELINE)
    assert c.invalidate_line(0x300)
    data, _ = c.read_line(0x300)
    assert data is None
    assert not c.invalidate_line(0x300)


def test_staleness_no_snoop_semantics():
    """Core behaviour for TCCluster: a fill is a *copy*; later DRAM changes
    (remote posted writes) do not appear until the line is invalidated.
    This is why receive rings must be mapped UC."""
    c = CacheHierarchy()
    dram = bytearray(b"\x00" * CACHELINE)
    c.fill_line(0x400, bytes(dram))
    dram[:8] = b"\xEE" * 8  # remote TCC write lands in DRAM only
    cached, _ = c.read_line(0x400)
    assert cached[:8] == b"\x00" * 8  # stale!
    c.invalidate_line(0x400)
    refetched, _ = c.read_line(0x400)
    assert refetched is None  # must now go to DRAM and would see \xEE


def test_lru_eviction_in_level():
    lvl = CacheLevel("t", 2 * CACHELINE, 1.0)
    lvl.fill(0x0, b"\x00" * CACHELINE)
    lvl.fill(0x40, b"\x01" * CACHELINE)
    lvl.lookup(0x0)  # touch: 0x40 becomes LRU
    evicted = lvl.fill(0x80, b"\x02" * CACHELINE)
    assert evicted is not None and evicted[0] == 0x40
    assert 0x0 in lvl and 0x80 in lvl


def test_hit_miss_counters():
    c = CacheHierarchy()
    c.read_line(0x0)
    c.fill_line(0x0, b"\x00" * CACHELINE)
    c.read_line(0x0)
    assert c.l1.misses == 1
    assert c.l1.hits == 1
