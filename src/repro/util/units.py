"""Unit conventions and conversion helpers.

Conventions used across the library:

* **time** is in *nanoseconds* (float),
* **sizes** are in *bytes* (int),
* **bandwidth** is reported in *MB/s* where 1 MB = 1e6 bytes, matching the
  units in the paper's Figures 6/7 and its Infiniband comparison,
* link signalling rates are given in *Gbit/s per lane* as in the HT spec.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "S",
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "CACHELINE",
    "ns_to_us",
    "us_to_ns",
    "bytes_per_ns_to_mbps",
    "mbps_to_bytes_per_ns",
    "gbit_per_s_to_bytes_per_ns",
    "bandwidth_mbps",
    "fmt_bytes",
    "fmt_time_ns",
]

# Time units expressed in nanoseconds.
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0

# Binary sizes.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal sizes (bandwidth denominators, per the paper's MB/s).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

#: x86 cache-line size; also the HT max dword-write payload the paper uses.
CACHELINE = 64


def ns_to_us(t_ns: float) -> float:
    return t_ns / US


def us_to_ns(t_us: float) -> float:
    return t_us * US


def bytes_per_ns_to_mbps(rate: float) -> float:
    """bytes/ns -> MB/s (decimal MB).  1 byte/ns == 1000 MB/s."""
    return rate * 1000.0


def mbps_to_bytes_per_ns(mbps: float) -> float:
    return mbps / 1000.0


def gbit_per_s_to_bytes_per_ns(gbps: float) -> float:
    """Gbit/s -> bytes/ns.  1 Gbit/s == 0.125 bytes/ns."""
    return gbps / 8.0


def bandwidth_mbps(nbytes: int, elapsed_ns: float) -> float:
    """Achieved bandwidth in MB/s for ``nbytes`` over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return bytes_per_ns_to_mbps(nbytes / elapsed_ns)


def fmt_bytes(n: int) -> str:
    """Human-readable size: 64B, 4K, 256K, 1M ... (binary steps)."""
    if n < KiB:
        return f"{n}B"
    if n < MiB:
        v = n / KiB
        return f"{v:g}K"
    if n < GiB:
        v = n / MiB
        return f"{v:g}M"
    return f"{n / GiB:g}G"


def fmt_time_ns(t: float) -> str:
    """Human-readable time from nanoseconds."""
    if t < US:
        return f"{t:.0f} ns"
    if t < MS:
        return f"{t / US:.2f} us"
    if t < S:
        return f"{t / MS:.2f} ms"
    return f"{t / S:.3f} s"
