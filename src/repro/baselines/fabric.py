"""A multi-node NIC fabric + Communicator adapter.

Lets the mini-MPI layer (:class:`repro.middleware.mpi.Communicator`) run
unchanged over a NIC-based cluster, so application kernels can be timed
on TCCluster and on Infiniband/Ethernet with identical code -- the
apples-to-apples comparison the paper argues by microbenchmark.

The fabric is a full mesh of point-to-point :class:`NicLink` instances
(an idealized non-blocking switch: no shared-switch contention, which
only *favours* the NIC baseline).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim import Simulator
from .nic import NicEndpoint, NicLink, NicModelParams

__all__ = ["NicFabric", "NicCommProvider"]


class _PairEndpoint:
    """Communicator-compatible wrapper around one NicEndpoint."""

    def __init__(self, ep: NicEndpoint):
        self._ep = ep

    def send(self, data: bytes, mode: str = "weak"):
        yield from self._ep.send(data)

    def recv(self):
        data = yield from self._ep.recv()
        return data

    def flush(self):
        """NICs complete sends at the completion queue; nothing to drain."""
        return
        yield  # pragma: no cover - make this a generator


class NicFabric:
    """All-to-all NIC interconnect between ``nranks`` hosts."""

    def __init__(self, sim: Simulator, nranks: int, params: NicModelParams):
        if nranks < 2:
            raise ValueError("a fabric needs at least two hosts")
        self.sim = sim
        self.nranks = nranks
        self.params = params
        self._links: Dict[Tuple[int, int], NicLink] = {}
        for i in range(nranks):
            for j in range(i + 1, nranks):
                self._links[(i, j)] = NicLink(
                    sim, params, name=f"{params.name}-{i}-{j}"
                )

    def endpoint(self, me: int, peer: int) -> _PairEndpoint:
        if me == peer:
            raise ValueError("no self links")
        key = (min(me, peer), max(me, peer))
        side = 0 if me == key[0] else 1
        return _PairEndpoint(self._links[key].endpoint(side))

    def comm_provider(self, rank: int) -> "NicCommProvider":
        return NicCommProvider(self, rank)


class NicCommProvider:
    """Duck-type of MessageLibrary as the Communicator's transport."""

    def __init__(self, fabric: NicFabric, rank: int):
        self.fabric = fabric
        self.sim = fabric.sim
        self.rank = rank
        self.nranks = fabric.nranks
        self._eps: Dict[int, _PairEndpoint] = {}

    def connect(self, peer: int) -> _PairEndpoint:
        ep = self._eps.get(peer)
        if ep is None:
            ep = self._eps[peer] = self.fabric.endpoint(self.rank, peer)
        return ep
