"""HyperTransport substrate: packets, links, flow control, link init."""

from .aggregate import AggregatedLink
from .link import Link, LinkDownError, LinkSide, LinkState, LinkStats
from .linkinit import (
    BOOT_GBIT_PER_LANE,
    BOOT_WIDTH_BITS,
    EndpointPersona,
    LinkInitFSM,
    LinkTrainingError,
)
from .packet import (
    ADDR_EXTENSION_THRESHOLD,
    Command,
    Packet,
    PacketError,
    VirtualChannel,
    make_broadcast,
    make_nonposted_write,
    make_posted_write,
    make_read,
    make_read_response,
    make_target_done,
)
from .tags import (
    NUM_TAGS,
    ResponseMatchingTable,
    TagExhaustedError,
    UnroutableResponseError,
)

__all__ = [
    "Link",
    "AggregatedLink",
    "LinkSide",
    "LinkState",
    "LinkStats",
    "LinkDownError",
    "LinkInitFSM",
    "EndpointPersona",
    "LinkTrainingError",
    "BOOT_WIDTH_BITS",
    "BOOT_GBIT_PER_LANE",
    "Command",
    "VirtualChannel",
    "Packet",
    "PacketError",
    "make_posted_write",
    "make_nonposted_write",
    "make_read",
    "make_read_response",
    "make_target_done",
    "make_broadcast",
    "ADDR_EXTENSION_THRESHOLD",
    "ResponseMatchingTable",
    "TagExhaustedError",
    "UnroutableResponseError",
    "NUM_TAGS",
]
