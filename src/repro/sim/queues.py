"""Blocking queues and resources for simulation processes.

These primitives model the hardware FIFOs that dominate interconnect
behaviour: bounded buffers with back-pressure (:class:`Store`), counting
credits (:class:`CreditPool`, the HT flow-control abstraction) and mutual
exclusion (:class:`Resource`, used e.g. for the single outgoing link port of
a northbridge).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Store", "Resource", "CreditPool", "Gate", "Barrier", "Doorbell"]


class Store:
    """A bounded FIFO with blocking put/get, FCFS on both sides.

    ``capacity=None`` means unbounded (an ideal queue); hardware models
    always pass a finite capacity so back-pressure propagates.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        # Capacity slots held by items popped *early* via get_deferred
        # (the link burst fast path): virtual release times, ascending.
        # Until a slot's time passes it still counts as occupied, so the
        # early drain is invisible to (blocked or future) putters.
        self._phantom: Deque[float] = deque()
        self._phantom_wake_scheduled = False
        # Event names are precomputed: put/get run once per packet per hop
        # and per-call f-strings show up in profiles.
        self._put_name = f"{name}.put"
        self._get_name = f"{name}.get"

    def __len__(self) -> int:
        return len(self._items)

    def _live_phantoms(self) -> int:
        """Prune expired deferred-release slots; return those still held."""
        ph = self._phantom
        now = self.sim._now
        while ph and ph[0] <= now:
            ph.popleft()
        return len(ph)

    @property
    def is_full(self) -> bool:
        if self.capacity is None:
            return False
        n = len(self._items)
        if self._phantom:
            n += self._live_phantoms()
        return n >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        ev = Event(self.sim, name=self._put_name)
        cap = self.capacity
        if not self._putters and (
            cap is None
            or len(self._items)
            + (self._live_phantoms() if self._phantom else 0)
            < cap
        ):
            self._items.append(item)
            ev.succeed()
            if self._getters:
                self._wake_getter()
        elif self._phantom and not self._putters:
            # Full only because of deferred-release slots (a burst window
            # in progress).  The acceptance time is already determined --
            # the head slot frees at ``_phantom[0]`` -- and the only
            # getter of a phantom-bearing store is the pump sleeping
            # through that window, so appending the item *now* changes
            # neither FIFO order nor occupancy (slot consumed, item
            # added).  Trigger the put event Timeout-style: its dispatch
            # entry IS the putter's wake, at the exact virtual time the
            # per-packet pump would have accepted the item.
            release = self._phantom.popleft()
            self._items.append(item)
            ev._triggered = True
            ev._ok = True
            ev._scheduled = True
            self.sim._schedule_event(ev, release - self.sim._now)
        else:
            self._putters.append((ev, item))
            if self._phantom:
                self._schedule_phantom_wake()
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        cap = self.capacity
        if self._putters or (
            cap is not None
            and len(self._items)
            + (self._live_phantoms() if self._phantom else 0)
            >= cap
        ):
            return False
        self._items.append(item)
        if self._getters:
            self._wake_getter()
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim, name=self._get_name)
        if self._items:
            ev.succeed(self._items.popleft())
            if self._putters:
                self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        if self._putters:
            self._admit_putter()
        return True, item

    def put_inline(self, item: Any) -> None:
        """Put from a *bare calendar callback* as its final action.

        A parked getter is resumed synchronously instead of via a
        zero-delay dispatch entry -- the caller's calendar entry IS the
        dispatch (a seq shift within the timestamp, not a timing
        change).  Only valid on unbounded stores (the link rx ring),
        where capacity back-pressure cannot apply.
        """
        assert self.capacity is None, "put_inline requires an unbounded store"
        if self._getters:
            self._getters.popleft()._succeed_inline(item)
        else:
            self._items.append(item)

    def get_deferred(self, release_time: float) -> Any:
        """Pop the head item now but keep its capacity slot occupied until
        ``release_time`` (virtual).

        The link burst fast path drains several queued packets in one
        step; holding each slot until the moment the per-packet pump
        would have popped that packet keeps the early drain invisible to
        back-pressured senders (their ``put`` is accepted at the exact
        same virtual time either way).  Returns ``None`` if empty.
        """
        if not self._items:
            return None
        item = self._items.popleft()
        self._phantom.append(release_time)
        if self._putters:
            self._schedule_phantom_wake()
        return item

    def _schedule_phantom_wake(self) -> None:
        if self._phantom_wake_scheduled or not self._phantom:
            return
        self._phantom_wake_scheduled = True
        delay = self._phantom[0] - self.sim._now
        self.sim.schedule(delay if delay > 0.0 else 0.0, self._phantom_wake)

    def _phantom_wake(self) -> None:
        self._phantom_wake_scheduled = False
        if self._putters:
            self._admit_putter()
            if self._putters and self._phantom:
                self._schedule_phantom_wake()

    def unget(self, item: Any) -> None:
        """Return ``item`` to the *head* of the queue (a link-level NAK).

        The inverse of :meth:`get`/:meth:`get_deferred` for a consumer
        that took an item but could not complete it: the item goes back
        in front of everything queued behind it, so FIFO order is
        preserved on retransmit.  If the item still holds a deferred
        capacity slot (``get_deferred`` with a future release time), the
        newest such slot is dropped -- the item itself re-occupies the
        queue, and double-counting the slot would understate capacity
        forever.  The store may transiently exceed ``capacity`` (the
        consumer's pop already admitted a blocked putter); that models
        the HT retry buffer holding the NAK'd packet and only delays
        future puts.
        """
        self._items.appendleft(item)
        ph = self._phantom
        if ph and ph[-1] > self.sim._now:
            ph.pop()

    def peek(self) -> Any:
        """Look at the head item without removing it (raises if empty)."""
        if not self._items:
            raise SimulationError(f"peek on empty store {self.name!r}")
        return self._items[0]

    def _wake_getter(self) -> None:
        while self._getters and self._items:
            ev = self._getters.popleft()
            ev.succeed(self._items.popleft())
            self._admit_putter()

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()
            self._wake_getter()


class Resource:
    """A counting semaphore with FCFS acquisition.

    Typical use::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self._acquire_name = f"{name}.acquire"

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        ev = Event(self.sim, name=self._acquire_name)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns False if it would have waited."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def locked_by_anyone(self) -> bool:
        return self._in_use >= self.capacity


class CreditPool:
    """Counting credits with blocking take -- the HT flow-control primitive.

    The receiver of an HT link grants N buffer credits per virtual channel;
    the transmitter must take a credit before sending a packet and the
    receiver returns it when the buffer frees.  Modeled as a counter that
    never exceeds ``initial``.
    """

    def __init__(self, sim: Simulator, initial: int, name: str = ""):
        if initial < 0:
            raise ValueError(f"initial credits must be >= 0, got {initial}")
        self.sim = sim
        self.name = name
        self.initial = initial
        self._credits = initial
        self._waiters: Deque[tuple] = deque()  # (event, amount)
        self._take_name = f"{name}.take"

    @property
    def credits(self) -> int:
        return self._credits

    def take(self, amount: int = 1) -> Event:
        """Event fires once ``amount`` credits have been obtained."""
        if amount <= 0:
            raise ValueError(f"credit amount must be positive, got {amount}")
        if amount > self.initial:
            raise SimulationError(
                f"{self.name!r}: requesting {amount} credits but pool "
                f"maximum is {self.initial} (would deadlock)"
            )
        ev = Event(self.sim, name=self._take_name)
        if self._credits >= amount and not self._waiters:
            self._credits -= amount
            ev.succeed()
        else:
            self._waiters.append((ev, amount))
        return ev

    def try_take(self, amount: int = 1) -> bool:
        if self._waiters or self._credits < amount:
            return False
        self._credits -= amount
        return True

    def give(self, amount: int = 1) -> None:
        """Return credits (receiver freed buffer space)."""
        if amount <= 0:
            raise ValueError(f"credit amount must be positive, got {amount}")
        self._credits += amount
        if self._credits > self.initial:
            raise SimulationError(
                f"{self.name!r}: credit overflow ({self._credits} > {self.initial})"
            )
        while self._waiters and self._credits >= self._waiters[0][1]:
            ev, amt = self._waiters.popleft()
            self._credits -= amt
            ev.succeed()


class Gate:
    """A level-triggered condition: processes wait until the gate is open.

    Unlike :class:`repro.sim.engine.Event` a gate can open and close
    repeatedly; used e.g. for 'warm reset asserted' and barrier releases.
    """

    def __init__(self, sim: Simulator, open_: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._open = open_
        self._waiters: List[Event] = []
        self._wait_name = f"{name}.wait"

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.sim, name=self._wait_name)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False


class Doorbell:
    """A monotone wakeup counter for event-driven polling.

    A consumer that would otherwise busy-poll shared memory snapshots
    :attr:`count`, checks the memory, and then waits on the snapshot::

        seen = doorbell.count
        ...inspect memory...
        yield doorbell.wait(seen)   # fires on the next ring after `seen`

    ``wait(seen)`` succeeds immediately if the counter already moved past
    ``seen`` -- the compare-and-wait closes the lost-wakeup race where a
    producer rings between the memory inspection and the park.  Producers
    call :meth:`ring` on every relevant write; rings are never lost, only
    coalesced (one wake may cover several rings).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._count = 0
        self._waiters: List[Event] = []
        #: Deferred-ring providers (flow-level fidelity): objects whose
        #: rings exist arithmetically but have not yet been applied to
        #: ``_count``.  ``count`` folds them in so a consumer snapshot
        #: observes exactly the value a per-packet run would have rung by
        #: now; a provider only spends a calendar entry when a waiter
        #: actually parks (see :class:`repro.sim.flows.CommitSpan`).
        self._providers: List = []
        # Precomputed: endpoint polling parks on the doorbell once per
        # received message and per-wait f-strings show up in profiles.
        self._wait_name = f"{name}.wait"

    @property
    def count(self) -> int:
        c = self._count
        if self._providers:
            now = self.sim._now
            for p in self._providers:
                c += p.pending_rings(self, now)
        return c

    def ring(self) -> None:
        """Signal waiters (and future ``wait(seen)`` calls) that the
        watched state changed."""
        self._count += 1
        if self._waiters:
            self._wake_waiters()

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        n = self.count
        for ev in waiters:
            ev.succeed(n)

    def wait(self, seen: int) -> Event:
        """Event that fires (with the current count) once ``count`` has
        advanced past the snapshot ``seen``."""
        ev = Event(self.sim, name=self._wait_name)
        if self.count != seen:
            ev.succeed(self.count)
        else:
            self._waiters.append(ev)
            for p in self._providers:
                p.arm(self)
        return ev

    @property
    def waiting(self) -> int:
        return len(self._waiters)


class Barrier:
    """An n-party rendezvous, reusable across generations.

    Models synchronized hardware rails (the TCCluster backplane's common
    warm-reset signal) as well as software barriers: the event returned by
    :meth:`arrive` fires when all ``parties`` have arrived in the current
    generation, after which the barrier resets for the next use.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.generation = 0
        self._waiting: List[Event] = []

    def arrive(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.arrive")
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            waiting, self._waiting = self._waiting, []
            self.generation += 1
            gen = self.generation
            for w in waiting:
                w.succeed(gen)
        return ev

    @property
    def waiting(self) -> int:
        return len(self._waiting)
