"""Benchmark harnesses that regenerate the paper's figures and tables."""

from .app_bench import HaloResult, halo_worker, run_halo_comparison
from .ablation import (
    OrderingPoint,
    WcAblationPoint,
    run_ordering_ablation,
    run_wc_ablation,
)
from .boot_bench import BootPoint, prototype_stage_times, run_boot_scaling
from .coherence_bench import (
    CoherenceScalePoint,
    run_coherence_scaling,
    tcc_op_latency_ns,
)
from .futures import (
    BufferSweepPoint,
    FUTURE_RATES,
    LinkSpeedPoint,
    run_link_speed_sweep,
    run_posted_buffer_sweep,
)
from .compare_bench import (
    ComparisonRow,
    run_baseline_comparison,
    run_nic_des_bandwidth,
    run_nic_des_latency,
)
from .microbench import (
    DEFAULT_BW_SIZES,
    DEFAULT_LAT_SIZES,
    BandwidthPoint,
    HopPoint,
    LatencyPoint,
    make_prototype,
    run_bandwidth_sweep,
    run_latency_sweep,
    run_multihop,
)
from .msglib_bench import (
    EndpointFootprint,
    FanInPoint,
    MsglibLatencyPoint,
    endpoint_footprint_table,
    run_fan_in,
    run_msglib_latency,
)
from .reporting import header, series_plot, table

__all__ = [
    "BandwidthPoint",
    "LatencyPoint",
    "HopPoint",
    "run_bandwidth_sweep",
    "run_latency_sweep",
    "run_multihop",
    "make_prototype",
    "DEFAULT_BW_SIZES",
    "DEFAULT_LAT_SIZES",
    "MsglibLatencyPoint",
    "EndpointFootprint",
    "FanInPoint",
    "run_msglib_latency",
    "endpoint_footprint_table",
    "run_fan_in",
    "WcAblationPoint",
    "OrderingPoint",
    "run_wc_ablation",
    "run_ordering_ablation",
    "CoherenceScalePoint",
    "run_coherence_scaling",
    "tcc_op_latency_ns",
    "ComparisonRow",
    "run_baseline_comparison",
    "run_nic_des_bandwidth",
    "run_nic_des_latency",
    "BootPoint",
    "run_boot_scaling",
    "prototype_stage_times",
    "LinkSpeedPoint",
    "BufferSweepPoint",
    "FUTURE_RATES",
    "run_link_speed_sweep",
    "run_posted_buffer_sweep",
    "table",
    "series_plot",
    "header",
    "HaloResult",
    "run_halo_comparison",
    "halo_worker",
]
