"""Shared fixtures/helpers: a hand-configured two-node TCCluster.

The firmware package automates this configuration later; these helpers
program the registers directly so the datapath can be tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.opteron import MemoryType, OpteronChip, wire_link
from repro.opteron.registers import GRANULARITY
from repro.sim import Simulator
from repro.util.calibration import DEFAULT_TIMING
from repro.util.units import MiB

NODE_MEM = 256 * MiB
assert NODE_MEM % GRANULARITY == 0


@dataclass
class TccPair:
    sim: Simulator
    chip0: OpteronChip
    chip1: OpteronChip
    link: object

    @property
    def chips(self):
        return (self.chip0, self.chip1)


def make_tcc_pair(timing=DEFAULT_TIMING, activate: bool = True, **link_kw) -> TccPair:
    """Two chips, one TCC link on port 0 of each, registers programmed by
    hand exactly as the firmware's Northbridge-Init step would:

    * global address space: node0 DRAM [0, 256M), node1 DRAM [256M, 512M),
    * each node: NodeID 0, own range as DRAM entry, other range as MMIO
      entry with DstNode=0 (self) and DstLink=0 (the TCC port),
    * MTRRs: remote window WC (transmit), local window left WB by default
      (tests set UC where polling correctness matters).
    """
    sim = Simulator()
    chip0 = OpteronChip(sim, "node0", memory_bytes=NODE_MEM, timing=timing)
    chip1 = OpteronChip(sim, "node1", memory_bytes=NODE_MEM, timing=timing)
    link = wire_link(sim, chip0, 0, chip1, 0, name="tcc", timing=timing, **link_kw)

    for chip, base in ((chip0, 0), (chip1, NODE_MEM)):
        chip.node_id_reg().nodeid = 0
        chip.dram_pair(0).program(base, base + NODE_MEM, dst_node=0)
        remote_base = NODE_MEM - base  # the other node's range
        chip.mmio_pair(0).program(remote_base, remote_base + NODE_MEM,
                                  dst_node=0, dst_link=0)
        chip.dram_config().program(NODE_MEM)
        # Transmit path: remote window is write-combining.
        chip.mtrr.add(remote_base, NODE_MEM, MemoryType.WC)
        chip.nb.validate()

    if activate:
        link.set_rate(timing.link_width_bits, timing.link_gbit_per_lane)
        link.activate("noncoherent")
    chip0.start()
    chip1.start()
    return TccPair(sim, chip0, chip1, link)


# ---------------------------------------------------------------------------
# Session-cached boot images (opt-in; see tests/conftest.py fixtures).
# Tests that exercise the boot protocol itself should keep cold-booting;
# tests that only need *a booted system* can restore one of these images
# -- bit-exact vs a cold boot, without re-simulating the boot protocol.
# ---------------------------------------------------------------------------

def cached_boot_image(kind: str = "proto2"):
    """The shared boot image for a common test signature.

    Backed by :func:`repro.cluster.snapshot.image_for`, so the first
    call per process cold-boots and every later call is a cache hit.
    """
    from repro.cluster.snapshot import image_for
    from repro.topology import chain, mesh2d

    if kind == "proto2":
        topo = chain(2, node=1, left_port=2, right_port=2)
        return image_for(topo, nodes_per_supernode=2)
    if kind == "mesh2x2":
        return image_for(mesh2d(2, 2))
    if kind == "mesh3x3":
        return image_for(mesh2d(3, 3))
    raise ValueError(f"unknown cached image kind {kind!r}")
