"""A communication endpoint: one peer pair's send/receive machinery.

Implements the protocol of paper Section IV.A on top of raw remote
stores:

* **eager path** -- messages up to ``eager_max`` travel inside ring slots;
  "sending is performed by writing to a specific address that is mapped
  to a remote node ... written to a ring buffer in main memory at the
  target node",
* **rendezvous path** -- larger payloads are "written directly to the
  final destination on the remote node and an additional queue is used
  for synchronization",
* **polling receive** -- "Receiving of messages is implemented by polling
  the corresponding address on the target node",
* **flow control** -- "Periodically, the APIs on the endpoints have to
  exchange pointer information to communicate buffer fill levels".

Send ordering modes mirror Figure 6: ``"weak"`` lets write-combining
buffers drain on their own (fastest); ``"strict"`` issues an sfence per
cache line ("after each cache line sized store operation an Sfence
instruction is triggered").

All public methods are generators driven inside a simulation process.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

from ..ht.link import LinkDownError
from ..obs.metrics import fault_counters, flow_counters, metrics_for
from ..sim.flows import plan_eager_span
from ..util.units import CACHELINE
from .config import HELLO_MARKER, RENDEZVOUS_MARKER, SLOT_BYTES, SLOT_PAYLOAD
from .slots import (
    pack_feedback,
    pack_hello,
    pack_rendezvous_control,
    pack_slot,
    slots_needed,
    unpack_feedback,
    unpack_feedback_epoch,
    unpack_header,
    unpack_hello,
    unpack_payload,
    unpack_rendezvous_control,
)

if TYPE_CHECKING:  # pragma: no cover
    from .library import MessageLibrary

__all__ = ["Endpoint", "EndpointStats", "MessageError", "TransportError",
           "SessionReset"]


class MessageError(RuntimeError):
    """Protocol violation (oversized message, corrupt slot...)."""


class TransportError(MessageError):
    """The transport gave up: a send/recv deadline expired or the path to
    the peer died (link down with no reroute).  The peer is declared dead
    on send-side failures; the in-band session handshake (or a manual,
    deprecated :meth:`Endpoint.revive`) clears the verdict after the peer
    rejoins."""


class SessionReset(TransportError):
    """The session with the peer was reset by the reconnect handshake.

    Raised in two places: by ``send()`` when a reconnect attempt did not
    complete within the reconnect deadline (the peer is still gone), and
    by ``recv()`` when an incoming HELLO announced a fresh epoch while
    this side still held unacknowledged in-flight state -- that state
    was dropped and the caller must treat the affected messages as lost.
    The session itself is resynchronized; subsequent sends resume."""


class EndpointStats:
    def __init__(self) -> None:
        self.msgs_sent = 0
        self.msgs_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.eager_sent = 0
        self.rendezvous_sent = 0
        self.tx_stalls = 0
        self.tx_stall_ns = 0.0
        self.max_inflight_slots = 0
        self.polls = 0
        self.feedback_writes = 0
        #: Post-delivery feedback writes swallowed because the link was
        #: down; the idle keepalive republishes the line later.
        self.feedback_deferred = 0
        #: Doorbell wakeups while parked (poll-parking fast path).
        self.park_wakes = 0
        #: Reliable-send retransmission rounds (slot images rewritten).
        self.retransmits = 0
        #: Sends/recvs that raised :class:`TransportError` on a deadline.
        self.msgs_expired = 0
        #: Completed session resets (epoch handshakes) on this endpoint,
        #: counting both initiated and HELLO-absorbed resets.
        self.session_resets = 0

    def as_dict(self) -> dict:
        return dict(vars(self))


class Endpoint:
    """Bidirectional channel between this rank and ``peer_rank``."""

    def __init__(self, lib: "MessageLibrary", peer_rank: int):
        self.lib = lib
        self.proc = lib.proc
        self.sim = lib.sim
        self.cfg = lib.cfg
        self.layout = lib.layout
        self.me = lib.rank
        self.peer = peer_rank
        my_base = lib.rank_base(self.me)
        peer_base = lib.rank_base(peer_rank)
        lo = self.layout
        # Transmit: my flow into the peer's memory.
        self.tx_ring_addr = peer_base + lo.ring_of_sender(self.me)
        self.tx_heap_addr = peer_base + lo.heap_of_sender(self.me)
        #: acknowledgement line the peer writes into *my* memory.
        self.tx_fb_addr = my_base + lo.feedback_of_peer(peer_rank)
        # Receive: the peer's flow into my memory.
        self.rx_ring_addr = my_base + lo.ring_of_sender(peer_rank)
        self.rx_heap_addr = my_base + lo.heap_of_sender(peer_rank)
        #: acknowledgement line I write into the peer's memory.
        self.rx_fb_addr = peer_base + lo.feedback_of_peer(self.me)
        # TX state
        self.send_seq = 0        # slots pushed into the peer's ring
        self.acked_slots = 0
        self.heap_sent = 0       # monotonically increasing heap cursor
        self.heap_acked = 0
        # RX state
        self.recv_seq = 0        # slots consumed from my ring
        self.heap_recvd = 0
        self.fb_sent_slots = 0
        self.fb_sent_heap = 0
        self.stats = EndpointStats()
        # Reliability state (inert unless a send/recv deadline is set).
        #: Peer declared dead by a failed reliable send (or a link-down
        #: error with no reroute); cleared by :meth:`revive`.
        self.peer_dead = False
        #: Slot images not yet acknowledged by the peer, oldest first:
        #: ``(seq, slot_addr, slot_image, heap_addr, heap_image)`` --
        #: the heap fields are None for eager slots.  Only populated
        #: while a deadline-guarded send is in flight.
        self._unacked: Deque[Tuple[int, int, bytes, Optional[int], Optional[bytes]]] = deque()
        self._send_deadline: Optional[float] = None
        self._rtx_next = 0.0
        self._rtx_backoff = 0.0
        #: Session epoch of the reconnect handshake; 0 until the first
        #: reset.  Bumped by :meth:`_reconnect`, adopted from incoming
        #: HELLO control slots, echoed on every feedback write.
        self.session_epoch = 0
        #: Sim time of the last feedback-line write (ack keepalive clock).
        self._fb_last_ns = -math.inf
        #: Reliability configured (either deadline set): the receive path
        #: acks every message eagerly so a deadline-guarded sender's
        #: `_await_acked` converges even when the receiver then goes
        #: quiet.  False keeps the batched-feedback fault-free behavior
        #: bit-identical.  Both peers must share the reliable config.
        self._reliable = (self.cfg.send_deadline_ns is not None
                          or self.cfg.recv_deadline_ns is not None)
        self._m = metrics_for(self.sim)
        # Metric-name strings are built once: the f-strings showed up in
        # data-plane profiles when metrics are enabled (every occupancy
        # sample and stall rebuilt them).
        self._occ_series = f"msglib.r{self.me}->r{self.peer}.ring_occupancy"
        self._slot_stall_name = f"msglib.r{self.me}->r{self.peer}.slot_stall_ns"
        self._heap_stall_name = f"msglib.r{self.me}->r{self.peer}.heap_stall_ns"
        self._latency_series = f"msglib.r{self.peer}->r{self.me}.latency_ns"
        # Poll-parking state: a doorbell watching my rx ring, re-validated
        # when the process is re-bound to another socket (numactl).
        self._park_chip = None
        self._park_db = None
        self._park_db_obj = None
        self._watched_mc = None

    # -- instrumentation ------------------------------------------------
    @property
    def inflight_slots(self) -> int:
        """Ring slots pushed to the peer but not yet acknowledged."""
        return self.send_seq - self.acked_slots

    def _note_occupancy(self) -> None:
        inflight = self.send_seq - self.acked_slots
        if inflight > self.stats.max_inflight_slots:
            self.stats.max_inflight_slots = inflight
        if self._m.enabled:
            self._m.track(self._occ_series, self.sim.now, inflight)

    # ------------------------------------------------------------------
    # Send
    # ------------------------------------------------------------------
    def send(self, data: bytes, mode: str = "weak",
             deadline_ns: Optional[float] = None):
        """Transmit ``data``; completes when every store has left the core
        (posted semantics -- delivery is guaranteed by HT, not signalled).

        With a deadline (per-call ``deadline_ns`` or the config's
        ``send_deadline_ns``) the call instead completes only once the
        peer acknowledged every ring slot of the message, retransmitting
        unacknowledged slot images on an exponential backoff, and raises
        :class:`TransportError` -- declaring the peer dead -- when the
        deadline expires.  An expired send is never counted in
        ``msgs_sent``/``bytes_sent``.
        """
        if not data:
            raise MessageError("empty message")
        if mode not in ("weak", "strict"):
            raise MessageError(f"unknown ordering mode {mode!r}")
        if self.peer_dead:
            if self.cfg.session_handshake and self._reliable:
                # In-band reconnect: resync cursors via HELLO/HELLO-ACK,
                # then fall through and transmit normally.  Raises
                # SessionReset when the peer is still unresponsive.
                yield from self._reconnect()
            else:
                raise TransportError(
                    f"rank {self.me}: peer rank {self.peer} is declared "
                    "dead (session handshake disabled; revive() after it "
                    "rejoins)"
                )
        if self._m.enabled:
            # End-to-end latency clock starts before the library overhead,
            # matching what an application-level timer would see.
            self._m.note_send(self.me, self.peer, self.sim.now)
        limit = deadline_ns if deadline_ns is not None else self.cfg.send_deadline_ns
        if limit is not None:
            self._send_deadline = self.sim.now + limit
            self._rtx_backoff = self.cfg.retransmit_base_ns
            self._rtx_next = self.sim.now + self._rtx_backoff
        try:
            yield self.proc.core.chip.timing.send_overhead_ns
            if len(data) <= self.cfg.eager_max:
                yield from self._send_eager(data, mode)
                eager = True
            else:
                yield from self._send_rendezvous(data, mode)
                eager = False
            if self._send_deadline is not None:
                yield from self._await_acked(self.send_seq)
        except LinkDownError as exc:
            raise self._transport_fail(f"link down while sending ({exc})") from exc
        finally:
            self._send_deadline = None
            self._unacked.clear()
        if eager:
            self.stats.eager_sent += 1
        else:
            self.stats.rendezvous_sent += 1
        self.stats.msgs_sent += 1
        self.stats.bytes_sent += len(data)

    def _slot_tx_addr(self, seq: int) -> int:
        return self.tx_ring_addr + ((seq - 1) % self.cfg.nslots) * SLOT_BYTES

    def _send_eager(self, data: bytes, mode: str):
        remaining = len(data)
        pos = 0
        # Flow-level fidelity (DESIGN.md section 12): coalesce a run of
        # ring slots into one contiguous multi-line store so it can ride
        # the bulk-train fast path.  Virtual-time neutral: the per-slot
        # path below issues the same back-to-back line stores with zero
        # virtual time between the calls.  Gated off under metrics --
        # the per-slot ring-occupancy samples carry per-slot timestamps
        # that coalescing would collapse onto one instant.
        spans = (mode == "weak" and not self._m.enabled
                 and self.sim.features.flow_fidelity)
        while remaining > 0:
            if spans and remaining > SLOT_PAYLOAD:
                # Refresh the window first when it is exhausted -- the
                # same stall the per-slot path would take below -- so the
                # whole run is planned against the replenished window
                # instead of dribbling its first slot out individually.
                if self._free_tx_slots() == 0:
                    yield from self._wait_tx_slots(1)
                planned = plan_eager_span(
                    self.send_seq + 1, self.cfg.nslots, self._free_tx_slots(),
                    data, pos, remaining, pack_slot, SLOT_PAYLOAD)
                if planned is not None:
                    n, span, chunk_lens = planned
                    fl = flow_counters(self.sim)
                    fl.slot_windows += 1
                    fl.slot_slots += n
                    seq0 = self.send_seq + 1
                    addr0 = self._slot_tx_addr(seq0)
                    yield from self.proc.store(addr0, span)
                    if self._send_deadline is not None:
                        for i in range(n):
                            self._unacked.append(
                                (seq0 + i, addr0 + i * SLOT_BYTES,
                                 span[i * SLOT_BYTES:(i + 1) * SLOT_BYTES],
                                 None, None))
                    self.send_seq = seq0 + n - 1
                    self._note_occupancy()
                    sent = sum(chunk_lens)
                    pos += sent
                    remaining -= sent
                    continue
            yield from self._wait_tx_slots(1)
            seq = self.send_seq + 1
            chunk = data[pos : pos + SLOT_PAYLOAD]
            slot = pack_slot(seq, remaining, chunk)
            yield from self.proc.store(self._slot_tx_addr(seq), slot)
            if self._send_deadline is not None:
                self._unacked.append((seq, self._slot_tx_addr(seq), slot,
                                      None, None))
            if mode == "strict":
                yield from self.proc.sfence()
            self.send_seq = seq
            self._note_occupancy()
            pos += len(chunk)
            remaining -= len(chunk)

    def _send_rendezvous(self, data: bytes, mode: str):
        need = -(-len(data) // CACHELINE) * CACHELINE  # round up to lines
        if need > self.cfg.heap_bytes:
            raise MessageError(
                f"message of {len(data)} bytes exceeds the {self.cfg.heap_bytes}"
                "-byte rendezvous heap"
            )
        offset = self.heap_sent % self.cfg.heap_bytes
        if offset + need > self.cfg.heap_bytes:
            # Skip the tail so the payload stays contiguous.
            pad = self.cfg.heap_bytes - offset
            yield from self._wait_heap(pad + need)
            self.heap_sent += pad
            offset = 0
        else:
            yield from self._wait_heap(need)
        addr = self.tx_heap_addr + offset
        # Already line-granular payloads (the common bulk case) go down the
        # store path as-is -- ljust would copy the whole message.
        padded = data if len(data) == need else data.ljust(need, b"\x00")
        if mode == "strict":
            for off in range(0, need, CACHELINE):
                yield from self.proc.store(addr + off, padded[off : off + CACHELINE])
                yield from self.proc.sfence()
        else:
            yield from self.proc.store(addr, padded)
        # Payload must be globally ordered before the control slot.
        yield from self.proc.sfence()
        self.heap_sent += need
        yield from self._wait_tx_slots(1)
        seq = self.send_seq + 1
        ctrl = pack_rendezvous_control(seq, offset, len(data), self.heap_sent)
        yield from self.proc.store(self._slot_tx_addr(seq), ctrl)
        if self._send_deadline is not None:
            self._unacked.append((seq, self._slot_tx_addr(seq), ctrl,
                                  addr, padded))
        if mode == "strict":
            yield from self.proc.sfence()
        self.send_seq = seq
        self._note_occupancy()

    def flush(self):
        """Drain write-combining buffers (finalize weakly-ordered sends)."""
        try:
            yield from self.proc.sfence()
        except LinkDownError as exc:
            raise self._transport_fail(f"link down while flushing ({exc})") from exc

    # -- transmit-side flow control --------------------------------------
    def _free_tx_slots(self) -> int:
        return self.cfg.nslots - (self.send_seq - self.acked_slots)

    def _wait_tx_slots(self, n: int):
        if self._free_tx_slots() >= n:
            return
        stall_start = self.sim.now
        while self._free_tx_slots() < n:
            self.stats.tx_stalls += 1
            yield from self._refresh_ack()
            if self._free_tx_slots() >= n:
                break
            yield from self._reliability_tick()
            yield self.proc.core.chip.timing.poll_iteration_ns
        self.stats.tx_stall_ns += self.sim.now - stall_start
        if self._m.enabled:
            self._m.inc(self._slot_stall_name, self.sim.now - stall_start)

    def _wait_heap(self, need: int):
        if self.heap_sent - self.heap_acked + need <= self.cfg.heap_bytes:
            return
        stall_start = self.sim.now
        while self.heap_sent - self.heap_acked + need > self.cfg.heap_bytes:
            self.stats.tx_stalls += 1
            yield from self._refresh_ack()
            if self.heap_sent - self.heap_acked + need <= self.cfg.heap_bytes:
                break
            yield from self._reliability_tick()
            yield self.proc.core.chip.timing.poll_iteration_ns
        self.stats.tx_stall_ns += self.sim.now - stall_start
        if self._m.enabled:
            self._m.inc(self._heap_stall_name, self.sim.now - stall_start)

    def _refresh_ack(self):
        raw = yield from self.proc.load(self.tx_fb_addr, 16)
        slots, heap = unpack_feedback(raw)
        # Monotonicity guard: a torn/stale read must never move acks back.
        if slots > self.acked_slots:
            if slots > self.send_seq:
                raise MessageError("peer acknowledged slots never sent")
            self.acked_slots = slots
            una = self._unacked
            while una and una[0][0] <= slots:
                una.popleft()
            self._note_occupancy()
        if heap > self.heap_acked:
            if heap > self.heap_sent:
                raise MessageError("peer acknowledged heap bytes never sent")
            self.heap_acked = heap

    # -- reliability (deadline-guarded sends/recvs) -----------------------
    def _transport_fail(self, why: str) -> TransportError:
        """Declare the peer dead and build the typed error (raised by the
        caller); :meth:`revive` clears the verdict after a rejoin."""
        self.peer_dead = True
        self.stats.msgs_expired += 1
        fault_counters(self.sim).messages_expired += 1
        return TransportError(f"rank {self.me} -> rank {self.peer}: {why}")

    def revive(self) -> None:
        """Clear a peer-dead verdict manually after the peer rejoined.

        .. deprecated::
            The in-band session handshake (``MsgConfig.session_handshake``,
            on by default for reliable endpoints) resynchronizes
            automatically on the next ``send()`` after the peer rejoins;
            manual revival is only needed by endpoints that opted out.
            Unlike the handshake, ``revive`` keeps the sequence/ack
            cursors, assuming both sides' DRAM survived a warm reset.
        """
        warnings.warn(
            "Endpoint.revive() is deprecated: the session handshake "
            "(MsgConfig.session_handshake) resynchronizes automatically",
            DeprecationWarning,
            stacklevel=2,
        )
        self.peer_dead = False
        self._unacked.clear()

    def crash_discard(self) -> int:
        """Model this endpoint's volatile state being lost in a node
        crash: the unacknowledged retransmit images (cache/register
        copies, not DRAM) are dropped and the session is declared broken
        so the next reliable ``send()`` runs the reconnect handshake.
        Returns the number of slot images discarded."""
        lost = len(self._unacked)
        self._unacked.clear()
        self.peer_dead = True
        return lost

    def _reconnect(self):
        """In-band session reconnect: epoch-numbered HELLO/HELLO-ACK.

        The feedback line the peer writes into my memory is a monotonic
        record of what it actually consumed, so it survives my crash and
        the peer's crash alike (DRAM endures a warm reset).  Reconnect
        realigns my transmit cursors to it -- dropping stale unacked
        retransmit images deterministically -- then writes a HELLO
        control slot carrying a fresh session epoch exactly where the
        peer polls next, and waits for the peer to echo the epoch on the
        feedback line (the HELLO-ACK).  Raises :class:`SessionReset`
        when the echo does not arrive within the reconnect deadline; the
        attempt is safe to repeat and converges once the peer is back.
        """
        t = self.proc.core.chip.timing
        limit = self.cfg.reconnect_deadline_ns
        if limit is None:
            limit = self.cfg.send_deadline_ns
        if limit is None:
            limit = 8 * self.cfg.retransmit_base_ns
        deadline = self.sim.now + limit
        # Stale retransmit images are worthless across a session reset.
        self._unacked.clear()
        try:
            raw = yield from self.proc.load(self.tx_fb_addr, 24)
            fb_slots, fb_heap = unpack_feedback(raw)
            fb_epoch = unpack_feedback_epoch(raw)
            # Roll the tx cursors onto the peer's authoritative consumption
            # record: seq space beyond it belonged to in-flight messages
            # that are lost with the session.
            self.acked_slots = max(self.acked_slots, fb_slots)
            self.send_seq = self.acked_slots
            self.heap_acked = max(self.heap_acked, fb_heap)
            self.heap_sent = self.heap_acked
            epoch = max(self.session_epoch, fb_epoch) + 1
            # My own rx ring may hold the dead session's slot images too;
            # the peer realigns its tx cursor onto my reported recv_seq
            # and reuses those sequence numbers, so flush before inviting
            # it to transmit.
            yield from self._flush_stale_ring()
            seq = self.send_seq + 1
            hello = pack_hello(seq, epoch, self.recv_seq, self.heap_recvd)
            yield from self.proc.store(self._slot_tx_addr(seq), hello)
            yield from self.proc.sfence()
            self.send_seq = seq
            self.session_epoch = epoch
            while True:
                raw = yield from self.proc.load(self.tx_fb_addr, 24)
                fb_slots, fb_heap = unpack_feedback(raw)
                fb_epoch = unpack_feedback_epoch(raw)
                if fb_epoch >= epoch:
                    self.session_epoch = fb_epoch
                    self.acked_slots = max(self.acked_slots, fb_slots)
                    self.send_seq = max(self.send_seq, self.acked_slots)
                    self.heap_acked = max(self.heap_acked, fb_heap)
                    self.heap_sent = max(self.heap_sent, self.heap_acked)
                    self.peer_dead = False
                    self.stats.session_resets += 1
                    fault_counters(self.sim).session_resets += 1
                    return
                if self.sim.now >= deadline:
                    raise SessionReset(
                        f"rank {self.me} -> rank {self.peer}: no HELLO-ACK "
                        f"within the reconnect deadline (epoch {epoch})"
                    )
                yield t.poll_iteration_ns
        except LinkDownError as exc:
            raise SessionReset(
                f"rank {self.me} -> rank {self.peer}: peer unreachable "
                f"during reconnect ({exc})"
            ) from exc

    def _reliability_tick(self):
        """One watchdog step of a deadline-guarded send, shared by every
        transmit-side wait loop: retransmit unacknowledged slot images on
        the exponential-backoff grid, declare the peer dead once the
        deadline passes.  A no-op when no deadline is armed."""
        dl = self._send_deadline
        if dl is None:
            return
        now = self.sim.now
        if now >= dl:
            raise self._transport_fail(
                f"no acknowledgement from rank {self.peer} within the "
                f"send deadline ({self.acked_slots}/{self.send_seq} slots acked)"
            )
        if self._unacked and now >= self._rtx_next:
            # The backoff interval that just elapsed waiting for an ack.
            fault_counters(self.sim).backoff_ns_total += int(self._rtx_backoff)
            self._rtx_backoff *= 2.0
            self._rtx_next = now + self._rtx_backoff
            yield from self._retransmit_unacked()

    def _retransmit_unacked(self):
        """Rewrite every still-unacknowledged slot image (rendezvous
        payload first, then its control slot) into the peer's memory.

        Posted writes on one VC stay FIFO, so a retransmit can never
        overtake the original store or a newer slot, and the receiver's
        monotonic sequence check makes duplicates invisible -- at worst
        the rewrite is redundant wire traffic.
        """
        fc = fault_counters(self.sim)
        for seq, slot_addr, slot_img, heap_addr, heap_img in list(self._unacked):
            if seq <= self.acked_slots:
                continue
            if heap_img is not None:
                yield from self.proc.store(heap_addr, heap_img)
                # Payload globally ordered before its control slot.
                yield from self.proc.sfence()
            yield from self.proc.store(slot_addr, slot_img)
            self.stats.retransmits += 1
            fc.retransmits += 1
        yield from self.proc.sfence()

    def _await_acked(self, target_seq: int):
        """Reliable-send completion: poll the feedback line until the
        peer acknowledged every ring slot up to ``target_seq``."""
        t = self.proc.core.chip.timing
        while self.acked_slots < target_seq:
            yield from self._refresh_ack()
            if self.acked_slots >= target_seq:
                break
            yield from self._reliability_tick()
            yield t.poll_iteration_ns

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def _slot_rx_addr(self, seq: int) -> int:
        return self.rx_ring_addr + ((seq - 1) % self.cfg.nslots) * SLOT_BYTES

    def recv(self, deadline_ns: Optional[float] = None):
        """Block (poll) until the next message is complete; returns bytes.

        ``deadline_ns`` (or the config's ``recv_deadline_ns``) bounds the
        wait: :class:`TransportError` is raised when no message completes
        in time.  Deadline polling stays on the deterministic busy-poll
        grid (doorbell parking is bypassed)."""
        t = self.proc.core.chip.timing
        limit = deadline_ns if deadline_ns is not None else self.cfg.recv_deadline_ns
        deadline = self.sim.now + limit if limit is not None else None
        try:
            while True:
                raw = yield from self._poll_slot(self.recv_seq + 1, deadline)
                seq, length = unpack_header(raw)
                if length == HELLO_MARKER:
                    # Session control: absorb and keep polling for a real
                    # message against the same absolute deadline.
                    yield from self._handle_hello(raw)
                    continue
                if length == RENDEZVOUS_MARKER:
                    offset, plen, heap_end = unpack_rendezvous_control(raw)
                    data = yield from self._bulk_read(self.rx_heap_addr + offset, plen)
                    self.recv_seq += 1
                    self.heap_recvd = heap_end
                    yield from self._feedback_after_delivery(force=True)
                elif slots_needed(length) == 1:
                    data = unpack_payload(raw, length)
                    self.recv_seq += 1
                    yield from self._feedback_after_delivery(
                        force=self._reliable)
                else:
                    data = yield from self._recv_multislot(raw, length, deadline)
                    yield from self._feedback_after_delivery(
                        force=self._reliable)
                break
        except LinkDownError as exc:
            raise self._transport_fail(f"link down while receiving ({exc})") from exc
        yield t.recv_overhead_ns
        self.stats.msgs_received += 1
        self.stats.bytes_received += len(data)
        if self._m.enabled:
            sent_at = self._m.pop_send(self.peer, self.me)
            if sent_at is not None:
                lat = self.sim.now - sent_at
                self._m.observe("msglib.message_latency_ns", lat)
                self._m.observe(self._latency_series, lat)
        return bytes(data)

    def _handle_hello(self, raw: bytes):
        """Consume a HELLO control slot (peer-initiated session reset).

        Adopts the announced epoch, realigns my *transmit* cursors to the
        receive cursors the initiator reported (my unacked in-flight
        state toward it is stale by definition), clears any peer-dead
        verdict, and answers with an epoch-stamped feedback write -- the
        HELLO-ACK.  Raises :class:`SessionReset` when in-flight reliable
        send state had to be dropped, so the sender learns its messages
        are lost; a duplicate HELLO (stale epoch) is just re-acked.
        """
        epoch, peer_recv_seq, peer_heap_recvd = unpack_hello(raw)
        self.recv_seq += 1
        fresh = epoch > self.session_epoch
        stale_unacked = len(self._unacked)
        if fresh:
            self.session_epoch = epoch
            self._unacked.clear()
            self.acked_slots = max(self.acked_slots, peer_recv_seq)
            self.send_seq = self.acked_slots
            self.heap_acked = max(self.heap_acked, peer_heap_recvd)
            self.heap_sent = self.heap_acked
            self.peer_dead = False
            self.stats.session_resets += 1
            # The dead session's in-flight stores may have landed in my
            # ring with sequence numbers the realigned initiator will
            # reuse; flush them before the HELLO-ACK releases new data.
            yield from self._flush_stale_ring()
        # HELLO-ACK: unconditionally publish cursors + epoch echo.
        yield from self._rewrite_feedback()
        if fresh and stale_unacked:
            raise SessionReset(
                f"rank {self.me}: peer rank {self.peer} reset the session "
                f"(epoch {epoch}); {stale_unacked} in-flight slot(s) dropped"
            )

    def try_recv(self):
        """Non-blocking probe: returns the message or None."""
        raw = yield from self.proc.load(self._slot_rx_addr(self.recv_seq + 1), 8)
        seq, _ = unpack_header(raw)
        if seq != self.recv_seq + 1:
            return None
        data = yield from self.recv()
        return data

    def _poll_slot(self, want_seq: int, deadline: Optional[float] = None):
        """Spin on a slot until its sequence number appears.

        ``deadline`` (absolute sim time) bounds the spin with a
        :class:`TransportError`; a deadline-guarded poll never parks, so
        its timing stays on the plain poll grid regardless of
        ``SimFeatures.poll_parking``.

        With ``SimFeatures.poll_parking`` the *idle* part of the spin is
        event-driven: instead of burning one calendar entry per
        ``poll_iteration_ns``, the process parks on a memory doorbell rung
        by the controller when a write commits into the rx ring, then
        re-joins the exact poll grid the busy loop would have followed
        (see DESIGN.md, "Performance model equivalence").  Sampling times
        and ``stats.polls`` are unchanged; idle-spin events drop to zero.
        """
        addr = self._slot_rx_addr(want_seq)
        t = self.proc.core.chip.timing
        flushed_idle_fb = False
        while True:
            if deadline is not None and self.sim.now >= deadline:
                self.stats.msgs_expired += 1
                fault_counters(self.sim).messages_expired += 1
                raise TransportError(
                    f"rank {self.me}: no message from rank {self.peer} "
                    "within the recv deadline"
                )
            db = self._parking_doorbell() if deadline is None else None
            seen = db.count if db is not None else 0
            self.stats.polls += 1
            raw = yield from self.proc.load(addr, SLOT_BYTES)
            seq, _ = unpack_header(raw)
            if seq == want_seq:
                return raw
            if seq > want_seq:
                raise MessageError(
                    f"ring overrun: found seq {seq} while waiting for "
                    f"{want_seq} (flow control violated)"
                )
            if not flushed_idle_fb:
                # We are idle: push any acknowledgement debt so a blocked
                # sender can make progress.
                flushed_idle_fb = True
                yield from self._maybe_feedback(force=self._fb_debt() > 0)
            elif (self._reliable
                  and (self.recv_seq or self.heap_recvd or self.session_epoch)
                  and self.sim.now - self._fb_last_ns
                      >= self.cfg.retransmit_base_ns):
                # Ack keepalive, the receive-side pair of the sender's
                # retransmit: a feedback write lost in flight (crashed
                # northbridge queue) would otherwise leave the sender
                # retransmitting into a fully-consumed ring forever.
                yield from self._rewrite_feedback()
            if db is None:
                yield t.poll_iteration_ns
                continue
            # Park.  `seen` was snapshotted before the load, so any commit
            # since then (including one racing the park) wakes immediately.
            load_ns = t.nb_request_ns + self.proc.core.chip.memctrl.read_latency_ns(
                SLOT_BYTES, uncached=True
            )
            grid = t.poll_iteration_ns + load_ns
            anchor = self.sim.now
            yield db.wait(seen)
            self.stats.park_wakes += 1
            # Quantize the wake onto the poll grid: virtual poll j is the
            # first whose *completion* (anchor + j*grid) lies at/after the
            # commit that rang the bell.
            j = max(1, math.ceil((self.sim.now - anchor) / grid))
            self.stats.polls += j - 1  # wholly-elapsed virtual misses
            cj = anchor + j * grid
            sj = cj - load_ns
            if sj >= self.sim.now:
                # Next grid poll has not started yet: sleep to its start
                # and resume the legacy loop (a real load from there).
                yield sj - self.sim.now
                continue
            # The commit landed inside virtual poll j's load window.  That
            # load (issued before the commit) is conceptually in flight;
            # sample memory at its completion time instead of issuing a
            # too-late real load that would skew the observed latency.
            yield cj - self.sim.now
            self.stats.polls += 1
            raw = self._read_slot_direct(addr)
            seq, _ = unpack_header(raw)
            if seq == want_seq:
                return raw
            if seq > want_seq:
                raise MessageError(
                    f"ring overrun: found seq {seq} while waiting for "
                    f"{want_seq} (flow control violated)"
                )
            # The bell was for another slot of the ring; stay on the grid.
            yield t.poll_iteration_ns

    def _parking_doorbell(self):
        """Doorbell watching my rx ring, or None when parking is illegal.

        Parking requires the ring to be local UC memory of the socket the
        process is currently bound to: only then do ring writes commit at
        this chip's memory controller and do polls bypass the caches.  The
        verdict is cached per chip and re-evaluated after ``bind_to``.
        """
        if not self.sim.features.poll_parking:
            return None
        chip = self.proc.core.chip
        if self._park_chip is chip:
            return self._park_db
        from ..opteron.mtrr import MemoryType
        from ..opteron.northbridge import RouteKind
        from ..sim import Doorbell

        self._park_chip = chip
        self._park_db = None
        if self._watched_mc is not None:
            self._watched_mc.unwatch(self._park_db_obj)
            self._watched_mc = None
        ring_bytes = self.cfg.nslots * SLOT_BYTES
        try:
            m = self.proc.pagetable.check_load(self.rx_ring_addr, SLOT_BYTES)
        except Exception:
            return None  # unmapped: let the real load raise the fault
        if m.mtype is not MemoryType.UC:
            return None  # cached polling would not see DRAM updates anyway
        if chip.nb.route(self.rx_ring_addr).kind is not RouteKind.DRAM_LOCAL:
            return None
        lo = chip.nb._local_offset(self.rx_ring_addr)
        hi = chip.nb._local_offset(self.rx_ring_addr + ring_bytes - 1) + 1
        if hi - lo != ring_bytes:
            return None  # ring straddles local ranges; keep busy-polling
        if self._park_db_obj is None:
            self._park_db_obj = Doorbell(
                self.sim, name=f"ep.r{self.me}<-r{self.peer}.doorbell"
            )
        chip.memctrl.watch(lo, hi, self._park_db_obj)
        self._watched_mc = chip.memctrl
        self._park_db = self._park_db_obj
        return self._park_db

    def _read_slot_direct(self, addr: int):
        """Zero-time ring-slot sample used by a quantized park wake (the
        matching virtual load's port occupancy already elapsed)."""
        chip = self.proc.core.chip
        return chip.memctrl.sample(chip.nb._local_offset(addr), SLOT_BYTES)

    def _recv_multislot(self, first_raw: bytes, length: int,
                        deadline: Optional[float] = None):
        k = slots_needed(length)
        last_seq = self.recv_seq + k
        # In-order posted delivery: once the last slot shows up, the whole
        # span is in memory; sync on it, then bulk-read the middle.
        yield from self._poll_slot(last_seq, deadline)
        spans = self._ring_spans(self.recv_seq + 2, last_seq - 1)
        middle_raw = b""
        for (addr, nbytes) in spans:
            chunk = yield from self._bulk_read(addr, nbytes)
            middle_raw += chunk
        data = bytearray(unpack_payload(first_raw, min(length, SLOT_PAYLOAD)))
        got = len(data)
        for i in range(0, len(middle_raw), SLOT_BYTES):
            take = min(SLOT_PAYLOAD, length - got)
            data += unpack_payload(middle_raw[i : i + SLOT_BYTES], take)
            got += take
        if got < length:
            last_raw = yield from self.proc.load(self._slot_rx_addr(last_seq),
                                                 SLOT_BYTES)
            data += unpack_payload(last_raw, length - got)
        self.recv_seq += k
        if len(data) != length:
            raise MessageError(f"reassembled {len(data)} of {length} bytes")
        return bytes(data)

    def _ring_spans(self, first_seq: int, last_seq: int) -> List[Tuple[int, int]]:
        """Contiguous [addr, nbytes) runs covering slots first..last."""
        if last_seq < first_seq:
            return []
        spans: List[Tuple[int, int]] = []
        n = self.cfg.nslots
        seq = first_seq
        while seq <= last_seq:
            idx = (seq - 1) % n
            run = min(last_seq - seq + 1, n - idx)
            spans.append((self.rx_ring_addr + idx * SLOT_BYTES, run * SLOT_BYTES))
            seq += run
        return spans

    def _bulk_read(self, addr: int, nbytes: int):
        out = bytearray()
        pos = 0
        while pos < nbytes:
            n = min(self.cfg.read_chunk, nbytes - pos)
            chunk = yield from self.proc.load(addr + pos, n)
            out += chunk
            pos += n
        return bytes(out)

    # -- receive-side flow control ------------------------------------------
    def _fb_debt(self) -> int:
        return self.recv_seq - self.fb_sent_slots

    def _flush_stale_ring(self):
        """Zero every rx-ring slot position ahead of ``recv_seq``.

        Across a session reset the transmit cursor realigns *down*, so
        the fresh epoch reuses sequence numbers the dead session may
        already have written into my DRAM; a seq-matched stale slot
        would be consumed as a fresh message and desynchronize the
        framing.  Posted writes on one VC are FIFO, so by the time the
        HELLO that triggered the reset is visible every older store has
        landed -- and new-epoch data only flows after the HELLO-ACK --
        which makes this flush race-free.
        """
        zero = bytes(SLOT_BYTES)
        for seq in range(self.recv_seq + 1,
                         self.recv_seq + 1 + self.cfg.nslots):
            yield from self.proc.store(self._slot_rx_addr(seq), zero)
        yield from self.proc.sfence()

    def _feedback_after_delivery(self, force: bool = False):
        """Ack publish for a message that is already extracted and
        cursor-advanced.  The slot is consumed at this point, so a link
        failure in the *advisory* feedback write must not destroy the
        delivered message by failing the whole ``recv()`` -- the write
        is swallowed and the idle keepalive (or the next delivery)
        republishes the line once the fabric heals.  Failures before
        extraction still propagate as :class:`TransportError`."""
        try:
            yield from self._maybe_feedback(force=force)
        except LinkDownError:
            self.stats.feedback_deferred += 1

    def _maybe_feedback(self, force: bool = False):
        if not force and self._fb_debt() < self.cfg.fb_interval_slots:
            return
        if self._fb_debt() == 0 and self.heap_recvd == self.fb_sent_heap:
            return
        yield from self._rewrite_feedback()

    def _rewrite_feedback(self):
        """Unconditional feedback-line write (cursors + epoch echo).

        Beyond the batched path above this is the ack keepalive and the
        HELLO-ACK: a feedback write lost in a crashed northbridge queue
        leaves the sender retransmitting into a ring the receiver already
        consumed, so reliable receivers republish the line while idle."""
        line = pack_feedback(self.recv_seq, self.heap_recvd, self.session_epoch)
        yield from self.proc.store(self.rx_fb_addr, line)
        self.fb_sent_slots = self.recv_seq
        self.fb_sent_heap = self.heap_recvd
        self._fb_last_ns = self.sim.now
        self.stats.feedback_writes += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint {self.me}->{self.peer}>"
