"""Link-layer recovery mechanics: down/retrain transitions, burst-window
unwinding, fail-down, and the pooled-packet NAK hazard.

Satellite regression coverage for the fault-injection PR: the chaos
harness (``test_chaos.py``) exercises recovery end to end; these tests
pin the individual link-layer contracts it relies on.
"""

import pytest

from repro.ht import (
    Link,
    LinkDownError,
    LinkInitFSM,
    LinkSide,
    LinkState,
    LinkTrainingError,
    VirtualChannel,
    make_posted_write,
)
from repro.cluster import build_single_board_prototype
from repro.ht.packet import pool_for
from repro.obs.metrics import fault_counters
from repro.sim import Simulator
from repro.util.units import MiB

M256 = 256 * MiB


def make_active_link(sim, **kw):
    link = Link(sim, "l0", **kw)
    link.activate("noncoherent")
    return link


def fsm_link(sim, skew_tolerance_ns=100.0, **kw):
    link = Link(sim, "tcc", **kw)
    fsm = LinkInitFSM(sim, link, skew_tolerance_ns=skew_tolerance_ns)
    fsm.assert_reset(LinkSide.A, "cold")
    fsm.assert_reset(LinkSide.B, "cold")
    sim.run()
    assert link.state == LinkState.ACTIVE
    return link, fsm


# ---------------------------------------------------------------------------
# Down -> retrain keeps every packet (NAK, not loss).
# ---------------------------------------------------------------------------

def test_bring_down_naks_in_flight_then_retrain_delivers_in_order():
    sim = Simulator()
    link, fsm = fsm_link(sim)
    got = []

    def rx():
        while len(got) < 10:
            p = yield link.receive(LinkSide.B)
            got.append(p.addr)

    def tx():
        for i in range(10):
            yield link.send(LinkSide.A, make_posted_write(0x1000 + 64 * i,
                                                          bytes([i] * 16)))

    sim.process(rx())
    sim.process(tx())
    # Cut the link mid-transfer, then recover it shortly after.
    sim.schedule(30.0, link.bring_down)
    sim.schedule(500.0, fsm.retrain, "warm")
    sim.run(until=1_000_000.0)
    assert got == [0x1000 + 64 * i for i in range(10)], (
        "NAK'd packets must be re-sent exactly once, in order"
    )


def test_bring_down_mid_burst_window_unwinds_and_redelivers():
    """Packets inside an open burst-serialization window when the link
    drops are cancelled (their delivery events never fire), NAK'd back to
    the head of their VC queue, and delivered exactly once after retrain
    -- with stats and credits consistent throughout."""
    sim = Simulator()
    link, fsm = fsm_link(sim)
    n = 12
    got = []

    def rx():
        while len(got) < n:
            p = yield link.receive(LinkSide.B)
            got.append((p.addr, bytes(p.data)))

    def tx():
        for i in range(n):
            yield link.send(LinkSide.A, make_posted_write(0x2000 + 64 * i,
                                                          bytes([i] * 32)))

    sim.process(rx())
    sim.process(tx())
    # Back-to-back packets open a burst window; cut inside it.  The
    # serialization of one 48B-ish packet takes ~tens of ns, so 25ns in
    # lands mid-flight regardless of burst shape.
    sim.schedule(25.0, link.bring_down)
    sim.schedule(400.0, fsm.retrain, "warm")
    sim.run(until=1_000_000.0)
    assert [a for a, _ in got] == [0x2000 + 64 * i for i in range(n)]
    assert all(d == bytes([i] * 32) for i, (_, d) in enumerate(got))
    d = link._dirs[LinkSide.A]
    # Stale fly entries (windows that fully serialized) are pruned lazily
    # at the next burst; what must never remain is an entry still "in
    # flight" -- that would mean an uncancelled delivery or a lost NAK.
    assert all(ser_end <= sim.now for _, ser_end, _, _ in d._burst_fly)
    assert d.credits[VirtualChannel.POSTED].credits == link.credits_per_vc
    assert d.stats.packets == n, "unwound packets must not be double-counted"
    assert fault_counters(sim).link_naks >= 1


def test_pooled_packets_survive_nak_without_recycle_hazard():
    """Satellite (b): a pooled packet NAK'd by ``bring_down`` must NOT
    have been recycled -- a recycled-and-reused flyweight re-sent from
    the txq would deliver another packet's payload.  The unwind path
    cancels the delivery before the consume callback (the only recycler)
    can run, so the image stays intact."""
    sim = Simulator()
    link, fsm = fsm_link(sim)
    pool = pool_for(sim)
    n = 8
    pkts = [pool.posted_write(0x3000 + 64 * i, bytes([0x40 + i] * 24))
            for i in range(n)]
    base_recycled = pool.recycled
    got = []

    def rx():
        while len(got) < n:
            p = yield link.receive(LinkSide.B)
            got.append((p.addr, bytes(p.data)))
            pool.recycle(p)  # the consumer owns the packet now

    def tx():
        for p in pkts:
            yield link.send(LinkSide.A, p)

    sim.process(rx())
    sim.process(tx())
    sim.schedule(20.0, link.bring_down)
    sim.schedule(300.0, fsm.retrain, "warm")
    sim.run(until=1_000_000.0)
    assert [(0x3000 + 64 * i, bytes([0x40 + i] * 24)) for i in range(n)] == got
    # Every pooled packet was recycled exactly once -- by the consumer,
    # never early by the cancelled delivery path.
    assert pool.recycled == base_recycled + n


# ---------------------------------------------------------------------------
# Fail-down and rate recovery.
# ---------------------------------------------------------------------------

def test_retry_exhaustion_fails_down_to_narrower_width():
    sim = Simulator()
    link = make_active_link(sim, ber=1.0)
    link.max_retries = 2
    link.fail_down_threshold = 3
    w0 = link.width_bits
    for i in range(3):
        link.send(LinkSide.A, make_posted_write(0x1000 + 64 * i, b"\x00" * 4))
    sim.run()
    assert link.fail_downs >= 1
    assert link.width_bits < w0 or link.gbit_per_lane < 0.4
    assert fault_counters(sim).link_fail_downs == link.fail_downs


def test_warm_retrain_restores_programmed_rate_after_fail_down():
    sim = Simulator()
    link, fsm = fsm_link(sim)
    fsm.program_rate(LinkSide.A, 16, 0.8)
    fsm.program_rate(LinkSide.B, 16, 0.8)
    fsm.retrain("warm")
    sim.run()
    assert (link.width_bits, link.gbit_per_lane) == (16, 0.8)
    link._fail_down()
    assert link.width_bits < 16
    fsm.retrain("warm")
    sim.run()
    assert (link.width_bits, link.gbit_per_lane) == (16, 0.8), (
        "a warm retrain re-applies the personas' programmed rate"
    )


def test_retrain_refuses_permanently_dead_link():
    sim = Simulator()
    link, fsm = fsm_link(sim)
    link.bring_down()
    link.dead = True
    with pytest.raises(LinkTrainingError, match="dead"):
        fsm.retrain("warm")
    with pytest.raises(LinkDownError):
        link.activate("noncoherent")


# ---------------------------------------------------------------------------
# Satellite (c): linkinit failure paths.
# ---------------------------------------------------------------------------

def test_program_rate_beyond_capability_is_refused():
    sim = Simulator()
    link = Link(sim, "tcc")
    fsm = LinkInitFSM(sim, link)
    cap = fsm.persona(LinkSide.A).max_gbit_per_lane
    with pytest.raises(LinkTrainingError, match="capability"):
        fsm.program_rate(LinkSide.A, 16, cap * 2)


def test_warm_reset_skew_beyond_tolerance_fails_both_waiters():
    sim = Simulator()
    link, fsm = fsm_link(sim, skew_tolerance_ns=50.0)
    ev_a = fsm.assert_reset(LinkSide.A, "warm")
    sim.run(until=sim.now + 500.0)
    ev_b = fsm.assert_reset(LinkSide.B, "warm")
    sim.run()
    assert ev_a.triggered and not ev_a.ok
    assert ev_b.triggered and not ev_b.ok
    # Training never started, so the already-active link is untouched
    # (the failed handshake reports the error without taking it down).
    assert link.state == LinkState.ACTIVE


# ---------------------------------------------------------------------------
# Requester-side read retry: a coherent link death mid-read no longer
# surfaces LinkDownError to the loading core.
# ---------------------------------------------------------------------------

def test_remote_read_survives_link_kill_before_request_leaves():
    """The link dies before the read request serializes: the requester
    parks on the up-gate (its SrcTag released) and re-issues once the
    link reactivates, so the core's load completes with the right data."""
    proto = build_single_board_prototype().boot()
    sim = proto.sim
    proto.node1.memory.write(0x400, b"SURVIVES")
    got = {}

    def scenario():
        got["data"] = yield from proto.node0.cores[0].load(M256 + 0x400, 8)

    proto.coherent_link.bring_down()
    done = sim.process(scenario())
    sim.schedule(5_000.0, proto.coherent_link.activate, "coherent")
    sim.run_until_event(done)
    assert got["data"] == b"SURVIVES"
    assert proto.node0.nb.counters["remote_reads"] >= 1


def test_remote_read_survives_link_kill_mid_flight():
    """The kill lands while the request/response exchange is on the wire
    (a few ns after issue): between link-level NAK redelivery and the
    requester retry loop the read must still complete after retrain."""
    proto = build_single_board_prototype().boot()
    sim = proto.sim
    proto.node1.memory.write(0x800, b"MIDFLGHT")
    got = {}

    def scenario():
        got["data"] = yield from proto.node0.cores[0].load(M256 + 0x800, 8)

    done = sim.process(scenario())
    sim.schedule(8.0, proto.coherent_link.bring_down)
    sim.schedule(4_000.0, proto.coherent_link.activate, "coherent")
    sim.run_until_event(done)
    assert got["data"] == b"MIDFLGHT"


def test_remote_read_fails_typed_when_link_never_returns():
    """The patience window bounds the retry: a permanently dead egress
    still fails the load with LinkDownError instead of hanging."""
    proto = build_single_board_prototype().boot()
    sim = proto.sim
    nb = proto.node0.nb
    proto.coherent_link.bring_down()
    proto.coherent_link.dead = True
    t0 = sim.now
    ev = nb.cpu_read(M256 + 0x100, 8)
    sim.run(until=t0 + 10 * nb.link_down_wait_ns)
    assert ev.triggered and not ev.ok
    assert isinstance(ev.value, LinkDownError)
    assert sim.now - t0 >= nb.link_down_wait_ns


def test_bring_down_during_training_window_recovers_with_next_retrain():
    """A flap landing while a retrain is already in progress must not
    wedge the FSM: the training process itself calls ``bring_down`` and
    re-activates, so a second retrain converges."""
    sim = Simulator()
    link, fsm = fsm_link(sim)
    fsm.retrain("warm")
    sim.run(until=sim.now + 1.0)  # training in progress
    link.bring_down()
    ev = fsm.retrain("warm")
    sim.run()
    assert ev.ok
    assert link.state == LinkState.ACTIVE


# ---------------------------------------------------------------------------
# Route-table pressure flood: MMIO interval overflow degrades to a fatal
# route vector instead of raising out of the injector.
# ---------------------------------------------------------------------------

def _flooded_cluster(topo, targets, spacing_ns=1_000.0):
    from repro.cluster import TCCluster
    from repro.faults import FaultInjector, FaultKind, FaultPlan

    # arm() schedules at_ns relative to now (post-boot).
    plan = FaultPlan()
    for k, tgt in enumerate(targets):
        plan.add(spacing_ns * (k + 1), FaultKind.LINK_KILL, tgt)
    cl = TCCluster(topo, memory_bytes=16 * MiB).boot()
    inj = FaultInjector(cl, plan)
    inj.arm()
    cl.run(until=cl.sim.now + spacing_ns * (len(targets) + 4))
    return cl, inj


def test_route_pressure_flood_survives_interval_overflow():
    """torus3d(4,4,4) with six chosen link kills overflows the 16-entry
    MMIO interval budget on at least one supernode; the default injector
    route manager must flood a fatal route vector and keep running
    instead of raising RouteError."""
    from repro.topology import torus3d

    cl, inj = _flooded_cluster(torus3d(4, 4, 4),
                               [103, 77, 122, 91, 149, 55])
    fc = fault_counters(cl.sim)
    assert len(inj.fired) == 6
    assert fc.pressure_floods >= 1
    assert fc.fatal_broadcasts >= fc.pressure_floods
    assert inj.routes.pressure_flooded, "no supernode was floored"


@pytest.mark.slow
def test_route_pressure_flood_torus8_multi_kill():
    """torus3d(8,8,8) regression: three early link kills floor exactly
    the three touched supernodes (one fatal broadcast each) and the
    simulation keeps running past the plan."""
    from repro.topology import torus3d

    cl, inj = _flooded_cluster(torus3d(8, 8, 8), [0, 1, 2])
    fc = fault_counters(cl.sim)
    assert fc.pressure_floods == 3
    assert fc.fatal_broadcasts == 3
    assert inj.routes.pressure_flooded == [0, 64, 448]
