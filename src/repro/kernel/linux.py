"""A minimal Linux model: the three facilities TCCluster touches.

Paper Section VI: "As the operating system we run Linux with a custom
2.6.34 kernel.  We needed to compile our own Kernel to comply with a
limitation of TCCluster caused by interrupts. ... all system management
calls (SMC) need to be disabled which can be only achieved with a custom
kernel."

:class:`Kernel` therefore models exactly:

* boot-time SMC/interrupt-broadcast suppression (``custom=True``; a stock
  kernel leaves SMC generation on and is unsafe on a TCCluster),
* the mode switch ("The OS also switches the system from 32 bit protected
  mode into 64 bit user mode") as a boot stage,
* user processes with page tables and **numactl-style core binding**
  (Section VI measures multi-hop latency "by binding the benchmark
  process to different processor sockets using numactl"),
* loading the tccluster driver.

User code runs as simulation generators; :class:`UserProcess` exposes
``store/load/sfence`` that enforce the page table and then execute on the
bound core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..firmware.board import Board
from ..firmware.boot import BootReport
from ..opteron import CpuCore, OpteronChip
from ..opteron.mtrr import MemoryType
from ..sim import Simulator
from .driver import TccDriver
from .pagetable import Mapping, PageFault, PageTable

__all__ = ["Kernel", "UserProcess", "KernelError", "KernelPanic"]

#: Boot cost: decompress + init + driver probe (virtual ns; coarse).
OS_BOOT_NS = 50_000.0


class KernelError(RuntimeError):
    pass


class KernelPanic(KernelError):
    pass


class UserProcess:
    """A user-space process bound to one core (numactl semantics)."""

    def __init__(self, kernel: "Kernel", name: str, core: CpuCore):
        self.kernel = kernel
        self.sim = kernel.sim
        self.name = name
        self.core = core
        self.pagetable = PageTable(name=f"{name}.pt")

    # -- numactl ------------------------------------------------------------
    def bind_to(self, chip_index: int, core_index: int = 0) -> None:
        """Re-bind to another socket/core (numactl --cpunodebind)."""
        self.core = self.kernel.board.chips[chip_index].cores[core_index]

    @property
    def socket(self) -> int:
        return self.kernel.board.chips.index(self.core.chip)

    # -- memory access (page-table checked, executed on the bound core) -----
    def store(self, addr: int, data: bytes):
        m = self.pagetable.check_store(addr, len(data))
        # The mapping's memory type (PAT) governs user accesses.  The
        # mtype dispatch is inlined here (instead of delegating through
        # ``core.store``) to shed one generator frame from the hottest
        # call chain in the simulator -- the streaming WC store path.
        core = self.core
        if not data:
            raise ValueError("empty store")
        core.stores += 1
        mtype = m.mtype
        if mtype is None:
            mtype = core.chip.mtrr.type_for_range(addr, len(data))
        if mtype is MemoryType.WC:
            yield from core._store_wc(addr, data)
        elif mtype is MemoryType.UC:
            yield from core._store_uc(addr, data)
        else:
            yield from core._store_wb(addr, data)

    def load(self, addr: int, length: int):
        m = self.pagetable.check_load(addr, length)
        data = yield from self.core.load(addr, length, mtype=m.mtype)
        return data

    def sfence(self):
        yield from self.core.sfence()


class Kernel:
    """One board's operating system instance."""

    def __init__(self, board: Board, report: BootReport, custom: bool = True):
        self.board = board
        self.sim: Simulator = board.sim
        self.report = report
        self.custom = custom
        self.booted = False
        self.mode = "32-bit protected"
        self.drivers: Dict[int, TccDriver] = {}
        self._processes: List[UserProcess] = []

    def boot(self, global_base: int, global_limit: int,
             node_ranges: Optional[Dict[int, tuple]] = None):
        """Generator: bring the OS up and probe the tccluster driver.

        ``node_ranges``: chip_index -> (local_base, local_limit); derived
        from the firmware plan by the cluster builder.
        """
        yield self.sim.timeout(OS_BOOT_NS)
        self.mode = "64-bit long"
        if self.custom:
            # The custom kernel's defining change: no SMC broadcasts.
            for chip in self.board.chips:
                chip.misc_control().smc_enabled = False
        if node_ranges:
            for ci, (lb, ll) in node_ranges.items():
                self.drivers[ci] = TccDriver(
                    self.board.chips[ci], lb, ll, global_base, global_limit
                )
        self.booted = True
        return self

    def driver_for(self, chip_index: int = 0) -> TccDriver:
        if not self.booted:
            raise KernelError("OS not booted")
        try:
            return self.drivers[chip_index]
        except KeyError:
            raise KernelError(f"no tccluster driver on chip {chip_index}")

    def spawn(self, name: str, chip_index: int = 0, core_index: int = 0) -> UserProcess:
        if not self.booted:
            raise KernelError("cannot spawn before boot")
        chip = self.board.chips[chip_index]
        proc = UserProcess(self, name, chip.cores[core_index])
        self._processes.append(proc)
        return proc

    def smc_safe(self) -> bool:
        """True when no chip can originate SMC broadcasts (TCC-safe)."""
        return all(not c.misc_control().smc_enabled for c in self.board.chips)
