#!/usr/bin/env python3
"""Scale-out study: a 4x4 TCCluster blade mesh, physical checks included.

Walks the full deployment story of paper Section IV.E/F:

1. plan the topology and the contiguous global address space (interval
   routing feasibility is validated during assignment),
2. check the *physical* constraints: blade placement against the trace
   budget, and the single-oscillator mesochronous clock tree,
3. boot all 16 blades (synchronized resets, per-blade firmware),
4. run a 16-rank MPI job: allreduce + personalized all-to-all,
5. report per-link utilization.

Run:  python examples/scaleout_mesh.py
"""

import numpy as np

from repro import TCClusterSystem
from repro.middleware import Communicator
from repro.topology import mesh2d, place_blades, plan_clock_tree, uniform_cluster
from repro.util.units import MiB, fmt_time_ns

ROWS = COLS = 4


def main() -> None:
    topo = mesh2d(ROWS, COLS)
    print(f"Topology: {ROWS}x{COLS} mesh, {len(topo.edges)} TCC links")

    # -- 1. address space -------------------------------------------------
    amap = uniform_cluster(topo, 256 * MiB)
    print(f"Global address space: [{amap.base:#x}, {amap.limit:#x}) "
          f"({(amap.limit - amap.base) // MiB} MiB)")
    worst = max(len(amap.plan_for(s, 0).mmio) for s in range(topo.num_supernodes))
    print(f"  max MMIO base/limit pairs used per node: {worst} of 8")

    # -- 2. physical feasibility ------------------------------------------
    placement = place_blades(topo)
    print(f"Placement: max cable run {placement.max_run_mm:.0f} mm "
          f"(budget {placement.limit_mm:.0f} mm, coax) -> "
          f"{'FEASIBLE' if placement.feasible else 'INFEASIBLE'}")
    clock = plan_clock_tree(topo.num_supernodes)
    print(f"Clock tree: {clock.levels} levels, {clock.buffers} buffers, "
          f"~{clock.skew_ps:.0f} ps skew (mesochronous: "
          f"{'ok' if clock.mesochronous_ok else 'NOT ok'})")

    # -- 3. boot ------------------------------------------------------------
    print("Booting 16 blades...")
    system = TCClusterSystem(topo).boot()
    print(f"  up at t = {fmt_time_ns(system.sim.now)}; "
          f"{sum(r.tcc_links_verified for r in system.cluster.reports)} "
          "TCC link ends verified non-coherent")

    # -- 4. a 16-rank job -----------------------------------------------------
    comms = [Communicator(system.cluster.library(r))
             for r in range(system.nranks)]
    out = {}

    def worker(c):
        local = np.arange(8, dtype=np.float64) + c.rank
        total = yield from c.allreduce(local, op="sum")
        blocks = [bytes([c.rank]) * 32 for _ in range(c.size)]
        got = yield from c.alltoall(blocks)
        yield from c.barrier()
        return total, got

    start = system.sim.now
    procs = [system.process(worker, c) for c in comms]
    system.run_until(system.sim.all_of(procs))
    elapsed = system.sim.now - start
    total, got = procs[0].value
    expected0 = sum(range(16)) + 16 * 0  # element 0 of the allreduce
    print(f"Job: allreduce + all-to-all + barrier across 16 ranks in "
          f"{fmt_time_ns(elapsed)}")
    print(f"  allreduce[0] = {total[0]:.0f} (expected {expected0})")
    assert total[0] == expected0
    assert all(got[src] == bytes([src]) * 32 for src in range(16))

    # -- 5. link utilization -----------------------------------------------
    stats = [(l.name, l.stats('A').packets + l.stats('B').packets)
             for l in system.cluster.tcc_links]
    stats.sort(key=lambda x: -x[1])
    print("Busiest TCC links:")
    for name, pkts in stats[:4]:
        print(f"  {name}: {pkts} packets")
    quiet = sum(1 for _, p in stats if p == 0)
    print(f"  ({quiet} of {len(stats)} links saw no traffic in this job)")


if __name__ == "__main__":
    main()
