"""Metrics registry: named counters, gauges, log-bucketed histograms.

The registry is the instrumentation backbone of the simulator.  Hardware
and library models record into it from their hot paths, so it follows the
same contract :class:`~repro.sim.trace.Tracer` documents: **near-zero
cost when disabled**.  Every instrumentation site is guarded by a single
attribute read (``if registry.enabled:``), and a registry starts
disabled; the Figure 6/7 sweeps therefore pay nothing unless a caller
opts in via :func:`enable_metrics`.

One registry exists per :class:`~repro.sim.engine.Simulator` (attached
lazily by :func:`metrics_for`), so every component of one simulated
cluster -- links, northbridges, endpoints -- shares a namespace and a
single snapshot covers the whole machine.

Metric kinds:

* **counter** -- monotonically increasing int/float (packets, stalls),
* **gauge** -- last-value (queue depth) with an optional tracked max,
* **histogram** -- :class:`LogHistogram`, power-of-two bucketed samples
  with percentile estimation (latency distributions),
* **accumulator** -- re-exported :class:`IntervalAccumulator` for
  time-weighted averages (occupancy, utilization).

The registry also provides the cross-process *message latency pairing*
used by the message library: the sending endpoint stamps
``note_send(src, dst)``, the receiving endpoint pops the stamp with
``pop_send(src, dst)`` (delivery is FIFO per directed pair, so a deque
per pair is exact).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Deque, Dict, Optional, Tuple

from ..sim.trace import IntervalAccumulator

__all__ = [
    "LogHistogram",
    "MetricsRegistry",
    "metrics_for",
    "enable_metrics",
    "datapath_counters",
    "FaultCounters",
    "fault_counters",
    "FlowCounters",
    "flow_counters",
    "CollectiveCounters",
    "collective_counters",
    "BootImageCounters",
    "boot_image_counters",
]


class LogHistogram:
    """Histogram with power-of-two buckets, built for latency in ns.

    Bucket ``i`` covers ``[2**i, 2**(i+1))``; values below 1 land in
    bucket 0.  Percentiles interpolate linearly inside the bucket, which
    is accurate enough for regression detection (the golden harness
    compares p50/p99 under a relative tolerance).
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = defaultdict(int)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @staticmethod
    def bucket_of(value: float) -> int:
        if value < 1.0:
            return 0
        return max(0, int(value).bit_length() - 1)

    def add(self, value: float) -> None:
        self.buckets[self.bucket_of(value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        for b, n in other.buckets.items():
            self.buckets[b] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0..100)."""
        if not self.count:
            return float("nan")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        target = p / 100.0 * self.count
        seen = 0
        for b in sorted(self.buckets):
            n = self.buckets[b]
            if seen + n >= target:
                lo, hi = float(1 << b), float(1 << (b + 1))
                frac = (target - seen) / n
                est = lo + frac * (hi - lo)
                # Clamp to the observed range: a single-bucket histogram
                # must not report beyond its true min/max.
                return max(self.min, min(self.max, est))
            seen += n
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (sparse buckets, keyed by lower bound)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": {str(1 << b): n for b, n in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LogHistogram n={self.count} p50={self.percentile(50):.1f}>"


class MetricsRegistry:
    """Shared, named metrics for one simulator.  Starts disabled."""

    def __init__(self) -> None:
        self.enabled = False
        self.counters: Dict[str, float] = defaultdict(int)
        self.gauges: Dict[str, float] = {}
        self.gauge_max: Dict[str, float] = {}
        self.histograms: Dict[str, LogHistogram] = {}
        self.accumulators: Dict[str, IntervalAccumulator] = {}
        self._inflight: Dict[Tuple[int, int], Deque[float]] = defaultdict(deque)

    # -- recording (call sites guard on .enabled themselves) -------------
    def inc(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value
        if value > self.gauge_max.get(name, float("-inf")):
            self.gauge_max[name] = value

    def histogram(self, name: str) -> LogHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = LogHistogram()
        return h

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.histogram(name).add(value)

    def accumulator(self, name: str) -> IntervalAccumulator:
        a = self.accumulators.get(name)
        if a is None:
            a = self.accumulators[name] = IntervalAccumulator()
        return a

    def track(self, name: str, time: float, value: float) -> None:
        """Time-weighted sample (occupancy-style) plus max gauge."""
        if not self.enabled:
            return
        a = self.accumulators.get(name)
        if a is None:
            a = self.accumulators[name] = IntervalAccumulator()
        a.update(time, value)
        gm = self.gauge_max
        prev = gm.get(name)
        if prev is None or value > prev:
            gm[name] = value

    # -- message latency pairing -----------------------------------------
    def note_send(self, src: int, dst: int, time: float) -> None:
        if not self.enabled:
            return
        self._inflight[(src, dst)].append(time)

    def pop_send(self, src: int, dst: int) -> Optional[float]:
        q = self._inflight.get((src, dst))
        if not q:
            return None
        return q.popleft()

    def inflight(self, src: int, dst: int) -> int:
        return len(self._inflight.get((src, dst), ()))

    # -- snapshot / diff ---------------------------------------------------
    def snapshot(self, now: float) -> Dict[str, Any]:
        """One JSON-ready view of everything recorded so far."""
        return {
            "time_ns": now,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_max": dict(self.gauge_max),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            "accumulators": {
                k: {"avg": a.average(now), "samples": a.samples}
                for k, a in self.accumulators.items()
            },
        }

    @staticmethod
    def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
        """Counter deltas between two snapshots (new keys count from 0)."""
        b = before.get("counters", {})
        a = after.get("counters", {})
        out = {k: v - b.get(k, 0) for k, v in a.items() if v != b.get(k, 0)}
        return {
            "time_ns": after.get("time_ns", 0) - before.get("time_ns", 0),
            "counters": out,
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.gauge_max.clear()
        self.histograms.clear()
        self.accumulators.clear()
        self._inflight.clear()


def metrics_for(sim) -> MetricsRegistry:
    """The (lazily created) registry of one simulator."""
    reg = getattr(sim, "_obs_metrics", None)
    if reg is None:
        reg = MetricsRegistry()
        sim._obs_metrics = reg
    return reg


def enable_metrics(sim) -> MetricsRegistry:
    """Turn on metrics collection for ``sim``; returns the registry."""
    reg = metrics_for(sim)
    reg.enabled = True
    return reg


class FaultCounters:
    """Always-on fault/recovery counter family of one simulator.

    Mirrors the :func:`datapath_counters` contract: plain integer
    attributes bumped directly by the recovery machinery (link pumps,
    init FSM retrains, endpoints, route manager, injector), so the cost
    is one attribute increment per *recovery* action and exactly zero
    when no faults occur.  Not part of the golden distilled metrics.
    """

    __slots__ = (
        "faults_injected",
        "retrains",
        "retransmits",
        "backoff_ns_total",
        "reroutes",
        "messages_expired",
        "session_resets",
        "link_naks",
        "link_fail_downs",
        "packets_dropped",
        "packets_salvaged",
        "fatal_broadcasts",
        "pressure_floods",
        "node_crashes",
        "node_rejoins",
        "crash_lines_discarded",
        "crash_wc_bytes_discarded",
        "crash_slots_discarded",
        "crash_packets_discarded",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        hot = {k: v for k, v in self.as_dict().items() if v}
        return f"<FaultCounters {hot or 'clean'}>"


def fault_counters(sim) -> "FaultCounters":
    """The (lazily created) fault-recovery counters of one simulator."""
    fc = getattr(sim, "_fault_counters", None)
    if fc is None:
        fc = FaultCounters()
        sim._fault_counters = fc
    return fc


class FlowCounters:
    """Always-on macro-event (adaptive fidelity) counter family.

    Covers both the WC store trains (:mod:`repro.opteron.train`) and the
    flow-level layer (:mod:`repro.sim.flows`).  Like
    :class:`FaultCounters` these are plain attributes bumped directly by
    the fast paths -- one increment per *window*, not per packet -- and
    are not part of the golden distilled metrics: they describe how much
    of the workload rode a fast path (the macro-event hit rate published
    per scenario by ``benchmarks/bench_wallclock.py``), not the model.
    """

    __slots__ = (
        "slot_windows",
        "slot_slots",
        "read_windows",
        "read_reads",
        "read_demotions",
        "forward_windows",
        "forward_packets",
        "forward_demotions",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        hot = {k: v for k, v in self.as_dict().items() if v}
        return f"<FlowCounters {hot or 'idle'}>"


def flow_counters(sim) -> "FlowCounters":
    """The (lazily created) macro-event counters of one simulator."""
    fl = getattr(sim, "_flow_counters", None)
    if fl is None:
        fl = FlowCounters()
        sim._flow_counters = fl
    return fl


class CollectiveCounters:
    """Always-on collective-operation counter family.

    Bumped once per rank per collective entered through the middleware
    dispatchers (``allreduce``/``bcast``/``alltoall``/``reduce``/
    ``reduce_scatter``); nested constituent calls (e.g. the binomial
    allreduce's internal reduce+bcast) are not double-counted.  Like
    :class:`FaultCounters`/:class:`FlowCounters` these are not part of
    the golden distilled metrics -- they record which algorithm the
    size-adaptive selector actually picked and how many payload bytes
    each collective carried, the evidence the collectives benchmark and
    tests read back.
    """

    __slots__ = ("ops", "payload_bytes", "algorithms")

    def __init__(self) -> None:
        self.ops = 0
        self.payload_bytes = 0
        #: ``"op.algorithm" -> count``, e.g. ``{"allreduce.ring": 3}``.
        self.algorithms: Dict[str, int] = {}

    def record(self, op: str, algorithm: str, nbytes: int) -> None:
        self.ops += 1
        self.payload_bytes += nbytes
        key = f"{op}.{algorithm}"
        self.algorithms[key] = self.algorithms.get(key, 0) + 1

    def as_dict(self) -> Dict:
        return {
            "ops": self.ops,
            "payload_bytes": self.payload_bytes,
            "algorithms": dict(sorted(self.algorithms.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CollectiveCounters {self.as_dict() if self.ops else 'idle'}>"


def collective_counters(sim) -> "CollectiveCounters":
    """The (lazily created) collective counters of one simulator."""
    cc = getattr(sim, "_collective_counters", None)
    if cc is None:
        cc = CollectiveCounters()
        sim._collective_counters = cc
    return cc


class BootImageCounters:
    """Process-global boot-image counter family.

    Unlike the per-simulator families above, boot images span simulators
    (one image seeds many restored systems, possibly in pool workers), so
    these counters live at process scope: ``built`` counts cold boots
    captured into images, ``restored`` counts systems instantiated from
    an image, and ``cache_hits`` counts :func:`repro.cluster.snapshot.
    image_for` lookups satisfied without booting.  Sweep points publish
    *deltas* of these as payload metrics so a parallel run's merged
    report proves image reuse across workers (the CI DSE smoke asserts
    built == distinct signatures, restored == points).
    """

    __slots__ = ("built", "restored", "cache_hits")

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover
        hot = {k: v for k, v in self.as_dict().items() if v}
        return f"<BootImageCounters {hot or 'cold'}>"


_BOOT_IMAGE_COUNTERS = BootImageCounters()


def boot_image_counters() -> "BootImageCounters":
    """The process-global boot-image counters (build/restore/cache-hit)."""
    return _BOOT_IMAGE_COUNTERS


def datapath_counters(sim, memories=()) -> Dict[str, int]:
    """Zero-copy data-plane counter family (always-on, registry-free).

    ``packets_alloc``/``packets_pooled``/``packets_recycled`` come from
    the simulator's :class:`~repro.ht.packet.PacketPool` (zeros before
    the first posted write); ``bytes_copied`` sums the page-commit copy
    accounting of the given :class:`~repro.opteron.memory.Memory`
    objects.  These are *not* part of the golden distilled metrics --
    they describe the simulator's execution cost, not the model -- and
    are published by ``benchmarks/bench_wallclock.py``.
    """
    pool = getattr(sim, "_packet_pool", None)
    return {
        "packets_alloc": pool.allocated if pool is not None else 0,
        "packets_pooled": pool.reused if pool is not None else 0,
        "packets_recycled": pool.recycled if pool is not None else 0,
        "bytes_copied": sum(m.bytes_copied for m in memories),
    }
