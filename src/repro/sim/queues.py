"""Blocking queues and resources for simulation processes.

These primitives model the hardware FIFOs that dominate interconnect
behaviour: bounded buffers with back-pressure (:class:`Store`), counting
credits (:class:`CreditPool`, the HT flow-control abstraction) and mutual
exclusion (:class:`Resource`, used e.g. for the single outgoing link port of
a northbridge).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Event, Simulator, SimulationError

__all__ = ["Store", "Resource", "CreditPool", "Gate", "Barrier"]


class Store:
    """A bounded FIFO with blocking put/get, FCFS on both sides.

    ``capacity=None`` means unbounded (an ideal queue); hardware models
    always pass a finite capacity so back-pressure propagates.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is accepted."""
        ev = Event(self.sim, name=f"{self.name}.put")
        if not self.is_full and not self._putters:
            self._items.append(item)
            ev.succeed()
            self._wake_getter()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self.is_full or self._putters:
            return False
        self._items.append(item)
        self._wake_getter()
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_putter()
        return True, item

    def peek(self) -> Any:
        """Look at the head item without removing it (raises if empty)."""
        if not self._items:
            raise SimulationError(f"peek on empty store {self.name!r}")
        return self._items[0]

    def _wake_getter(self) -> None:
        while self._getters and self._items:
            ev = self._getters.popleft()
            ev.succeed(self._items.popleft())
            self._admit_putter()

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self._items.append(item)
            ev.succeed()
            self._wake_getter()


class Resource:
    """A counting semaphore with FCFS acquisition.

    Typical use::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.acquire")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def locked_by_anyone(self) -> bool:
        return self._in_use >= self.capacity


class CreditPool:
    """Counting credits with blocking take -- the HT flow-control primitive.

    The receiver of an HT link grants N buffer credits per virtual channel;
    the transmitter must take a credit before sending a packet and the
    receiver returns it when the buffer frees.  Modeled as a counter that
    never exceeds ``initial``.
    """

    def __init__(self, sim: Simulator, initial: int, name: str = ""):
        if initial < 0:
            raise ValueError(f"initial credits must be >= 0, got {initial}")
        self.sim = sim
        self.name = name
        self.initial = initial
        self._credits = initial
        self._waiters: Deque[tuple] = deque()  # (event, amount)

    @property
    def credits(self) -> int:
        return self._credits

    def take(self, amount: int = 1) -> Event:
        """Event fires once ``amount`` credits have been obtained."""
        if amount <= 0:
            raise ValueError(f"credit amount must be positive, got {amount}")
        if amount > self.initial:
            raise SimulationError(
                f"{self.name!r}: requesting {amount} credits but pool "
                f"maximum is {self.initial} (would deadlock)"
            )
        ev = Event(self.sim, name=f"{self.name}.take")
        if self._credits >= amount and not self._waiters:
            self._credits -= amount
            ev.succeed()
        else:
            self._waiters.append((ev, amount))
        return ev

    def try_take(self, amount: int = 1) -> bool:
        if self._waiters or self._credits < amount:
            return False
        self._credits -= amount
        return True

    def give(self, amount: int = 1) -> None:
        """Return credits (receiver freed buffer space)."""
        if amount <= 0:
            raise ValueError(f"credit amount must be positive, got {amount}")
        self._credits += amount
        if self._credits > self.initial:
            raise SimulationError(
                f"{self.name!r}: credit overflow ({self._credits} > {self.initial})"
            )
        while self._waiters and self._credits >= self._waiters[0][1]:
            ev, amt = self._waiters.popleft()
            self._credits -= amt
            ev.succeed()


class Gate:
    """A level-triggered condition: processes wait until the gate is open.

    Unlike :class:`repro.sim.engine.Event` a gate can open and close
    repeatedly; used e.g. for 'warm reset asserted' and barrier releases.
    """

    def __init__(self, sim: Simulator, open_: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._open = open_
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.wait")
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def open(self) -> None:
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False


class Barrier:
    """An n-party rendezvous, reusable across generations.

    Models synchronized hardware rails (the TCCluster backplane's common
    warm-reset signal) as well as software barriers: the event returned by
    :meth:`arrive` fires when all ``parties`` have arrived in the current
    generation, after which the barrier resets for the next use.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = ""):
        if parties <= 0:
            raise ValueError(f"parties must be positive, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self.generation = 0
        self._waiting: List[Event] = []

    def arrive(self) -> Event:
        ev = Event(self.sim, name=f"{self.name}.arrive")
        self._waiting.append(ev)
        if len(self._waiting) >= self.parties:
            waiting, self._waiting = self._waiting, []
            self.generation += 1
            gen = self.generation
            for w in waiting:
                w.succeed(gen)
        return ev

    @property
    def waiting(self) -> int:
        return len(self._waiting)
