"""Global address-space construction under interval-routing constraints.

Paper Section IV.D:

    "One can see that the address map ... shows a contiguous global address
    space ... A contiguous address space is necessary as the northbridge
    implements interval routing mechanism which can only map single
    contiguous address intervals to each outgoing HyperTransport link.
    Memory holes within a node specific address space are, therefore,
    impossible."

Given a :class:`~repro.topology.graph.ClusterTopology` and per-node DRAM
sizes, this module

1. assigns every supernode a contiguous slice of the global physical
   address space (in supernode index order),
2. computes, for every node, the DRAM directives (its own and its
   coherent peers' ranges) and the MMIO directives (remote slices grouped
   by exit link, merged into contiguous intervals),
3. **validates** the interval-routing constraints: intervals per link must
   be contiguous merges, the per-node entry count must fit the eight
   base/limit register pairs, and each node's map must tile the global
   space without holes.

Routing comes from :meth:`ClusterTopology.shortest_next_hops`:
dimension-ordered (most significant dimension first) on grid topologies,
BFS shortest-path on general graphs.  With row-major supernode numbering,
dimension-ordered routing makes every exit direction's destination set a
union of at most ~3 contiguous address runs **per dimension** -- the
*folded interval* scheme -- so a supernode needs O(degree + log N) MMIO
base/limit pairs instead of O(N), independent of cluster size (see
:func:`folded_mmio_bound`).  BFS on irregular graphs may fragment
intervals; the validator then counts whether the map still fits the
registers.

The 48-bit physical address space caps the cluster ("the combined global
address space in TCCluster is currently limited to 256 Terabyte").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..opteron.registers import GRANULARITY, NUM_MAP_ENTRIES, NUM_MMIO_ENTRIES
from .graph import ClusterTopology, Endpoint, TccEdge, TopologyError

__all__ = [
    "NodeSpec",
    "SupernodeSpec",
    "DramDirective",
    "MmioDirective",
    "NodeMapPlan",
    "GlobalAddressMap",
    "AddressAssignmentError",
    "assign_addresses",
    "exit_intervals",
    "folded_mmio_bound",
    "uniform_cluster",
]

PHYS_LIMIT = 1 << 48  # 256 TB


class AddressAssignmentError(ValueError):
    """The requested cluster cannot be expressed with interval routing."""


@dataclass(frozen=True)
class NodeSpec:
    """One processor within a supernode."""

    dram_bytes: int

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0 or self.dram_bytes % GRANULARITY:
            raise AddressAssignmentError(
                f"node DRAM size {self.dram_bytes:#x} must be a positive "
                f"multiple of {GRANULARITY:#x}"
            )


@dataclass(frozen=True)
class SupernodeSpec:
    """A board: 1..8 coherent processors."""

    nodes: Tuple[NodeSpec, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.nodes) <= 8:
            raise AddressAssignmentError(
                "a supernode holds 1..8 processors (coherent fabric limit)"
            )

    @property
    def total_bytes(self) -> int:
        return sum(n.dram_bytes for n in self.nodes)


@dataclass(frozen=True)
class DramDirective:
    """Program one DRAM base/limit pair: [base, limit) homed at dst_node."""

    base: int
    limit: int
    dst_node: int


@dataclass(frozen=True)
class MmioDirective:
    """Program one MMIO pair: [base, limit) exits the supernode through
    ``exit_port`` on ``exit_node``."""

    base: int
    limit: int
    exit_node: int
    exit_port: int


@dataclass
class NodeMapPlan:
    """Everything firmware must program into one node's F1 registers."""

    supernode: int
    node: int
    dram: List[DramDirective] = field(default_factory=list)
    mmio: List[MmioDirective] = field(default_factory=list)

    def local_dram_base(self) -> int:
        for d in self.dram:
            if d.dst_node == self.node:
                return d.base
        raise AddressAssignmentError("node has no local DRAM directive")


@dataclass
class GlobalAddressMap:
    """The cluster-wide outcome of address assignment."""

    topology: ClusterTopology
    specs: Tuple[SupernodeSpec, ...]
    base: int
    supernode_ranges: List[Tuple[int, int]]
    plans: Dict[Tuple[int, int], NodeMapPlan]

    @property
    def limit(self) -> int:
        return self.supernode_ranges[-1][1] if self.supernode_ranges else self.base

    def plan_for(self, supernode: int, node: int) -> NodeMapPlan:
        return self.plans[(supernode, node)]

    def supernode_of_addr(self, addr: int) -> int:
        for i, (b, l) in enumerate(self.supernode_ranges):
            if b <= addr < l:
                return i
        raise AddressAssignmentError(f"address {addr:#x} outside the global space")

    def node_range(self, supernode: int, node: int) -> Tuple[int, int]:
        """The global [base, limit) of one node's DRAM."""
        base, _ = self.supernode_ranges[supernode]
        for i, n in enumerate(self.specs[supernode].nodes):
            if i == node:
                return base, base + n.dram_bytes
            base += n.dram_bytes
        raise KeyError(f"no node {node} in supernode {supernode}")


def _merge_ranges(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Coalesce adjacent/overlapping [base, limit) intervals."""
    if not ranges:
        return []
    ranges = sorted(ranges)
    out = [ranges[0]]
    for b, l in ranges[1:]:
        pb, pl = out[-1]
        if b <= pl:
            out[-1] = (pb, max(pl, l))
        else:
            out.append((b, l))
    return out


def exit_intervals(
    topology: ClusterTopology,
    supernode_ranges: Sequence[Tuple[int, int]],
    src: int,
    exclude: Iterable[TccEdge] = (),
) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
    """Folded MMIO intervals for one supernode: the single source of truth
    shared by boot-time assignment and post-fault RouteManager rewrites.

    Returns ``{(exit_node, exit_port): merged [base, limit) runs}`` over
    every remote destination reachable from ``src`` with ``exclude``
    edges dead.  Unreachable destinations are simply absent (the caller
    decides whether that is a hole or a sync-flood condition).
    """
    hops = topology.shortest_next_hops(src, exclude=exclude)
    by_exit: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for dst, edge in hops.items():
        ep = edge.end_at(src)
        by_exit.setdefault((ep.node, ep.port), []).append(supernode_ranges[dst])
    return {key: _merge_ranges(by_exit[key]) for key in sorted(by_exit)}


def folded_mmio_bound(topology: ClusterTopology, supernode: int) -> int:
    """Register-pressure guarantee of the folded scheme: O(degree + log N).

    Dimension-ordered routing over a row-major numbering gives each
    dimension's destination set at most ~3 contiguous runs (the two
    segments around the supernode's own slab plus a wrap cut), so the
    per-supernode MMIO pair count is bounded by the port count plus a
    logarithmic fragmentation term -- never the O(N) a per-remote-node
    table would need.
    """
    n = topology.num_supernodes
    return topology.degree(supernode) + max(1, (max(n - 1, 1)).bit_length())


def assign_addresses(
    topology: ClusterTopology,
    specs: Sequence[SupernodeSpec],
    base: int = 0,
) -> GlobalAddressMap:
    """Compute the global map and every node's register programme."""
    if len(specs) != topology.num_supernodes:
        raise AddressAssignmentError(
            f"{len(specs)} supernode specs for {topology.num_supernodes} vertices"
        )
    if not topology.is_connected():
        raise AddressAssignmentError("topology is not connected")
    if base % GRANULARITY:
        raise AddressAssignmentError(f"base {base:#x} not 16 MiB aligned")

    # 1. contiguous supernode slices in index order
    ranges: List[Tuple[int, int]] = []
    cursor = base
    for spec in specs:
        ranges.append((cursor, cursor + spec.total_bytes))
        cursor += spec.total_bytes
    if cursor > PHYS_LIMIT:
        raise AddressAssignmentError(
            f"global space {cursor:#x} exceeds the 48-bit physical limit "
            "(paper: 256 TB with current processors)"
        )
    global_base, global_limit = base, cursor

    plans: Dict[Tuple[int, int], NodeMapPlan] = {}
    for s, spec in enumerate(specs):
        sn_base, sn_limit = ranges[s]
        # DRAM directives are identical for all nodes of the supernode.
        dram: List[DramDirective] = []
        nb = sn_base
        for node_idx, node in enumerate(spec.nodes):
            dram.append(DramDirective(nb, nb + node.dram_bytes, node_idx))
            nb += node.dram_bytes

        # Remote slices grouped by exit endpoint, folded into runs.
        mmio: List[MmioDirective] = []
        for (exit_node, exit_port), rs in exit_intervals(topology, ranges, s).items():
            for b, l in rs:
                mmio.append(MmioDirective(b, l, exit_node, exit_port))

        for node_idx in range(len(spec.nodes)):
            plan = NodeMapPlan(s, node_idx, dram=list(dram), mmio=list(mmio))
            _validate_plan(plan, spec, global_base, global_limit,
                           topology=topology)
            plans[(s, node_idx)] = plan

    return GlobalAddressMap(topology, tuple(specs), base, ranges, plans)


def _validate_plan(plan: NodeMapPlan, spec: SupernodeSpec,
                   global_base: int, global_limit: int,
                   topology: Optional[ClusterTopology] = None) -> None:
    """Interval-routing feasibility for one node's registers.

    Proves, at any scale, that the node's DRAM + MMIO intervals tile the
    global space exactly once (full coverage, no overlap, no holes --
    paper Fig. 3), fit the register files, and -- on grid topologies --
    respect the folded O(degree + log N) register-pressure bound.
    """
    if len(plan.dram) > NUM_MAP_ENTRIES:
        raise AddressAssignmentError(
            f"supernode {plan.supernode}: {len(plan.dram)} DRAM ranges exceed "
            f"the {NUM_MAP_ENTRIES} base/limit pairs"
        )
    if len(plan.mmio) > NUM_MMIO_ENTRIES:
        raise AddressAssignmentError(
            f"supernode {plan.supernode} node {plan.node}: {len(plan.mmio)} "
            f"MMIO intervals exceed the {NUM_MMIO_ENTRIES} base/limit pairs "
            "(interval routing cannot express this topology/numbering)"
        )
    if topology is not None and topology.is_grid:
        bound = folded_mmio_bound(topology, plan.supernode)
        if len(plan.mmio) > bound:
            raise AddressAssignmentError(
                f"supernode {plan.supernode} node {plan.node}: "
                f"{len(plan.mmio)} MMIO intervals break the folded "
                f"O(degree + log N) bound ({bound}) -- the numbering is "
                "not interval-routing friendly"
            )
    # Hole-free tiling of the global space (paper Fig. 3).
    ivals = [(d.base, d.limit) for d in plan.dram] + [
        (m.base, m.limit) for m in plan.mmio
    ]
    ivals.sort()
    cursor = global_base
    for b, l in ivals:
        if b != cursor:
            raise AddressAssignmentError(
                f"supernode {plan.supernode} node {plan.node}: address map "
                f"has a hole/overlap at {cursor:#x} (next interval {b:#x})"
            )
        cursor = l
    if cursor != global_limit:
        raise AddressAssignmentError(
            f"supernode {plan.supernode} node {plan.node}: map ends at "
            f"{cursor:#x}, global space ends at {global_limit:#x}"
        )


def uniform_cluster(
    topology: ClusterTopology,
    dram_bytes: int,
    nodes_per_supernode: int = 1,
) -> GlobalAddressMap:
    """Convenience: identical supernodes everywhere."""
    spec = SupernodeSpec(tuple(NodeSpec(dram_bytes) for _ in range(nodes_per_supernode)))
    return assign_addresses(topology, [spec] * topology.num_supernodes)
