"""T-coh -- the motivation: coherence overhead grows with node count.

Paper Sections I/III: probe broadcast makes shared memory viable only to
~8 sockets; directory schemes (Horus) "moderately increase the
scalability to 32 nodes"; TCCluster sidesteps both because message
passing has no probe term.
"""

import pytest

from _common import write_result
from repro.bench import run_coherence_scaling, table

NODES = (2, 4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def scaling_points():
    from repro.sim.parallel import resolve_jobs

    jobs = resolve_jobs()
    if jobs > 1:
        from repro.bench.sweep_points import run_coherence_scaling_parallel

        return run_coherence_scaling_parallel(
            node_counts=NODES, ops_per_node=40, jobs=jobs)
    return run_coherence_scaling(node_counts=NODES, ops_per_node=40)


def test_coherence_scaling(benchmark, scaling_points):
    points = scaling_points
    bc = {p.nodes: p for p in points if p.protocol == "broadcast"}
    dr = {p.nodes: p for p in points if p.protocol == "directory"}
    tcc = {p.nodes: p for p in points if p.protocol == "tccluster"}

    # --- probe counts grow proportionally with N (broadcast) -----------
    assert bc[64].probes_per_op > bc[8].probes_per_op * 4
    # broadcast latency blows up super-linearly in the probed regime
    assert bc[64].avg_op_ns > bc[8].avg_op_ns * 4
    # directory stays well below broadcast at scale...
    assert dr[64].avg_op_ns < bc[64].avg_op_ns * 0.75
    assert dr[64].probes_per_op < bc[64].probes_per_op / 4
    # ...but TCCluster's per-op cost grows only with topology distance
    assert tcc[64].avg_op_ns < tcc[2].avg_op_ns * 2.5
    assert tcc[64].avg_op_ns < bc[64].avg_op_ns
    # crossover: small systems favour shared memory (the paper concedes
    # SMPs perform well "for small scale systems of up to 8 or 16 nodes")
    assert bc[2].avg_op_ns < tcc[2].avg_op_ns

    rows = []
    for n in NODES:
        rows.append((n, round(bc[n].avg_op_ns, 1), round(bc[n].probes_per_op, 1),
                     round(dr[n].avg_op_ns, 1), round(tcc[n].avg_op_ns, 1)))
    txt = table(
        ["nodes", "broadcast ns/op", "probes/op", "directory ns/op",
         "tccluster ns/op"],
        rows,
        title="Coherence scaling: why TCCluster abandons cache coherence",
    )
    write_result("coherence_scaling", txt)

    def kernel():
        return run_coherence_scaling(node_counts=(8,), ops_per_node=20,
                                     protocols=("broadcast",))

    result = benchmark(kernel)
    assert result[0].nodes == 8
