"""Cache model: data-holding, LRU, deliberately *not* snooped by TCC writes.

The purpose of this model is behavioural fidelity of the one cache property
TCCluster depends on (paper Section VI):

    "TCCluster transactions cannot generate cache invalidation requests on
    the receiver side.  Therefore, the receiver needs to map the local
    memory which is accessible by the remote nodes as uncachable."

Cached lines hold real byte copies.  Incoming TCCluster posted writes
update DRAM but never touch the cache, so a receive ring mapped write-back
(instead of uncacheable) observably returns stale data -- the integration
tests assert this failure mode, and the MTRR-programming boot step exists
to prevent it.

Capacity/latency are modeled as a three-level hierarchy with the Shanghai
parameters from the calibration module; lookups report which level hit so
the core can charge the right latency.  Intra-chip sharing between the four
cores goes through the shared L3 and is modeled as instantaneous (the
inter-*chip* coherence cost model lives in :mod:`repro.coherence`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import CACHELINE

__all__ = ["CacheHierarchy", "CacheLevel"]


class CacheLevel:
    """One level: an LRU set of line copies."""

    def __init__(self, name: str, capacity_bytes: int, hit_latency_ns: float):
        if capacity_bytes % CACHELINE:
            raise ValueError("cache capacity must be a line multiple")
        self.name = name
        self.capacity_lines = capacity_bytes // CACHELINE
        self.hit_latency_ns = hit_latency_ns
        self._lines: "OrderedDict[int, bytearray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[bytearray]:
        line = self._lines.get(line_addr)
        if line is None:
            self.misses += 1
            return None
        if touch:
            self._lines.move_to_end(line_addr)
        self.hits += 1
        return line

    def fill(self, line_addr: int, data: bytes) -> Optional[Tuple[int, bytes]]:
        """Insert a line; returns the evicted (addr, data) if any."""
        if len(data) != CACHELINE:
            raise ValueError("fill must be a full line")
        evicted = None
        if line_addr not in self._lines and len(self._lines) >= self.capacity_lines:
            old_addr, old_data = self._lines.popitem(last=False)
            evicted = (old_addr, bytes(old_data))
        self._lines[line_addr] = bytearray(data)
        self._lines.move_to_end(line_addr)
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        return self._lines.pop(line_addr, None) is not None

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def __len__(self) -> int:
        return len(self._lines)


class CacheHierarchy:
    """L1 + L2 (per core) + shared L3 of a Shanghai chip.

    Shared across the chip's cores in this model; per-core partitioning is
    not observable by anything TCCluster measures.
    """

    def __init__(self, timing: TimingModel = DEFAULT_TIMING,
                 l1_bytes: int = 64 << 10, l2_bytes: int = 512 << 10,
                 l3_bytes: int = 4 << 20):
        self.timing = timing
        self.l1 = CacheLevel("L1", l1_bytes, timing.l1_hit_ns)
        self.l2 = CacheLevel("L2", l2_bytes, timing.l2_hit_ns)
        self.l3 = CacheLevel("L3", l3_bytes, timing.l3_hit_ns)
        self.levels = (self.l1, self.l2, self.l3)

    @staticmethod
    def line_of(addr: int) -> int:
        return addr & ~(CACHELINE - 1)

    def read_line(self, line_addr: int) -> Tuple[Optional[bytes], float]:
        """Look a line up; returns (data-or-None, latency_ns).

        A hit in an outer level promotes the line inward (simple inclusive
        behaviour).
        """
        latency = 0.0
        for level in self.levels:
            latency += level.hit_latency_ns
            line = level.lookup(line_addr)
            if line is not None:
                if level is not self.l1:
                    self.l1.fill(line_addr, bytes(line))
                return bytes(line), latency
        return None, latency

    def fill_line(self, line_addr: int, data: bytes) -> None:
        """Install a line fetched from DRAM into all levels (inclusive)."""
        for level in self.levels:
            level.fill(line_addr, data)

    def write_line_if_present(self, line_addr: int, offset: int, data: bytes) -> bool:
        """Update cached copies on a WB store (write-through model).

        Returns True if any level held the line.
        """
        if offset + len(data) > CACHELINE:
            raise ValueError("write crosses line boundary")
        present = False
        for level in self.levels:
            line = level.lookup(line_addr, touch=False)
            if line is not None:
                line[offset : offset + len(data)] = data
                present = True
        return present

    def invalidate_line(self, line_addr: int) -> bool:
        """Coherence-probe invalidation (used by the MESI substrate --
        *never* by incoming TCCluster writes; that is the point)."""
        hit = False
        for level in self.levels:
            hit |= level.invalidate(line_addr)
        return hit

    def flush_all(self) -> None:
        for level in self.levels:
            level._lines.clear()

    def discard_all(self) -> int:
        """Drop every cached line copy (hard crash).  The hierarchy is
        write-through so DRAM stays authoritative -- what is lost is the
        warm working set, not data.  Returns the line copies dropped."""
        n = sum(len(level) for level in self.levels)
        self.flush_all()
        return n
