"""Tests for topology graphs, address assignment, physical placement."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    AddressAssignmentError,
    NodeSpec,
    SupernodeSpec,
    TopologyError,
    assign_addresses,
    chain,
    folded_mmio_bound,
    fully_connected,
    mesh2d,
    place_blades,
    plan_clock_tree,
    ring,
    torus2d,
    torus3d,
    uniform_cluster,
)
from repro.topology.placement import COAX_LIMIT_MM, FR4_LIMIT_MM, PlacementConfig
from repro.util.units import MiB

M256 = 256 * MiB


# ---------------------------------------------------------------------------
# Graph builders
# ---------------------------------------------------------------------------

def test_chain_structure():
    t = chain(4)
    assert t.num_supernodes == 4
    assert len(t.edges) == 3
    assert t.degree(0) == 1 and t.degree(1) == 2
    assert t.is_connected()


def test_ring_structure():
    t = ring(5)
    assert len(t.edges) == 5
    assert all(t.degree(i) == 2 for i in range(5))


def test_ring_minimum_size():
    with pytest.raises(TopologyError):
        ring(2)


def test_mesh_structure():
    t = mesh2d(3, 4)
    assert t.num_supernodes == 12
    assert len(t.edges) == 3 * 3 + 2 * 4  # horizontal + vertical
    assert t.degree(0) == 2      # corner
    assert t.degree(5) == 4      # interior (row 1, col 1)


def test_torus_structure():
    t = torus2d(3, 3)
    assert len(t.edges) == 2 * 9
    assert all(t.degree(i) == 4 for i in range(9))


def test_torus3d_structure():
    t = torus3d(4, 4, 4)
    assert t.num_supernodes == 64
    assert len(t.edges) == 3 * 64  # one +dim edge per supernode per dim
    assert all(t.degree(i) == 6 for i in range(64))
    assert t.is_connected()
    assert t.diameter() == 6  # 2 per wrapped axis of size 4
    # Row-major id <-> coordinate round trip.
    assert t.coords_of(0) == (0, 0, 0)
    assert t.supernode_at((3, 2, 1)) == 3 * 16 + 2 * 4 + 1
    # The port plan splits the six directions across the two chips.
    for s in range(64):
        ports = sorted((ep.node, ep.port)
                       for e in t.edges for ep in (e.a, e.b)
                       if ep.supernode == s)
        assert ports == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def test_torus3d_size2_dims_single_edge():
    """Wrapped size-2 axes have one physical link, not two parallel
    ones; both direction signs of that axis resolve to it."""
    t = torus3d(2, 2, 2)
    assert len(t.edges) == 12  # 8 * 3 / 2
    assert all(t.degree(i) == 3 for i in range(8))
    assert t.diameter() == 3


def test_torus3d_minimum_size():
    with pytest.raises(TopologyError):
        torus3d(1, 4, 4)


def test_torus3d_mmio_pairs_within_folded_bound():
    """Acceptance criterion: 64 supernodes route with O(degree + log N)
    register pairs -- measured worst case is 9, the bound allows 12."""
    t = torus3d(4, 4, 4)
    amap = uniform_cluster(t, 16 * MiB, nodes_per_supernode=2)
    counts = [len(amap.plan_for(s, 0).mmio) for s in range(64)]
    assert max(counts) == 9
    assert all(c <= folded_mmio_bound(t, s) for s, c in enumerate(counts))
    assert folded_mmio_bound(t, 0) == 6 + 6  # degree + ceil(log2 63)


def test_fully_connected_port_limit():
    t = fully_connected(5)
    assert len(t.edges) == 10
    with pytest.raises(TopologyError):
        fully_connected(6)


def test_port_reuse_detected():
    from repro.topology.graph import ClusterTopology, Endpoint, TccEdge

    e1 = TccEdge(Endpoint(0, 0, 1), Endpoint(1, 0, 1))
    e2 = TccEdge(Endpoint(0, 0, 1), Endpoint(2, 0, 1))  # port reused on 0
    with pytest.raises(TopologyError, match="reused"):
        ClusterTopology(3, [e1, e2])


def test_self_loop_rejected():
    from repro.topology.graph import ClusterTopology, Endpoint, TccEdge

    with pytest.raises(TopologyError, match="self-loop"):
        ClusterTopology(1, [TccEdge(Endpoint(0, 0, 1), Endpoint(0, 0, 2))])


def test_hop_distance():
    t = mesh2d(3, 3)
    assert t.hop_distance(0, 0) == 0
    assert t.hop_distance(0, 2) == 2
    assert t.hop_distance(0, 8) == 4  # corner to corner


# ---------------------------------------------------------------------------
# Address assignment
# ---------------------------------------------------------------------------

def test_chain_assignment_contiguous():
    amap = uniform_cluster(chain(3), M256)
    assert amap.supernode_ranges == [
        (0, M256), (M256, 2 * M256), (2 * M256, 3 * M256)
    ]
    # Middle node: two MMIO entries (left and right), hole-free.
    plan = amap.plan_for(1, 0)
    assert len(plan.mmio) == 2
    assert {(m.base, m.limit) for m in plan.mmio} == {
        (0, M256), (2 * M256, 3 * M256)
    }


def test_mesh_assignment_respects_interval_routing():
    """Row-major numbering + Y-first routing: at most 4 MMIO intervals."""
    amap = uniform_cluster(mesh2d(4, 4), M256)
    for s in range(16):
        plan = amap.plan_for(s, 0)
        assert len(plan.mmio) <= 4
        # hole-free tiling was validated internally; spot-check coverage
        total = sum(m.limit - m.base for m in plan.mmio)
        total += sum(d.limit - d.base for d in plan.dram)
        assert total == 16 * M256


def test_mesh_interior_node_uses_all_four_ports():
    amap = uniform_cluster(mesh2d(3, 3), M256)
    plan = amap.plan_for(4, 0)  # center
    assert len(plan.mmio) == 4
    assert len({m.exit_port for m in plan.mmio}) == 4


def test_multi_chip_supernode_dram_directives():
    amap = uniform_cluster(chain(2, node=1, left_port=2, right_port=2),
                           M256, nodes_per_supernode=2)
    plan = amap.plan_for(0, 0)
    assert len(plan.dram) == 2
    assert plan.dram[0].dst_node == 0
    assert plan.dram[1].dst_node == 1
    assert plan.local_dram_base() == 0
    assert amap.plan_for(0, 1).local_dram_base() == M256
    # MMIO exits through node 1 (the HTX owner)
    assert all(m.exit_node == 1 for m in plan.mmio)


def test_node_range():
    amap = uniform_cluster(chain(2), M256, nodes_per_supernode=2)
    assert amap.node_range(0, 0) == (0, M256)
    assert amap.node_range(0, 1) == (M256, 2 * M256)
    assert amap.node_range(1, 0) == (2 * M256, 3 * M256)


def test_supernode_of_addr():
    amap = uniform_cluster(chain(3), M256)
    assert amap.supernode_of_addr(0) == 0
    assert amap.supernode_of_addr(M256) == 1
    with pytest.raises(AddressAssignmentError):
        amap.supernode_of_addr(3 * M256)


def test_unaligned_dram_size_rejected():
    with pytest.raises(AddressAssignmentError):
        NodeSpec(dram_bytes=100 * MiB + 5)


def test_supernode_max_8_processors():
    with pytest.raises(AddressAssignmentError):
        SupernodeSpec(tuple(NodeSpec(M256) for _ in range(9)))


def test_48bit_limit_enforced():
    """Paper: 'the combined global address space in TCCluster is currently
    limited to 256 Terabyte'."""
    huge = SupernodeSpec((NodeSpec(1 << 47),))  # 128 TB per supernode
    with pytest.raises(AddressAssignmentError, match="48-bit"):
        assign_addresses(chain(3), [huge] * 3)


def test_disconnected_topology_rejected():
    from repro.topology.graph import ClusterTopology

    t = ClusterTopology(2, [])
    with pytest.raises(AddressAssignmentError, match="connected"):
        assign_addresses(t, [SupernodeSpec((NodeSpec(M256),))] * 2)


@given(rows=st.integers(2, 4), cols=st.integers(2, 4))
@settings(max_examples=20, deadline=None)
def test_mesh_maps_always_hole_free(rows, cols):
    """Property: every node's map tiles the global space exactly (the
    validator raises otherwise); and every remote address has a route."""
    amap = uniform_cluster(mesh2d(rows, cols), M256)
    n = rows * cols
    for s in range(n):
        plan = amap.plan_for(s, 0)
        ivals = sorted(
            [(d.base, d.limit) for d in plan.dram]
            + [(m.base, m.limit) for m in plan.mmio]
        )
        cursor = 0
        for b, l in ivals:
            assert b == cursor
            cursor = l
        assert cursor == n * M256


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------

def test_small_mesh_placement_feasible_with_coax():
    report = place_blades(mesh2d(4, 4))
    assert report.feasible
    assert report.limit_mm == COAX_LIMIT_MM
    assert report.max_run_mm > 0


def test_fr4_budget_is_tighter():
    cfg = PlacementConfig(use_coax=False, row_pitch_mm=700.0)
    report = place_blades(mesh2d(4, 4), cfg)
    assert report.limit_mm == FR4_LIMIT_MM
    assert not report.feasible  # 700 mm shelf pitch busts 24 inches of FR4
    assert report.violations()


def test_linear_topology_folds_to_grid():
    report = place_blades(chain(9))
    xs = {p[0] for p in report.positions.values()}
    ys = {p[1] for p in report.positions.values()}
    assert len(xs) > 1 and len(ys) > 1  # folded, not one long row


def test_clock_tree_sizing():
    r = plan_clock_tree(64, fanout=8)
    assert r.levels == 2
    assert r.buffers == 1 + 8
    assert r.mesochronous_ok
    r2 = plan_clock_tree(512, fanout=8)
    assert r2.levels == 3


def test_clock_tree_validation():
    from repro.topology.placement import PlacementError

    with pytest.raises(PlacementError):
        plan_clock_tree(0)
    with pytest.raises(PlacementError):
        plan_clock_tree(8, fanout=1)
