"""Per-rank message library instance: mappings + endpoint factory.

Ties together the driver (mmap services), the user process (page table +
bound core) and the region layout.  One instance lives on each rank; the
cluster builder constructs them after the OS boots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..kernel.driver import TccDriver
from ..kernel.linux import UserProcess
from ..kernel.pagetable import PAGE_SIZE
from ..obs.metrics import metrics_for
from .config import MsgConfig, RegionLayout
from .endpoint import Endpoint, MessageError, TransportError

__all__ = ["MessageLibrary", "TransportError"]


class MessageLibrary:
    """User-space messaging context of one rank."""

    def __init__(
        self,
        proc: UserProcess,
        driver: TccDriver,
        rank: int,
        rank_ranges: Sequence[Tuple[int, int]],
        cfg: MsgConfig = MsgConfig(),
    ):
        """``rank_ranges[r]`` is rank r's local DRAM slice [base, limit)
        in the global address space."""
        self.proc = proc
        self.sim = proc.sim
        self.driver = driver
        self.rank = rank
        self.rank_ranges = list(rank_ranges)
        self.cfg = cfg
        self.layout: RegionLayout = cfg.layout(len(rank_ranges))
        self._endpoints: Dict[int, Endpoint] = {}
        self.registry = metrics_for(self.sim)

        my_base, my_limit = self.rank_ranges[rank]
        if my_base != driver.local_base:
            raise MessageError(
                f"rank table says base {my_base:#x}, driver says "
                f"{driver.local_base:#x}"
            )
        if self.layout.required_bytes() > my_limit - my_base:
            raise MessageError(
                f"layout needs {self.layout.required_bytes():#x} bytes of "
                f"local DRAM, node has {my_limit - my_base:#x}"
            )
        # Export policy: remote nodes may only touch the message regions.
        driver.restrict_export(
            my_base + cfg.region_offset,
            my_base + self.layout.required_bytes(),
        )
        # Local mappings (UC so polling sees remote writes).
        ring_off, ring_sz = self.layout.ring_region()
        fb_off, fb_sz = self.layout.fb_region()
        heap_off, heap_sz = self.layout.heap_region()
        pt = proc.pagetable
        driver.mmap_local_export(pt, my_base + ring_off, ring_sz, tag="rings")
        driver.mmap_local_export(pt, my_base + fb_off, fb_sz, tag="feedback")
        driver.mmap_local_export(pt, my_base + heap_off, heap_sz, tag="heap")

    def rank_base(self, rank: int) -> int:
        return self.rank_ranges[rank][0]

    @property
    def nranks(self) -> int:
        return len(self.rank_ranges)

    def connect(self, peer_rank: int) -> Endpoint:
        """Open (or return) the endpoint toward ``peer_rank``, mapping the
        peer's ring slice, heap slice and feedback page write-only."""
        if peer_rank == self.rank:
            raise MessageError("cannot connect an endpoint to itself")
        if not 0 <= peer_rank < self.nranks:
            raise MessageError(f"rank {peer_rank} out of range")
        ep = self._endpoints.get(peer_rank)
        if ep is not None:
            return ep
        peer_base = self.rank_base(peer_rank)
        pt = self.proc.pagetable
        lo = self.layout
        self.driver.mmap_remote(
            pt, peer_base + lo.ring_of_sender(self.rank), self.cfg.ring_bytes,
            tag=f"tx-ring->{peer_rank}",
        )
        self.driver.mmap_remote(
            pt, peer_base + lo.heap_of_sender(self.rank), self.cfg.heap_bytes,
            tag=f"tx-heap->{peer_rank}",
        )
        fb_line = peer_base + lo.feedback_of_peer(self.rank)
        fb_page = fb_line - (fb_line % PAGE_SIZE)
        try:
            self.driver.mmap_remote(pt, fb_page, PAGE_SIZE,
                                    tag=f"tx-fb->{peer_rank}")
        except Exception:
            # Page may already be mapped via another endpoint's window;
            # the line itself is exclusive to this pair.
            pt.lookup(fb_line, 64)
        ep = Endpoint(self, peer_rank)
        self._endpoints[peer_rank] = ep
        return ep

    def endpoints(self) -> List[Endpoint]:
        return list(self._endpoints.values())

    def metrics(self) -> Dict[str, Dict]:
        """Per-endpoint counters, keyed ``"r<me>->r<peer>"``."""
        return {
            f"r{self.rank}->r{ep.peer}": ep.stats.as_dict()
            for ep in self._endpoints.values()
        }
