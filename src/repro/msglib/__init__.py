"""User-space message library: rings, eager/rendezvous, flow control."""

from .config import (
    MsgConfig,
    RegionLayout,
    HELLO_MARKER,
    RENDEZVOUS_MARKER,
    SLOT_BYTES,
    SLOT_HEADER,
    SLOT_PAYLOAD,
)
from .endpoint import (
    Endpoint,
    EndpointStats,
    MessageError,
    SessionReset,
    TransportError,
)
from .library import MessageLibrary
from .onesided import OneSidedRegion
from .slots import (
    pack_feedback,
    pack_hello,
    pack_rendezvous_control,
    pack_slot,
    slots_needed,
    unpack_feedback,
    unpack_feedback_epoch,
    unpack_header,
    unpack_hello,
    unpack_payload,
    unpack_rendezvous_control,
)
from .sync import ClusterBarrier

__all__ = [
    "MsgConfig",
    "RegionLayout",
    "MessageLibrary",
    "OneSidedRegion",
    "Endpoint",
    "EndpointStats",
    "MessageError",
    "TransportError",
    "SessionReset",
    "ClusterBarrier",
    "SLOT_BYTES",
    "SLOT_HEADER",
    "SLOT_PAYLOAD",
    "RENDEZVOUS_MARKER",
    "HELLO_MARKER",
    "pack_slot",
    "unpack_header",
    "unpack_payload",
    "pack_rendezvous_control",
    "unpack_rendezvous_control",
    "pack_hello",
    "unpack_hello",
    "pack_feedback",
    "unpack_feedback",
    "unpack_feedback_epoch",
    "slots_needed",
]
