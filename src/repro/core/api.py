"""Public facade: the TCCluster system as a library.

This is the entry point a downstream user works with:

>>> from repro import TCClusterSystem
>>> sys_ = TCClusterSystem.two_board_prototype()   # paper Figure 5
>>> sys_.boot()
>>> a, b = sys_.compute_ranks()[:2]
>>> tx, rx = sys_.connect(a, b)
>>> def sender():
...     yield from tx.send(b"hi")
...     yield from tx.flush()
>>> def receiver(out):
...     data = yield from rx.recv()
...     out.append(data)
>>> out = []
>>> sys_.process(sender)
>>> done = sys_.process(receiver, out)
>>> sys_.run_until(done)
>>> out
[b'hi']

Everything underneath -- coreboot-style firmware, link training, the
force-non-coherent warm reset, address maps, the custom kernel, ring
buffers -- runs inside the simulator; see DESIGN.md for the full map.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..cluster import TCCluster
from ..msglib import ClusterBarrier, Endpoint, MessageLibrary, MsgConfig
from ..sim import Event, Process, Simulator
from ..topology import ClusterTopology, chain, mesh2d
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import MiB

__all__ = ["TCClusterSystem"]


class TCClusterSystem:
    """High-level handle over a booted (or bootable) TCCluster."""

    def __init__(
        self,
        topology: Optional[ClusterTopology] = None,
        *,
        num_supernodes: int = 2,
        nodes_per_supernode: int = 1,
        memory_bytes: int = 256 * MiB,
        timing: TimingModel = DEFAULT_TIMING,
        msg_cfg: Optional[MsgConfig] = None,
        link_ber: float = 0.0,
    ):
        if topology is None:
            topology = chain(num_supernodes)
        self.cluster = TCCluster(
            topology,
            memory_bytes=memory_bytes,
            nodes_per_supernode=nodes_per_supernode,
            timing=timing,
            msg_cfg=msg_cfg,
            link_ber=link_ber,
        )

    # -- canned configurations -------------------------------------------------
    @classmethod
    def two_board_prototype(cls, timing: TimingModel = DEFAULT_TIMING,
                            memory_bytes: int = 256 * MiB,
                            msg_cfg: Optional[MsgConfig] = None) -> "TCClusterSystem":
        """The paper's second prototype (Figure 5): two Tyan S2912E boards,
        two Shanghai Opterons each, interconnected by the HTX cable from
        node 1 to node 1, links at HT800 x 16."""
        topo = chain(2, node=1, left_port=2, right_port=2)
        return cls(topo, nodes_per_supernode=2, timing=timing,
                   memory_bytes=memory_bytes, msg_cfg=msg_cfg)

    @classmethod
    def blade_mesh(cls, rows: int, cols: int,
                   timing: TimingModel = DEFAULT_TIMING,
                   memory_bytes: int = 256 * MiB,
                   msg_cfg: Optional[MsgConfig] = None) -> "TCClusterSystem":
        """The paper's scale-out vision (Section IV.F): an n x n mesh of
        single-processor blades on a backplane."""
        return cls(mesh2d(rows, cols), nodes_per_supernode=1, timing=timing,
                   memory_bytes=memory_bytes, msg_cfg=msg_cfg)

    @classmethod
    def from_image(cls, image) -> "TCClusterSystem":
        """A booted system restored from a
        :class:`~repro.cluster.snapshot.BootImage` -- skips the boot
        protocol simulation; bit-exact vs cold-booting the signature."""
        from ..cluster.snapshot import restore_image

        self = cls.__new__(cls)
        self.cluster = restore_image(image)
        return self

    # -- lifecycle ----------------------------------------------------------------
    def boot(self) -> "TCClusterSystem":
        self.cluster.boot()
        return self

    def capture_image(self):
        """Snapshot the freshly booted system into a reusable boot image."""
        return self.cluster.capture_image()

    @property
    def sim(self) -> Simulator:
        return self.cluster.sim

    @property
    def nranks(self) -> int:
        return self.cluster.nranks

    def compute_ranks(self) -> List[int]:
        """All ranks (one per processor) in global order."""
        return [r.rank for r in self.cluster.ranks]

    # -- messaging ---------------------------------------------------------------
    def library(self, rank: int) -> MessageLibrary:
        return self.cluster.library(rank)

    def connect(self, a: int, b: int) -> Tuple[Endpoint, Endpoint]:
        """Open the endpoint pair between ranks ``a`` and ``b``;
        returns (a's endpoint toward b, b's endpoint toward a)."""
        return self.library(a).connect(b), self.library(b).connect(a)

    def barrier(self, rank: int) -> ClusterBarrier:
        return ClusterBarrier(self.library(rank))

    # -- observability ------------------------------------------------------------
    def enable_metrics(self):
        """Turn on the metrics registry (latency histograms, occupancy);
        see :meth:`repro.cluster.system.TCCluster.enable_metrics`."""
        return self.cluster.enable_metrics()

    def metrics(self) -> dict:
        """Whole-cluster snapshot: per-link utilization, per-endpoint
        message counts, end-to-end latency histogram, NB/WC counters."""
        return self.cluster.metrics()

    def metrics_report(self, fmt: str = "text") -> str:
        return self.cluster.metrics_report(fmt=fmt)

    # -- execution ----------------------------------------------------------------
    def process(self, fn: Callable, *args, name: str = "") -> Process:
        """Start ``fn(*args)`` (a generator function) as a simulation
        process; returns the Process (an Event carrying the return value)."""
        return self.sim.process(fn(*args), name=name or getattr(fn, "__name__", "user"))

    def run_until(self, ev: Event, limit: Optional[float] = None):
        return self.sim.run_until_event(ev, limit=limit)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until=until)
