"""HyperTransport packet model: commands, headers, encode/decode.

The layout is spec-inspired (HT I/O Link Specification rev 3.10, the
revision the paper cites): 6-bit command codes, a 64-bit request header
carrying ``Addr[39:2]``, an optional 4-byte address-extension doubleword for
addresses at or above 2^40 (HT3 64-bit addressing), dword-granular sized
writes of 1..16 dwords, and per-packet CRC in retry mode.

Three packet classes matter for TCCluster (paper Section IV.A):

* **posted writes** -- the only transaction type a TCC link can carry,
* **non-posted reads** -- allocate a SrcTag in the response-matching table;
  *cannot* cross a TCC link because the matching table binds tags to
  NodeIDs (modeled in :mod:`repro.ht.tags`),
* **responses** -- routed by SrcTag, not by address.

Interrupts/system-management messages are HT ``Broadcast`` packets; the
custom kernel must keep them off TCC links (paper Section VI), which is why
they are modeled here too.
"""

from __future__ import annotations

import binascii
import enum
import struct
from dataclasses import dataclass, field
from typing import Optional

from ..util.bitfield import get_bits, mask, set_bits

__all__ = [
    "Command",
    "VirtualChannel",
    "Packet",
    "PacketError",
    "PacketPool",
    "pool_for",
    "make_posted_write",
    "make_nonposted_write",
    "make_read",
    "make_read_response",
    "make_target_done",
    "make_broadcast",
    "ADDR_EXTENSION_THRESHOLD",
]

#: Addresses at or above this need the 4-byte extension doubleword.
ADDR_EXTENSION_THRESHOLD = 1 << 40
#: Maximum physical address width of current Opterons (paper Section IV.D:
#: "Current Opteron processors support a physical address space of 48 bits").
PHYS_ADDR_BITS = 48
MAX_PAYLOAD_DWORDS = 16


class PacketError(ValueError):
    """Malformed packet construction or decode failure."""


class Command(enum.IntEnum):
    """HT command codes (6 bits).  Values follow the spec groupings:
    001xxx non-posted sized write, 01xxxx sized read, 101xxx posted sized
    write, 110000 read response, 110011 target done, 111010 broadcast."""

    WRITE_NONPOSTED = 0x09        # sized write (dword), non-posted
    WRITE_NONPOSTED_BYTE = 0x0D   # sized write (byte-masked), non-posted
    READ = 0x11                   # sized read (dword)
    WRITE_POSTED = 0x29           # sized write (dword), posted
    WRITE_POSTED_BYTE = 0x2D      # sized write (byte-masked), posted
    READ_RESPONSE = 0x30
    TARGET_DONE = 0x33
    BROADCAST = 0x3A              # interrupt / system management broadcast
    FLUSH = 0x02
    FENCE = 0x3C

    # Classification runs several times per packet per hop; frozenset
    # membership on the raw code beats chained enum comparisons.
    @property
    def is_request(self) -> bool:
        return self._value_ in _REQUEST_CODES

    @property
    def is_response(self) -> bool:
        return self._value_ in _RESPONSE_CODES

    @property
    def is_posted(self) -> bool:
        return self._value_ in _POSTED_CODES

    @property
    def is_byte_write(self) -> bool:
        return self._value_ in _BYTE_WRITE_CODES

    @property
    def carries_address(self) -> bool:
        return self._value_ in _ADDRESSED_CODES

    @property
    def expects_response(self) -> bool:
        return self._value_ in _EXPECTS_RESPONSE_CODES


_REQUEST_CODES = frozenset((
    Command.WRITE_NONPOSTED, Command.WRITE_NONPOSTED_BYTE, Command.READ,
    Command.WRITE_POSTED, Command.WRITE_POSTED_BYTE, Command.BROADCAST,
    Command.FLUSH, Command.FENCE,
))
_RESPONSE_CODES = frozenset((Command.READ_RESPONSE, Command.TARGET_DONE))
_POSTED_CODES = frozenset((Command.WRITE_POSTED, Command.WRITE_POSTED_BYTE,
                           Command.BROADCAST, Command.FENCE))
_BYTE_WRITE_CODES = frozenset((Command.WRITE_POSTED_BYTE,
                               Command.WRITE_NONPOSTED_BYTE))
_ADDRESSED_CODES = _REQUEST_CODES - {Command.FENCE}
_EXPECTS_RESPONSE_CODES = frozenset((
    Command.WRITE_NONPOSTED, Command.WRITE_NONPOSTED_BYTE,
    Command.READ, Command.FLUSH,
))
_WRITE_CODES = frozenset((
    Command.WRITE_POSTED, Command.WRITE_NONPOSTED,
    Command.WRITE_POSTED_BYTE, Command.WRITE_NONPOSTED_BYTE,
))


class VirtualChannel(enum.IntEnum):
    """The three HT base virtual channels (deadlock avoidance)."""

    POSTED = 0
    NONPOSTED = 1
    RESPONSE = 2

    @staticmethod
    def for_command(cmd: Command) -> "VirtualChannel":
        return _VC_FOR[cmd]


#: Command -> VC resolution table (classification is static per command).
_VC_FOR = {
    c: (VirtualChannel.RESPONSE if c in _RESPONSE_CODES
        else VirtualChannel.POSTED if c in _POSTED_CODES
        else VirtualChannel.NONPOSTED)
    for c in Command
}


# 64-bit primary request header layout (bit positions).
_F_CMD = (0, 6)
_F_PASSPW = (6, 1)
_F_SEQID = (7, 4)
_F_UNITID = (11, 5)
_F_SRCTAG = (16, 5)
_F_COUNT = (21, 4)
_F_ADDR = (25, 38)  # Addr[39:2]

# Response header layout.
_F_R_CMD = (0, 6)
_F_R_PASSPW = (6, 1)
_F_R_UNITID = (11, 5)
_F_R_SRCTAG = (16, 5)
_F_R_COUNT = (21, 4)
_F_R_ERROR = (25, 1)


@dataclass(slots=True)
class Packet:
    """One HyperTransport packet.

    ``data`` is the dword-aligned payload (may be empty for reads and
    responses-to-writes).  On the pooled posted-write fast path it may be a
    read-only :class:`memoryview` span into the storing core's source
    buffer (the zero-copy data plane); every consumer treats it as
    immutable bytes-like.  ``coherent`` marks packets travelling inside a
    coherent fabric; the IO bridge flips it when converting (Section III:
    "an I/O bridge that converts between coherent and non-coherent
    HyperTransport packets").

    **Lazy wire image.**  ``encode()`` and the retry-mode ``crc32`` are
    computed on first demand and cached in ``_wire`` / ``_crc``; the
    header/payload fields must therefore not be mutated after the first
    consumer has asked (the fabric only flips ``coherent``, which is not
    part of the wire image).  :meth:`PacketPool.recycle` resets both
    caches.
    """

    cmd: Command
    addr: int = 0
    data: bytes = b""
    unitid: int = 0
    srctag: int = 0
    seqid: int = 0
    passpw: bool = False
    coherent: bool = False
    error: bool = False
    #: Byte-enable mask for HT *sized-byte* writes (one 0/1 byte per data
    #: byte; None = all bytes valid, the sized-dword form).  Byte writes
    #: carry their enables in an extra doubleword pair on the wire.
    mask: Optional[bytes] = None
    #: Set by the fabric for debugging/tracing; not part of the wire image.
    src_node: Optional[int] = None
    inject_time: float = field(default=0.0, compare=False)
    #: Aggregation side-channel (see :mod:`repro.ht.aggregate`); declared
    #: here because the class uses ``__slots__``.
    _agg_tag: Optional[int] = field(default=None, compare=False)
    #: Cached wire image / CRC (lazy encode; see class docstring).
    _wire: Optional[bytes] = field(default=None, init=False, compare=False,
                                   repr=False)
    _crc: Optional[int] = field(default=None, init=False, compare=False,
                                repr=False)
    #: Cached CRC-less wire footprint (header+ext+mask+payload bytes); the
    #: serializer asks two to three times per packet per hop and the
    #: fields backing it are frozen by the lazy-wire invariant above.
    _wire_len: Optional[int] = field(default=None, init=False, compare=False,
                                     repr=False)
    #: True while checked out of a :class:`PacketPool` (recycle() flips it
    #: back, making double-recycle a no-op).
    _pooled: bool = field(default=False, init=False, compare=False,
                          repr=False)

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr >= (1 << 64):
            raise PacketError(f"address {self.addr:#x} out of range")
        if self.cmd.carries_address and self.addr >= (1 << PHYS_ADDR_BITS):
            raise PacketError(
                f"address {self.addr:#x} exceeds the {PHYS_ADDR_BITS}-bit "
                "physical address space"
            )
        if len(self.data) % 4 != 0:
            raise PacketError(
                f"payload must be dword-granular, got {len(self.data)} bytes"
            )
        if len(self.data) > 4 * MAX_PAYLOAD_DWORDS:
            raise PacketError(
                f"payload {len(self.data)} exceeds max "
                f"{4 * MAX_PAYLOAD_DWORDS} bytes"
            )
        if self.cmd.carries_address and self.addr % 4 != 0:
            raise PacketError(f"address {self.addr:#x} not dword aligned")
        if not 0 <= self.srctag < 32:
            raise PacketError(f"srctag {self.srctag} out of 5-bit range")
        if not 0 <= self.unitid < 32:
            raise PacketError(f"unitid {self.unitid} out of 5-bit range")
        if not 0 <= self.seqid < 16:
            raise PacketError(f"seqid {self.seqid} out of 4-bit range")
        if self.cmd.is_byte_write:
            if self.mask is None:
                raise PacketError("byte-write command requires a mask")
            if len(self.mask) != len(self.data):
                raise PacketError(
                    f"mask length {len(self.mask)} != data length {len(self.data)}"
                )
            if any(b not in (0, 1) for b in self.mask):
                raise PacketError("mask bytes must be 0 or 1")
        elif self.mask is not None:
            raise PacketError(
                f"{self.cmd.name} does not carry a byte-enable mask"
            )

    # -- classification ----------------------------------------------------
    @property
    def vc(self) -> VirtualChannel:
        return _VC_FOR[self.cmd]

    @property
    def is_write(self) -> bool:
        return self.cmd in _WRITE_CODES

    @property
    def dword_count(self) -> int:
        """Payload dwords for writes/responses; requested dwords for reads."""
        if self.cmd is Command.READ:
            return self._read_count
        return len(self.data) // 4

    @property
    def needs_extension(self) -> bool:
        return self.cmd.carries_address and self.addr >= ADDR_EXTENSION_THRESHOLD

    # reads carry the count in the header, stash it privately
    _read_count: int = 1

    # -- wire size ---------------------------------------------------------
    def header_bytes(self) -> int:
        return 8 + (4 if self.needs_extension else 0)

    def wire_bytes(self, crc_bytes: int = 4) -> int:
        """Total link footprint including per-packet retry CRC.

        Sized-byte writes carry a byte-enable doubleword pair (+8 bytes).
        """
        n = self._wire_len
        if n is None:
            mask_bytes = 8 if self.mask is not None else 0
            n = self._wire_len = (
                self.header_bytes() + mask_bytes + len(self.data)
            )
        return n + crc_bytes

    # -- encode / decode ----------------------------------------------------
    def _encode_body(self) -> bytes:
        """Header [+ extension] [+ byte-enable dwords] + payload (no CRC)."""
        if self.cmd.is_response:
            hdr = 0
            hdr = set_bits(hdr, *_F_R_CMD, int(self.cmd))
            hdr = set_bits(hdr, *_F_R_PASSPW, int(self.passpw))
            hdr = set_bits(hdr, *_F_R_UNITID, self.unitid)
            hdr = set_bits(hdr, *_F_R_SRCTAG, self.srctag)
            hdr = set_bits(hdr, *_F_R_COUNT, max(0, self.dword_count - 1))
            hdr = set_bits(hdr, *_F_R_ERROR, int(self.error))
            body = struct.pack("<Q", hdr)
        else:
            count = self.dword_count
            hdr = 0
            hdr = set_bits(hdr, *_F_CMD, int(self.cmd))
            hdr = set_bits(hdr, *_F_PASSPW, int(self.passpw))
            hdr = set_bits(hdr, *_F_SEQID, self.seqid)
            hdr = set_bits(hdr, *_F_UNITID, self.unitid)
            hdr = set_bits(hdr, *_F_SRCTAG, self.srctag)
            hdr = set_bits(hdr, *_F_COUNT, max(0, count - 1))
            hdr = set_bits(hdr, *_F_ADDR, (self.addr >> 2) & mask(38))
            body = struct.pack("<Q", hdr)
            if self.needs_extension:
                body += struct.pack("<I", (self.addr >> 40) & mask(24))
            if self.cmd.is_byte_write:
                bits = 0
                for i, m in enumerate(self.mask):
                    if m:
                        bits |= 1 << i
                body += struct.pack("<Q", bits)
        data = self.data
        if type(data) is not bytes:  # memoryview span on the pooled path
            data = bytes(data)
        return body + data

    @property
    def crc32(self) -> int:
        """Per-packet retry-mode CRC, computed lazily on first demand.

        Nothing on the posted-write hot path asks for it; the consumers
        are retry-mode links (BER > 0), :meth:`encode` and tests."""
        c = self._crc
        if c is None:
            c = self._crc = binascii.crc32(self._encode_body()) & 0xFFFFFFFF
        return c

    def encode(self) -> bytes:
        """Serialize to the wire image (header [+ extension] + payload + CRC).

        Lazy and cached: the bytes are built on the first call only (see
        the class docstring for the no-mutation-after-encode invariant)."""
        w = self._wire
        if w is None:
            body = self._encode_body()
            crc = self._crc
            if crc is None:
                crc = self._crc = binascii.crc32(body) & 0xFFFFFFFF
            w = self._wire = body + struct.pack("<I", crc)
        return w

    @classmethod
    def decode(cls, wire: bytes, coherent: bool = False) -> "Packet":
        """Parse a wire image produced by :meth:`encode`.

        Raises :class:`PacketError` on CRC mismatch or malformed fields --
        the link retry layer relies on this to detect injected bit errors.
        """
        if len(wire) < 12:
            raise PacketError(f"short packet: {len(wire)} bytes")
        body, (crc,) = wire[:-4], struct.unpack("<I", wire[-4:])
        if binascii.crc32(body) & 0xFFFFFFFF != crc:
            raise PacketError("CRC mismatch")
        (hdr,) = struct.unpack("<Q", body[:8])
        raw_cmd = get_bits(hdr, *_F_CMD)
        try:
            cmd = Command(raw_cmd)
        except ValueError as exc:
            raise PacketError(f"unknown command {raw_cmd:#x}") from exc
        if cmd.is_response:
            data = body[8:]
            pkt = cls(
                cmd=cmd,
                data=data,
                unitid=get_bits(hdr, *_F_R_UNITID),
                srctag=get_bits(hdr, *_F_R_SRCTAG),
                passpw=bool(get_bits(hdr, *_F_R_PASSPW)),
                error=bool(get_bits(hdr, *_F_R_ERROR)),
                coherent=coherent,
            )
            expect = get_bits(hdr, *_F_R_COUNT) + 1
            if cmd is Command.READ_RESPONSE and pkt.dword_count != expect:
                raise PacketError(
                    f"response count {expect} != payload {pkt.dword_count}"
                )
            return pkt
        addr = (get_bits(hdr, *_F_ADDR) << 2)
        offset = 8
        # Extension presence is implied by the encoder's rule (addresses
        # >= 2^40); on the wire HT marks it via the command type.  We detect
        # it by attempting the extension parse when the remaining length
        # doesn't match the count field.
        count = get_bits(hdr, *_F_COUNT) + 1
        remaining = len(body) - offset
        byte_mask: Optional[bytes] = None
        if cmd in (Command.WRITE_POSTED, Command.WRITE_NONPOSTED,
                   Command.WRITE_POSTED_BYTE, Command.WRITE_NONPOSTED_BYTE):
            mask_len = 8 if cmd.is_byte_write else 0
            expect = count * 4 + mask_len
            if remaining == expect + 4:
                (hi,) = struct.unpack("<I", body[offset : offset + 4])
                addr |= (hi & mask(24)) << 40
                offset += 4
            elif remaining != expect:
                raise PacketError(
                    f"payload length {remaining} inconsistent with count {count}"
                )
            if cmd.is_byte_write:
                (bits,) = struct.unpack("<Q", body[offset : offset + 8])
                offset += 8
                byte_mask = bytes((bits >> i) & 1 for i in range(count * 4))
        elif cmd is Command.READ or cmd is Command.FLUSH or cmd is Command.FENCE:
            if remaining == 4:
                (hi,) = struct.unpack("<I", body[offset : offset + 4])
                addr |= (hi & mask(24)) << 40
                offset += 4
            elif remaining != 0:
                raise PacketError(f"unexpected payload on {cmd.name}")
        data = body[offset:]
        pkt = cls(
            cmd=cmd,
            addr=addr,
            data=data,
            unitid=get_bits(hdr, *_F_UNITID),
            srctag=get_bits(hdr, *_F_SRCTAG),
            seqid=get_bits(hdr, *_F_SEQID),
            passpw=bool(get_bits(hdr, *_F_PASSPW)),
            coherent=coherent,
            mask=byte_mask,
        )
        if cmd is Command.READ:
            pkt._read_count = count
        return pkt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.cmd.name} addr={self.addr:#x} "
            f"len={len(self.data)} tag={self.srctag} vc={self.vc.name}>"
        )


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def _check_write(addr: int, data: bytes) -> None:
    if not data:
        raise PacketError("write needs a payload")
    if len(data) % 4:
        raise PacketError("write payload must be dword granular")


def make_posted_write(
    addr: int, data: bytes, unitid: int = 0, seqid: int = 0,
    coherent: bool = False, mask: Optional[bytes] = None,
) -> Packet:
    """A posted sized write -- the TCCluster workhorse (fire and forget).

    Pass ``mask`` (0/1 per byte) for a sized-*byte* write; dword form
    otherwise.
    """
    _check_write(addr, data)
    return Packet(
        cmd=Command.WRITE_POSTED_BYTE if mask is not None else Command.WRITE_POSTED,
        addr=addr,
        data=bytes(data),
        unitid=unitid,
        seqid=seqid,
        coherent=coherent,
        mask=bytes(mask) if mask is not None else None,
    )


def make_nonposted_write(
    addr: int, data: bytes, srctag: int, unitid: int = 0,
    coherent: bool = False, mask: Optional[bytes] = None,
) -> Packet:
    _check_write(addr, data)
    return Packet(
        cmd=(Command.WRITE_NONPOSTED_BYTE if mask is not None
             else Command.WRITE_NONPOSTED),
        addr=addr,
        data=bytes(data),
        unitid=unitid,
        srctag=srctag,
        coherent=coherent,
        mask=bytes(mask) if mask is not None else None,
    )


def make_read(
    addr: int, dwords: int, srctag: int, unitid: int = 0, coherent: bool = False
) -> Packet:
    """A non-posted sized read; requires a SrcTag from the matching table."""
    if not 1 <= dwords <= MAX_PAYLOAD_DWORDS:
        raise PacketError(f"read count {dwords} outside 1..{MAX_PAYLOAD_DWORDS}")
    pkt = Packet(
        cmd=Command.READ, addr=addr, unitid=unitid, srctag=srctag, coherent=coherent
    )
    pkt._read_count = dwords
    return pkt


def make_read_response(
    data: bytes, srctag: int, unitid: int = 0, error: bool = False, coherent: bool = False
) -> Packet:
    if not data or len(data) % 4:
        raise PacketError("read response payload must be 1..16 dwords")
    return Packet(
        cmd=Command.READ_RESPONSE,
        data=bytes(data),
        srctag=srctag,
        unitid=unitid,
        error=error,
        coherent=coherent,
    )


def make_target_done(srctag: int, unitid: int = 0, error: bool = False) -> Packet:
    return Packet(cmd=Command.TARGET_DONE, srctag=srctag, unitid=unitid, error=error)


def make_broadcast(addr: int, data: bytes = b"", unitid: int = 0) -> Packet:
    """Interrupt / system-management broadcast (must not cross TCC links)."""
    return Packet(cmd=Command.BROADCAST, addr=addr, data=bytes(data), unitid=unitid)


# ---------------------------------------------------------------------------
# The posted-write packet pool (zero-copy data plane)
# ---------------------------------------------------------------------------

class PacketPool:
    """Free-list of :class:`Packet` objects for the posted-write hot path.

    A bulk transfer churns through one packet per cache line; going through
    the dataclass constructor plus ``__post_init__`` validation per line
    dominates the per-packet cost once the calendar itself is cheap.  The
    pool hands out *flyweight* packets (``Packet.__new__`` + direct slot
    assignment, skipping init entirely) and takes them back at the commit
    point, so a transfer of any size keeps O(queue depth) live packets.

    Invariants:

    * a packet handed out by :meth:`posted_write` is marked ``_pooled``;
      :meth:`recycle` on a foreign (constructor-built) packet is a no-op,
      as is recycling the same packet twice;
    * :meth:`recycle` scrubs every consumer-visible field (payload, mask,
      lazy wire/CRC caches, tags) before the object re-enters the free
      list -- reuse can never leak state between packets (tested by the
      round-trip property test in ``tests/test_datapath_pool.py``);
    * validation on the fast path is the subset that protects memory
      safety downstream (alignment, granularity, size, address width);
      the full ``__post_init__`` checks still guard every other
      constructor.

    Counters: ``allocated`` (fresh objects ever built), ``reused``
    (checkouts served from the free list) and ``recycled`` (returns);
    exported by :func:`repro.obs.metrics.datapath_counters` as the
    ``packets_alloc`` / ``packets_pooled`` family.
    """

    __slots__ = ("_free", "allocated", "reused", "recycled")

    #: Free-list cap: beyond this, recycled packets are dropped to the GC
    #: (bounds pool memory after a burst; far above steady-state depth).
    MAX_FREE = 256

    def __init__(self) -> None:
        self._free: list = []
        self.allocated = 0
        self.reused = 0
        self.recycled = 0

    def posted_write(self, addr: int, data, unitid: int = 0,
                     coherent: bool = False,
                     mask: Optional[bytes] = None) -> Packet:
        """Checkout a ``WRITE_POSTED`` packet; ``data`` may be bytes or a
        read-only memoryview span (kept by reference -- the one-copy
        guarantee relies on the caller not mutating it before commit)."""
        if not data:
            raise PacketError("write needs a payload")
        if (addr & 3) or (len(data) & 3):
            raise PacketError("posted write must be dword aligned/granular")
        if len(data) > 4 * MAX_PAYLOAD_DWORDS:
            raise PacketError(
                f"payload {len(data)} exceeds max {4 * MAX_PAYLOAD_DWORDS} bytes"
            )
        if addr < 0 or addr >= (1 << PHYS_ADDR_BITS):
            raise PacketError(f"address {addr:#x} out of range")
        if mask is not None:
            # Byte-masked writes are the ragged-edge cold path: keep the
            # fully validated constructor (mask contents are checked there).
            self.allocated += 1
            return make_posted_write(addr, bytes(data), unitid=unitid,
                                     coherent=coherent, mask=mask)
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
        else:
            # Flyweight: allocate without running dataclass init; the
            # rarely-touched slots are set once here and scrubbed back to
            # these defaults by recycle().
            pkt = Packet.__new__(Packet)
            self.allocated += 1
            pkt.srctag = 0
            pkt.seqid = 0
            pkt.passpw = False
            pkt.error = False
            pkt.mask = None
            pkt.src_node = None
            pkt._agg_tag = None
            pkt._read_count = 1
        pkt.cmd = Command.WRITE_POSTED
        pkt.addr = addr
        pkt.data = data
        pkt.unitid = unitid
        pkt.coherent = coherent
        pkt.inject_time = 0.0
        pkt._wire = None
        pkt._crc = None
        pkt._wire_len = None
        pkt._pooled = True
        return pkt

    def recycle(self, pkt: Packet) -> None:
        """Return a packet at its commit point.  Safe to call on any
        packet: foreign or already-recycled ones are ignored."""
        if not pkt._pooled:
            return
        pkt._pooled = False
        self.recycled += 1
        free = self._free
        if len(free) < self.MAX_FREE:
            # Scrub all consumer-visible state so a later checkout can
            # never observe this packet's payload, caches or tags.
            pkt.addr = 0
            pkt.data = b""
            pkt.mask = None
            pkt.src_node = None
            pkt._agg_tag = None
            pkt._wire = None
            pkt._crc = None
            pkt._wire_len = None
            pkt.inject_time = 0.0
            pkt.srctag = 0
            pkt.seqid = 0
            pkt.passpw = False
            pkt.error = False
            free.append(pkt)


def pool_for(sim) -> PacketPool:
    """The per-simulation packet pool (mirrors ``metrics_for``): created
    on first use, attached to the simulator so its lifetime -- and the
    ``packets_alloc``/``packets_pooled`` counters -- track one run."""
    pool = sim._packet_pool
    if pool is None:
        pool = sim._packet_pool = PacketPool()
    return pool
