"""Interval-routing recovery: reprogram the cluster around dead links.

Paper Section IV.D ties packet flow to the MMIO base/limit pairs: every
supernode's view of the remote address space is a handful of contiguous
intervals, each steered out of one exit port.  When a TCC link dies
permanently, this module recomputes those intervals from the surviving
topology (dimension-ordered next hops where the walk stays clean, BFS
around the dead edges elsewhere -- see ``ClusterTopology.
shortest_next_hops``) and rewrites
every chip's MMIO pairs -- the same registers firmware programmed at
boot, so the data path picks the new routes up through the normal
register-write invalidation hooks.

Destinations with no surviving path get the coherent-fabric treatment a
real Opteron gives an unrecoverable fabric error: a sync-flood-style
broadcast interrupt on every supernode that lost reachability, plus a
``fatal_broadcasts`` counter the chaos harness asserts on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from ..ht.link import Link, LinkSide
from ..ht.packet import VirtualChannel
from ..obs.metrics import fault_counters
from ..opteron.registers import NUM_MMIO_ENTRIES
from ..topology.address_assignment import MmioDirective, exit_intervals
from ..topology.graph import TccEdge

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.system import TCCluster

__all__ = ["RouteManager", "RouteError"]

#: Vector broadcast on loss of reachability (sync-flood analogue).
FATAL_ROUTE_VECTOR = 0x7C


class RouteError(RuntimeError):
    """Recovery routing cannot be expressed (register pressure...)."""


class RouteManager:
    """Recomputes and reprograms cluster routing around dead TCC links.

    Requires a **booted** cluster (the enumeration reports map chips to
    fabric NodeIDs).  One instance accumulates dead edges across multiple
    :meth:`route_around` calls, so successive kills compose.
    """

    def __init__(self, cluster: "TCCluster", pressure_flood: bool = False):
        self.cluster = cluster
        self.sim = cluster.sim
        #: Edges removed from routing so far (parallel to killed links).
        self.dead_edges: List[TccEdge] = []
        #: (src, dst) supernode pairs with no surviving path.
        self.unreachable: List[Tuple[int, int]] = []
        #: Register-pressure policy: ``False`` raises :class:`RouteError`
        #: when a supernode's post-fault map exceeds the 16 MMIO pairs
        #: (the analytical mode -- callers want the hard verdict);
        #: ``True`` degrades that supernode to the sync-flood path
        #: instead -- windows disabled, fatal vector broadcast -- so a
        #: mid-recovery overflow cannot wedge a chaos run half-programmed.
        self.pressure_flood = pressure_flood
        #: Supernodes degraded by register pressure (flood mode).
        self.pressure_flooded: List[int] = []

    # ------------------------------------------------------------------
    def _edge_of(self, link: Link) -> TccEdge:
        """``cluster.tcc_links`` is index-parallel to ``topology.edges``
        (both come from the same construction loop)."""
        for i, l in enumerate(self.cluster.tcc_links):
            if l is link:
                return self.cluster.topology.edges[i]
        raise RouteError(f"{link.name} is not a TCC link of this cluster")

    def route_around(self, link: Link) -> List[Tuple[int, int]]:
        """Declare ``link`` permanently dead and steer traffic around it.

        Brings the link down (NAK'ing in-flight packets), marks it dead
        (retrains refused), salvages posted packets stranded in its TX
        queues back into their owning chip's posted queue (they re-route
        through the reprogrammed maps), rewrites every supernode's MMIO
        interval windows from the surviving graph, and broadcasts a
        fatal interrupt on supernodes that lost reachability entirely.
        Returns the newly unreachable (src, dst) supernode pairs.
        """
        cluster = self.cluster
        if not cluster.reports:
            raise RouteError("route_around needs a booted cluster")
        fc = fault_counters(self.sim)
        edge = self._edge_of(link)
        link.bring_down()
        link.dead = True
        if all(e is not edge for e in self.dead_edges):
            self.dead_edges.append(edge)
        self._reprogram()
        self._salvage(link)
        fresh = self._find_unreachable()
        if fresh:
            for s in sorted({src for src, _ in fresh}):
                cluster.boards[s].bsp.send_interrupt(FATAL_ROUTE_VECTOR)
                fc.fatal_broadcasts += 1
        return fresh

    # ------------------------------------------------------------------
    def _reprogram(self) -> None:
        """Recompute every supernode's exit intervals and rewrite the
        MMIO pairs of all its chips (DRAM pairs are board-internal and
        unaffected by TCC link death)."""
        cluster = self.cluster
        topo = cluster.topology
        ranges = cluster.amap.supernode_ranges
        fc = fault_counters(self.sim)
        for s in range(topo.num_supernodes):
            # Same folded-interval construction as boot-time assignment
            # (address_assignment.exit_intervals), so the post-fault map
            # respects the folded ranges; unreachable destinations are
            # absent and leave their windows unmapped.
            mmio: List[MmioDirective] = []
            for (exit_node, exit_port), rs in exit_intervals(
                    topo, ranges, s, exclude=self.dead_edges).items():
                for b, l in rs:
                    mmio.append(MmioDirective(b, l, exit_node, exit_port))
            board = cluster.boards[s]
            if len(mmio) > NUM_MMIO_ENTRIES:
                if not self.pressure_flood:
                    raise RouteError(
                        f"supernode {s}: post-fault routing needs {len(mmio)} "
                        f"MMIO intervals, registers hold {NUM_MMIO_ENTRIES}"
                    )
                # Register pressure: the post-fault map cannot be
                # expressed in 16 pairs.  A half-programmed window set
                # would silently misroute, so degrade the whole
                # supernode deterministically: every window disabled
                # (outbound TCC traffic fails typed via the unmapped
                # route) and the fatal vector broadcast once -- the
                # sync-flood a real fabric raises on an unrecoverable
                # routing fault.
                for chip in board.chips:
                    for i in range(NUM_MMIO_ENTRIES):
                        chip.mmio_pair(i).disable()
                if s not in self.pressure_flooded:
                    self.pressure_flooded.append(s)
                    board.bsp.send_interrupt(FATAL_ROUTE_VECTOR)
                    fc.fatal_broadcasts += 1
                    fc.pressure_floods += 1
                continue
            enum = cluster.reports[s].enumeration
            for chip in board.chips:
                for i in range(NUM_MMIO_ENTRIES):
                    chip.mmio_pair(i).disable()
                for i, m in enumerate(mmio):
                    dst_nid = enum.nodeid_of(board.chips[m.exit_node])
                    chip.mmio_pair(i).program(
                        m.base, m.limit, dst_node=dst_nid, dst_link=m.exit_port
                    )
                # NOTE: the register-write hook already invalidated the
                # northbridge's route cache; no explicit flush needed.
            fc.reroutes += 1

    def _salvage(self, link: Link) -> None:
        """Move posted packets stranded in the dead link's TX queues back
        into the owning chip's posted queue -- the dispatcher re-routes
        them through the just-reprogrammed maps.  Non-posted/response
        packets are dropped with accounting (the TCC data plane is
        writes-only; their requesters fail via LinkDownError)."""
        fc = fault_counters(self.sim)
        attached = getattr(link, "attached", {})
        for side in (LinkSide.A, LinkSide.B):
            chip = attached.get(side)
            d = link._dirs[side]
            for vc, q in d.txq.items():
                while True:
                    ok, pkt = q.try_get()
                    if not ok:
                        break
                    nb = getattr(chip, "nb", None)
                    if (vc is VirtualChannel.POSTED and nb is not None
                            and nb.posted_q.try_put(pkt)):
                        fc.packets_salvaged += 1
                    else:
                        fc.packets_dropped += 1
                        if nb is not None:
                            nb._pool.recycle(pkt)

    def _find_unreachable(self) -> List[Tuple[int, int]]:
        """Newly unreachable ordered supernode pairs (accumulated into
        :attr:`unreachable`)."""
        topo = self.cluster.topology
        seen = {(a, b) for a, b in self.unreachable}
        fresh: List[Tuple[int, int]] = []
        for s in range(topo.num_supernodes):
            reach = topo.shortest_next_hops(s, exclude=self.dead_edges)
            for dst in range(topo.num_supernodes):
                if dst == s or dst in reach:
                    continue
                if (s, dst) not in seen:
                    fresh.append((s, dst))
        self.unreachable.extend(fresh)
        return fresh
