"""Tests for units, bitfields, calibration and trace/stats utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, IntervalAccumulator, OnlineStats, Tracer
from repro.util import (
    CACHELINE,
    BitField,
    FieldSpec,
    bandwidth_mbps,
    fmt_bytes,
    fmt_time_ns,
    gbit_per_s_to_bytes_per_ns,
    get_bits,
    mask,
    set_bits,
)
from repro.util.calibration import DEFAULT_TIMING, TimingModel


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------

def test_bandwidth_mbps():
    assert bandwidth_mbps(64, 25.5) == pytest.approx(2509.8, rel=1e-3)
    with pytest.raises(ValueError):
        bandwidth_mbps(64, 0)


def test_gbit_conversion():
    # 16 lanes x 1.6 Gbit/s = 3.2 bytes/ns
    assert 16 * gbit_per_s_to_bytes_per_ns(1.6) == pytest.approx(3.2)


def test_fmt_bytes():
    assert fmt_bytes(64) == "64B"
    assert fmt_bytes(4096) == "4K"
    assert fmt_bytes(256 * 1024) == "256K"
    assert fmt_bytes(1 << 20) == "1M"
    assert fmt_bytes(1 << 30) == "1G"


def test_fmt_time():
    assert fmt_time_ns(227) == "227 ns"
    assert fmt_time_ns(1400) == "1.40 us"
    assert fmt_time_ns(2_500_000) == "2.50 ms"
    assert fmt_time_ns(3_000_000_000) == "3.000 s"


def test_cacheline_is_64():
    assert CACHELINE == 64


# ---------------------------------------------------------------------------
# Bitfields
# ---------------------------------------------------------------------------

def test_mask_and_bits():
    assert mask(0) == 0
    assert mask(6) == 0x3F
    v = set_bits(0, 4, 8, 0xAB)
    assert get_bits(v, 4, 8) == 0xAB
    assert get_bits(v, 0, 4) == 0


def test_set_bits_overflow_rejected():
    with pytest.raises(ValueError):
        set_bits(0, 0, 4, 16)


def test_bitfield_named_access():
    bf = BitField(32, {"cmd": FieldSpec(0, 6), "unit": FieldSpec(8, 5)})
    bf["cmd"] = 0x29
    bf["unit"] = 7
    assert bf["cmd"] == 0x29
    assert bf["unit"] == 7
    assert dict(bf.items()) == {"cmd": 0x29, "unit": 7}


def test_bitfield_overlap_detected():
    with pytest.raises(ValueError, match="overlap"):
        BitField(16, {"a": FieldSpec(0, 8), "b": FieldSpec(4, 8)})


def test_bitfield_width_checked():
    with pytest.raises(ValueError):
        BitField(8, {"a": FieldSpec(4, 8)})


@given(lo=st.integers(0, 24), width=st.integers(1, 8),
       value=st.integers(0, 255), base=st.integers(0, (1 << 32) - 1))
@settings(max_examples=200)
def test_set_get_roundtrip_property(lo, width, value, base):
    value &= mask(width)
    out = set_bits(base, lo, width, value)
    assert get_bits(out, lo, width) == value
    # other bits untouched
    m = mask(width) << lo
    assert (out & ~m) == (base & ~m)


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------

def test_timing_wire_math():
    t = DEFAULT_TIMING
    assert t.link_bytes_per_ns == pytest.approx(3.2)
    assert t.wire_bytes(64) == 76
    assert t.serialization_ns(64) == pytest.approx(23.75)
    # the sustained-rate anchor: 64/23.75 ~ 2695 MB/s
    assert 64 / t.serialization_ns(64) * 1000 == pytest.approx(2694.7, rel=1e-3)


def test_timing_scaled_override():
    t = DEFAULT_TIMING.scaled(link_gbit_per_lane=5.2)
    assert t.link_bytes_per_ns == pytest.approx(10.4)
    assert DEFAULT_TIMING.link_gbit_per_lane == 1.6  # original untouched


def test_timing_payload_bounds():
    with pytest.raises(ValueError):
        DEFAULT_TIMING.wire_bytes(65)


# ---------------------------------------------------------------------------
# Trace / stats
# ---------------------------------------------------------------------------

def test_tracer_collects_and_filters():
    tr = Tracer()
    tr.emit(1.0, "link", "tx", 1)
    tr.emit(2.0, "link", "rx", 2)
    tr.emit(3.0, "nb", "route", 3)
    assert len(tr) == 3
    assert [r.time for r in tr.by_component("link")] == [1.0, 2.0]
    assert tr.counts()[("link", "tx")] == 1
    tr.add_filter(lambda r: r.event == "tx")
    tr.emit(4.0, "link", "rx", 4)
    assert len(tr) == 3  # filtered out


def test_tracer_disabled_is_noop():
    tr = Tracer(enabled=False)
    tr.emit(1.0, "x", "y")
    assert len(tr) == 0


def test_tracer_keep_limit():
    tr = Tracer(keep=2)
    for i in range(5):
        tr.emit(float(i), "c", "e")
    assert len(tr) == 2
    assert tr.records[0].time == 3.0


def test_online_stats():
    s = OnlineStats()
    for x in (1.0, 2.0, 3.0, 4.0):
        s.add(x)
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.min == 1.0 and s.max == 4.0
    assert s.variance == pytest.approx(5.0 / 3.0)


def test_counter():
    c = Counter()
    c.inc("a")
    c.inc("a", 4)
    assert c["a"] == 5
    assert c["missing"] == 0
    c.reset()
    assert c.as_dict() == {}


def test_interval_accumulator():
    acc = IntervalAccumulator()
    acc.update(0.0, 2.0)
    acc.update(10.0, 4.0)
    # 0..10 at depth 2, 10..20 at depth 4 -> average 3 over 20
    assert acc.average(20.0) == pytest.approx(3.0)
    with pytest.raises(ValueError):
        acc.update(5.0, 1.0)  # time went backwards
