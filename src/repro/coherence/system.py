"""Coherent shared-memory system model (the thing TCCluster abandons).

Paper Section III:

    "Every time a data value is modified in a cache or loaded from main
    memory the other cores that participate in the coherent domain have to
    be informed and probed for a response.  The transaction can only be
    completed if all nodes have responded to the probing. ... By
    increasing the number of nodes, the number of probe messages is
    increased proportionally which costs bandwidth and latency as the last
    incoming response [is] pivotal."

:class:`CoherentSystem` models N nodes sharing one physical address space
under MESI with either

* ``"broadcast"`` probe filtering (the Opteron's: every transaction probes
  all N-1 peers and waits for the last response), or
* ``"directory"`` filtering (Horus/3-Leaf style, paper Section II: "By
  applying a directory based coherency mechanism they can moderately
  increase the scalability to 32 nodes"): a home-node directory knows the
  sharers, so only they are probed, at the cost of a home lookup.

The model is deliberately *lighter* than :mod:`repro.opteron` -- it
abstracts the fabric to per-hop latency and a shared probe-bandwidth
resource -- so it scales to the 64-node sweeps of the motivation
benchmark while the register-accurate model keeps hardware's 8-node
coherent limit.  Data values are carried and checked, so the coherence
invariant and read-your-writes are verified, not assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim import Counter, Resource, Simulator
from ..util.calibration import TimingModel, DEFAULT_TIMING
from . import mesi
from .mesi import Action, ProtocolError, State

__all__ = ["CoherentSystem", "CoherentNode", "CoherenceStats"]


@dataclass
class CoherenceStats:
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    probes_sent: int = 0
    probe_responses: int = 0
    writebacks: int = 0
    directory_lookups: int = 0


class _Line:
    __slots__ = ("states", "value", "lock")

    def __init__(self, n: int, sim: Simulator):
        self.states: List[State] = [State.INVALID] * n
        self.value: int = 0  # last written value (sequence for checking)
        #: the home node's ordering point: coherence transactions on one
        #: line serialize here (hardware: one outstanding transaction per
        #: line at the home memory controller).
        self.lock = Resource(sim, 1, name="line-lock")


class CoherentNode:
    """One processor of the coherent system."""

    def __init__(self, system: "CoherentSystem", node_id: int):
        self.system = system
        self.node_id = node_id
        self.stats = CoherenceStats()
        #: private view used to verify read-your-writes per node
        self._last_written: Dict[int, int] = {}

    def read(self, line_addr: int):
        """Generator: coherent read; returns the line's value."""
        value = yield from self.system._access(self, line_addr, write=False)
        return value

    def write(self, line_addr: int, value: int):
        """Generator: coherent write of ``value``."""
        yield from self.system._access(self, line_addr, write=True, value=value)
        self._last_written[line_addr] = value


class CoherentSystem:
    """N-node MESI machine with broadcast or directory probe filtering."""

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        protocol: str = "broadcast",
        timing: TimingModel = DEFAULT_TIMING,
        #: average fabric hops between two nodes; defaults to the mesh
        #: average ~ (2/3)sqrt(N) characteristic of 2D layouts.
        avg_hops: Optional[float] = None,
        #: fabric probe service capacity: how many probe messages the
        #: interconnect can carry concurrently (models probe bandwidth).
        probe_channels: int = 8,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if protocol not in ("broadcast", "directory"):
            raise ValueError(f"unknown protocol {protocol!r}")
        self.sim = sim
        self.n = num_nodes
        self.protocol = protocol
        self.timing = timing
        self.avg_hops = (
            avg_hops if avg_hops is not None else max(1.0, (2 / 3) * math.sqrt(num_nodes))
        )
        self.nodes = [CoherentNode(self, i) for i in range(num_nodes)]
        self._lines: Dict[int, _Line] = {}
        #: shared fabric capacity for probe traffic
        self._fabric = Resource(sim, probe_channels, name="probe-fabric")
        self.counters = Counter()

    # ------------------------------------------------------------------
    def _line(self, addr: int) -> _Line:
        line = self._lines.get(addr)
        if line is None:
            line = self._lines[addr] = _Line(self.n, self.sim)
        return line

    def _home_of(self, addr: int) -> int:
        return (addr >> 6) % self.n

    def _hop_latency(self, hops: float) -> float:
        return hops * self.timing.cht_hop_ns

    def _sharers(self, line: _Line, except_node: int) -> List[int]:
        return [
            i for i, s in enumerate(line.states)
            if s is not State.INVALID and i != except_node
        ]

    # ------------------------------------------------------------------
    def _access(self, node: CoherentNode, addr: int, write: bool,
                value: int = 0):
        t = self.timing
        line = self._line(addr)
        state = line.states[node.node_id]
        trans = mesi.local_write(state) if write else mesi.local_read(state)
        if write:
            node.stats.writes += 1
        else:
            node.stats.reads += 1

        if trans.action is Action.NONE:
            node.stats.hits += 1
            yield self.sim.timeout(t.l1_hit_ns)
            if write:
                line.states[node.node_id] = trans.new_state
                line.value = value
                mesi.check_line_invariant(line.states)
                return None
            return line.value

        # Fabric transaction required: serialize at the line's ordering
        # point and re-evaluate (another node's transaction may have
        # changed our state while we waited).
        yield line.lock.acquire()
        try:
            result = yield from self._transaction(node, addr, line, write, value)
        finally:
            line.lock.release()
        return result

    def _transaction(self, node: CoherentNode, addr: int, line: _Line,
                     write: bool, value: int):
        t = self.timing
        state = line.states[node.node_id]
        trans = mesi.local_write(state) if write else mesi.local_read(state)
        if trans.action is Action.NONE:
            # Raced to a hit while waiting for the lock.
            node.stats.hits += 1
            yield self.sim.timeout(t.l1_hit_ns)
            if write:
                line.states[node.node_id] = trans.new_state
                line.value = value
                mesi.check_line_invariant(line.states)
                return None
            return line.value

        node.stats.misses += 1
        # Which peers must be probed?
        if self.protocol == "broadcast":
            targets = [i for i in range(self.n) if i != node.node_id]
        else:
            # Directory: home lookup first, then exact sharers only.
            home_hops = self.avg_hops if self._home_of(addr) != node.node_id else 0.0
            yield self.sim.timeout(self._hop_latency(home_hops) + t.probe_process_ns)
            node.stats.directory_lookups += 1
            targets = self._sharers(line, node.node_id)

        # Probe fan-out: each probe occupies fabric capacity; the requester
        # completes only when the LAST response is in ("the last incoming
        # response [is] pivotal").
        supplied_by_owner = False
        if targets:
            yield self._fabric.acquire()
            try:
                # Round trip to the farthest responder + per-response
                # collection cost at the requester, serialized.
                yield self.sim.timeout(
                    2 * self._hop_latency(self.avg_hops)
                    + t.probe_process_ns
                    + len(targets) * t.probe_response_ns
                )
            finally:
                self._fabric.release()
            node.stats.probes_sent += len(targets)
            node.stats.probe_responses += len(targets)
            for i in targets:
                old = line.states[i]
                if write:
                    new_state, supplies = mesi.probe_invalidate(old)
                else:
                    new_state, supplies = mesi.probe_shared(old)
                line.states[i] = new_state
                if supplies:
                    supplied_by_owner = True
                    node.stats.writebacks += 1

        # Data fill: from the dirty owner (cache-to-cache) or from DRAM.
        if supplied_by_owner:
            yield self.sim.timeout(t.l3_hit_ns)
        else:
            yield self.sim.timeout(t.dram_read_ns)

        if write:
            line.states[node.node_id] = State.MODIFIED
            line.value = value
        else:
            others = bool(self._sharers(line, node.node_id))
            line.states[node.node_id] = (
                mesi.read_fill_state(any_other_sharer=others)
            )
        mesi.check_line_invariant(line.states)
        return None if write else line.value

    # ------------------------------------------------------------------
    def check_all_invariants(self) -> int:
        """Validate every line; returns how many were checked."""
        for addr, line in self._lines.items():
            try:
                mesi.check_line_invariant(line.states)
            except ProtocolError as exc:
                raise ProtocolError(f"line {addr:#x}: {exc}") from exc
        return len(self._lines)

    def line_state(self, addr: int, node_id: int) -> State:
        return self._line(addr).states[node_id]
