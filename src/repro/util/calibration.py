"""Calibration constants, each tied to a figure the paper itself states.

The TCCluster paper reports measurements from a two-node prototype built
from Tyan S2912E boards with Shanghai Opterons and an HTX cable limited to
1.6 Gbit/s per lane (paper Section VI).  Our discrete-event models are
parameterized by the constants below; every constant carries the paper
quote (or the derivation from one) that justifies it.

The point of centralizing these is honesty: the *shape* of the reproduced
figures comes from the component pipeline (write-combining, credit flow
control, serialization, polling), while the absolute anchors come from
these few numbers.

Derivation of the steady-state link rate
----------------------------------------
Paper Section VI: "a 16 bit wide TCCluster link running at HT800 which
equals 1.6 Gbit/s per lane".  16 lanes x 1.6 Gbit/s = 25.6 Gbit/s
= 3.2 bytes/ns raw.  An HT sized posted write carries an 8-byte request
header (HT I/O Link Specification, 64-bit addressing) and, in HT3 retry
mode, a 4-byte per-packet CRC.  A 64-byte payload therefore occupies
8 + 64 + 4 = 76 wire bytes -> 23.75 ns -> 64/23.75 = 2.695 bytes/ns
= **2695 MB/s**, matching the paper's "sustained bandwidth of 2700 MB/s"
for weakly-ordered writes.

The CPU-side issue rate is set by write-combining: the paper's peak of
5300 MB/s (Figure 6, 256 KB point) is the rate at which the core can fill
and hand off 64-byte WC buffers while the fabric still has buffer credits;
we model that as 12 ns per cache line (5333 MB/s).

The strictly-ordered curve ("after each cache line sized store operation an
Sfence instruction is triggered ... limiting the write performance to
2000 MB/s") adds an sfence drain stall per line; 32 ns per 64 B line
= 2000 MB/s, i.e. a drain stall of 32 - 12 = 20 ns.

The 5300 MB/s hump exists because the microbenchmark times the *store
stream retiring*, which runs ahead of the link while posted-write buffering
(store queue + WC buffers + SRQ + HT retry buffers + the L3-assisted
behaviour the paper alludes to: "leverages caching structures within the
Opteron") absorbs the burst.  We model the aggregate as a posted-write
buffer of 2048 packets (128 KiB), which places the measured peak exactly at
the 256 KB point as in Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["TimingModel", "DEFAULT_TIMING", "IBModel", "DEFAULT_IB", "EthernetModel"]


@dataclass(frozen=True)
class TimingModel:
    """All timing parameters of the simulated TCCluster hardware."""

    # ---- link physical layer ------------------------------------------
    #: Gbit/s per lane.  Paper: HTX cable limited to 1.6 (HT800 DDR);
    #: silicon itself supports up to 5.2.
    link_gbit_per_lane: float = 1.6
    #: lanes per direction.  Paper: "16 bit wide TCCluster link".
    link_width_bits: int = 16
    #: Cable / trace propagation delay.  ~24 inch HTX cable at ~5 ns/m.
    link_propagation_ns: float = 3.0

    # ---- HT packet framing ---------------------------------------------
    #: Sized-write request header bytes (HT spec, 64-bit addressing).
    ht_header_bytes: int = 8
    #: Per-packet CRC bytes in HT3 retry mode.
    ht_crc_bytes: int = 4
    #: Maximum payload of one sized dword write (16 dwords).
    ht_max_payload: int = 64
    #: Response packet size (read response header).
    ht_response_header_bytes: int = 8

    # ---- northbridge ---------------------------------------------------
    #: Address-map + routing-table lookup and crossbar traversal for a
    #: packet entering from a link or the SRQ.  Paper Section III quotes
    #: "approximately 50 ns per hop" for HT; that hop figure includes
    #: serialization, so the internal processing share is below it.
    nb_request_ns: float = 14.0
    #: Forwarding overhead at an intermediate node (route + crossbar).
    #: Together with re-serialization (23.75 ns) this keeps the measured
    #: per-hop increment under the paper's "less than 50 ns".
    nb_forward_ns: float = 18.0
    #: IO bridge conversion between coherent and non-coherent packets.
    nb_iobridge_ns: float = 6.0
    #: Posted-write buffering in the fabric, in packets (see module doc).
    posted_buffer_packets: int = 2048
    #: HT flow-control credits per virtual channel at each receiver.
    link_credits_per_vc: int = 32

    # ---- memory system ---------------------------------------------------
    #: DRAM write (posted, to open page) at the receiving memory controller.
    dram_write_ns: float = 30.0
    #: Uncacheable DRAM read latency (polling path, cache bypassed).
    dram_read_uc_ns: float = 70.0
    #: Cacheable DRAM read miss latency.
    dram_read_ns: float = 75.0
    #: L1/L2/L3 hit latencies (Shanghai, 2.8 GHz, in ns).
    l1_hit_ns: float = 1.1
    l2_hit_ns: float = 5.4
    l3_hit_ns: float = 16.0

    # ---- CPU store path ---------------------------------------------------
    #: Time for the core to fill one 64-byte WC buffer and hand it to the
    #: SRQ (eight 64-bit stores through the store queue).  5333 MB/s.
    wc_line_fill_ns: float = 12.0
    #: Extra stall for sfence to drain store queue + WC buffers to the SRQ.
    sfence_drain_ns: float = 20.0
    #: Number of write-combining buffers ("The Opteron provides eight
    #: write combining buffers", paper Section VI).
    wc_buffers: int = 8
    #: Per-send() software overhead in the message library (ring-slot
    #: bookkeeping, write-pointer update).  Calibrated so the 64 B point of
    #: the weakly-ordered curve lands at the abstract's "2500 MB/s for
    #: messages as small as 64 Byte".
    send_overhead_ns: float = 13.5
    #: Receive-side software overhead per message (copy out + slot free).
    recv_overhead_ns: float = 20.0
    #: Polling loop iteration (UC load issue + compare + branch).
    poll_iteration_ns: float = 12.0
    #: Per-store cost on the UC (non-combining, strongly ordered) path --
    #: the write-combining ablation disables WC and pays this per 8 bytes.
    uc_store_ns: float = 10.0
    #: WB store / cache-pipeline cost per store burst.
    wb_store_ns: float = 1.0

    # ---- coherence (supernode substrate / motivation ablation) ----------
    #: Probe processing at a snooping cache.
    probe_process_ns: float = 12.0
    #: Probe response collection overhead per responder at the requester.
    probe_response_ns: float = 4.0
    #: Coherent HT hop latency (on-board traces, full speed links).
    cht_hop_ns: float = 50.0

    # ---- derived helpers ---------------------------------------------------
    @property
    def link_bytes_per_ns(self) -> float:
        """Raw unidirectional link rate in bytes/ns."""
        return self.link_width_bits * self.link_gbit_per_lane / 8.0

    def wire_bytes(self, payload: int) -> int:
        """Wire footprint of one posted write carrying ``payload`` bytes."""
        if payload < 0 or payload > self.ht_max_payload:
            raise ValueError(
                f"payload {payload} outside [0, {self.ht_max_payload}]"
            )
        return self.ht_header_bytes + payload + self.ht_crc_bytes

    def serialization_ns(self, payload: int) -> float:
        """Time to clock one posted write onto the link."""
        return self.wire_bytes(payload) / self.link_bytes_per_ns

    def scaled(self, **overrides) -> "TimingModel":
        """A copy with some parameters replaced (for sweeps/ablations)."""
        return replace(self, **overrides)


#: The calibrated prototype configuration (HT800 x16 over the HTX cable).
DEFAULT_TIMING = TimingModel()


@dataclass(frozen=True)
class IBModel:
    """Infiniband ConnectX baseline, calibrated to the paper's quotes.

    Paper Section VI: "the Infiniband ConnectX network adapter from
    Mellanox can be referenced.  It provides an MPI bandwidth of 2500 MB/s
    for 1 MB messages, 1500 MB/s for 1K messages and 200 MB/s for cacheline
    sized messages" and Section I: "end-to-end latency of about 1.4 us".

    Those three bandwidth points pin down a classic two-parameter NIC
    model: per-message initiation overhead (driver + doorbell + WQE fetch +
    DMA setup) and a streaming rate:

    * 64 B  / 200 MB/s  -> 320 ns total per message; less the 64-byte wire
      time (~25 ns) that's a 295 ns initiation overhead,
    * 1 KB: 1024 / (295 ns + 1024/r) = 1500 MB/s -> r ~ 2.6 bytes/ns
    * 1 MB: 1048576 / (295 ns + 1048576/r) = 2500 MB/s -> r ~ 2.60 bytes/ns
    """

    per_message_overhead_ns: float = 295.0
    stream_bytes_per_ns: float = 2.6
    #: One-way small-message latency ("about 1.4 us").
    base_latency_ns: float = 1400.0
    #: MTU for segmentation.
    mtu_bytes: int = 2048
    #: DMA engine segment setup cost.
    per_segment_ns: float = 24.0

    def message_gap_ns(self, size: int) -> float:
        """Steady-state time between back-to-back messages of ``size``."""
        return self.per_message_overhead_ns + size / self.stream_bytes_per_ns

    def bandwidth_mbps(self, size: int) -> float:
        return size / self.message_gap_ns(size) * 1000.0

    def latency_ns(self, size: int) -> float:
        """Half-round-trip latency for a message of ``size`` bytes."""
        return self.base_latency_ns + size / self.stream_bytes_per_ns


DEFAULT_IB = IBModel()


@dataclass(frozen=True)
class EthernetModel:
    """A 10 GbE + kernel TCP stack baseline for the motivation tables."""

    per_message_overhead_ns: float = 4000.0  # syscall + stack traversal
    stream_bytes_per_ns: float = 1.1         # ~9 Gbit/s goodput
    base_latency_ns: float = 15000.0         # ~15 us typical kernel RTT/2
    mtu_bytes: int = 1500
    per_segment_ns: float = 80.0

    def message_gap_ns(self, size: int) -> float:
        return self.per_message_overhead_ns + size / self.stream_bytes_per_ns

    def bandwidth_mbps(self, size: int) -> float:
        return size / self.message_gap_ns(size) * 1000.0

    def latency_ns(self, size: int) -> float:
        return self.base_latency_ns + size / self.stream_bytes_per_ns
