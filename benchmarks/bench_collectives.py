#!/usr/bin/env python
"""Collective-algorithm benchmark: torus-embedded MPI vs the NIC baseline.

Sweeps the middleware collectives (``allreduce`` / ``bcast`` /
``alltoall``) across message sizes with every algorithm *forced*, on the
64-rank acceptance cluster -- a torus2d(8,8), one rank per supernode,
ring collectives embedded on the Hamiltonian supernode ring -- and over
the calibrated ConnectX Infiniband full-mesh fabric
(:mod:`repro.baselines`), so the same application code is timed on both
interconnects (the paper's apples-to-apples methodology).

Every point verifies its result against the NumPy oracle and reports the
flow-fidelity span counters (``slot_windows``/``slot_slots``): the bulk
phases of the bandwidth algorithms must ride the macro-event layer, not
the per-packet plane.

Acceptance gate (run by default, ``--no-check`` to skip): at 1 MiB on 64
ranks, ring and Rabenseifner allreduce must reach at least 2x the
simulated effective bandwidth of the binomial reduce+broadcast, the ring
embedding must be single-hop, and the large ring points must show
nonzero slot spans.

Emits ``BENCH_collectives.json`` (repo root by default).

Usage::

    PYTHONPATH=src python benchmarks/bench_collectives.py
    PYTHONPATH=src python benchmarks/bench_collectives.py --quick
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.util.units import KiB, MiB

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The acceptance cluster: 64 supernodes, one rank each, even grid (the
#: Hamiltonian ring closes with single-hop edges only).
SHAPE = (8, 8)

#: (op, algorithm, size) triples for the full sweep.  Allreduce spans
#: the selector's whole range -- the derived crossover at n=64 is
#: ~7.2 KiB, so 8 KiB sits just above it and 1 MiB is deep in the
#: bandwidth regime.  Alltoall sizes are per block.
FULL_SPECS = (
    [("allreduce", a, s)
     for a in ("binomial", "ring", "rabenseifner")
     for s in (8 * KiB, 64 * KiB, 1 * MiB)]
    + [("bcast", a, s)
       for a in ("binomial", "segmented")
       for s in (8 * KiB, 1 * MiB)]
    + [("alltoall", a, s)
       for a in ("linear", "pairwise")
       for s in (512, 4 * KiB)]
)

#: --quick: the 16-rank CI smoke variant (same code paths, ~100x less
#: simulated traffic; the 2x acceptance ratio is only gated at 64 ranks).
QUICK_SHAPE = (4, 4)
QUICK_SPECS = (
    [("allreduce", a, 64 * KiB)
     for a in ("binomial", "ring", "rabenseifner")]
    + [("bcast", "segmented", 64 * KiB), ("alltoall", "pairwise", 4 * KiB)]
)


def run_sweep(shape, specs, baselines, jobs, timeout):
    from repro.bench.sweep_points import run_collectives_sweep_parallel

    t0 = time.perf_counter()
    points = run_collectives_sweep_parallel(
        specs, shape=shape, baselines=baselines,
        nic_nranks=shape[0] * shape[1], jobs=jobs, timeout=timeout)
    wall = time.perf_counter() - t0
    return points, wall


def check_acceptance(points, size=1 * MiB):
    """The PR's perf gate: bandwidth algorithms beat binomial >=2x at
    ``size`` on the torus cluster, single-hop ring, spans engaged."""
    tcc = {(p.op, p.algorithm, p.size): p for p in points
           if p.fabric.startswith("torus")}
    binom = tcc[("allreduce", "binomial", size)]
    ring = tcc[("allreduce", "ring", size)]
    rab = tcc[("allreduce", "rabenseifner", size)]
    out = {
        "size": size,
        "nranks": binom.nranks,
        "binomial_mbps": binom.mbps,
        "ring_mbps": ring.mbps,
        "rabenseifner_mbps": rab.mbps,
        "ring_vs_binomial_x": round(ring.mbps / binom.mbps, 2),
        "rabenseifner_vs_binomial_x": round(rab.mbps / binom.mbps, 2),
        "ring_single_hop": ring.ring_single_hop,
        "ring_slot_windows": ring.slot_windows,
    }
    assert ring.ring_single_hop, \
        "Hamiltonian embedding lost the single-hop property"
    assert ring.slot_windows > 0 and ring.slot_slots > 0, \
        "bulk ring phases did not ride the flow-fidelity span layer"
    assert out["ring_vs_binomial_x"] >= 2.0, (
        f"ring allreduce only {out['ring_vs_binomial_x']}x binomial at "
        f"{size} B (acceptance needs >=2x)")
    assert out["rabenseifner_vs_binomial_x"] >= 2.0, (
        f"rabenseifner allreduce only {out['rabenseifner_vs_binomial_x']}x "
        f"binomial at {size} B (acceptance needs >=2x)")
    return out


def baseline_table(points):
    """Per-spec TCC-vs-ConnectX ratio (same op, algorithm and size)."""
    tcc = {(p.op, p.algorithm, p.size): p for p in points
           if p.fabric.startswith("torus")}
    rows = []
    for p in points:
        if p.fabric.startswith("torus"):
            continue
        t = tcc.get((p.op, p.algorithm, p.size))
        if t is None:
            continue
        rows.append({
            "op": p.op, "algorithm": p.algorithm, "size": p.size,
            "baseline": p.fabric,
            "tcc_mbps": t.mbps, "baseline_mbps": p.mbps,
            "tcc_advantage_x": round(t.mbps / p.mbps, 2) if p.mbps else None,
        })
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--output", type=pathlib.Path,
                    default=REPO_ROOT / "BENCH_collectives.json")
    ap.add_argument("--quick", action="store_true",
                    help="16-rank smoke sweep (CI); skips the 64-rank "
                    "acceptance ratio gate")
    ap.add_argument("--no-check", action="store_true",
                    help="record the sweep without asserting acceptance")
    ap.add_argument("--jobs", default=None,
                    help="worker processes (default: TCC_PARALLEL or 4; "
                    "0/'auto' = all cores)")
    ap.add_argument("--timeout", type=float, default=None,
                    help="per-point timeout in seconds")
    args = ap.parse_args(argv)

    from repro.sim.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs) if args.jobs is not None else (
        resolve_jobs() if "TCC_PARALLEL" in os.environ else 4
    )
    shape = QUICK_SHAPE if args.quick else SHAPE
    specs = QUICK_SPECS if args.quick else FULL_SPECS

    points, wall = run_sweep(shape, specs, ("connectx",), jobs, args.timeout)

    report = {
        "shape": list(shape),
        "nranks": shape[0] * shape[1],
        "quick": args.quick,
        "runtime_s": round(wall, 1),
        "jobs": jobs,
        "points": [dataclasses.asdict(p) for p in points],
        "baseline_comparison": baseline_table(points),
    }
    if not args.quick and not args.no_check:
        report["acceptance"] = check_acceptance(points)
    elif args.quick and not args.no_check:
        # The smoke variant still proves the mechanisms, just not the
        # 64-rank ratio: spans engaged, single-hop ring, ring faster.
        tcc = {(p.op, p.algorithm): p for p in points
               if p.fabric.startswith("torus")}
        ring = tcc[("allreduce", "ring")]
        binom = tcc[("allreduce", "binomial")]
        assert ring.ring_single_hop
        assert ring.slot_windows > 0
        assert ring.elapsed_ns < binom.elapsed_ns
        report["smoke"] = {
            "ring_vs_binomial_x": round(ring.mbps / binom.mbps, 2)}

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
