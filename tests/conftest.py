"""Shared fixtures: session-scoped boot images, opt-in per test.

A test that only needs *a booted system* (not the boot protocol itself)
can take one of the ``restored_*`` fixtures and get a fresh system
restored from a session-cached :class:`~repro.cluster.snapshot.BootImage`
-- bit-exact vs a cold boot (tests/test_boot_image.py is the oracle),
without paying the boot simulation per test.  Tests that exercise boot,
firmware, link training or enumeration keep cold-booting.
"""

import pytest

from helpers import cached_boot_image


@pytest.fixture(scope="session")
def proto2_boot_image():
    """Boot image of the paper's two-board prototype (4 ranks)."""
    return cached_boot_image("proto2")


@pytest.fixture(scope="session")
def mesh_boot_image():
    """Boot image of a small 2x2 blade mesh (4 supernodes)."""
    return cached_boot_image("mesh2x2")


@pytest.fixture
def restored_prototype(proto2_boot_image):
    """A fresh booted prototype system, restored (not cold-booted)."""
    from repro.core import TCClusterSystem

    return TCClusterSystem.from_image(proto2_boot_image)


@pytest.fixture
def restored_mesh(mesh_boot_image):
    """A fresh booted 2x2 mesh system, restored (not cold-booted)."""
    from repro.core import TCClusterSystem

    return TCClusterSystem.from_image(mesh_boot_image)
