"""Golden regression of the headline numbers (Figure 6 / Figure 7).

Three representative points per figure run against
``tests/golden/fig6_bandwidth.json`` / ``fig7_latency.json`` with an
explicit 3% tolerance: small-message bandwidth, the buffering peak, the
msglib latency curve.  The 4 MiB sustained-bandwidth points take tens of
seconds of simulation and run under ``-m slow`` only (CI's scheduled
job; ``python -m repro.obs.regen_goldens`` regenerates everything).
"""

import os

import pytest

from repro.obs.golden import (
    assert_matches_golden,
    compare_to_golden,
    load_golden,
)
from repro.obs.scenarios import (
    FIG6_GOLDEN_SIZES,
    FIG6_SLOW_SIZES,
    FIG7_GOLDEN_SLOTS,
    run_golden_figures,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
FIG6 = os.path.join(GOLDEN_DIR, "fig6_bandwidth.json")
FIG7 = os.path.join(GOLDEN_DIR, "fig7_latency.json")


def _fig6_golden_subset(sizes):
    """The fig6 golden holds both fast and slow points; each test runs
    one set, so compare against only the matching keys."""
    golden = load_golden(FIG6)
    golden["metrics"] = {
        k: v for k, v in golden["metrics"].items()
        if any(f".{s}." in k for s in sizes)
    }
    return golden


@pytest.fixture(scope="module")
def figure_points():
    return run_golden_figures(fig6_sizes=FIG6_GOLDEN_SIZES,
                              fig7_slots=FIG7_GOLDEN_SLOTS)


def test_fig6_bandwidth_points_match_golden(figure_points):
    violations = compare_to_golden({"fig6": figure_points["fig6"]},
                                   _fig6_golden_subset(FIG6_GOLDEN_SIZES))
    assert not violations, "\n".join(violations)


def test_fig7_latency_points_match_golden(figure_points):
    assert_matches_golden({"fig7": figure_points["fig7"]}, FIG7)


def test_goldens_cover_the_paper_anchors():
    """The checked-in files pin the paper's headline values (sanity that
    a regen didn't silently drift the reproduction itself)."""
    fig6 = load_golden(FIG6)["metrics"]
    assert fig6["fig6.weak.64.mbps"] == pytest.approx(2500, rel=0.10)
    assert fig6["fig6.weak.262144.mbps"] == pytest.approx(5300, rel=0.05)
    fig7 = load_golden(FIG7)["metrics"]
    assert fig7["fig7.slots1.hrt_ns"] == pytest.approx(227, rel=0.08)


@pytest.mark.slow
def test_fig6_sustained_bandwidth_matches_golden():
    """4 MiB streams: the ~2700 MB/s weak / ~2000 MB/s strict plateaus."""
    points = run_golden_figures(fig6_sizes=FIG6_SLOW_SIZES, fig7_slots=())
    violations = compare_to_golden({"fig6": points["fig6"]},
                                   _fig6_golden_subset(FIG6_SLOW_SIZES))
    assert not violations, "\n".join(violations)
