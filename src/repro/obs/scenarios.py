"""Canonical, deterministic runs behind the golden regression files.

Two producers, both reused by ``tests/`` and by
``python -m repro.obs.regen_goldens``:

* :func:`run_canonical_2node` -- a fixed message workload on the paper's
  two-board prototype with metrics enabled; its key-metric snapshot
  (message counts, per-TCC-link packets/bytes/busy time, latency
  percentiles, stall counters, final simulation time) is compared against
  ``tests/golden/canonical_2node.json``.  Any PR that perturbs timing or
  routing -- even by a few percent -- moves ``busy_ns``/latency/clock
  beyond tolerance and fails loudly instead of silently skewing the
  reproduced figures.

* :func:`run_golden_figures` -- the Figure 6 bandwidth and Figure 7
  latency models at a few representative points each, for
  ``tests/golden/fig6_bandwidth.json`` / ``fig7_latency.json``.

Everything here must stay deterministic: fixed sizes, fixed iteration
counts, no wall-clock or RNG inputs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import KiB, MiB

__all__ = [
    "run_canonical_2node",
    "run_golden_figures",
    "FIG6_GOLDEN_SIZES",
    "FIG6_SLOW_SIZES",
    "FIG7_GOLDEN_SLOTS",
    "CANONICAL_TOLERANCES",
    "FIGURE_TOLERANCES",
]

#: Fast representative Figure 6 points: small-message regime, the knee,
#: and the buffering peak (256 KiB is the paper's quoted peak point).
FIG6_GOLDEN_SIZES = (64, 64 * KiB, 256 * KiB)
#: The sustained regime; simulating 4 MiB streams takes tens of seconds,
#: so these run under ``-m slow`` only.
FIG6_SLOW_SIZES = (4 * MiB,)
#: Figure 7 points: single slot (the 227 ns anchor), a medium eager
#: message, and a full-ring-wrap 64-slot message.
FIG7_GOLDEN_SLOTS = (1, 8, 64)

#: Default tolerances for the canonical-trace golden.  Deterministic
#: counters must match exactly; timing-derived values get a tight band
#: (a +10% link-latency perturbation moves them far outside it).
CANONICAL_TOLERANCES: Dict[str, Any] = {
    "default_rel": 0.02,
    "keys": {
        "endpoints.*": {"rel": 0.0},
        "links.*": {"rel": 0.0},
        "links_busy.*": {"rel": 0.02},
        "latency.*": {"rel": 0.02},
        "time_ns": {"rel": 0.02},
        "stalls.*": {"abs": 2},
    },
}

#: Figure goldens allow a slightly wider band: they guard the headline
#: numbers, not exact event counts.
FIGURE_TOLERANCES: Dict[str, Any] = {"default_rel": 0.03}


def run_canonical_2node(
    timing: TimingModel = DEFAULT_TIMING,
    system=None,
) -> Dict[str, Any]:
    """Boot the two-board prototype, drive a fixed bidirectional message
    mix, and distill the metrics snapshot into golden-comparable keys.

    ``system``: an already-constructed (un-booted, metrics-enabled or not)
    :class:`TCClusterSystem` to run on instead of building one -- lets the
    wall-clock benchmark keep a handle on the simulator for its
    event/heap-push counters.  Metrics are enabled and the system booted
    here either way, so the golden snapshot is identical.
    """
    from ..core import TCClusterSystem  # full stack; import on use

    sys_ = system if system is not None else TCClusterSystem.two_board_prototype(timing=timing)
    sys_.enable_metrics()
    sys_.boot()
    cl = sys_.cluster
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    tx, rx = sys_.connect(a, b)
    sim = sys_.sim

    # Deterministic mix spanning every protocol regime: single-slot eager,
    # multi-slot eager (with ring wrap), rendezvous, both ordering modes.
    fwd = (
        [bytes([i % 251 + 1]) * 48 for i in range(24)]           # 1 slot
        + [bytes([i % 7 + 1]) * 300 for i in range(12)]          # 6 slots
        + [bytes([i % 5 + 1]) * 5000 for i in range(4)]          # rendezvous
    )
    back = [bytes([i % 11 + 1]) * 200 for i in range(10)]

    def forward():
        for i, m in enumerate(fwd):
            yield from tx.send(m, mode="strict" if i % 4 == 0 else "weak")
        yield from tx.flush()
        for _ in back:
            yield from tx.recv()

    def backward():
        for _ in fwd:
            yield from rx.recv()
        for m in back:
            yield from rx.send(m)
        yield from rx.flush()

    pa = sim.process(forward())
    pb = sim.process(backward())
    sim.run_until_event(sim.all_of([pa, pb]))
    sim.run()  # drain in-flight fabric traffic

    snap = cl.metrics()
    tcc_name = snap["tcc_links"][0]
    tcc = snap["links"][tcc_name]
    lat = snap["message_latency_ns"]
    ab = snap["endpoints"][f"r{a}->r{b}"]
    ba = snap["endpoints"][f"r{b}->r{a}"]
    return {
        "time_ns": snap["time_ns"],
        "endpoints": {
            "fwd_sent": ab["msgs_sent"],
            "fwd_bytes": ab["bytes_sent"],
            "fwd_eager": ab["eager_sent"],
            "fwd_rendezvous": ab["rendezvous_sent"],
            "back_sent": ba["msgs_sent"],
            "back_bytes": ba["bytes_sent"],
            "fwd_max_inflight": ab["max_inflight_slots"],
        },
        "links": {
            "tcc_a_packets": tcc["A"]["packets"],
            "tcc_a_wire_bytes": tcc["A"]["wire_bytes"],
            "tcc_b_packets": tcc["B"]["packets"],
            "tcc_b_wire_bytes": tcc["B"]["wire_bytes"],
        },
        "links_busy": {
            "tcc_a_busy_ns": tcc["A"]["busy_ns"],
            "tcc_b_busy_ns": tcc["B"]["busy_ns"],
        },
        "latency": {
            "count": lat["count"],
            "p50_ns": lat["p50"],
            "p99_ns": lat["p99"],
            "mean_ns": lat["mean"],
        },
        "stalls": {
            "fwd_tx_stalls": ab["tx_stalls"],
            "back_tx_stalls": ba["tx_stalls"],
        },
    }


def run_golden_figures(
    fig6_sizes: Sequence[int] = FIG6_GOLDEN_SIZES,
    fig7_slots: Sequence[int] = FIG7_GOLDEN_SLOTS,
    timing: TimingModel = DEFAULT_TIMING,
    system=None,
) -> Dict[str, Any]:
    """Headline Figure 6 / Figure 7 numbers at representative points."""
    from ..bench import make_prototype, run_bandwidth_sweep, run_msglib_latency

    sys_ = system or make_prototype(timing)
    out: Dict[str, Any] = {"fig6": {}, "fig7": {}}
    if fig6_sizes:
        for p in run_bandwidth_sweep(sizes=tuple(fig6_sizes),
                                     modes=("weak", "strict"), system=sys_):
            out["fig6"][f"{p.mode}.{p.size}"] = {"mbps": p.mbps}
    if fig7_slots:
        for p in run_msglib_latency(slot_counts=tuple(fig7_slots),
                                    iters=20, system=sys_):
            out["fig7"][f"slots{p.slots}"] = {
                "wire_bytes": p.wire_bytes,
                "hrt_ns": p.hrt_ns,
            }
    return out
