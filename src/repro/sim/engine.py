"""Discrete-event simulation engine.

This is the foundation of the whole TCCluster reproduction: every hardware
unit (link, northbridge, memory controller, CPU core) and every software
layer (firmware, driver, message library) executes as a coroutine process
inside a :class:`Simulator`, and all reported performance numbers are
*virtual* nanoseconds of simulated time.

The engine is deliberately small and deterministic:

* a binary-heap event calendar keyed by ``(time, sequence)`` so that events
  scheduled at the same instant fire in scheduling order,
* generator-based processes (SimPy style) which ``yield`` timeouts, events,
  other processes or composite conditions,
* no wall-clock anywhere -- results are exactly reproducible.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> _ = sim.process(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
from heapq import heappush as _heappush
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "SimFeatures",
    "MacroEntry",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "DeadlockError",
]


@dataclass
class SimFeatures:
    """Runtime switches for the wall-clock fast paths.

    All of them are virtual-time-invariant transformations (see
    DESIGN.md, "Performance model equivalence"); they exist as flags so
    the wall-clock benchmark and the equivalence tests can run the same
    workload in legacy and fast mode and compare.
    """

    #: Park idle polling receivers on a memory doorbell instead of
    #: burning one calendar entry per poll iteration.
    poll_parking: bool = True
    #: Serialize back-to-back same-VC link packets as one bulk occupancy
    #: event with arithmetically computed delivery times.
    burst_serialization: bool = True
    #: Collapse an uncontended bulk WC store's whole packet train
    #: (fill/dispatch/serialize pipeline) into closed-form arithmetic,
    #: demoting back to per-packet mode the instant anything else touches
    #: the involved queues (see repro.opteron.train).
    adaptive_fidelity: bool = True
    #: Flow-level macro events for the remaining traffic classes: msglib
    #: ring slot writes, same-route remote read/response chains and
    #: multi-hop forwarding (see repro.sim.flows).  Default off -- the
    #: flag only changes wall-clock cost, never virtual time, but keeping
    #: it opt-in pins every recorded event-count gate bit-identical.
    flow_fidelity: bool = False


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when ``run(until=None)`` is asked to
    wait for a condition that can never fire (event heap empty but waiters
    remain)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    makes it *triggered* and schedules its callbacks at the current
    simulation time.  A process that ``yield``\\ s a pending event is
    suspended until the event triggers; the event's value is sent into the
    generator.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_triggered", "_scheduled",
                 "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        #: True once a dispatch entry has been pushed onto the calendar.
        #: Dispatch is lazy: a triggered event with no listeners costs no
        #: calendar entry at all; the first add_callback schedules it.
        self._scheduled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only valid once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed` (or the exception)."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful and schedule its callbacks *now*."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        if self._callbacks:
            self._scheduled = True
            self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event failed; waiting processes receive ``exc``."""
        if self._triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        if self._callbacks:
            self._scheduled = True
            self.sim._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event triggers.

        If the event already triggered, the callback is scheduled
        immediately (at the current simulation time).
        """
        cbs = self._callbacks
        if cbs is None:
            # Already dispatched: run at current time via the calendar so
            # ordering semantics stay uniform.
            self.sim.schedule(0.0, fn, self)
            return
        cbs.append(fn)
        if self._triggered and not self._scheduled:
            # Triggered with no listeners at the time: the dispatch was
            # deferred; schedule it now that someone cares.
            self._scheduled = True
            self.sim._schedule_event(self)

    def _succeed_inline(self, value: Any = None) -> None:
        """:meth:`succeed` plus synchronous callback dispatch.

        Only legal from a *bare calendar callback* with nothing left to
        do at this timestamp: the caller's calendar entry stands in for
        the dispatch entry the lazy ``succeed`` would push, so waking
        synchronously is a seq shift within the timestamp, never a
        timing change.  Saves one calendar entry per call on the
        packet-delivery hot path.
        """
        self._triggered = True
        self._ok = True
        self._value = value
        if self._callbacks:
            self._scheduled = True
            self._dispatch()

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None  # type: ignore[assignment]
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Note: the name is deliberately static -- an f-string per timeout
        # shows up in profiles of packet-heavy runs.
        super().__init__(sim, name="timeout")
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        self._scheduled = True  # the dispatch entry IS the wake mechanism
        sim._schedule_event(self, delay)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: Tuple[Event, ...] = tuple(events)
        self._n_done = 0
        if not self.events:
            # Vacuous conditions trigger immediately.
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _collect(self) -> dict:
        return {ev: ev.value for ev in self.events if ev.triggered}

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when *any* child event triggers; value maps done events."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AnyOf")

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Triggers when *all* child events have triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="AllOf")

    def _satisfied(self) -> bool:
        return self._n_done >= len(self.events)


ProcessGen = Generator[Any, Any, Any]


class Process(Event):
    """A running coroutine inside the simulation.

    The wrapped generator may yield:

    * ``float | int`` -- sleep for that many time units,
    * :class:`Event` -- wait until it triggers (its value is sent back in),
    * :class:`Process` -- wait for that process to finish,
    * ``None`` -- yield the processor for one zero-delay step.

    A Process is itself an Event that triggers with the generator's return
    value, so processes can wait on each other.
    """

    __slots__ = ("gen", "_waiting_on", "_interrupts", "_wake_token")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        self._wake_token = 0
        sim.schedule(0.0, self._resume, None, True)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever it was waiting on; the wait event may still
        # trigger later but the resume guard ignores stale wakeups.
        self.sim.schedule(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self._triggered or not self._interrupts:
            return
        exc = self._interrupts.pop(0)
        # Stale wakeup protection: detaching from the wait event makes
        # _on_wait_done ignore it, and bumping the token invalidates any
        # fast-path sleep entry already sitting on the calendar.
        self._waiting_on = None
        self._wake_token += 1
        self._step(exc, throw=True)

    def _resume(self, value: Any, ok: bool) -> None:
        self._step(value if ok else value, throw=not ok)

    def _on_wait_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if self._waiting_on is not ev:
            return  # stale wakeup (we were interrupted meanwhile)
        self._waiting_on = None
        if ev._ok is not True:
            self._step(ev._value, throw=True)
            return
        # Success resume, inlined from _step (one frame per event wake is
        # real money; the duplicated tail below must stay in lockstep with
        # _step and _sleep_wake).
        try:
            target = self.gen.send(ev._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not handle an Interrupt"
            )
        tt = type(target)
        if tt is float or tt is int:
            if target < 0:
                raise ValueError(f"negative timeout delay: {target!r}")
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now + target, sim._seq, self._sleep_wake, (token,)))
            return
        if target is None:
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now, sim._seq, self._sleep_wake, (token,)))
            return
        if type(target) is Event or isinstance(target, Event):
            self._waiting_on = target
            cbs = target._callbacks
            if cbs is None:
                sim = self.sim
                sim._push(sim._now, self._on_wait_done, (target,))
                return
            cbs.append(self._on_wait_done)
            if target._triggered and not target._scheduled:
                target._scheduled = True
                target.sim._schedule_event(target)
            return
        self._wait_for(target)

    def _step(self, value: Any, throw: bool = False) -> None:
        try:
            if throw:
                if isinstance(value, BaseException):
                    target = self.gen.throw(value)
                else:  # pragma: no cover - defensive
                    target = self.gen.throw(SimulationError(repr(value)))
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not handle an Interrupt"
            )
        # The two dominant yield kinds (plain sleeps and zero-delay steps)
        # are handled inline -- one call frame per process step is real
        # money at packet-stream scale.  ``type`` (not isinstance) keeps
        # bool out and is faster on the exact-match hot path.
        tt = type(target)
        if tt is float or tt is int:
            if target < 0:
                raise ValueError(f"negative timeout delay: {target!r}")
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now + target, sim._seq, self._sleep_wake, (token,)))
            return
        if target is None:
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now, sim._seq, self._sleep_wake, (token,)))
            return
        # Event waits are the third dominant yield kind; registering the
        # wake callback inline sheds the _wait_for frame.
        if type(target) is Event or isinstance(target, Event):
            self._waiting_on = target
            cbs = target._callbacks
            if cbs is None:
                sim = self.sim
                sim._push(sim._now, self._on_wait_done, (target,))
                return
            cbs.append(self._on_wait_done)
            if target._triggered and not target._scheduled:
                target._scheduled = True
                target.sim._schedule_event(target)
            return
        self._wait_for(target)

    def _wait_for(self, target: Any) -> None:
        # Fast path: a numeric yield (or None for a zero-delay step) is a
        # plain sleep.  Push the resume entry straight onto the calendar
        # instead of allocating a Timeout plus a callback chain; the wake
        # token invalidates the entry if an interrupt arrives first.
        if target is None:
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._push(sim._now, self._sleep_wake, (token,))
            return
        if isinstance(target, (int, float)):
            if target < 0:
                raise ValueError(f"negative timeout delay: {target!r}")
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._push(sim._now + target, self._sleep_wake, (token,))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value "
                f"{target!r} (expected Event, Process, number or None)"
            )
        self._waiting_on = target
        # Inlined target.add_callback(self._on_wait_done): one method call
        # per event wait is real money on the packet-stream hot path.
        cbs = target._callbacks
        if cbs is None:
            self.sim.schedule(0.0, self._on_wait_done, target)
            return
        cbs.append(self._on_wait_done)
        if target._triggered and not target._scheduled:
            target._scheduled = True
            target.sim._schedule_event(target)

    def _sleep_wake(self, token: int) -> None:
        if self._triggered or token != self._wake_token:
            return  # stale entry (interrupted meanwhile)
        # Sleep resume, inlined from _step (the single hottest calendar
        # callback; see the lockstep note in _on_wait_done).
        try:
            target = self.gen.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not handle an Interrupt"
            )
        tt = type(target)
        if tt is float or tt is int:
            if target < 0:
                raise ValueError(f"negative timeout delay: {target!r}")
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now + target, sim._seq, self._sleep_wake, (token,)))
            return
        if target is None:
            sim = self.sim
            self._wake_token = token = self._wake_token + 1
            sim._seq += 1
            sim._push_count += 1
            _heappush(sim._heap,
                      (sim._now, sim._seq, self._sleep_wake, (token,)))
            return
        if type(target) is Event or isinstance(target, Event):
            self._waiting_on = target
            cbs = target._callbacks
            if cbs is None:
                sim = self.sim
                sim._push(sim._now, self._on_wait_done, (target,))
                return
            cbs.append(self._on_wait_done)
            if target._triggered and not target._scheduled:
                target._scheduled = True
                target.sim._schedule_event(target)
            return
        self._wait_for(target)


class MacroEntry:
    """One speculative cancellable calendar entry (macro-event machinery).

    Adaptive-fidelity layers (:mod:`repro.opteron.train`,
    :mod:`repro.sim.flows`) precompute a future and walk it with a single
    live calendar entry at a time; a demotion revokes whatever part of
    that future did not happen yet.  This wraps the
    :meth:`Simulator._push_cancellable` / :meth:`Simulator._cancel` pair
    so the arm/fire/cancel bookkeeping (never cancel a fired entry, never
    double-arm) lives in one place instead of ad-hoc ``_seq`` fields.
    """

    __slots__ = ("sim", "_seq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._seq: Optional[int] = None

    @property
    def armed(self) -> bool:
        return self._seq is not None

    def arm(self, at: float, fn: Callable, args: Optional[tuple]) -> None:
        """Push the entry; the callback MUST call :meth:`fired` first."""
        assert self._seq is None, "macro entry armed twice"
        self._seq = self.sim._push_cancellable(at, fn, args)

    def fired(self) -> None:
        """Mark the entry as executed (call at the top of the callback)."""
        self._seq = None

    def cancel(self) -> None:
        """Revoke the entry if still pending; safe to call when idle."""
        if self._seq is not None:
            self.sim._cancel(self._seq)
            self._seq = None


class Simulator:
    """The event calendar and virtual clock.

    Time is a float in *nanoseconds* by convention throughout this library
    (see :mod:`repro.util.units`), though the engine itself is unit-agnostic.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable, Optional[tuple]]] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._cancelled: set = set()
        self._event_count: int = 0
        self._push_count: int = 0
        self._running = False
        self.features = SimFeatures()
        #: Lazily attached per-simulation object pools (data-plane flyweight
        #: packets; see :func:`repro.ht.packet.pool_for`).  Owned here so a
        #: pool's lifetime is exactly the simulation's lifetime: a fresh
        #: simulator can never see recycled objects from a previous run.
        self._packet_pool = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total number of calendar entries executed so far."""
        return self._event_count

    @property
    def heap_pushes(self) -> int:
        """Total calendar entries ever pushed (the wall-clock cost driver)."""
        return self._push_count

    # -- scheduling primitives --------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._push(self._now + delay, fn, args)

    def _push(self, at: float, fn: Callable, args: Optional[tuple]) -> None:
        """Internal hot-path push: no validation, ``args`` may be None."""
        self._seq += 1
        self._push_count += 1
        _heappush(self._heap, (at, self._seq, fn, args))

    def _push_cancellable(self, at: float, fn: Callable,
                          args: Optional[tuple]) -> int:
        """:meth:`_push` returning a handle for :meth:`_cancel`.

        A cancelled entry is skipped *without advancing the clock*, so a
        speculative long-dated entry (e.g. an adaptive-fidelity train's
        completion) leaves no trace once revoked -- a plain guarded no-op
        would still drag ``now`` forward when the calendar drains early.
        """
        self._seq += 1
        self._push_count += 1
        _heappush(self._heap, (at, self._seq, fn, args))
        return self._seq

    def _cancel(self, seq: int) -> None:
        """Revoke a pending entry returned by :meth:`_push_cancellable`.

        Must only be called while the entry is still in the calendar:
        seqs are never reused, so cancelling a fired entry would leave a
        dead sentinel in the set forever.
        """
        self._cancelled.add(seq)

    def _schedule_event(self, ev: Event, delay: float = 0.0) -> None:
        # No argument tuple to build or unpack for the (dominant) event
        # dispatch entries; _push is inlined (one frame per dispatch).
        self._seq += 1
        self._push_count += 1
        _heappush(self._heap, (self._now + delay, self._seq, ev._dispatch, None))

    # -- snapshot support --------------------------------------------------
    def assert_quiescent(self) -> None:
        """Assert the calendar is fully drained (the snapshot precondition).

        Quiescent means: nothing is pending in the heap, no cancelled
        sentinels are outstanding, and no run loop is active.  Every live
        process is parked on an event wait (store/gate/credit waiters are
        callbacks, not calendar entries), so resuming later is purely a
        matter of new stimulus -- the state a :class:`repro.cluster`
        boot image captures.
        """
        if self._running:
            raise SimulationError("simulator is running (not quiescent)")
        if self._heap:
            raise SimulationError(
                f"not quiescent: {len(self._heap)} calendar entries pending "
                f"(next at t={self._heap[0][0]})"
            )
        if self._cancelled:
            raise SimulationError(
                f"not quiescent: {len(self._cancelled)} cancelled sentinels "
                "outstanding"
            )

    def rebase_clock(self, now: float, seq: int, event_count: int,
                     push_count: int) -> None:
        """Adopt a captured clock/counter quadruple (boot-image restore).

        Requires quiescence.  Downstream execution depends only on the
        architectural state, the clock, and the *relative* order of
        future seqs, so overwriting all four absolute counters with the
        values captured at the same architectural state makes subsequent
        virtual times and event counts bit-identical to the cold-boot
        continuation.  ``seq`` must not move backwards past entries this
        simulator already issued (seqs are never reused).
        """
        self.assert_quiescent()
        if now < self._now:
            raise SimulationError(
                f"cannot rebase the clock backwards ({now} < {self._now})"
            )
        if seq < self._seq:
            raise SimulationError(
                f"cannot rebase seq backwards ({seq} < {self._seq}); "
                "captured boot must have executed at least the entries a "
                "fresh construction drains"
            )
        self._now = now
        self._seq = seq
        self._event_count = event_count
        self._push_count = push_count

    # -- factories ---------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a coroutine process; returns the :class:`Process`."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- main loop ----------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Execute events until the calendar drains.

        Parameters
        ----------
        until:
            Stop (without executing) events scheduled after this time.
            The clock is advanced to ``until`` when given.
        max_events:
            Safety valve for runaway simulations.

        Returns the simulation time at exit.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        cancelled = self._cancelled
        executed = 0
        try:
            while heap:
                entry = heap[0]
                t = entry[0]
                if until is not None and t > until:
                    break
                heappop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.remove(entry[1])
                    continue
                self._now = t
                args = entry[3]
                if args:
                    entry[2](*args)
                else:
                    entry[2]()
                executed += 1
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (possible livelock)"
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            # Batched: the counter is observability-only and read between
            # runs, never from inside a calendar callback.
            self._event_count += executed
            self._running = False
        return self._now

    def run_until_event(self, ev: Event, limit: Optional[float] = None) -> Any:
        """Run until ``ev`` triggers; returns its value.

        Raises :class:`DeadlockError` if the calendar drains first, which is
        the classic symptom of e.g. a receiver polling a ring buffer that no
        sender will ever fill.
        """
        if self._running:
            raise SimulationError("run_until_event() is not reentrant")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        cancelled = self._cancelled
        executed = 0
        try:
            if limit is None:
                # Specialized unlimited loop: no per-entry limit compare on
                # the dominant call shape.
                while not ev._triggered:
                    if not heap:
                        raise DeadlockError(
                            f"no more events but {ev.name!r} never triggered"
                        )
                    t, _seq, fn, args = heappop(heap)
                    if cancelled and _seq in cancelled:
                        cancelled.remove(_seq)
                        continue
                    self._now = t
                    if args:
                        fn(*args)
                    else:
                        fn()
                    executed += 1
            else:
                while not ev._triggered:
                    if not heap:
                        raise DeadlockError(
                            f"no more events but {ev.name!r} never triggered"
                        )
                    t, _seq, fn, args = heappop(heap)
                    if cancelled and _seq in cancelled:
                        cancelled.remove(_seq)
                        continue
                    if t > limit:
                        raise DeadlockError(
                            f"time limit {limit} exceeded waiting for {ev.name!r}"
                        )
                    self._now = t
                    if args:
                        fn(*args)
                    else:
                        fn()
                    executed += 1
        finally:
            self._event_count += executed
            self._running = False
        if not ev.ok:
            raise ev.value
        return ev.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now} pending={len(self._heap)}>"
