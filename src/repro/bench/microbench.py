"""The paper's microbenchmarks (Section VI), reproduced on the simulator.

Both benchmarks work at the same level as the paper's: raw remote stores
into a mapped window (the message library sits *above* this and is
characterized separately).

* :func:`run_bandwidth_sweep` -- Figure 6: stream S bytes of cache-line
  stores into the remote window, weakly ordered (WC buffers drain on
  overflow) or strictly ordered ("after each cache line sized store
  operation an Sfence instruction is triggered").  Reported bandwidth is
  S / (time for the store stream to retire), which is what a store-side
  benchmark measures and what produces the buffering peak the paper notes
  at 256 KB.

* :func:`run_latency_sweep` -- Figure 7: ping-pong, "the receive node
  polls a specific memory location and sends back a response as soon as
  the first message arrives"; we report the half round trip.

* :func:`run_multihop` -- the in-text claim "each hop increases the
  end-to-end latency by less then 50 ns", measured by numactl-binding the
  processes to different sockets, exactly as in the paper.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import TCCluster
from ..core import TCClusterSystem
from ..kernel import UserProcess
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import CACHELINE, KiB, MiB, bandwidth_mbps

__all__ = [
    "BandwidthPoint",
    "LatencyPoint",
    "HopPoint",
    "run_bandwidth_sweep",
    "run_latency_sweep",
    "run_multihop",
    "DEFAULT_BW_SIZES",
    "DEFAULT_LAT_SIZES",
    "make_prototype",
    "prototype_image",
]

#: Figure 6's x axis: 64 B .. 4 MB in powers of two.
DEFAULT_BW_SIZES: Tuple[int, ...] = tuple(
    64 << i for i in range(0, 17)
)  # 64 B .. 4 MiB
#: Figure 7's x axis: small messages, 64 B .. 4 KB.
DEFAULT_LAT_SIZES: Tuple[int, ...] = (64, 128, 256, 512, 1024, 2048, 4096)

_WINDOW = 8 * MiB          # streaming window inside the peer's memory
_WINDOW_OFF = 32 * MiB     # away from the OS/message regions
_MAILBOX_OFF = 48 * MiB


@dataclass(frozen=True)
class BandwidthPoint:
    size: int
    mode: str
    elapsed_ns: float
    mbps: float


@dataclass(frozen=True)
class LatencyPoint:
    size: int
    iters: int
    hrt_ns: float          # half round trip, mean


@dataclass(frozen=True)
class HopPoint:
    extra_hops: int
    hrt_ns: float


def make_prototype(timing: TimingModel = DEFAULT_TIMING,
                   image=None) -> TCClusterSystem:
    """The booted two-board prototype all microbenchmarks run on.

    When ``image`` (a :class:`~repro.cluster.snapshot.BootImage`) is given,
    the system is restored from it instead of simulating the boot protocol;
    restored state is bit-exact vs a cold boot of the same signature.
    """
    if image is not None:
        return TCClusterSystem.from_image(image)
    return TCClusterSystem.two_board_prototype(timing=timing).boot()


def prototype_image(timing: TimingModel = DEFAULT_TIMING):
    """The (cached) boot image for the two-board prototype signature."""
    from ..cluster.snapshot import image_for
    from ..topology import chain

    topo = chain(2, node=1, left_port=2, right_port=2)
    return image_for(topo, nodes_per_supernode=2, timing=timing)


class _RawWindow:
    """A raw mapped remote window + local mailbox for one rank."""

    def __init__(self, cluster: TCCluster, rank: int, peer: int):
        self.cluster = cluster
        self.rank = rank
        self.peer = peer
        info = cluster.ranks[rank]
        pinfo = cluster.ranks[peer]
        self.proc: UserProcess = cluster.spawn_process(rank, name=f"bench-r{rank}")
        driver = cluster.kernels[info.supernode].driver_for(info.chip_index)
        self.tx_base = pinfo.base + _WINDOW_OFF
        driver.mmap_remote(self.proc.pagetable, self.tx_base, _WINDOW, tag="bench-win")
        self.tx_mailbox = pinfo.base + _MAILBOX_OFF
        driver.mmap_remote(self.proc.pagetable, self.tx_mailbox, 64 * KiB,
                           tag="bench-mbox-tx")
        self.rx_mailbox = info.base + _MAILBOX_OFF
        driver.mmap_local_export(self.proc.pagetable, self.rx_mailbox, 64 * KiB,
                                 tag="bench-mbox-rx")


def _drain(cluster: TCCluster) -> None:
    """Let all in-flight traffic land (no pollers are running)."""
    cluster.sim.run()


# ---------------------------------------------------------------------------
# Figure 6: bandwidth
# ---------------------------------------------------------------------------

def _stream(win: _RawWindow, size: int, mode: str,
            fence_interval: Optional[int] = None):
    """Store ``size`` bytes of cache lines into the window (wrapping).

    ``fence_interval`` (lines between sfences) generalizes the two paper
    modes for the ordering ablation; ``mode`` maps to 1 (strict) / None
    (weak) when it is not given explicitly.
    """
    proc = win.proc
    if fence_interval is None and mode == "strict":
        fence_interval = 1
    # Per-message entry cost (function call, loop setup, pointer math) --
    # this is what bends the curve down at small message sizes.
    yield proc.sim.timeout(proc.core.chip.timing.send_overhead_ns)
    line = bytes(range(64))
    pos = 0
    nline = 0
    while pos < size:
        addr = win.tx_base + (pos % _WINDOW)
        yield from proc.store(addr, line)
        nline += 1
        if fence_interval and nline % fence_interval == 0:
            yield from proc.sfence()
        pos += CACHELINE
    return proc.sim.now


def run_bandwidth_sweep(
    sizes: Sequence[int] = DEFAULT_BW_SIZES,
    modes: Sequence[str] = ("weak", "strict"),
    timing: TimingModel = DEFAULT_TIMING,
    system: Optional[TCClusterSystem] = None,
) -> List[BandwidthPoint]:
    """Reproduce Figure 6.  Measures store-retire bandwidth per size/mode."""
    sys_ = system or make_prototype(timing)
    cluster = sys_.cluster
    a = cluster.rank_of(0, 1)   # board0 node1 (owns the HTX port)
    b = cluster.rank_of(1, 1)
    win = _RawWindow(cluster, a, b)
    points: List[BandwidthPoint] = []
    for mode in modes:
        for size in sizes:
            if size % CACHELINE:
                raise ValueError(f"size {size} not line aligned")
            start = cluster.sim.now
            done = cluster.sim.process(_stream(win, size, mode))
            end = cluster.sim.run_until_event(done)
            elapsed = end - start
            points.append(
                BandwidthPoint(size, mode, elapsed, bandwidth_mbps(size, elapsed))
            )
            # Flush WC tails and let the fabric drain outside the window.
            f = cluster.sim.process(win.proc.sfence())
            cluster.sim.run_until_event(f)
            _drain(cluster)
    return points


# ---------------------------------------------------------------------------
# Figure 7: latency (ping-pong)
# ---------------------------------------------------------------------------

_TOKEN = struct.Struct("<Q")


def _write_message(proc: UserProcess, base: int, size: int, token: int):
    """Write a message of ``size`` bytes whose every line carries the
    iteration token (the receiver syncs on the last line)."""
    body = _TOKEN.pack(token) * 8  # one 64B line of repeated token
    nlines = size // CACHELINE
    for i in range(nlines):
        yield from proc.store(base + i * CACHELINE, body)
    yield from proc.sfence()


def _poll_for(proc: UserProcess, addr: int, token: int):
    want = _TOKEN.pack(token)
    t = proc.core.chip.timing
    while True:
        raw = yield from proc.load(addr, 8)
        if raw == want:
            return
        yield proc.sim.timeout(t.poll_iteration_ns)


def _pingpong(win_a: _RawWindow, win_b: _RawWindow, size: int, iters: int,
              out: Dict):
    """Rank A side drives the measurement; B echoes."""
    proc = win_a.proc
    sim = proc.sim
    last_line = (size // CACHELINE - 1) * CACHELINE
    start = sim.now
    for i in range(1, iters + 1):
        yield from _write_message(proc, win_a.tx_mailbox, size, i)
        yield from _poll_for(proc, win_a.rx_mailbox + last_line, i)
    out["elapsed"] = sim.now - start


def _echo(win_b: _RawWindow, size: int, iters: int):
    proc = win_b.proc
    last_line = (size // CACHELINE - 1) * CACHELINE
    for i in range(1, iters + 1):
        yield from _poll_for(proc, win_b.rx_mailbox + last_line, i)
        yield from _write_message(proc, win_b.tx_mailbox, size, i)


def run_latency_sweep(
    sizes: Sequence[int] = DEFAULT_LAT_SIZES,
    iters: int = 40,
    timing: TimingModel = DEFAULT_TIMING,
    system: Optional[TCClusterSystem] = None,
    bind: Tuple[int, int] = (1, 1),
) -> List[LatencyPoint]:
    """Reproduce Figure 7.  ``bind`` selects the socket (chip index) each
    side's process runs on -- numactl in the paper's words."""
    sys_ = system or make_prototype(timing)
    cluster = sys_.cluster
    a = cluster.rank_of(0, 1)
    b = cluster.rank_of(1, 1)
    win_a = _RawWindow(cluster, a, b)
    win_b = _RawWindow(cluster, b, a)
    win_a.proc.bind_to(bind[0])
    win_b.proc.bind_to(bind[1])
    points: List[LatencyPoint] = []
    for size in sizes:
        if size % CACHELINE:
            raise ValueError(f"size {size} not line aligned")
        out: Dict = {}
        cluster.sim.process(_echo(win_b, size, iters))
        done = cluster.sim.process(_pingpong(win_a, win_b, size, iters, out))
        cluster.sim.run_until_event(done)
        _drain(cluster)
        hrt = out["elapsed"] / (2 * iters)
        points.append(LatencyPoint(size, iters, hrt))
    return points


# ---------------------------------------------------------------------------
# Multi-hop latency (in-text claim)
# ---------------------------------------------------------------------------

def run_multihop(
    iters: int = 40,
    size: int = 64,
    timing: TimingModel = DEFAULT_TIMING,
) -> List[HopPoint]:
    """Ping-pong with processes bound to different sockets.

    The two-board prototype offers 0, 1 or 2 *extra* coherent hops on top
    of the TCC link, selected purely with numactl-style binding and
    mailbox placement, exactly like the paper's measurement:

    * 0: node1 <-> node1 (both own the HTX-adjacent socket),
    * 1: node0 -> (coherent hop) -> node1 -> TCC -> node1,
    * 2: node0 -> coherent -> TCC -> coherent -> node0.
    """
    results: List[HopPoint] = []
    for extra, (chip_a, chip_b) in enumerate([(1, 1), (0, 1), (0, 0)]):
        sys_ = make_prototype(timing)
        cluster = sys_.cluster
        a = cluster.rank_of(0, chip_a)
        b = cluster.rank_of(1, chip_b)
        win_a = _RawWindow(cluster, a, b)
        win_b = _RawWindow(cluster, b, a)
        out: Dict = {}
        cluster.sim.process(_echo(win_b, size, iters))
        done = cluster.sim.process(_pingpong(win_a, win_b, size, iters, out))
        cluster.sim.run_until_event(done)
        results.append(HopPoint(extra, out["elapsed"] / (2 * iters)))
    return results
