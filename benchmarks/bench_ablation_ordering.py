"""A-ord -- the sfence-frequency trade-off between Figure 6's two curves.

Paper Section VI: "Sfence performs a serializing operation on all store
instructions that were issued prior the Sfence instruction which
introduces overhead limiting the write performance to 2000 MB/s.  Higher
bandwidth can be achieved with weakly ordered writes."  The ablation
sweeps the fence interval from every line (strict) to never (weak).
"""

import pytest

from _common import write_result
from repro.bench import run_ordering_ablation, table
from repro.util.units import KiB


@pytest.fixture(scope="module")
def ordering_points():
    return run_ordering_ablation(intervals=(1, 2, 4, 8, 16, 64, None),
                                 size=256 * KiB)


def test_ordering_ablation(benchmark, ordering_points):
    points = ordering_points
    by_k = {p.fence_interval: p.mbps for p in points}

    # --- the two paper endpoints ----------------------------------------
    assert by_k[1] == pytest.approx(2000, rel=0.03), "strict: 2000 MB/s"
    assert by_k[None] == pytest.approx(5300, rel=0.05), "weak: buffered peak"
    # monotone improvement as fences get rarer
    ordered = [by_k[k] for k in (1, 2, 4, 8, 16, 64)] + [by_k[None]]
    assert ordered == sorted(ordered)
    # diminishing returns: most of the win is gone by interval 16
    assert by_k[16] > 0.85 * by_k[None]

    rows = [("every line" if p.fence_interval == 1 else
             ("never" if p.fence_interval is None else
              f"every {p.fence_interval}"), round(p.mbps))
            for p in points]
    txt = table(["sfence interval", "MB/s"], rows,
                title="Ordering ablation: sfence frequency vs bandwidth")
    write_result("ablation_ordering", txt)

    def kernel():
        return run_ordering_ablation(intervals=(1, None), size=16 * KiB)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert len(result) == 2
