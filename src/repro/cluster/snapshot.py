"""Boot-image snapshot/restore: boot a signature once, restore it many times.

Every sweep point, chaos seed and most tests previously paid the full
cold-boot cost -- firmware enumeration, warm reset, link training, OS
boot -- to reach the *identical* quiescent post-boot state.  This module
captures that drained architectural state once into an immutable
:class:`BootImage` and instantiates every subsequent system by restoring
the image into a freshly constructed cluster, skipping the boot protocol
simulation entirely.  Boot cost drops from O(points) to O(distinct
signatures).

Why restore is bit-exact (the oracle ``tests/test_boot_image.py`` holds
this to account):

* **Quiescence precondition.**  Capture requires the calendar to be
  fully drained (:meth:`~repro.sim.engine.Simulator.assert_quiescent`).
  At that point every live process is parked on a wait primitive, and
  every primitive a booted cluster parks on is *single-consumer* (one
  pump per TX queue, one rx loop per direction, one dispatcher per
  posted queue, one southbridge drain), so waiter order is trivially
  reproduced by a fresh construction.
* **Architectural state.**  Registers are restored by direct dict
  assignment (bypassing write hooks -- a warm-reset side effect on
  replayed register values would *re-run* boot), then the northbridge
  map decode is rebuilt from them; memory pages, caches, MTRRs, link
  rates/states, FSM personas, counters and RNG states are copied field
  by field.
* **Clock rebase.**  The fresh construction drains its startup entries
  at t=0, then adopts the captured ``(now, seq, event_count,
  push_count)`` quadruple.  Downstream execution depends only on the
  architectural state, the clock and the *relative* order of future
  seqs, so every later virtual timestamp and event count is identical
  to the cold-boot continuation.

Images are keyed by :func:`boot_signature` -- topology + construction
parameters + :class:`~repro.sim.engine.SimFeatures` -- and cached
per-process by :func:`image_for`; any parameter change is a different
key (invalidation by construction).  Images are plain picklable data, so
the parallel sweep runner builds them once in the parent and ships them
to pool workers (:func:`seed_image_cache`).
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from typing import Dict, List, Optional, Tuple

from ..kernel import Kernel
from ..kernel.driver import TccDriver
from ..msglib import MsgConfig
from ..obs.metrics import (boot_image_counters, fault_counters,
                           flow_counters)
from ..opteron.chip import InterruptRecord
from ..sim import Simulator
from ..util.calibration import TimingModel, DEFAULT_TIMING
from ..util.units import MiB
from .system import TCCluster

__all__ = [
    "BootImage",
    "SnapshotError",
    "boot_signature",
    "capture_image",
    "restore_image",
    "image_for",
    "seed_image_cache",
    "cached_images",
    "clear_image_cache",
]


class SnapshotError(RuntimeError):
    """Capture precondition violated or image/cluster mismatch."""


def _features_tuple(features) -> Tuple[bool, bool, bool, bool]:
    return (features.poll_parking, features.burst_serialization,
            features.adaptive_fidelity, features.flow_fidelity)


def boot_signature(topology, nodes_per_supernode: int, memory_bytes: int,
                   timing: TimingModel, msg_cfg: MsgConfig, link_ber: float,
                   skew_tolerance_ns: float,
                   features: Tuple[bool, bool, bool, bool]) -> tuple:
    """Hashable identity of one bootable configuration.

    Everything that shapes the post-boot state is in the key; changing
    any axis (a DSE sweep's link width, a different ring-slot depth, a
    feature flag) produces a distinct signature and therefore a fresh
    boot -- stale-image reuse is impossible by construction.
    """
    return (
        topology.kind, topology.shape, topology.wrap,
        topology.num_supernodes, tuple(topology.edges),
        nodes_per_supernode, memory_bytes, timing, msg_cfg,
        link_ber, skew_tolerance_ns, features,
    )


class BootImage:
    """Immutable snapshot of one booted cluster's quiescent state.

    Built by :func:`capture_image`; consumed by :func:`restore_image`.
    Plain data (dicts/tuples/bytes) throughout, so instances pickle
    cleanly across process-pool boundaries.
    """

    __slots__ = (
        "signature", "topology", "nodes_per_supernode", "memory_bytes",
        "timing", "msg_cfg", "layout", "amap", "link_ber",
        "skew_tolerance_ns", "features", "clock", "chips", "links",
        "boards", "pool", "fault_counts", "flow_counts",
    )

    def __init__(self, **kw):
        for name in self.__slots__:
            object.__setattr__(self, name, kw.pop(name))
        if kw:
            raise TypeError(f"unknown BootImage fields {sorted(kw)}")

    def __setattr__(self, name, value):  # immutability (shallow)
        raise AttributeError("BootImage is immutable")

    def __repr__(self) -> str:  # pragma: no cover
        t = self.topology
        return (f"<BootImage {t.kind}{t.shape or ''} "
                f"x{t.num_supernodes} now={self.clock[0]:.0f}>")


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

def _capture_chip(chip) -> dict:
    mt = chip.mtrr
    return {
        "regs": dict(chip.regs._regs),
        "mtrr": (mt.default, mt.num_variable,
                 tuple((r.base, r.size, r.mtype) for r in mt.ranges)),
        "caches": tuple(
            ({addr: bytes(line) for addr, line in level._lines.items()},
             level.hits, level.misses)
            for level in chip.caches.levels
        ),
        "cores": tuple(
            (c.stores, c.loads, c.wc.fills, c.wc.full_flushes,
             c.wc.partial_flushes, c.wc.evictions)
            for c in chip.cores
        ),
        "pages": {no: bytes(pg) for no, pg in chip.memory._pages.items()},
        "bytes_copied": chip.memory.bytes_copied,
        "memctrl": (chip.memctrl._busy_until, chip.memctrl.reads,
                    chip.memctrl.writes, chip.memctrl.bytes_read,
                    chip.memctrl.bytes_written),
        "nb_counters": dict(chip.nb.counters._counts),
        "interrupts": tuple((r.time, r.vector, r.smc)
                            for r in chip.interrupts),
    }


def _fsm_of(cluster, link):
    """The (shared) init FSM of ``link`` via any chip port binding."""
    for board in cluster.boards:
        for chip in board.chips:
            for binding in chip.ports.values():
                if binding.link is link:
                    return binding.fsm
    raise SnapshotError(f"link {link.name} has no chip binding")


def _capture_link(cluster, link) -> dict:
    fsm = _fsm_of(cluster, link)
    sides = {}
    for side, d in link._dirs.items():
        st = d.stats
        for vc, q in d.txq.items():
            if q._items:
                raise SnapshotError(
                    f"{link.name}.{side}: TX queue {vc.name} not drained")
        if len(d.rx):
            raise SnapshotError(f"{link.name}.{side}: rx not drained")
        sides[side] = {
            "stats": (st.packets, st.payload_bytes, st.wire_bytes,
                      st.retry_wire_bytes, st.retries, st.drops, st.busy_ns,
                      st.credit_stall_ns, st.bursts, st.naks),
            "consecutive_drops": d._consecutive_drops,
        }
    return {
        "name": link.name,
        "state": link.state,
        "link_type": link.link_type,
        "width_bits": link.width_bits,
        "gbit_per_lane": link.gbit_per_lane,
        "ber": link._ber,
        "dead": link.dead,
        "fail_downs": link.fail_downs,
        "fail_down_threshold": link.fail_down_threshold,
        "rng_state": link._rng.getstate(),
        "sides": sides,
        "fsm": {
            "personas": {
                side: (p.identify_coherent, p.force_noncoherent,
                       p.max_width_bits, p.max_gbit_per_lane,
                       p.pending_width, p.pending_gbit)
                for side, p in fsm.personas.items()
            },
            "train_count": fsm.train_count,
            "last_kind": fsm.last_kind,
        },
    }


def capture_image(cluster: TCCluster) -> BootImage:
    """Snapshot a booted, drained, *unused* cluster into a BootImage.

    Preconditions: :meth:`~TCCluster.boot` completed, no message
    libraries or user processes spawned yet (their parked processes are
    not part of the post-boot state the image reproduces), and the
    calendar drained -- capture runs the simulator to quiescence first.
    """
    if not cluster.ready:
        raise SnapshotError("cannot capture an unbooted cluster")
    if cluster._libs:
        raise SnapshotError(
            "cannot capture after message libraries were spawned; capture "
            "immediately after boot()"
        )
    sim = cluster.sim
    sim.run()  # drain any post-boot stragglers
    sim.assert_quiescent()

    for board in cluster.boards:
        for chip in board.chips:
            for core in chip.cores:
                if len(core.wc):
                    raise SnapshotError(
                        f"{core.name}: write-combining buffers not flushed")
            if chip.memctrl._watches or chip.memctrl._spans:
                raise SnapshotError(
                    f"{chip.name}: memory controller has live watchers")

    fw0 = cluster.firmwares[0]
    skew = fw0.board.chips[0].ports and next(
        iter(fw0.board.chips[0].ports.values())).fsm.skew_tolerance_ns
    tcc0 = cluster.tcc_links[0] if cluster.tcc_links else None
    pool = sim._packet_pool
    img = BootImage(
        signature=boot_signature(
            cluster.topology, len(cluster.boards[0].chips),
            cluster.ranks[0].chip.memory.size, cluster.timing,
            cluster.msg_cfg, tcc0._ber if tcc0 is not None else 0.0,
            skew if skew else 100.0, _features_tuple(sim.features),
        ),
        topology=cluster.topology,
        nodes_per_supernode=len(cluster.boards[0].chips),
        memory_bytes=cluster.ranks[0].chip.memory.size,
        timing=cluster.timing,
        msg_cfg=cluster.msg_cfg,
        layout=cluster.boards[0].layout,
        amap=cluster.amap,
        link_ber=tcc0._ber if tcc0 is not None else 0.0,
        skew_tolerance_ns=skew if skew else 100.0,
        features=_features_tuple(sim.features),
        clock=(sim._now, sim._seq, sim._event_count, sim._push_count),
        chips=[_capture_chip(r.chip) for r in cluster.ranks],
        links=[_capture_link(cluster, l) for l in cluster._all_links()],
        boards=[fw.capture_state() for fw in cluster.firmwares],
        pool=((pool.allocated, pool.reused, pool.recycled, len(pool._free))
              if pool is not None else (0, 0, 0, 0)),
        fault_counts=fault_counters(sim).as_dict(),
        flow_counts=flow_counters(sim).as_dict(),
    )
    boot_image_counters().built += 1
    return img


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------

def _restore_chip(chip, cap: dict) -> None:
    # Registers by direct assignment: write hooks would re-trigger the
    # warm-reset machinery on the replayed HT_INIT_CONTROL value.
    chip.regs._regs = dict(cap["regs"])
    nb = chip.nb
    # Defer the BKDG map decode to the first consumer, exactly as the
    # register-write hook does on a cold boot (register-pure, so
    # observationally identical); points that never route through this
    # chip skip the decode entirely.
    nb._maps_dirty = True
    nb._route_table = None
    nb._nodeid_cache = None
    nb._dram_ready_cache = None
    nb._local_bases = None
    nb.counters._counts = defaultdict(int, cap["nb_counters"])

    default, num_variable, ranges = cap["mtrr"]
    mt = chip.mtrr
    mt.clear()
    mt.default = default
    mt.num_variable = num_variable
    for base, size, mtype in ranges:
        mt.add(base, size, mtype)

    for level, (lines, hits, misses) in zip(chip.caches.levels,
                                            cap["caches"]):
        level._lines = OrderedDict(
            (addr, bytearray(data)) for addr, data in lines.items())
        level.hits = hits
        level.misses = misses

    for core, (stores, loads, fills, full_f, part_f, evict) in zip(
            chip.cores, cap["cores"]):
        core.stores = stores
        core.loads = loads
        core.wc.fills = fills
        core.wc.full_flushes = full_f
        core.wc.partial_flushes = part_f
        core.wc.evictions = evict

    mem = chip.memory
    mem._pages = {no: bytearray(pg) for no, pg in cap["pages"].items()}
    mem.bytes_copied = cap["bytes_copied"]
    mc = chip.memctrl
    (mc._busy_until, mc.reads, mc.writes,
     mc.bytes_read, mc.bytes_written) = cap["memctrl"]

    chip.interrupts = [InterruptRecord(t, v, s)
                       for (t, v, s) in cap["interrupts"]]


def _restore_link(cluster, link, cap: dict) -> None:
    if link.name != cap["name"]:
        raise SnapshotError(
            f"link order mismatch: {link.name} vs image {cap['name']}")
    if cap["width_bits"] != link.width_bits or \
            cap["gbit_per_lane"] != link.gbit_per_lane:
        link.set_rate(cap["width_bits"], cap["gbit_per_lane"])
    link._ber = cap["ber"]
    link.dead = cap["dead"]
    link.fail_downs = cap["fail_downs"]
    link.fail_down_threshold = cap["fail_down_threshold"]
    link._rng.setstate(cap["rng_state"])
    if cap["state"] == "active":
        link.activate(cap["link_type"])
    for side, scap in cap["sides"].items():
        d = link._dirs[side]
        st = d.stats
        (st.packets, st.payload_bytes, st.wire_bytes, st.retry_wire_bytes,
         st.retries, st.drops, st.busy_ns, st.credit_stall_ns, st.bursts,
         st.naks) = scap["stats"]
        d._consecutive_drops = scap["consecutive_drops"]
    fsm = _fsm_of(cluster, link)
    for side, pcap in cap["fsm"]["personas"].items():
        p = fsm.personas[side]
        (p.identify_coherent, p.force_noncoherent, p.max_width_bits,
         p.max_gbit_per_lane, p.pending_width, p.pending_gbit) = pcap
    fsm.train_count = cap["fsm"]["train_count"]
    fsm.last_kind = cap["fsm"]["last_kind"]


def restore_image(image: BootImage,
                  sim: Optional[Simulator] = None) -> TCCluster:
    """Instantiate a booted cluster from ``image`` without booting.

    Returns a :class:`TCCluster` indistinguishable from one that cold
    booted: same registers, routes, memory, link rates, clock and event
    counters.  The restored cluster carries ``restored_from_image=True``
    and ``restore_event_count`` (events executed by the startup drains;
    deterministic, gated by the wallclock baseline).
    """
    sim = sim or Simulator()
    (sim.features.poll_parking, sim.features.burst_serialization,
     sim.features.adaptive_fidelity,
     sim.features.flow_fidelity) = image.features

    cluster = TCCluster(
        image.topology,
        memory_bytes=image.memory_bytes,
        nodes_per_supernode=image.nodes_per_supernode,
        timing=image.timing,
        msg_cfg=image.msg_cfg,
        layout=image.layout,
        link_ber=image.link_ber,
        skew_tolerance_ns=image.skew_tolerance_ns,
        sim=sim,
        amap=image.amap,
    )
    # Cold boot starts the boards inside the firmware's cold-reset stage;
    # restore skips firmware, so start them (northbridge dispatchers, rx
    # loops) explicitly and drain the t=0 startup entries -- every
    # process parks exactly where the booted machine's processes park.
    for board in cluster.boards:
        board.start()
    sim.run()

    if len(cluster.ranks) != len(image.chips):
        raise SnapshotError("image/cluster rank count mismatch")
    for rank, cap in zip(cluster.ranks, image.chips):
        _restore_chip(rank.chip, cap)
    links = cluster._all_links()
    if len(links) != len(image.links):
        raise SnapshotError("image/cluster link count mismatch")
    for link, cap in zip(links, image.links):
        _restore_link(cluster, link, cap)
    for fw, cap in zip(cluster.firmwares, image.boards):
        fw.restore_state(cap)
    cluster.reports = [fw.report for fw in cluster.firmwares]

    # Kernels: constructed directly into the booted state.  The SMC
    # disable is already in the restored registers -- re-writing it would
    # fire the northbridge cache-invalidation hook cold boot also fired,
    # but pointlessly; drivers are pure address-range objects.
    gb, gl = cluster.amap.base, cluster.amap.limit
    for s, board in enumerate(cluster.boards):
        kernel = Kernel(board, cluster.reports[s], custom=True)
        kernel.mode = "64-bit long"
        for ci in range(len(board.chips)):
            lb, ll = cluster.amap.node_range(s, ci)
            kernel.drivers[ci] = TccDriver(board.chips[ci], lb, ll, gb, gl)
        kernel.booted = True
        cluster.kernels.append(kernel)

    from ..ht.packet import Packet, Command, pool_for
    pool = pool_for(sim)
    alloc, reused, recycled, nfree = image.pool
    pool.allocated, pool.reused, pool.recycled = alloc, reused, recycled
    while len(pool._free) < nfree:
        pkt = Packet.__new__(Packet)
        pkt.cmd = Command.WRITE_POSTED
        pkt.addr = 0
        pkt.data = b""
        pkt.unitid = 0
        pkt.coherent = False
        pkt.mask = None
        pkt.src_node = None
        pkt.srctag = 0
        pkt.seqid = 0
        pkt.passpw = False
        pkt.error = False
        pkt.inject_time = 0.0
        pkt._wire = None
        pkt._crc = None
        pkt._wire_len = None
        pkt._agg_tag = None
        pkt._read_count = 1
        pkt._pooled = False
        pool._free.append(pkt)

    fc = fault_counters(sim)
    for name, value in image.fault_counts.items():
        setattr(fc, name, value)
    fl = flow_counters(sim)
    for name, value in image.flow_counts.items():
        setattr(fl, name, value)

    # Link activation may have scheduled gate wakeups; drain them before
    # adopting the captured clock.
    sim.run()
    restore_events = sim.event_count
    sim.rebase_clock(*image.clock)
    cluster.ready = True
    cluster.restored_from_image = True
    cluster.restore_event_count = restore_events
    boot_image_counters().restored += 1
    return cluster


# ---------------------------------------------------------------------------
# Keyed in-process image cache
# ---------------------------------------------------------------------------

_IMAGE_CACHE: Dict[tuple, BootImage] = {}


def image_for(topology, *, nodes_per_supernode: int = 1,
              memory_bytes: int = 256 * MiB,
              timing: TimingModel = DEFAULT_TIMING,
              msg_cfg: Optional[MsgConfig] = None,
              link_ber: float = 0.0, skew_tolerance_ns: float = 100.0,
              features: Optional[Tuple[bool, bool, bool, bool]] = None) \
        -> BootImage:
    """The cached boot image of one signature (built on first use).

    The cache is per-process; pool workers inherit the parent's images
    through :func:`seed_image_cache` so each distinct signature boots
    exactly once per sweep, not once per point.
    """
    if features is None:
        features = _features_tuple(Simulator().features)
    cfg = msg_cfg or MsgConfig()
    # Construction may auto-grow nodes_per_supernode to fit the port
    # plan; key on the grown value so pre/post-growth callers share.
    max_node = max((ep.node for e in topology.edges
                    for ep in (e.a, e.b)), default=0)
    grown = max(nodes_per_supernode, max_node + 1)
    key = boot_signature(topology, grown, memory_bytes, timing, cfg,
                         link_ber, skew_tolerance_ns, features)
    img = _IMAGE_CACHE.get(key)
    if img is not None:
        boot_image_counters().cache_hits += 1
        return img
    sim = Simulator()
    (sim.features.poll_parking, sim.features.burst_serialization,
     sim.features.adaptive_fidelity, sim.features.flow_fidelity) = features
    cluster = TCCluster(
        topology, memory_bytes=memory_bytes,
        nodes_per_supernode=nodes_per_supernode, timing=timing,
        msg_cfg=cfg, link_ber=link_ber,
        skew_tolerance_ns=skew_tolerance_ns, sim=sim,
    )
    cluster.boot()
    img = capture_image(cluster)
    _IMAGE_CACHE[img.signature] = img
    if img.signature != key:
        # Defensive: growth normalization above should make these equal.
        _IMAGE_CACHE[key] = img
    return img


def seed_image_cache(images) -> int:
    """Install pre-built images (e.g. shipped from a pool parent)."""
    n = 0
    for img in images:
        if img.signature not in _IMAGE_CACHE:
            _IMAGE_CACHE[img.signature] = img
            n += 1
    return n


def cached_images() -> List[BootImage]:
    return list(_IMAGE_CACHE.values())


def clear_image_cache() -> None:
    _IMAGE_CACHE.clear()
