"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(9.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_fifo_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(3.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, 1)
    t = sim.run(until=5.0)
    assert t == 5.0
    assert seen == []
    sim.run()
    assert seen == [1]


def test_process_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield sim.timeout(5.0)
        log.append(sim.now)
        yield 2.5
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [5.0, 7.5]


def test_process_requires_generator():
    sim = Simulator()

    def not_a_gen():
        return 42

    with pytest.raises(TypeError):
        sim.process(not_a_gen())  # type: ignore[arg-type]


def test_process_wait_on_event_receives_value():
    sim = Simulator()
    ev = sim.event("data")
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    sim.process(waiter())
    sim.schedule(3.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_process_wait_on_process_gets_return_value():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(4.0)
        return 99

    def parent():
        value = yield sim.process(child())
        results.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert results == [(4.0, 99)]


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def proc():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(proc())
    sim.schedule(1.0, ev.fail, RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_yield_none_is_zero_delay():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]
    assert sim.now == 0.0


def test_yield_bad_value_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_any_of_fires_on_first():
    sim = Simulator()
    e1, e2 = sim.event("e1"), sim.event("e2")
    fired = []

    def proc():
        result = yield AnyOf(sim, [e1, e2])
        fired.append((sim.now, set(result.values())))

    sim.process(proc())
    sim.schedule(2.0, e1.succeed, "first")
    sim.schedule(7.0, e2.succeed, "second")
    sim.run()
    assert fired == [(2.0, {"first"})]


def test_all_of_waits_for_all():
    sim = Simulator()
    e1, e2 = sim.event(), sim.event()
    fired = []

    def proc():
        result = yield AllOf(sim, [e1, e2])
        fired.append((sim.now, len(result)))

    sim.process(proc())
    sim.schedule(2.0, e1.succeed)
    sim.schedule(7.0, e2.succeed)
    sim.run()
    assert fired == [(7.0, 2)]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    cond = AllOf(sim, [])
    assert cond.triggered


def test_interrupt_is_catchable():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("completed")
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))

    p = sim.process(sleeper())
    sim.schedule(5.0, p.interrupt, "wakeup")
    sim.run()
    assert log == [("interrupted", 5.0, "wakeup")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.schedule(10.0, p.interrupt)
    sim.run()
    assert p.triggered


def test_unhandled_interrupt_raises_simulation_error():
    sim = Simulator()

    def sleeper():
        yield sim.timeout(100.0)

    p = sim.process(sleeper())
    sim.schedule(5.0, p.interrupt)
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(42.0)
        return "done"

    p = sim.process(proc())
    assert sim.run_until_event(p) == "done"
    assert sim.now == 42.0


def test_run_until_event_deadlock_detection():
    sim = Simulator()
    ev = sim.event("never")
    with pytest.raises(DeadlockError):
        sim.run_until_event(ev)


def test_max_events_guard():
    sim = Simulator()

    def spinner():
        while True:
            yield sim.timeout(1.0)

    sim.process(spinner())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_event_count_increments():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.event_count == 2


def test_callback_on_already_triggered_event_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["v"]


def test_nested_process_failure_propagates():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child blew up")

    def parent():
        yield sim.process(child())

    sim.process(parent())
    with pytest.raises(ValueError, match="child blew up"):
        sim.run()
