"""Adaptive-fidelity bulk transfers: the write-combined packet train.

The TCCluster transmit pipeline for a large weakly-ordered store is a
fixed four-stage pipeline (WC line fill -> posted queue -> dispatcher ->
link serializer) whose per-packet schedule is *closed under arithmetic*
as long as nothing else touches the queues involved: every fill, pop,
dispatch and serialization instant of packet ``i`` is determined by the
recurrence below.  Simulating it packet by packet costs ~8 calendar
entries per 64-byte line; a 4 MiB store is half a million heap
operations that compute what three ``max()`` chains already know.

:func:`plan_train` checks that a store qualifies (aligned bulk WC store
over a quiescent single-hop TCCluster window) and :class:`BulkTrain`
then runs the whole train at *aggregate fidelity*:

* the sender side (core fills, posted queue, dispatcher, TX queue,
  serializer) becomes pure arithmetic -- its externally visible effects
  (WC stats, ``mmio_writes``, link TX stats, posted-queue depth metric
  samples) are applied lazily at the virtual times they would have
  occurred;
* the receiver side stays *real*: one calendar callback per packet at
  the exact per-packet commit instant performs the destination's
  ``memctrl.write_posted`` and ``rx_writes`` accounting, so destination
  memory timing, receiver polling and doorbells are bit-identical to
  per-packet mode (this is what lets many trains run concurrently in a
  mesh).

**Demotion.**  The schedule is only valid while the train owns its
queues.  Any foreign action that could perturb it -- another submit into
the same northbridge, any send on the same link direction, a link
rate/BER/state change, an interrupt thrown into the storing core --
calls :meth:`BulkTrain.abort`, which reconstructs the exact per-packet
state at the abort instant ``T`` (queue contents, blocked putters, a
mid-flight dispatcher shim, a mid-serialization phy hold) and falls back
to per-packet simulation for the remainder.  The reconstruction is
exact: every timestamp in the recurrence is a dyadic rational under the
default timing model, so float arithmetic reproduces the per-packet
event times bit-for-bit (non-dyadic timing would only be ulp-close).

Known, documented divergences (all invisible to the golden metrics and
the equivalence oracle, which excludes them):

* ``LinkStats.bursts`` is not incremented (burst mode's counter);
* POSTED credits are not taken/returned mid-window (net zero; at most
  2 credits of transient difference while a packet is in flight --
  eligibility requires enough headroom that gating can never differ);
* mid-window reads of deferred stats by *foreign* observers at the same
  timestamp as the triggering event see post-application values
  (hooks run before the foreign mutation).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, List, Optional

from ..ht.link import LinkDownError, LinkState
from ..ht.packet import VirtualChannel, make_posted_write
from ..sim import Event, Interrupt
from ..sim.flows import CommitSpan
from ..util.units import CACHELINE
from .northbridge import RouteKind

if TYPE_CHECKING:  # pragma: no cover
    from .core import CpuCore

__all__ = ["BulkTrain", "plan_train", "MIN_TRAIN_LINES"]

#: Below this many full lines the scheduling arithmetic is not worth the
#: eligibility scan; the per-packet path handles short stores fine.
MIN_TRAIN_LINES = 4

_INF = float("inf")


def _covers(table, base: int, size: int) -> bool:
    """True when one route-table row covers ``[base, base+size)`` entirely
    and no higher-priority row shadows any part of the range."""
    end = base + size
    for b, lim, _result, _re, _we in table:
        if b <= base < lim:
            return end <= lim
        if b < end and lim > base:
            return False
    return False


def plan_train(core: "CpuCore", addr: int, data: bytes) -> Optional["BulkTrain"]:
    """Qualify a WC store for aggregate fidelity; ``None`` demotes to the
    per-packet path before anything is committed.

    Eligibility = (a) the store is an aligned bulk of full lines, (b) the
    whole source range routes out one local TCCluster link, (c) the whole
    pipeline for that link direction is quiescent (queues empty, pumps
    parked, credits full, phy idle), and (d) every line lands in the
    destination's ready local DRAM.  Anything else: per-packet.
    """
    chip = core.chip
    sim = core.sim
    feats = sim.features
    if not (feats.adaptive_fidelity and feats.burst_serialization):
        return None
    if addr % CACHELINE:
        return None
    nlines = len(data) // CACHELINE
    if nlines < MIN_TRAIN_LINES:
        return None
    size = nlines * CACHELINE
    nb = chip.nb
    if nb._train is not None or not nb._started:
        return None
    # The WC streaming fast path must hold for every line: no open buffer
    # may alias a train line and a buffer slot must stay free throughout.
    wc = core.wc
    if wc._buffers:
        if len(wc._buffers) >= wc.num_buffers:
            return None
        if any(addr <= line < addr + size for line in wc._buffers):
            return None
    r = nb.route(addr)
    if r.kind is not RouteKind.MMIO_LOCAL_LINK or not r.writable:
        return None
    if not _covers(nb._route_table, addr, size):
        return None
    binding = chip.ports.get(r.dst_link)
    if binding is None:
        return None
    link, side = binding.link, binding.side
    if getattr(link, "_dirs", None) is None:  # striped/aggregated wrapper
        return None
    if link.state != LinkState.ACTIVE or link.ber > 0 or link.tracer.enabled:
        return None
    d = link._dirs[side]
    if d._train is not None or d._flow is not None:
        return None
    # Direction quiescence: all VC TX queues empty with their pumps
    # parked, serializer idle with no waiters, POSTED credits full.
    for q in d.txq.values():
        if q._items or q._putters or len(q._getters) != 1:
            return None
        if q._phantom and q._live_phantoms():
            return None
    if d.phy._in_use or d.phy._waiters:
        return None
    cred = d.credits[VirtualChannel.POSTED]
    if cred._credits != cred.initial:
        return None
    if d.rx._items or len(d.rx._getters) != 1:
        return None
    pq = nb.posted_q
    if pq._items or pq._putters or len(pq._getters) != 1:
        return None
    dest_chip = getattr(link, "attached", {}).get(d.rx_side)
    if dest_chip is None:
        return None
    dest_nb = dest_chip.nb
    if not dest_nb._started:
        return None
    t = chip.timing
    proto = make_posted_write(addr, data[:CACHELINE], unitid=nb.nodeid,
                              coherent=False)
    ser = link.serialization_ns(proto)
    prop = link.propagation_ns
    # Credit headroom: at most ceil((ser+prop)/ser) per-packet credits are
    # ever in flight; with strictly more than that (+1 margin) available
    # the pump can never stall, so skipping credit traffic is invisible.
    if cred.initial <= math.ceil((ser + prop) / ser) + 1:
        return None
    dt = dest_chip.timing
    rxs = dt.nb_request_ns + dt.nb_iobridge_ns
    if rxs > ser:
        return None  # receive loop could fall behind the wire
    rd = dest_nb.route(addr)
    if rd.kind is not RouteKind.DRAM_LOCAL:
        return None  # multi-hop stays per-packet
    if not _covers(dest_nb._route_table, addr, size):
        return None
    if not dest_nb._dram_ready():
        return None
    return BulkTrain(core, addr, data, nlines, binding, d, ser, prop, rxs)


class BulkTrain:
    """One aggregate-fidelity packet train (see module docstring).

    Built by :func:`plan_train` only; drive it with
    ``consumed = yield from train.run()`` from the core's WC store path.
    """

    def __init__(self, core, addr, data, nlines, binding, direction,
                 ser, prop, rxs):
        self.core = core
        self.sim = core.sim
        self.chip = core.chip
        self.nb = core.chip.nb
        self.addr = addr
        self.data = data
        #: Zero-copy line spans into the (immutable) source buffer; both
        #: the receiver-side commits and demotion-rebuilt packets slice
        #: this instead of copying 64 bytes per line.
        self._mv = memoryview(data)
        self.K = nlines
        self.port = binding.port
        self.link = binding.link
        self.dir = direction
        dest_chip = binding.link.attached[direction.rx_side]
        self.dest_nb = dest_chip.nb
        self.dest_mc = dest_chip.memctrl
        t = core.chip.timing
        self.F = t.wc_line_fill_ns
        self.TS = t.nb_request_ns + t.nb_iobridge_ns
        self.ser = ser
        self.prop = prop
        self.rxs = rxs
        pq_cap = self.nb.posted_q.capacity
        self.capq = pq_cap if pq_cap is not None else nlines + 1
        txq_cap = direction.txq[VirtualChannel.POSTED].capacity
        self.capt = txq_cap if txq_cap is not None else nlines + 1
        proto = make_posted_write(addr, data[:CACHELINE],
                                  unitid=self.nb.nodeid, coherent=False)
        self.wire_per_pkt = proto.wire_bytes(binding.link.timing.ht_crc_bytes)
        self._offs = [self.dest_nb._local_offset(addr + i * CACHELINE)
                      for i in range(nlines)]
        self.metrics_on = self.nb._m.enabled
        self._depth_series = f"{self.nb.name}.posted_q_depth"
        # lifecycle
        self.done = False        # no further aborts possible
        self.aborted = False
        self.completed = False   # wake fired on the clean path
        self.cut = nlines        # first packet index NOT owned by the train
        self.abort_time = 0.0
        self.resume_fills = 0
        self.resume_put: Optional[Event] = None
        self.wake: Optional[Event] = None
        self._disp_wake: Optional[Event] = None
        self._pump_wake: Optional[Event] = None
        # deferred-effect cursors
        self._fills_applied = 0
        self._mmio_applied = 0
        self._ser_applied = 0
        self._depth_applied = 0
        self._depths: Optional[List[tuple]] = None

    # ------------------------------------------------------------------
    # The schedule recurrence (exact; see DESIGN.md "Adaptive fidelity")
    # ------------------------------------------------------------------
    def _compute_schedule(self, t0: float) -> None:
        """Per-packet pipeline instants for all K lines.

        accept[i]    posted queue accepts packet i (core fill i+1 starts)
        fill_done[i] WC fill of line i completes (the submit instant)
        pop[i]       dispatcher pops packet i from the posted queue
        putc[i]      packet i accepted into the link TX queue
        ss[i]        serialization of packet i starts on the wire
        """
        K = self.K
        F, TS, SER = self.F, self.TS, self.ser
        CAPQ, CAPT = self.capq, self.capt
        accept = [0.0] * K
        fill_done = [0.0] * K
        pop = [0.0] * K
        putc = [0.0] * K
        ss = [0.0] * K
        fs = t0
        for i in range(K):
            fd = fs + F
            a = fd
            if i >= CAPQ and pop[i - CAPQ] > fd:
                a = pop[i - CAPQ]  # posted queue full: core blocks
            accept[i] = a
            fill_done[i] = fd
            fs = a
            p = a if i == 0 else max(putc[i - 1], a)
            pop[i] = p
            pc = p + TS
            if i >= CAPT and ss[i - CAPT] > pc:
                pc = ss[i - CAPT]  # TX queue full: dispatcher blocks
            putc[i] = pc
            ss[i] = pc if i == 0 else max(pc, ss[i - 1] + SER)
        self.t0 = t0
        self.accept = accept
        self.fill_done = fill_done
        self.pop = pop
        self.putc = putc
        self.ss = ss
        self.t_end = accept[K - 1]
        self.t_final = max(putc[K - 1], ss[K - 1] + SER)
        self._mcw_off = SER + self.prop + self.rxs

    def _compute_depths(self) -> List[tuple]:
        """(time, value) posted-queue depth samples the dispatcher would
        have tracked at each pop, replaying its exact tie-breaks.

        A pop that finds the queue empty (the dispatcher was parked and a
        put woke it) samples 0.  Otherwise the sample counts the packets
        whose acceptance *dispatch entry* precedes the dispatcher's wake
        entry in the calendar: all accepts strictly before the pop, plus
        same-instant accepts whose triggering entry was pushed earlier
        than the dispatcher's (a blocked putter admitted inside the pop
        always is; a direct put ties on fill-entry vs wake-entry push
        time), minus the i+1 packets already consumed.
        """
        K = self.K
        accept, fill_done, pop, putc = (self.accept, self.fill_done,
                                        self.pop, self.putc)
        t0, TS = self.t0, self.TS
        depths: List[tuple] = []
        ja = 0
        for i in range(K):
            if i == 0 or accept[i] >= putc[i - 1]:
                depths.append((pop[i], 0))
                continue
            tpop = pop[i]
            while ja < K and accept[ja] < tpop:
                ja += 1
            n = ja
            attempt = pop[i - 1] + TS
            disp_push = attempt if putc[i - 1] > attempt else pop[i - 1]
            jb = ja
            while jb < K and accept[jb] == tpop:
                if accept[jb] > fill_done[jb]:
                    n += 1  # blocked putter admitted inside this pop
                else:
                    fill_push = accept[jb - 1] if jb else t0
                    if fill_push < disp_push:
                        n += 1
                jb += 1
            depths.append((tpop, n - (i + 1)))
        return depths

    # ------------------------------------------------------------------
    # Deferred sender-side effects
    # ------------------------------------------------------------------
    def _apply_effects(self, T: float, inclusive: bool) -> None:
        """Apply WC stats, mmio_writes, link TX stats and depth metric
        samples for every pipeline instant up to ``T`` (chronological per
        series, so live samples after ``T`` stay monotone)."""
        cut = bisect_right if inclusive else bisect_left
        nf = cut(self.fill_done, T)
        if nf > self._fills_applied:
            delta = nf - self._fills_applied
            wc = self.core.wc
            wc.fills += delta
            wc.full_flushes += delta
            self._fills_applied = nf
        nm = cut(self.putc, T)
        if nm > self._mmio_applied:
            self.nb.counters.inc("mmio_writes", nm - self._mmio_applied)
            self._mmio_applied = nm
        ns = cut(self.ss, T)
        if ns > self._ser_applied:
            delta = ns - self._ser_applied
            st = self.dir.stats
            st.packets += delta
            st.payload_bytes += CACHELINE * delta
            st.wire_bytes += self.wire_per_pkt * delta
            st.busy_ns += self.ser * delta
            self._ser_applied = ns
        if self.metrics_on:
            if self._depths is None:
                self._depths = self._compute_depths()
            dep = self._depths
            m = self.nb._m
            name = self._depth_series
            i = self._depth_applied
            K = self.K
            while i < K and (dep[i][0] < T or
                             (inclusive and dep[i][0] == T)):
                m.track(name, dep[i][0], dep[i][1])
                i += 1
            self._depth_applied = i

    # ------------------------------------------------------------------
    # Launch / receiver chain / completion
    # ------------------------------------------------------------------
    def launch(self) -> None:
        sim = self.sim
        self._compute_schedule(sim._now)
        self.nb._train = self
        self.dir._train = self
        self.wake = Event(sim, name=f"{self.nb.name}.train")
        self.nb.counters.inc("train_windows")
        self.nb.counters.inc("train_lines", self.K)
        if self.metrics_on:
            self.nb._m.inc("train.windows")
            self.nb._m.inc("train.lines", self.K)
        # All three are speculative (a demotion revokes whatever part of
        # the precomputed future did not happen), so push them cancellable:
        # a guarded no-op would still drag the clock out to t_final when
        # an interrupt makes the calendar drain early.
        self._chain_idx = 0
        self._chain_seq = None
        self._span = None
        if sim.features.flow_fidelity and not self.dest_mc.tracer.enabled:
            # Flow-level fidelity: the whole destination commit schedule
            # becomes one arithmetic span on the controller instead of
            # two calendar entries per line (see repro.sim.flows).
            off = self._mcw_off
            self._span = CommitSpan(
                sim, self.dest_mc, self.dest_nb, self._offs, self._mv,
                [s + off for s in self.ss], CACHELINE)
        else:
            self._chain_seq = sim._push_cancellable(
                self.ss[0] + self._mcw_off, self._commit, (0,))
        self._complete_seq = sim._push_cancellable(
            self.t_end, self._complete, None)
        self._finalize_seq = sim._push_cancellable(
            self.t_final, self._finalize, None)

    def _commit(self, i: int) -> None:
        """Receiver-side commit of packet ``i`` at its exact per-packet
        instant: the real destination memory write plus rx accounting.
        One live calendar entry walks the whole train."""
        self._chain_seq = None
        if i >= self.cut:
            return
        base = i * CACHELINE
        self.dest_nb.counters.inc("rx_writes")
        self.dest_mc.write_posted(self._offs[i],
                                  self._mv[base:base + CACHELINE])
        j = i + 1
        if j < self.cut:
            self._chain_idx = j
            self._chain_seq = self.sim._push_cancellable(
                self.ss[j] + self._mcw_off, self._commit, (j,))

    def _complete(self, _=None) -> None:
        self._complete_seq = None
        if self.done:
            return
        self.completed = True
        self._apply_effects(self.t_end, True)
        self.wake.succeed()

    def _finalize(self, _=None) -> None:
        self._finalize_seq = None
        if self.done:
            return
        self.done = True
        self._apply_effects(_INF, True)
        self._unhook()

    def _unhook(self) -> None:
        if self.nb._train is self:
            self.nb._train = None
        if self.dir._train is self:
            self.dir._train = None

    # ------------------------------------------------------------------
    # Demotion
    # ------------------------------------------------------------------
    def _make_pkt(self, i: int, coherent: bool):
        pkt = self.nb._pool.posted_write(
            self.addr + i * CACHELINE,
            self._mv[i * CACHELINE:(i + 1) * CACHELINE],
            unitid=self.nb.nodeid, coherent=coherent)
        pkt.inject_time = self.fill_done[i]
        return pkt

    def abort(self, T: float) -> None:
        """Demote at virtual time ``T``: reconstruct the exact per-packet
        state (strict-< cut: the triggering foreign action has not yet
        mutated anything) and hand every queue back to the live processes.
        """
        if self.done:
            return
        self.done = True
        self.aborted = True
        self._unhook()
        self.nb.counters.inc("train_demotions")
        if self.metrics_on:
            self.nb._m.inc("train.demotions")
        sim = self.sim
        accept, fill_done, pop, putc, ss = (self.accept, self.fill_done,
                                            self.pop, self.putc, self.ss)
        f = bisect_left(fill_done, T)     # WC fills done
        m = bisect_left(accept, T)        # packets in the posted queue ever
        npop = bisect_left(pop, T)        # packets popped by the dispatcher
        nput = bisect_left(putc, T)       # packets accepted into the TX queue
        nser = bisect_left(ss, T)         # packets whose serialization began
        self.cut = nser
        # Revoke the speculative future: completion/finalization entirely,
        # and the commit chain's pending hop if it points past the cut.
        if self._complete_seq is not None:
            sim._cancel(self._complete_seq)
            self._complete_seq = None
        if self._finalize_seq is not None:
            sim._cancel(self._finalize_seq)
            self._finalize_seq = None
        if self._chain_seq is not None and self._chain_idx >= nser:
            sim._cancel(self._chain_seq)
            self._chain_seq = None
        if self._span is not None:
            # Flow-level commit span: flushed commits stay, in-flight ones
            # become real calendar entries, and the not-yet-arrived tail
            # (strictly before the cut) re-arms the classic per-line chain.
            j0 = self._span.abort(T)
            self._span = None
            if j0 < nser:
                self._chain_idx = j0
                self._chain_seq = sim._push_cancellable(
                    ss[j0] + self._mcw_off, self._commit, (j0,))
        self._apply_effects(T, False)
        self.abort_time = T
        self.resume_fills = f

        # --- link direction: canonical non-burst state --------------------
        d = self.dir
        txq = d.txq[VirtualChannel.POSTED]
        ss_end = ss[nser - 1] + self.ser if nser else T
        if nser < nput:
            for j in range(nser, nput):
                txq._items.append(self._make_pkt(j, coherent=False))
            # The pump must wake to drain these exactly when the per-packet
            # pump would pop packet nser: at ss_end (refill nonempty
            # implies the serializer is still busy until then).
            self._pump_wake = txq._getters.popleft()

        pending_txq_put: Optional[Event] = None
        if npop > nput:
            p = npop - 1
            attempt = pop[p] + self.TS
            if attempt <= T:
                # The dispatcher's send() happened before T; its putter
                # must precede any foreign put at T (FIFO).
                pending_txq_put = txq.put(self._make_pkt(p, coherent=False))
            # Dispatcher mid-flight on packet npop-1: steal its parked
            # getter; a shim finishes that packet's handling and hands it
            # back to the real loop.
            self._disp_wake = self.nb.posted_q._getters.popleft()

        # --- posted queue -------------------------------------------------
        pq = self.nb.posted_q
        for i in range(npop, m):
            pq._items.append(self._make_pkt(i, coherent=True))
        self.resume_put = None
        if f == m + 1:
            # Line m submitted (fill ended before T) but not yet accepted:
            # queue its putter now, ahead of the aborting foreign action.
            self.resume_put = pq.put(self._make_pkt(m, coherent=True))

        # --- re-create the live calendar entries --------------------------
        # Seq order within a timestamp is push order, so entries that
        # collide at the same future instant must be pushed here in the
        # same relative order the per-packet run pushed them: the pump's
        # serialization sleep went on the calendar at ss[nser-1], the
        # dispatcher's crossbar sleep at pop[npop-1], and the core's
        # fill sleep at accept[f-1] (t0 for the first line).
        entries = []
        if nser and ss_end > T:
            took = d.phy.try_acquire()
            assert took, "train invariant: phy idle during window"
            entries.append((ss[nser - 1], 0,
                            lambda: sim._push(ss_end, self._phy_release,
                                              None)))
        elif self._pump_wake is not None:
            self._resume_pump()
        if npop > nput:
            shim = self._dispatcher_shim(pop[npop - 1] + self.TS, T,
                                         pending_txq_put, npop - 1)
            entries.append((pop[npop - 1], 1,
                            lambda: sim.process(
                                shim, name=f"{self.nb.name}.train_demote")))
        if not self.wake._triggered:
            entries.append((accept[f - 1] if f else self.t0, 2,
                            self.wake.succeed))
        entries.sort(key=lambda e: (e[0], e[1]))
        for _, _, push in entries:
            push()

    def _phy_release(self, _=None) -> None:
        self.dir.phy.release()
        if self._pump_wake is not None:
            self._resume_pump()

    def _resume_pump(self) -> None:
        ev = self._pump_wake
        self._pump_wake = None
        txq = self.dir.txq[VirtualChannel.POSTED]
        if txq._items:
            # Replicate try_get exactly: pop, admit a blocked putter, then
            # resume the pump *synchronously* -- the per-packet pump pops
            # and acts within a single dispatch, so a lazy succeed() would
            # shift its actions one seq later and lose same-instant
            # tie-breaks against other calendar entries.
            item = txq._items.popleft()
            if txq._putters:
                txq._admit_putter()
            ev._succeed_inline(item)
        else:
            txq._getters.append(ev)

    def _dispatcher_shim(self, attempt: float, T: float,
                         put_ev: Optional[Event], p: int):
        """Finish the dispatcher's in-flight packet exactly as the real
        loop would, then hand the (stolen) getter back to it."""
        if put_ev is None:
            if attempt > T:
                yield attempt - T  # remainder of the crossbar sleep
            pkt = self._make_pkt(p, coherent=False)
            try:
                ev = self.nb._send_on_port_fast(self.port, pkt)
            except LinkDownError:
                # Same contract as the per-packet dispatcher: a link that
                # died between the demotion replay and this send parks the
                # packet on the fault path (retrain wait / reroute) instead
                # of crashing the shim.
                yield from self.nb._forward_fault(pkt)
            else:
                if ev is not None:
                    yield ev
        else:
            yield put_ev
        self.nb.counters.inc("mmio_writes")
        ev = self._disp_wake
        self._disp_wake = None
        pq = self.nb.posted_q
        if pq._items:
            # Same-dispatch handback (see _resume_pump): the per-packet
            # dispatcher pops and samples its depth metric inside the very
            # dispatch that finished the previous packet's send, so the
            # real loop must resume inline, before any same-instant core
            # fill-end entry submits the next line.
            item = pq._items.popleft()
            if pq._putters:
                pq._admit_putter()
            ev._succeed_inline(item)
        else:
            pq._getters.append(ev)

    # ------------------------------------------------------------------
    # The core-side driver
    # ------------------------------------------------------------------
    def run(self):
        """Generator driven from ``CpuCore._store_wc`` via ``yield from``;
        returns the number of bytes fully handled (clean completion: all
        of them; demotion: everything up to and including the in-flight
        line, finished here exactly as the per-packet core would)."""
        self.launch()
        try:
            yield self.wake
        except Interrupt:
            if not self.done:
                self.abort(self.sim.now)
            raise
        if not self.aborted:
            return self.K * CACHELINE
        if self.resume_put is not None:
            # Line resume_fills-1 was submitted but not yet accepted;
            # wait out the acceptance like the per-packet core.
            yield self.resume_put
            return self.resume_fills * CACHELINE
        f = self.resume_fills
        if f >= self.K:
            return self.K * CACHELINE
        # Mid-fill of line f at the abort instant: finish the fill, then
        # combine and submit that one line (its fill sleep already ran).
        remaining = self.fill_done[f] - self.abort_time
        if remaining > 0:
            yield remaining
        core = self.core
        base = f * CACHELINE
        for op in core.wc.store(self.addr + base,
                                self._mv[base:base + CACHELINE]):
            ev = self.nb.submit_posted(op.addr, op.data, op.mask)
            if ev is not None:
                yield ev
        return (f + 1) * CACHELINE
