"""Aggregate-vs-per-packet equivalence oracle for adaptive-fidelity trains.

``repro.opteron.train`` collapses an uncontended bulk WC store into
closed-form arithmetic (see its module docstring).  The claim it must
uphold is *virtual-time equivalence*: with `adaptive_fidelity` on or off,
a run produces identical

* completion times (store return, sfence, final drain),
* destination commit instants and memory contents,
* LinkStats (packets/payload/wire/busy) and endpoint counters,
* metrics-registry snapshots (depth samples included),

both on the clean path (no demotion) and across a demotion triggered at
an arbitrary instant by a foreign posted write, a foreign link send, or
an interrupt.  The seeded fuzz below drives exactly that comparison.

Known, deliberate divergences (excluded from comparison): the per-burst
``bursts`` LinkStats counter and the train's own ``train_*`` /
``train.*`` telemetry (absent in per-packet mode by construction).
"""

import random

import pytest

from repro.util.units import CACHELINE


def run_train_mode(K, fast, kind=None, t_off=None, tail=0):
    """One two-board bulk store of ``K`` lines (+``tail`` bytes); returns
    an end-state dict.  ``kind``/``t_off`` optionally schedule a foreign
    disturbance ``t_off`` ns after the store begins:

    * ``"submit"``   -- a local posted write enters the same northbridge,
    * ``"send"``     -- a foreign packet enters the same link direction,
    * ``"interrupt"``-- the storing process is interrupted,
    * ``"ber"``      -- the link degrades (BER pulse) mid-window.
    """
    from repro.bench.microbench import _RawWindow
    from repro.core import TCClusterSystem
    from repro.sim.engine import Interrupt

    system = TCClusterSystem.two_board_prototype()
    system.enable_metrics()
    system.sim.features.adaptive_fidelity = fast
    system.boot()
    cl = system.cluster
    sim = cl.sim
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    win = _RawWindow(cl, a, b)
    proc = win.proc
    core = proc.core
    chip = core.chip
    nb = chip.nb
    r = nb.route(win.tx_base)
    binding = chip.ports[r.dst_link]
    link, side = binding.link, binding.side
    dest_chip = link.attached["B" if side == "A" else "A"]
    data = bytes((i * 37 + 5) % 256 for i in range(K * CACHELINE + tail))

    commits = []
    orig = dest_chip.memctrl._commit_write

    def spy(offset, d, mask, done):
        commits.append((sim.now, offset, len(d)))
        return orig(offset, d, mask, done)

    dest_chip.memctrl._commit_write = spy

    done = {}
    handle = [None]

    def job():
        try:
            yield from proc.store(win.tx_base, data)
            done["store_end"] = sim.now
        except Interrupt:
            done["store_interrupted"] = sim.now
        try:
            # Post-disturbance probe: a second store and a fence must
            # behave identically too (reconstructed state is live state).
            yield 100.0
            yield from proc.store(win.tx_base, data[: 4 * CACHELINE])
            done["probe_end"] = sim.now
            yield from core.sfence()
            done["sfence_end"] = sim.now
        except Interrupt:
            done["late_interrupt"] = sim.now

    handle[0] = sim.process(job())
    local_addr = cl.ranks[a].base + (900 << 10)

    def disturb():
        if kind == "submit":
            nb.submit_posted(local_addr, b"\xa5" * 8)
        elif kind == "send":
            from repro.ht.packet import make_posted_write

            pkt = make_posted_write(win.tx_mailbox, b"\x5a" * 64,
                                    unitid=nb.nodeid, coherent=False)
            if not link.try_send(side, pkt):
                link.send(side, pkt)
        elif kind == "interrupt":
            handle[0].interrupt("fidelity-test")
        elif kind == "ber":
            # A BER pulse: degradation demotes any train; restoring 0.0
            # before the next transmission keeps the RNG stream unused so
            # both fidelity modes stay bit-comparable.
            link.ber = 1e-6
            link.ber = 0.0

    if kind is not None:
        sim.schedule(t_off, disturb)
    sim.run_until_event(handle[0])
    sim.run()

    stats = {s: link.stats(s).as_dict(sim.now) for s in ("A", "B")}
    for s in stats:
        stats[s].pop("bursts", None)
    snap = nb._m.snapshot(sim.now)
    snap["counters"] = {k: v for k, v in snap["counters"].items()
                        if not k.startswith("train.")}
    counters = {k: v for k, v in nb.counters.as_dict().items()
                if not k.startswith("train_")}
    return dict(
        t_end=sim.now,
        done=done,
        commits=commits,
        stats=stats,
        counters=counters,
        dest_counters=dest_chip.nb.counters.as_dict(),
        wc=(core.wc.fills, core.wc.full_flushes, core.wc.partial_flushes),
        snap=snap,
        dest_mem=dest_chip.memctrl.memory.read(0, 1 << 16),
        local_mem=chip.memctrl.memory.read(900 << 10, 64),
        events=sim.event_count,
        train_windows=nb.counters.get("train_windows"),
        train_demotions=nb.counters.get("train_demotions"),
    )


_COMPARED = ("t_end", "done", "commits", "stats", "counters",
             "dest_counters", "wc", "snap", "dest_mem", "local_mem")


def assert_equivalent(slow, fast):
    for key in _COMPARED:
        assert slow[key] == fast[key], (
            f"{key} diverged:\n  slow: {str(slow[key])[:400]}"
            f"\n  fast: {str(fast[key])[:400]}"
        )


# ---------------------------------------------------------------------------
# Clean path: whole train collapses, nothing disturbs it
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("K", [1, 4, 5, 16, 64])
def test_clean_bulk_store_exact(K):
    slow = run_train_mode(K, fast=False)
    fast = run_train_mode(K, fast=True)
    assert_equivalent(slow, fast)
    if K >= 4:
        assert fast["train_windows"] >= 1, "fast path never engaged"
    if K <= 5:
        # Larger K: the probe store lands inside the main train's drain
        # tail and legitimately demotes it (covered by the fuzz below).
        assert fast["train_demotions"] == 0


def test_clean_bulk_store_saves_events():
    slow = run_train_mode(64, fast=False)
    fast = run_train_mode(64, fast=True)
    assert_equivalent(slow, fast)
    assert fast["events"] < slow["events"] * 0.75, (
        f"aggregate fidelity saved too little: "
        f"{slow['events']} -> {fast['events']}"
    )


def test_partial_tail_line_exact():
    # 16 full lines plus a 20-byte tail: the train covers the aligned
    # prefix, the tail goes through the ordinary per-packet partial path.
    slow = run_train_mode(16, fast=False, tail=20)
    fast = run_train_mode(16, fast=True, tail=20)
    assert_equivalent(slow, fast)
    assert fast["train_windows"] >= 1


@pytest.mark.slow
@pytest.mark.parametrize("K", [300, 4500])
def test_clean_bulk_store_exact_large(K):
    slow = run_train_mode(K, fast=False)
    fast = run_train_mode(K, fast=True)
    assert_equivalent(slow, fast)
    assert fast["events"] < slow["events"] * 0.65


# ---------------------------------------------------------------------------
# Seeded fuzz: a foreign event at a random instant forces demotion
# ---------------------------------------------------------------------------

def _fuzz_cases(seed, n, kinds=("submit", "send", "interrupt", "ber")):
    rng = random.Random(seed)
    span = {5: 220.0, 16: 600.0, 64: 1900.0}
    for _ in range(n):
        K = rng.choice(list(span))
        yield (rng.choice(kinds), K,
               round(rng.uniform(0.1, span[K]), 2))


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_demotion_fuzz_oracle(seed):
    for kind, K, t_off in _fuzz_cases(seed, 4):
        slow = run_train_mode(K, fast=False, kind=kind, t_off=t_off)
        fast = run_train_mode(K, fast=True, kind=kind, t_off=t_off)
        try:
            assert_equivalent(slow, fast)
        except AssertionError as exc:  # pragma: no cover - diagnostics
            raise AssertionError(
                f"kind={kind} K={K} t_off={t_off}: {exc}") from exc


@pytest.mark.slow
@pytest.mark.parametrize("seed", list(range(8)))
def test_demotion_fuzz_oracle_deep(seed):
    for kind, K, t_off in _fuzz_cases(seed + 100, 12):
        slow = run_train_mode(K, fast=False, kind=kind, t_off=t_off)
        fast = run_train_mode(K, fast=True, kind=kind, t_off=t_off)
        try:
            assert_equivalent(slow, fast)
        except AssertionError as exc:  # pragma: no cover - diagnostics
            raise AssertionError(
                f"kind={kind} K={K} t_off={t_off}: {exc}") from exc


def test_drain_tail_demotion_exact():
    # K=16 window: fills finish around 12*16 ns, the wire drains until
    # roughly 24*16 ns.  A foreign submit in between lands after the core
    # resumed but while the dispatcher/serializer are still replaying the
    # precomputed schedule.
    slow = run_train_mode(16, fast=False, kind="submit", t_off=300.0)
    fast = run_train_mode(16, fast=True, kind="submit", t_off=300.0)
    assert_equivalent(slow, fast)
