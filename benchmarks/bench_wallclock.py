#!/usr/bin/env python
"""Wall-clock (host-time) benchmark of the simulator hot path.

Unlike the rest of ``benchmarks/`` -- which reproduces the *paper's*
virtual-time figures -- this script times how fast the simulator itself
runs, so the perf trajectory of the engine is tracked alongside the
model's accuracy.  Three scenarios:

* ``canonical_2node`` -- the golden-trace workload (fixed bidirectional
  message mix); also reports heap pushes per delivered TCC packet.
* ``idle_poll``      -- a receiver parked in ``recv()`` with no traffic
  for a 2 ms virtual window; measures the cost of *waiting* (the
  park/doorbell path should make this near-free).
* ``fig6_4mib_weak`` -- the heaviest single figure point: one 4 MiB
  weakly-ordered bandwidth sweep.
* ``fig6_full_sweep`` -- the whole Figure 6 grid (17 sizes x 2 modes),
  run serially and through the ``repro.sim.parallel`` process-pool
  runner (``--jobs``); the ratio is the sweep-level scale-out win.
* ``mesh_4x4``      -- the ROADMAP scale-out scenario: a 16-blade mesh
  with eight link-disjoint 512 KiB bulk transfers, run with the
  adaptive-fidelity bulk-train fast path off (per-packet baseline) and
  on; gated on the deterministic event count of the adaptive run.
* ``datapath_churn`` -- a 1 MiB aligned store pushed through the
  *per-packet* data plane (adaptive fidelity off): every cache line
  becomes a real pooled packet.  Reports the zero-copy counters
  (``bytes_copied``, ``packets_alloc``/``packets_pooled``) and asserts
  the one-copy and O(1)-allocation invariants; gated on its
  deterministic event count.
* ``read_chain``     -- 256 KiB of remote memory pulled as 4096
  sequential coherent cacheline reads (the read-heavy counterpart of the
  fig6 store sweeps), per-packet vs ``flow_fidelity`` ReadFlow macro
  schedules; virtual time must match exactly and the macro event count
  is gated.
* ``collectives``    -- a 64 KiB allreduce across 16 ranks on
  torus2d(4,4): bandwidth-optimal ring (Hamiltonian single-hop
  embedding, flow-span bulk phases) vs binomial reduce+broadcast,
  oracle-checked; the ring run's event count is gated.
* ``boot_amortization`` -- cold boot vs boot-image restore on
  mesh2d(4,4) and torus3d(4,4,4): per-phase wall clock (construct /
  boot protocol / restore), calendar-entry counts, and the end-to-end
  ratio of an N-point same-signature sweep built from one image; the
  restore-drain event counts are gated (``boot_restore_events_max``).

Emits ``BENCH_wallclock.json`` (repo root by default) with runtime,
events executed, heap pushes, and events/sec per scenario, plus speedups
against the recorded pre-overhaul baseline.

CI gate: ``--check-baseline benchmarks/wallclock_baseline.json`` fails
(exit 1) if the canonical trace executes more calendar entries than the
recorded count.  The scenario is deterministic, so the event count is
machine-independent and exact -- unlike wall-clock time, which is only
reported, never gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --check-baseline benchmarks/wallclock_baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import TCClusterSystem
from repro.obs.scenarios import run_canonical_2node
from repro.util.units import KiB, MiB

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Virtual idle window for the idle-poll scenario (2 ms -- long enough
#: that a busy-polling receiver would execute ~200k calendar entries).
IDLE_WINDOW_NS = 2_000_000.0

#: Measured on the pre-overhaul tree (commit 8b16a5d, the PR 1 seed) on
#: the same workloads.  ``heap_pushes`` was not counted by the seed
#: engine; every executed entry was pushed, so events stands in for
#: pushes there (the seed had no lazy-dispatch elision).  Runtimes are
#: the best of 3 back-to-back runs (same protocol as the bench itself)
#: so the wall-clock ratio compares like with like.
SEED_BASELINE = {
    "canonical_2node": {"runtime_s": 0.095, "events": 11919, "packets": 418},
    "idle_poll": {"runtime_s": 0.931, "events": 217823},
    "fig6_4mib_weak": {"runtime_s": 8.75, "events": 1310908, "mbps": 2781.8},
}

#: Repeats for the fig6 wall-clock measurement (best-of-N); the other
#: two scenarios are gated on deterministic event counts, not time.
FIG6_REPEATS = 3

#: Bytes each of the eight link-disjoint mesh pairs bulk-stores.
MESH_TRANSFER = 512 * KiB

#: Bytes the datapath-churn scenario streams per-packet (16384 lines).
DATAPATH_TRANSFER = 1 * MiB

#: torus-ring scenario: messages per rank, payload bytes per message
#: (128 ring slots -- a full feedback window), and the modelled compute
#: phase between halo exchanges.
TORUS_RING_MSGS = 8
TORUS_RING_MSG_BYTES = 7168
TORUS_RING_COMPUTE_NS = 200.0
TORUS_RING_SEED = 0xC0FFEE

#: Bytes the read-chain scenario pulls over the coherent fabric link
#: (4096 cachelines -> 4096 remote read/response round trips).
READ_CHAIN_BYTES = 256 * KiB

#: Array bytes per rank for the collectives scenario (a 64 KiB allreduce
#: on 16 torus ranks -- deep in the bandwidth-algorithm regime).
COLLECTIVES_BYTES = 64 * KiB


def bench_canonical():
    # Best-of-3 back-to-back (the seed baseline's protocol): the first
    # run pays interpreter warm-up that the gate's deterministic event
    # count is insensitive to but the reported events/sec is not.
    best = None
    for _ in range(3):
        sys_ = TCClusterSystem.two_board_prototype()
        t0 = time.perf_counter()
        res = run_canonical_2node(system=sys_)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, sys_.sim, res)
    wall, sim, res = best
    packets = res["links"]["tcc_a_packets"]
    return {
        "runtime_s": round(wall, 4),
        "events": sim.event_count,
        "heap_pushes": sim.heap_pushes,
        "events_per_sec": round(sim.event_count / wall),
        "packets": packets,
        "pushes_per_packet": round(sim.heap_pushes / packets, 2),
    }


def bench_idle_poll():
    sys_ = TCClusterSystem.two_board_prototype().boot()
    cl = sys_.cluster
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    tx, rx = sys_.connect(a, b)
    sim = sys_.sim

    got = []

    def receiver():
        got.append((yield from rx.recv()))

    sim.process(receiver())
    e0, p0 = sim.event_count, sim.heap_pushes
    t0 = time.perf_counter()
    sim.run(until=sim.now + IDLE_WINDOW_NS)
    wall = time.perf_counter() - t0
    events = sim.event_count - e0
    pushes = sim.heap_pushes - p0

    # Liveness check: the parked receiver must still wake for real traffic.
    def sender():
        yield from tx.send(b"x" * 64)
        yield from tx.flush()

    sim.process(sender())
    sim.run()
    assert got and got[0] == b"x" * 64, "parked receiver failed to wake"

    return {
        "runtime_s": round(wall, 4),
        "idle_window_ns": IDLE_WINDOW_NS,
        "events": events,
        "heap_pushes": pushes,
        "events_per_sec": round(events / wall) if wall > 0 else None,
    }


def bench_fig6_4mib():
    from repro.bench.microbench import run_bandwidth_sweep

    best = None
    for _ in range(FIG6_REPEATS):
        sys_ = TCClusterSystem.two_board_prototype().boot()
        t0 = time.perf_counter()
        res = run_bandwidth_sweep(sizes=(4 * MiB,), modes=("weak",), system=sys_)
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, sys_.sim, res)
    wall, sim, res = best
    return {
        "runtime_s": round(wall, 4),
        "repeats": FIG6_REPEATS,
        "events": sim.event_count,
        "heap_pushes": sim.heap_pushes,
        "events_per_sec": round(sim.event_count / wall),
        "mbps": round(res[0].mbps, 1),
    }


def bench_datapath_churn():
    """One bulk transfer through the full per-packet data plane.

    Adaptive fidelity is disabled so every cache line of a 1 MiB aligned
    store travels as an individual pooled packet through WC flush, SRQ,
    link and destination commit -- the worst-case object-churn workload
    the zero-copy overhaul targets.  Asserts the two data-plane
    invariants directly:

    * **one-copy**: destination ``bytes_copied`` grows by exactly the
      transfer size (each payload byte is copied once, at page commit);
    * **O(1) allocation**: fresh ``Packet`` objects allocated during the
      transfer are bounded by the flow-control window (the SRQ posted
      buffer plus link queue depth), not by the transfer size -- the
      peak in-flight population is allocated once and recirculated.
    """
    from repro.bench.microbench import _RawWindow
    from repro.obs.metrics import datapath_counters

    sys_ = TCClusterSystem.two_board_prototype()
    sys_.sim.features.adaptive_fidelity = False  # force per-packet plane
    sys_.boot()
    cl = sys_.cluster
    sim = sys_.sim
    win = _RawWindow(cl, 0, 1)
    size = DATAPATH_TRANSFER
    data = bytes(range(256)) * (size // 256)
    dest = cl.ranks[1].chip.memctrl.memory

    def xfer():
        yield from win.proc.store(win.tx_base, data)
        yield from win.proc.core.sfence()

    before = datapath_counters(sim, memories=(dest,))
    e0, p0 = sim.event_count, sim.heap_pushes
    t0 = time.perf_counter()
    sim.run_until_event(sim.process(xfer()))
    sim.run()
    wall = time.perf_counter() - t0
    events = sim.event_count - e0
    after = datapath_counters(sim, memories=(dest,))
    delta = {k: after[k] - before[k] for k in after}

    # Model sanity: the destination window holds the streamed bytes.
    window_off = win.tx_base - cl.ranks[1].base
    got = dest.read(window_off, size)
    assert got == data, "datapath churn transfer corrupted"

    lines = size // 64
    assert delta["bytes_copied"] == size, (
        f"one-copy invariant broken: {delta['bytes_copied']} bytes copied "
        f"for a {size}-byte transfer"
    )
    # Peak live packets = the flow-control window, independent of the
    # transfer size; 64 covers the link tx queue and rx in-flight tail.
    window = sys_.cluster.ranks[0].chip.nb.timing.posted_buffer_packets + 64
    assert delta["packets_alloc"] <= window, (
        f"packet churn not O(1): {delta['packets_alloc']} fresh allocations "
        f"exceed the flow-control window {window} ({lines} packets sent)"
    )
    assert delta["packets_alloc"] + delta["packets_pooled"] == lines, (
        "pool accounting lost packets: "
        f"{delta['packets_alloc']}+{delta['packets_pooled']} != {lines}"
    )

    from repro.obs.metrics import flow_counters

    return {
        "runtime_s": round(wall, 4),
        "transfer_bytes": size,
        "packets": lines,
        "events": events,
        "heap_pushes": sim.heap_pushes - p0,
        "events_per_sec": round(events / wall) if wall > 0 else None,
        "virtual_ns": round(sim.now, 1),
        "bytes_copied": delta["bytes_copied"],
        "copies_per_byte": round(delta["bytes_copied"] / size, 4),
        "packets_alloc": delta["packets_alloc"],
        "packets_pooled": delta["packets_pooled"],
        "packets_recycled": delta["packets_recycled"],
        # Macro-event telemetry: this scenario forces the per-packet
        # plane, so every counter here must stay zero.
        "train": _train_counters(cl, [0]),
        "flow": flow_counters(sim).as_dict(),
    }


def bench_torus64():
    """The torus-scale scenario: torus3d(4,4,4) -- 64 supernodes, 128
    chips -- boots from cold on the folded interval maps and completes a
    64-pair halo exchange (every supernode streams 64 KiB to its +x
    neighbour).  The run is deterministic, so its calendar-entry count
    gates route-table and boot-path regressions at scale the 2-node
    scenarios cannot see (``torus64_events_max`` in the baseline)."""
    from repro.bench.sweep_points import torus_point

    t0 = time.perf_counter()
    point = torus_point((4, 4, 4), size=64 * KiB, workload="halo")
    wall = time.perf_counter() - t0
    return {
        "runtime_s": round(wall, 4),
        "supernodes": 64,
        "pairs": point.pairs,
        "transfer_bytes": point.size,
        "mbps": point.mbps,
        "boot_ns": point.boot_ns,
        "transfer_ns": point.transfer_ns,
        "events": point.events,
    }


def bench_fig6_full_sweep(jobs):
    """The entire Figure 6 grid, serial vs process-pool fan-out.

    Both passes go through the same per-point machinery (a fresh booted
    prototype per point, largest transfers scheduled first) so the ratio
    isolates the pool, not a workload difference.  The serial pass and
    its throughput are always recorded; on a runner whose CPU affinity
    allows only one core (or with ``--jobs 1``) only the serial-vs-pool
    *comparison* is skipped -- a wall-clock ratio there would measure
    pool overhead, not scale-out, and report a misleading ~1x "speedup".
    """
    from repro.bench.microbench import DEFAULT_BW_SIZES
    from repro.bench.sweep_points import run_bandwidth_sweep_parallel
    from repro.sim.parallel import usable_cpus

    usable = usable_cpus()
    sizes = tuple(DEFAULT_BW_SIZES)
    t0 = time.perf_counter()
    serial = run_bandwidth_sweep_parallel(sizes=sizes, jobs=1)
    serial_wall = time.perf_counter() - t0
    out = {
        "points": len(serial),
        "jobs": jobs,
        "usable_cpus": usable,
        "serial_runtime_s": round(serial_wall, 4),
        "serial_points_per_s": round(len(serial) / serial_wall, 2),
    }

    if usable <= 1 or jobs <= 1:
        out["skipped_parallel_compare"] = True
        out["reason"] = (
            "only one usable CPU: a serial-vs-pool wall-clock ratio "
            "would measure pool overhead, not scale-out"
            if usable <= 1 else
            "jobs <= 1: nothing to compare against the serial pass"
        )
        return out

    t0 = time.perf_counter()
    parallel = run_bandwidth_sweep_parallel(sizes=sizes, jobs=jobs)
    parallel_wall = time.perf_counter() - t0

    assert [(p.size, p.mode, p.mbps) for p in serial] == \
        [(p.size, p.mode, p.mbps) for p in parallel], \
        "parallel sweep diverged from serial results"
    out["parallel_runtime_s"] = round(parallel_wall, 4)
    out["speedup_x"] = round(serial_wall / parallel_wall, 2)
    if usable < min(jobs, len(serial)):
        out["note"] = (
            f"pool speedup is bounded by usable CPUs ({usable}); the "
            f"independent-point fan-out itself scales to min(jobs, points)"
        )
    return out


def _run_mesh(adaptive: bool):
    from repro.bench.microbench import _RawWindow
    from repro.topology import mesh2d

    sys_ = TCClusterSystem(mesh2d(4, 4))
    sys_.sim.features.adaptive_fidelity = adaptive
    sys_.boot()
    cl = sys_.cluster
    sim = sys_.sim
    # Row-major numbering: (2k, 2k+1) are horizontal neighbours, so the
    # eight pairs use eight distinct links -- no two transfers contend.
    pairs = [(i, i + 1) for i in range(0, 16, 2)]
    wins = [_RawWindow(cl, a, b) for a, b in pairs]
    data = bytes(range(256)) * (MESH_TRANSFER // 256)

    def xfer(win):
        yield from win.proc.store(win.tx_base, data)
        yield from win.proc.core.sfence()

    e0, p0 = sim.event_count, sim.heap_pushes
    t0 = time.perf_counter()
    procs = [sim.process(xfer(w)) for w in wins]
    sim.run_until_event(sim.all_of(procs))
    sim.run()
    wall = time.perf_counter() - t0

    # Model sanity: every destination holds the transferred bytes.
    window_off = wins[0].tx_base - cl.ranks[pairs[0][1]].base
    for (a, b) in pairs:
        got = cl.ranks[b].chip.memctrl.memory.read(window_off, len(data))
        assert got == data, f"mesh transfer {a}->{b} corrupted"

    from repro.obs.metrics import flow_counters

    trains = _train_counters(cl, [a for a, _ in pairs])
    return {
        "runtime_s": round(wall, 4),
        "events": sim.event_count - e0,
        "heap_pushes": sim.heap_pushes - p0,
        "virtual_ns": round(sim.now, 1),
        "train_windows": trains["windows"],
        "train": trains,
        "flow": flow_counters(sim).as_dict(),
    }


def bench_mesh_4x4():
    per_packet = _run_mesh(adaptive=False)
    adaptive = _run_mesh(adaptive=True)
    assert per_packet["virtual_ns"] == adaptive["virtual_ns"], (
        "adaptive fidelity changed mesh virtual time: "
        f"{per_packet['virtual_ns']} vs {adaptive['virtual_ns']}"
    )
    assert per_packet["train_windows"] == 0
    assert adaptive["train_windows"] >= 8, "bulk trains never engaged"
    return {
        "pairs": 8,
        "transfer_bytes": MESH_TRANSFER,
        "per_packet": per_packet,
        "adaptive": adaptive,
        "speedup_x": round(per_packet["runtime_s"] / adaptive["runtime_s"], 2),
        "events_x": round(per_packet["events"] / adaptive["events"], 2),
    }


def _run_torus_ring(fidelity: bool):
    """One pass of the 64-node msglib ring exchange.

    ``fidelity`` toggles *both* macro-event layers together
    (``adaptive_fidelity`` store trains and the flow-level
    ``flow_fidelity`` slot coalescing): the per-packet baseline runs with
    every fast path off, the macro run with every fast path on, and the
    two must agree on virtual time exactly.
    """
    import random

    from repro.msglib import MsgConfig
    from repro.obs.metrics import flow_counters
    from repro.topology import torus3d

    sys_ = TCClusterSystem(
        torus3d(4, 4, 4),
        msg_cfg=MsgConfig(
            ring_bytes=16 * KiB,       # 256 slots: two messages in flight
            eager_max=TORUS_RING_MSG_BYTES,
            fb_interval_slots=128,     # one feedback line per message
            read_chunk=4 * KiB,
            heap_bytes=64 * KiB,
        ),
    )
    sys_.sim.features.adaptive_fidelity = fidelity
    sys_.sim.features.flow_fidelity = fidelity
    sys_.boot()
    cl = sys_.cluster
    sim = sys_.sim
    topo = cl.topology
    n = topo.num_supernodes

    # Directed +x ring links: rank r streams to its +x neighbour and
    # receives from its -x neighbour, so every link direction carries
    # exactly one flow (data one way, feedback lines the other).
    succ = []
    for s in range(n):
        c = list(topo.coords_of(s))
        c[0] = (c[0] + 1) % 4
        succ.append(cl.rank_of(topo.supernode_at(tuple(c))))
    ranks = [cl.rank_of(s) for s in range(n)]
    eps = {r: sys_.connect(r, succ[i]) for i, r in enumerate(ranks)}
    rx_of = {succ[i]: eps[r][1] for i, r in enumerate(ranks)}

    rng = random.Random(TORUS_RING_SEED)
    payloads = {
        r: [rng.randbytes(TORUS_RING_MSG_BYTES) for _ in range(TORUS_RING_MSGS)]
        for r in ranks
    }
    got = {r: [] for r in ranks}

    def worker(r):
        tx = eps[r][0]
        rx = rx_of[r]
        for m in payloads[r]:
            yield from tx.send(m)
            got[r].append((yield from rx.recv()))
            yield TORUS_RING_COMPUTE_NS  # the stencil compute phase
        yield from tx.flush()

    e0, p0 = sim.event_count, sim.heap_pushes
    t0 = time.perf_counter()
    procs = [sim.process(worker(r)) for r in ranks]
    sim.run_until_event(sim.all_of(procs))
    sim.run()
    wall = time.perf_counter() - t0

    # Model sanity: every rank received its -x neighbour's messages.
    pred = {succ[i]: r for i, r in enumerate(ranks)}
    for r in ranks:
        assert got[r] == payloads[pred[r]], f"ring exchange corrupted at {r}"

    fl = flow_counters(sim)
    slots_total = n * TORUS_RING_MSGS * (TORUS_RING_MSG_BYTES // 56)
    return {
        "runtime_s": round(wall, 4),
        "events": sim.event_count - e0,
        "heap_pushes": sim.heap_pushes - p0,
        "virtual_ns": round(sim.now, 1),
        "train": _train_counters(cl, ranks),
        "flow": fl.as_dict(),
        "slot_span_rate": round(fl.slot_slots / slots_total, 4),
    }


def _train_counters(cl, ranks):
    """Macro-event hit counters summed over the given ranks' NBs."""
    out = {"windows": 0, "lines": 0, "demotions": 0}
    for r in ranks:
        c = cl.ranks[r].chip.nb.counters
        out["windows"] += c.get("train_windows")
        out["lines"] += c.get("train_lines")
        out["demotions"] += c.get("train_demotions")
    return out


def bench_torus_ring():
    """The flow-level fidelity scenario: a 64-node torus msglib ring.

    Every supernode of a torus3d(4,4,4) runs send-to-+x / recv-from--x /
    compute iterations (a 1-D halo shift), eight 7168-byte messages per
    rank -- 128 ring slots each, the classic TCCluster eager pattern.
    With fidelity on, the slot writes of each message coalesce into one
    contiguous span (``flow_fidelity``) which rides the bulk-train
    schedule (``adaptive_fidelity``); per-packet mode simulates every
    slot's store, wire and commit individually.  Virtual time must match
    exactly; the wall-clock ratio is the flow-level fidelity win.
    """
    per_packet = _run_torus_ring(fidelity=False)
    macro = _run_torus_ring(fidelity=True)
    assert per_packet["virtual_ns"] == macro["virtual_ns"], (
        "flow fidelity changed torus-ring virtual time: "
        f"{per_packet['virtual_ns']} vs {macro['virtual_ns']}"
    )
    assert per_packet["train"]["windows"] == 0
    assert per_packet["flow"]["slot_windows"] == 0
    assert macro["flow"]["slot_windows"] >= 64 * TORUS_RING_MSGS // 2, \
        "slot spans never engaged"
    assert macro["train"]["windows"] >= 64, "span trains never engaged"
    return {
        "supernodes": 64,
        "msgs_per_rank": TORUS_RING_MSGS,
        "msg_bytes": TORUS_RING_MSG_BYTES,
        "per_packet": per_packet,
        "macro": macro,
        "speedup_x": round(per_packet["runtime_s"] / macro["runtime_s"], 2),
        "events_x": round(per_packet["events"] / macro["events"], 2),
    }


def _run_read_chain(fidelity: bool):
    """One pass of the remote-read chain on the single-board prototype.

    node0's core pulls ``READ_CHAIN_BYTES`` of node1's DRAM through the
    coherent fabric link -- 4096 sequential cacheline read/response round
    trips, the read-heavy counterpart of the fig6 store sweeps.  With
    ``flow_fidelity`` on, each read promotes to a :class:`ReadFlow`
    macro schedule (request, remote issue, response and completion as
    three calendar entries plus the DRAM commit); per-packet mode walks
    every request and response through queue, pump, wire and crossbar.
    """
    from repro.cluster import build_single_board_prototype
    from repro.obs.metrics import flow_counters

    proto = build_single_board_prototype()
    sim = proto.sim
    sim.features.adaptive_fidelity = fidelity
    sim.features.flow_fidelity = fidelity
    proto.boot()
    node0, node1 = proto.node0, proto.node1
    data = bytes(range(256)) * (READ_CHAIN_BYTES // 256)
    node1.memory.write(0x40000, data)
    addr = 256 * MiB + 0x40000

    got = {}

    def reader():
        got["data"] = yield from node0.cores[0].load(addr, READ_CHAIN_BYTES)

    e0, p0 = sim.event_count, sim.heap_pushes
    t0 = time.perf_counter()
    sim.run_until_event(sim.process(reader()))
    sim.run()
    wall = time.perf_counter() - t0
    assert got["data"] == data, "read chain returned corrupted data"

    fl = flow_counters(sim)
    return {
        "runtime_s": round(wall, 4),
        "events": sim.event_count - e0,
        "heap_pushes": sim.heap_pushes - p0,
        "virtual_ns": round(sim.now, 1),
        "remote_reads": node0.nb.counters.get("remote_reads"),
        "flow": fl.as_dict(),
    }


def bench_read_chain():
    """Flow-level fidelity on the read/response path: per-packet vs
    ReadFlow macro schedules, virtual time bit-identical."""
    per_packet = _run_read_chain(fidelity=False)
    macro = _run_read_chain(fidelity=True)
    assert per_packet["virtual_ns"] == macro["virtual_ns"], (
        "read flow changed virtual time: "
        f"{per_packet['virtual_ns']} vs {macro['virtual_ns']}"
    )
    nreads = READ_CHAIN_BYTES // 64
    assert per_packet["remote_reads"] == nreads
    assert per_packet["flow"]["read_reads"] == 0
    assert macro["flow"]["read_reads"] == nreads, "read flow never engaged"
    assert macro["flow"]["read_demotions"] == 0
    return {
        "transfer_bytes": READ_CHAIN_BYTES,
        "reads": nreads,
        "per_packet": per_packet,
        "macro": macro,
        "speedup_x": round(per_packet["runtime_s"] / macro["runtime_s"], 2),
        "events_x": round(per_packet["events"] / macro["events"], 2),
    }


#: Points per topology in the boot-amortization sweep comparison.
BOOT_AMORT_POINTS = 8


def bench_boot_amortization():
    """Cold boot vs boot-image restore, wall clock and calendar entries.

    For mesh2d(4,4) and torus3d(4,4,4): time the three phases a sweep
    point can be built from --

    * ``construct`` -- the object graph alone (chips, links, firmware
      plans); identical work on both paths,
    * ``cold`` -- construct + simulate the full boot protocol,
    * ``restore`` -- construct + install a captured
      :class:`~repro.cluster.snapshot.BootImage` (start/drain, state
      restore, clock rebase); **no** boot protocol simulation.

    ``boot_phase_x`` divides what the image skips (cold minus construct)
    by what restore adds instead (restore minus construct); ``sweep_x``
    is the end-to-end ratio of an N-point same-signature sweep: N cold
    boots vs one cold boot + capture + N restores.  Restore-drain event
    counts are deterministic and gated (``boot_restore_events_max``):
    a restore must stay a startup drain, never a re-simulated boot.
    """
    from repro.cluster.snapshot import capture_image, restore_image
    from repro.cluster.system import TCCluster
    from repro.topology import mesh2d, torus3d

    out = {}
    restore_events_total = 0
    for name, factory in (("mesh_4x4", lambda: mesh2d(4, 4)),
                          ("torus_4x4x4", lambda: torus3d(4, 4, 4))):
        constructs = []
        for _ in range(3):
            t0 = time.perf_counter()
            TCCluster(factory())
            constructs.append(time.perf_counter() - t0)
        construct = min(constructs)

        colds = []
        for _ in range(2):
            t0 = time.perf_counter()
            cl = TCCluster(factory())
            cl.boot()
            cl.sim.run()
            colds.append(time.perf_counter() - t0)
        cold = min(colds)
        boot_events = cl.sim.event_count

        t0 = time.perf_counter()
        image = capture_image(cl)
        capture = time.perf_counter() - t0

        restores = []
        for _ in range(3):
            t0 = time.perf_counter()
            restored = restore_image(image)
            restores.append(time.perf_counter() - t0)
        restore = min(restores)
        assert restored.restored_from_image
        restore_events = restored.restore_event_count
        restore_events_total += restore_events

        # Both paths pay construction; the phases compare what each adds
        # on top.  Clamp at a fraction of the restore time so timer noise
        # on the shared construct measurement cannot inflate the ratio.
        boot_phase = cold - construct
        restore_phase = max(restore - construct, restore * 0.05)
        n = BOOT_AMORT_POINTS
        cold_sweep = n * cold
        image_sweep = cold + capture + n * restore
        out[name] = {
            "construct_s": round(construct, 4),
            "cold_boot_s": round(cold, 4),
            "restore_s": round(restore, 4),
            "capture_s": round(capture, 4),
            "boot_events": boot_events,
            "restore_events": restore_events,
            "boot_phase_x": round(boot_phase / restore_phase, 2),
            "events_x": round(boot_events / restore_events, 2),
            "sweep_points": n,
            "cold_sweep_s": round(cold_sweep, 4),
            "image_sweep_s": round(image_sweep, 4),
            "sweep_x": round(cold_sweep / image_sweep, 2),
        }
    out["restore_events_total"] = restore_events_total
    return out


def bench_collectives():
    """The collective-algorithms scenario: a 64 KiB allreduce across 16
    ranks on torus2d(4,4), bandwidth-optimal ring vs binomial
    reduce+broadcast (both oracle-checked inside ``collective_point``).
    The runs are deterministic, so the ring run's calendar-entry count
    gates the collective schedules, the Hamiltonian ring embedding and
    the flow-span engagement at once (``collectives_events_max``)."""
    from repro.bench.sweep_points import collective_point

    t0 = time.perf_counter()
    ring_pt = collective_point("allreduce", "ring", COLLECTIVES_BYTES,
                               shape=(4, 4))
    binom_pt = collective_point("allreduce", "binomial", COLLECTIVES_BYTES,
                                shape=(4, 4))
    wall = time.perf_counter() - t0
    assert ring_pt.ring_single_hop, "Hamiltonian embedding lost single-hop"
    assert ring_pt.slot_windows > 0, "ring phases missed the span layer"
    assert ring_pt.elapsed_ns < binom_pt.elapsed_ns, (
        "ring allreduce no faster than binomial at 64 KiB"
    )
    return {
        "runtime_s": round(wall, 4),
        "nranks": 16,
        "array_bytes": COLLECTIVES_BYTES,
        "ring_elapsed_ns": ring_pt.elapsed_ns,
        "binomial_elapsed_ns": binom_pt.elapsed_ns,
        "ring_vs_binomial_x": round(binom_pt.elapsed_ns / ring_pt.elapsed_ns,
                                    2),
        "ring_slot_windows": ring_pt.slot_windows,
        "events": ring_pt.events,
        "binomial_events": binom_pt.events,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_wallclock.json",
        help="where to write the JSON report (default: repo root)",
    )
    ap.add_argument(
        "--check-baseline",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE_JSON",
        help="fail if canonical-trace (or mesh scenario) events executed "
        "exceeds the recorded count in this file (CI regression gate)",
    )
    ap.add_argument(
        "--jobs",
        default=None,
        help="worker processes for the fig6 full-sweep scenario "
        "(default: TCC_PARALLEL or 4; 0/'auto' = all cores)",
    )
    args = ap.parse_args(argv)

    from repro.sim.parallel import resolve_jobs

    jobs = resolve_jobs(args.jobs) if args.jobs is not None else (
        resolve_jobs() if "TCC_PARALLEL" in os.environ else 4
    )

    scenarios = {
        "canonical_2node": bench_canonical(),
        "idle_poll": bench_idle_poll(),
        "fig6_4mib_weak": bench_fig6_4mib(),
        "fig6_full_sweep": bench_fig6_full_sweep(jobs),
        "mesh_4x4": bench_mesh_4x4(),
        "datapath_churn": bench_datapath_churn(),
        "torus64": bench_torus64(),
        "torus_ring": bench_torus_ring(),
        "read_chain": bench_read_chain(),
        "collectives": bench_collectives(),
        "boot_amortization": bench_boot_amortization(),
    }

    seed = SEED_BASELINE
    canon, idle, fig6 = (
        scenarios["canonical_2node"],
        scenarios["idle_poll"],
        scenarios["fig6_4mib_weak"],
    )
    speedups = {
        "fig6_wallclock_x": round(seed["fig6_4mib_weak"]["runtime_s"] / fig6["runtime_s"], 2),
        "idle_poll_events_x": round(seed["idle_poll"]["events"] / max(idle["events"], 1), 1),
        "canonical_pushes_per_packet_x": round(
            (seed["canonical_2node"]["events"] / seed["canonical_2node"]["packets"])
            / canon["pushes_per_packet"],
            2,
        ),
        "fig6_sweep_parallel_x": scenarios["fig6_full_sweep"].get(
            "speedup_x", "skipped"),
        "mesh_adaptive_fidelity_x": scenarios["mesh_4x4"]["speedup_x"],
        "torus_ring_flow_fidelity_x": scenarios["torus_ring"]["speedup_x"],
        "read_chain_flow_fidelity_x": scenarios["read_chain"]["speedup_x"],
        "boot_image_phase_x": {
            k: v["boot_phase_x"]
            for k, v in scenarios["boot_amortization"].items()
            if isinstance(v, dict)
        },
    }

    report = {
        "scenarios": scenarios,
        "seed_baseline": seed,
        "speedups_vs_seed": speedups,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"[saved to {args.output}]")

    # Sanity: the model must be unchanged, only its execution cost.
    if fig6["mbps"] != seed["fig6_4mib_weak"]["mbps"]:
        print(
            f"WARNING: fig6 4 MiB mbps {fig6['mbps']} != seed "
            f"{seed['fig6_4mib_weak']['mbps']} -- virtual-time model drifted?",
            file=sys.stderr,
        )

    if args.check_baseline is not None:
        baseline = json.loads(args.check_baseline.read_text())
        gates = [
            ("canonical_events_max", canon["events"], "canonical trace"),
            ("mesh_events_max",
             scenarios["mesh_4x4"]["adaptive"]["events"],
             "mesh_4x4 adaptive scenario"),
            ("datapath_events_max",
             scenarios["datapath_churn"]["events"],
             "datapath churn scenario"),
            ("torus64_events_max",
             scenarios["torus64"]["events"],
             "torus3d(4,4,4) halo scenario"),
            ("torus_ring_events_max",
             scenarios["torus_ring"]["macro"]["events"],
             "torus-ring flow-fidelity scenario"),
            ("read_chain_events_max",
             scenarios["read_chain"]["macro"]["events"],
             "read-chain flow-fidelity scenario"),
            ("collectives_events_max",
             scenarios["collectives"]["events"],
             "collectives ring-allreduce scenario"),
            ("boot_restore_events_max",
             scenarios["boot_amortization"]["restore_events_total"],
             "boot-image restore drains"),
        ]
        failed = False
        for key, got, label in gates:
            limit = baseline.get(key)
            if limit is None:
                continue
            if got > limit:
                print(
                    f"FAIL: {label} executed {got} calendar entries, "
                    f"baseline allows at most {limit} "
                    f"(recorded in {args.check_baseline})",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(f"baseline gate OK: {label} events {got} <= {limit}")
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
