"""T-ring -- endpoint scaling (Section IV.A).

Paper: "each node has to allocate a 4 KB ring buffer for each endpoint it
want to communicate with.  While this limitation prohibits unlimited
scalability the approach is sufficient to support hundreds of endpoints."
"""

import pytest

from _common import write_result
from repro.bench import endpoint_footprint_table, run_fan_in, table
from repro.util.units import MiB


@pytest.fixture(scope="module")
def fan_in_points():
    return run_fan_in(sender_counts=(1, 2, 4, 7), messages=32)


def test_endpoint_scaling(benchmark, fan_in_points):
    foot = endpoint_footprint_table((2, 8, 32, 128, 256, 512))
    by_n = {f.endpoints: f for f in foot}
    # --- hundreds of endpoints fit comfortably in one node's DRAM -------
    assert by_n[256].ring_bytes == 256 * 4096, "4 KB ring per endpoint"
    assert by_n[256].total_bytes < 64 * MiB
    assert by_n[512].total_bytes < 128 * MiB
    # footprint is linear in the endpoint count (no shared rx state)
    assert by_n[256].ring_bytes == 2 * by_n[128].ring_bytes

    points = fan_in_points
    # independent per-sender rings: aggregate grows until the hub's link
    # saturates, and never collapses as senders are added
    assert points[1].aggregate_mbps > points[0].aggregate_mbps * 1.4
    assert points[-1].aggregate_mbps > points[1].aggregate_mbps * 0.9

    rows = [(f.endpoints, f.ring_bytes, f.feedback_bytes, f.heap_bytes,
             f.total_bytes) for f in foot]
    txt = table(["endpoints", "rings B", "feedback B", "heaps B", "total B"],
                rows, title="Per-node footprint vs endpoint count")
    rows2 = [(p.senders, p.messages, round(p.aggregate_mbps)) for p in points]
    txt += "\n\n" + table(["senders", "messages", "aggregate MB/s"], rows2,
                          title="Fan-in throughput into one node")
    write_result("endpoints", txt)

    def kernel():
        return run_fan_in(sender_counts=(2,), messages=8)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result[0].senders == 2
