#!/usr/bin/env python3
"""Quickstart: boot the two-board TCCluster prototype and exchange messages.

This reproduces, end to end, what the paper's Figure 5 system does:

1. two Tyan S2912E boards (two Opterons each) come out of a synchronized
   cold reset,
2. the modified coreboot firmware enumerates each board's coherent fabric,
   forces the HTX link non-coherent via the debug register, warm-resets,
   programs the address maps / MTRRs, and loads the (custom) kernel,
3. user processes map remote memory through the tccluster driver and
   exchange messages via the ring-buffer library -- plain CPU stores are
   the network.

Run:  python examples/quickstart.py
"""

from repro import TCClusterSystem
from repro.util.units import fmt_time_ns


def main() -> None:
    print("Booting the two-board TCCluster prototype (firmware + OS)...")
    system = TCClusterSystem.two_board_prototype().boot()
    cluster = system.cluster
    print(f"  boot completed at t = {fmt_time_ns(system.sim.now)} (virtual)")
    for link in cluster.tcc_links:
        print(f"  TCC link {link.name}: {link.link_type}, "
              f"{link.width_bits} bit @ {link.gbit_per_lane} Gbit/s/lane")
    for rank in cluster.ranks:
        print(f"  rank {rank.rank}: {rank.chip.name} "
              f"DRAM [{rank.base:#x}, {rank.limit:#x})")

    # Endpoints between the two HTX-adjacent processors.
    a = cluster.rank_of(0, 1)
    b = cluster.rank_of(1, 1)
    tx, rx = system.connect(a, b)
    sim = system.sim

    outcome = {}

    def sender():
        yield from tx.send(b"hello over HyperTransport!")
        yield from tx.flush()
        # A larger message takes the rendezvous path automatically.
        yield from tx.send(bytes(range(256)) * 256)  # 64 KiB
        yield from tx.flush()

    def receiver():
        first = yield from rx.recv()
        t_first = sim.now
        second = yield from rx.recv()
        outcome.update(first=first, second_len=len(second), t=t_first)

    start = sim.now
    system.process(sender)
    done = system.process(receiver)
    system.run_until(done)

    print(f"\n  received: {outcome['first']!r}")
    print(f"  first message latency: {outcome['t'] - start:.0f} ns "
          "(send + ring write + polling detect)")
    print(f"  second message: {outcome['second_len']} bytes via rendezvous")
    print(f"  endpoint stats: {tx.stats.msgs_sent} sent / "
          f"{rx.stats.msgs_received} received, "
          f"{rx.stats.polls} receive polls")
    link = cluster.tcc_links[0]
    st = link.stats("A")
    print(f"  link packets: {st.packets}, wire bytes: {st.wire_bytes}, "
          f"payload bytes: {st.payload_bytes}")


if __name__ == "__main__":
    main()
