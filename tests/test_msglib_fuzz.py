"""Property-based fuzzing of the message library over the full stack.

Each example drives a random message sequence (sizes spanning the eager
single-slot, eager multi-slot, ring-wrap and rendezvous regimes) through
a real booted two-board system and asserts exact FIFO delivery with
byte-perfect integrity -- the end-to-end invariant everything else
(write-combining masks, per-VC ordering, flow control, heap wrap) must
conspire to preserve.

The booted system is shared across examples (boots are expensive); the
protocol is stream-oriented, each example drains the rings completely, so
examples compose into one long randomized session -- which is itself a
stronger test of the sequence/flow-control state than independent fresh
systems would be.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import make_tcc_pair, NODE_MEM
from repro.core import TCClusterSystem
from repro.msglib import MsgConfig
from repro.util.units import KiB

_STATE = {}


def shared_pair():
    if not _STATE:
        sys_ = TCClusterSystem.two_board_prototype(
            msg_cfg=MsgConfig(heap_bytes=128 * KiB)
        ).boot()
        cl = sys_.cluster
        a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
        tx, rx = sys_.connect(a, b)
        _STATE.update(sys=sys_, tx=tx, rx=rx)
    return _STATE["sys"], _STATE["tx"], _STATE["rx"]


# Sizes biased toward the protocol's edge cases.
_SIZE = st.one_of(
    st.integers(1, 8),                 # sub-dword (masked byte writes)
    st.integers(50, 60),               # around the slot-payload boundary
    st.integers(1000, 1100),           # around eager_max (1024)
    st.integers(3000, 9000),           # small rendezvous
    st.sampled_from([56, 57, 112, 1024, 1025, 4096]),
)


@given(sizes=st.lists(_SIZE, min_size=1, max_size=20),
       slow=st.booleans(), mode_strict=st.booleans())
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_message_streams_fifo_and_intact(sizes, slow, mode_strict):
    sys_, tx, rx = shared_pair()
    sim = sys_.sim
    msgs = [bytes((i * 31 + j * 7 + 1) % 256 for j in range(n))
            for i, n in enumerate(sizes)]
    mode = "strict" if mode_strict else "weak"

    def sender():
        for m in msgs:
            yield from tx.send(m, mode=mode)
        yield from tx.flush()

    def receiver():
        out = []
        for _ in msgs:
            if slow:
                yield sim.timeout(300.0)
            out.append((yield from rx.recv()))
        return out

    sim.process(sender())
    done = sim.process(receiver())
    got = sim.run_until_event(done)
    assert got == msgs


def _ring_feasible_prefix(sizes, cfg):
    """Longest prefix of ``sizes`` whose slot demand a send-all-then-recv
    side can push without any peer acknowledgement.

    Both fuzz sides send everything before receiving, and feedback is only
    written from the receive path -- so an example where *both* directions
    need more ring slots than are available deadlocks by design (the MPI
    eager send-send pattern).  That is an application error, not a library
    bug; the fuzz must generate workloads the protocol can complete.  Up
    to ``fb_interval_slots - 1`` slots of acknowledgement debt may carry
    over from the previous example on the shared system, so cap demand at
    ``nslots`` minus that.
    """
    from repro.msglib.slots import slots_needed

    budget = cfg.nslots - cfg.fb_interval_slots + 1
    total = 0
    keep = 0
    for n in sizes:
        total += 1 if n > cfg.eager_max else slots_needed(n)
        if total > budget:
            break
        keep += 1
    return sizes[: max(1, keep)]


@given(seed_sizes=st.lists(st.integers(1, 2000), min_size=2, max_size=8))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_bidirectional_random_traffic(seed_sizes):
    """Both directions at once: independent rings never interfere."""
    sys_, tx, rx = shared_pair()
    sim = sys_.sim
    cfg = tx.cfg
    seed_sizes = _ring_feasible_prefix(seed_sizes, cfg)
    seed_sizes = seed_sizes[: len(_ring_feasible_prefix(
        [n + 5 for n in seed_sizes], cfg))]
    a_msgs = [bytes((7 * i + 1) % 256 for i in range(n)) for n in seed_sizes]
    b_msgs = [bytes((11 * i + 3) % 256 for i in range(n + 5))
              for n in seed_sizes]

    def side(ep, outgoing, n_in):
        inbox = []
        for m in outgoing:
            yield from ep.send(m)
        yield from ep.flush()
        for _ in range(n_in):
            inbox.append((yield from ep.recv()))
        return inbox

    pa = sim.process(side(tx, a_msgs, len(b_msgs)))
    pb = sim.process(side(rx, b_msgs, len(a_msgs)))
    sim.run_until_event(sim.all_of([pa, pb]))
    assert pa.value == b_msgs
    assert pb.value == a_msgs


@given(
    stores=st.lists(
        st.tuples(st.integers(0, 4000), st.integers(1, 96)),
        min_size=1, max_size=40,
    )
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_raw_remote_stores_match_reference_memory(stores):
    """Property: any sequence of raw WC stores (arbitrary alignment and
    length, so masked byte writes and line splits trigger) produces
    exactly the same remote bytes as a flat reference buffer."""
    p = make_tcc_pair()
    core = p.chip0.cores[0]
    ref = bytearray(8192)

    def tx():
        for (off, ln) in stores:
            data = bytes((off + i) % 255 + 1 for i in range(ln))
            ref[off : off + ln] = data
            yield from core.store(NODE_MEM + off, data)
        yield from core.sfence()

    done = p.sim.process(tx())
    p.sim.run_until_event(done)
    p.sim.run()
    assert p.chip1.memory.read(0, 8192) == bytes(ref)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_seeded_interleavings_hold_invariants_under_metrics_oracle(seed):
    """Seeded random send/recv interleavings on a fresh metered system.
    Every schedule must preserve: no loss, no reorder (byte-perfect FIFO),
    and ring occupancy never exceeding the slot count.  The observability
    layer is the oracle: endpoint stats and the registry's occupancy
    tracker / latency histogram must agree with ground truth.
    """
    rng = random.Random(seed)
    sys_ = TCClusterSystem.two_board_prototype().boot()
    sys_.enable_metrics()
    cl = sys_.cluster
    a, b = cl.rank_of(0, 1), cl.rank_of(1, 1)
    tx, rx = sys_.connect(a, b)
    sim = sys_.sim
    nslots = MsgConfig().nslots

    # Pre-draw every random choice so the schedule is a pure function of
    # the seed, independent of generator interleaving order.
    n = 60
    sizes = [rng.choice((rng.randint(1, 56), rng.randint(57, 1024),
                         rng.randint(1025, 6000))) for _ in range(n)]
    msgs = [bytes((seed * 13 + i * 31 + j) % 255 + 1 for j in range(sz))
            for i, sz in enumerate(sizes)]
    modes = [rng.choice(("weak", "weak", "strict")) for _ in range(n)]
    tx_gaps = [rng.choice((0.0, 0.0, 40.0, 400.0)) for _ in range(n)]
    rx_gaps = [rng.choice((0.0, 25.0, 250.0, 2500.0)) for _ in range(n)]

    def sender():
        for m, mode, gap in zip(msgs, modes, tx_gaps):
            if gap:
                yield sim.timeout(gap)
            yield from tx.send(m, mode=mode)
        yield from tx.flush()

    def receiver():
        out = []
        for gap in rx_gaps:
            if gap:
                yield sim.timeout(gap)
            out.append((yield from rx.recv()))
        return out

    sim.process(sender())
    done = sim.process(receiver())
    got = sim.run_until_event(done)
    sim.run()

    # No loss, no reorder, byte-perfect.
    assert got == msgs

    # Metrics oracle agrees with ground truth.
    assert tx.stats.msgs_sent == n
    assert rx.stats.msgs_received == n
    assert tx.stats.bytes_sent == sum(sizes)
    assert tx.stats.eager_sent + tx.stats.rendezvous_sent == n

    # Flow control held: the ring never overcommitted.
    assert 0 < tx.stats.max_inflight_slots <= nslots

    snap = sys_.cluster.registry.snapshot(sim.now)
    occ_key = f"msglib.r{a}->r{b}.ring_occupancy"
    assert snap["gauge_max"][occ_key] == tx.stats.max_inflight_slots
    assert snap["histograms"]["msglib.message_latency_ns"]["count"] == n
